"""Section V's second-platform claim: "the results from both Hornet and
Laki basically deliver the same bandwidth performance trend".

The paper shows only Hornet panels; this bench runs the same lmsg sweep
on the Laki preset (8-core Nehalem nodes, tapered InfiniBand fat tree)
and asserts the trend transfers: the tuned design is at least as fast at
every point and strictly ahead somewhere.
"""

import pytest

from repro.bench import NATIVE, OPT
from repro.core import Sweep, simulate_bcast
from repro.machine import laki
from repro.util import Table, format_size

from conftest import publish

SIZES = [2**k for k in range(19, 24)]
NRANKS = 32


def test_laki_same_trend(benchmark):
    spec = laki(nodes=8)
    sweep = Sweep(spec, sizes=SIZES, ranks=[NRANKS], algorithms=[NATIVE, OPT])
    table = Table(
        ["msg size", "native MB/s", "opt MB/s", "improvement"],
        formats=[None, ".1f", ".1f", lambda v: f"{v:+.1f}%"],
        title=f"Laki (InfiniBand fat tree), np={NRANKS} — same trend as Hornet",
    )
    worst = float("inf")
    best = -float("inf")
    for size in SIZES:
        cmp = sweep.compare(NRANKS, size, NATIVE, OPT)
        gain = cmp.bandwidth_improvement_pct
        worst = min(worst, gain)
        best = max(best, gain)
        table.add_row(format_size(size), cmp.native.bandwidth_mib, cmp.opt.bandwidth_mib, gain)
    publish("laki_trend", table.render())
    assert worst > -1e-6  # never slower
    assert best > 1.0  # clearly ahead somewhere

    benchmark.pedantic(
        lambda: simulate_bcast(spec, NRANKS, SIZES[0], algorithm=OPT).time,
        rounds=1,
        iterations=1,
    )
