"""Extension benches: the broadcast-algorithm tournament and the
composition of the tuned ring into allreduce.

Beyond the paper's native/tuned comparison, the library implements the
neighbouring design space (binomial, k-nomial, pipelined chain,
recursive doubling). These benches place the paper's two protagonists
inside that space for small/medium/large messages, sweep the k-nomial
radix and chain segment size, and measure how much of the tuned ring's
win survives composition into allreduce.
"""

import pytest

from repro.collectives import (
    allreduce_reduce_bcast,
    bcast_chain,
    bcast_knomial,
    bcast_scatter_ring_native,
    bcast_scatter_ring_opt,
)
from repro.core import simulate_bcast
from repro.machine import Machine, hornet
from repro.mpi import Job
from repro.util import Table, format_size

from conftest import publish

P = 48
SPEC = hornet(nodes=4)
TOURNAMENT = ["binomial", "knomial4", "chain", "scatter_ring_native", "scatter_ring_opt"]


def test_bcast_tournament(benchmark):
    sizes = [4096, 65536, 1 << 20, 1 << 23]
    table = Table(
        ["msg size"] + TOURNAMENT,
        formats=[None] + [".1f"] * len(TOURNAMENT),
        title=f"Broadcast tournament, np={P} (times in us)",
    )
    times = {}
    for size in sizes:
        row = [format_size(size)]
        for name in TOURNAMENT:
            t = simulate_bcast(SPEC, P, size, algorithm=name).time
            times[(size, name)] = t
            row.append(t * 1e6)
        table.add_row(*row)
    publish("extension_tournament", table.render())

    # Structural expectations: the tree wins tiny messages; the tuned
    # ring is the best scatter-allgather at every size and beats the
    # binomial tree for long messages.
    assert times[(4096, "binomial")] < times[(4096, "scatter_ring_native")]
    for size in sizes:
        assert (
            times[(size, "scatter_ring_opt")]
            <= times[(size, "scatter_ring_native")] * (1 + 1e-9)
        )
    assert times[(1 << 23, "scatter_ring_opt")] < times[(1 << 23, "binomial")]

    benchmark.pedantic(
        lambda: simulate_bcast(SPEC, P, 1 << 20, algorithm="scatter_ring_opt").time,
        rounds=1,
        iterations=1,
    )


def _timed(algo, nbytes, **kw):
    machine = Machine(SPEC, nranks=P)

    def factory(ctx):
        def program():
            return (yield from algo(ctx, nbytes, 0, **kw))

        return program()

    return Job(machine, factory, working_set=nbytes).run().time


def test_knomial_radix_sweep(benchmark):
    """Radix ablation: higher radix trades depth against root fan-out."""
    sizes = [4096, 1 << 20]
    radices = [2, 3, 4, 8]
    table = Table(
        ["msg size"] + [f"k={k}" for k in radices],
        formats=[None] + [".1f"] * len(radices),
        title=f"k-nomial radix sweep, np={P} (times in us)",
    )
    results = {}
    for size in sizes:
        row = [format_size(size)]
        for k in radices:
            t = _timed(bcast_knomial, size, radix=k)
            results[(size, k)] = t
            row.append(t * 1e6)
        table.add_row(*row)
    publish("extension_knomial_radix", table.render())
    # Large messages: radix 2 minimises the serialised root payload.
    assert results[(1 << 20, 2)] == min(results[(1 << 20, k)] for k in radices)

    benchmark.pedantic(lambda: _timed(bcast_knomial, 1 << 20, radix=2), rounds=1, iterations=1)


def test_chain_segment_sweep(benchmark):
    """Pipeline-depth ablation: too few segments serialise the chain,
    too many pay per-message latency; the optimum sits between."""
    nbytes = 1 << 22
    segments = [nbytes, nbytes // 8, nbytes // 64, 4096]
    table = Table(
        ["segment", "time (us)"],
        formats=[None, ".1f"],
        title=f"chain segment sweep, np={P}, msg={format_size(nbytes)}",
    )
    times = {}
    for seg in segments:
        t = _timed(bcast_chain, nbytes, segment_bytes=seg)
        times[seg] = t
        table.add_row(format_size(seg), t * 1e6)
    publish("extension_chain_segments", table.render())
    best = min(times, key=times.get)
    assert best not in (segments[0],)  # unsegmented never optimal here

    benchmark.pedantic(
        lambda: _timed(bcast_chain, nbytes, segment_bytes=nbytes // 8),
        rounds=1,
        iterations=1,
    )


def test_allreduce_composition(benchmark):
    """The tuned ring's gain survives composition into allreduce."""
    nbytes = 1 << 21
    t_native = _timed(
        allreduce_reduce_bcast, nbytes, bcast=bcast_scatter_ring_native
    )
    t_opt = _timed(allreduce_reduce_bcast, nbytes, bcast=bcast_scatter_ring_opt)
    gain = (t_native / t_opt - 1) * 100
    publish(
        "extension_allreduce",
        f"allreduce(reduce + bcast) of {format_size(nbytes)}, np={P}:\n"
        f"  with native ring bcast: {t_native * 1e6:.1f}us\n"
        f"  with tuned  ring bcast: {t_opt * 1e6:.1f}us  (+{gain:.1f}%)",
    )
    assert t_opt <= t_native * (1 + 1e-9)

    benchmark.pedantic(
        lambda: _timed(allreduce_reduce_bcast, nbytes), rounds=1, iterations=1
    )
