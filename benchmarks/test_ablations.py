"""Ablations: which modelled effects the tuned ring's win depends on.

Not in the paper — these isolate the design choices DESIGN.md calls out:

* contention: widen every shared capacity (memory engines, fabric) until
  per-rank copy engines are the only bottleneck -> the win shrinks
  toward the structural minimum, confirming the gain lives in shared
  capacity;
* placement: blocked vs round-robin decides whether savings land on the
  memory engines or on the fabric;
* topology: dragonfly vs tapered crossbar vs ideal crossbar;
* eager threshold: protocol choice shifts absolute time but must not
  flip who wins.
"""

import pytest

from repro.core import compare_bcast
from repro.machine import hornet
from repro.util import GIB, Table

from conftest import publish

NRANKS, NBYTES = 48, 2**20


def _gain(spec, placement="blocked"):
    cmp = compare_bcast(spec, NRANKS, NBYTES, placement=placement)
    return cmp.bandwidth_improvement_pct


def test_ablation_contention(benchmark):
    """Where the tuned ring's win comes from: shared-capacity relief.

    Two levels of sharing matter. Even with *infinite* node memory and
    fabric, each rank's own copy engine is shared between its concurrent
    send and receive, so half-duplex endpoints still gain. Adding
    realistic shared memory engines and a tapered fabric keeps the gain
    alive while the whole operation slows down (both designs contend) —
    so the *absolute* bandwidth recovered by the tuned ring is largest
    there, which is the paper's setting."""
    base = hornet(nodes=4)
    uncontended = base.with_(
        mem_bw=4096 * GIB,
        nic_bw=4096 * GIB,
        topology="crossbar",
        topology_params={},
    )
    rows = []
    for name, spec in (
        ("hornet (shared mem+fabric)", base),
        ("infinite mem+fabric (per-rank engines only)", uncontended),
    ):
        cmp = compare_bcast(spec, NRANKS, NBYTES)
        rows.append(
            (
                name,
                cmp.bandwidth_improvement_pct,
                cmp.opt.bandwidth_mib - cmp.native.bandwidth_mib,
            )
        )
    table = Table(
        ["machine", "opt gain %", "recovered MB/s"],
        formats=[None, "+.2f", "+.1f"],
        title=f"Ablation: contention (P={NRANKS}, 1MiB)",
    )
    for row in rows:
        table.add_row(*row)
    publish("ablation_contention", table.render())
    # The tuned design wins at both contention levels...
    assert all(gain > 0 for _, gain, _ in rows)
    # ...and per-rank engine sharing alone already explains a
    # comparable relative gain (the shared-capacity terms then scale it
    # to the realistic machine's absolute bandwidths).
    assert rows[0][1] > 0.5 and rows[1][1] > 0.5

    benchmark.pedantic(lambda: _gain(base), rounds=1, iterations=1)


def test_ablation_placement(benchmark):
    """Blocked placement (the paper's default) keeps most ring hops on
    the node memory engines, where the tuned ring's savings bite.
    Round-robin placement pushes every hop through the per-node NICs,
    which 24 concurrent ranks share regardless of design — the tuned
    advantage collapses to noise level (|gain| < 1%). This placement
    sensitivity is a real property of the algorithm, worth knowing
    before deploying it."""
    spec = hornet(nodes=4)
    rows = [(p, _gain(spec, placement=p)) for p in ("blocked", "round_robin")]
    table = Table(
        ["placement", "opt gain %"],
        formats=[None, "+.2f"],
        title=f"Ablation: rank placement (P={NRANKS}, 1MiB)",
    )
    for name, gain in rows:
        table.add_row(name, gain)
    publish("ablation_placement", table.render())
    gains = dict(rows)
    assert gains["blocked"] > 1.0  # the paper's setting: clear win
    assert gains["round_robin"] > -1.0  # never meaningfully slower

    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)


def test_ablation_topology(benchmark):
    """Fabric topology under round-robin placement (every ring hop is
    inter-node, so the fabric actually carries the traffic)."""
    variants = {
        "dragonfly (hornet)": hornet(nodes=4),
        "tapered crossbar": hornet(
            nodes=4, topology="crossbar", topology_params={"core_taper": 0.3}
        ),
        "ideal crossbar": hornet(nodes=4, topology="crossbar", topology_params={}),
        "fat tree": hornet(
            nodes=4, topology="fattree", topology_params={"radix": 2, "uplink_taper": 0.5}
        ),
    }
    table = Table(
        ["topology", "native MB/s", "opt MB/s", "gain %"],
        formats=[None, ".0f", ".0f", "+.2f"],
        title=f"Ablation: fabric topology (P={NRANKS}, 1MiB, round_robin placement)",
    )
    gains = {}
    for name, spec in variants.items():
        cmp = compare_bcast(spec, NRANKS, NBYTES, placement="round_robin")
        gains[name] = cmp.bandwidth_improvement_pct
        table.add_row(
            name, cmp.native.bandwidth_mib, cmp.opt.bandwidth_mib, gains[name]
        )
    publish("ablation_topology", table.render())
    assert all(g >= -1.0 for g in gains.values())
    # A genuinely shared, undersized core (tapered crossbar) is where
    # removing redundant transfers pays most — the congestion mechanism
    # the paper argues. Full-bisection fabrics leave only the NICs,
    # which per-rank round-robin traffic saturates equally either way.
    assert gains["tapered crossbar"] > gains["ideal crossbar"] + 1.0

    benchmark.pedantic(
        lambda: compare_bcast(variants["dragonfly (hornet)"], NRANKS, NBYTES),
        rounds=1,
        iterations=1,
    )


def test_ablation_eager_threshold(benchmark):
    """Protocol switching must not flip the winner."""
    rows = []
    for thresh in (0, 8192, 1 << 20):
        spec = hornet(nodes=4, eager_threshold=thresh)
        rows.append((thresh, _gain(spec)))
    table = Table(
        ["eager threshold", "opt gain %"],
        formats=[None, "+.2f"],
        title=f"Ablation: eager/rendezvous threshold (P={NRANKS}, 1MiB)",
    )
    for thresh, gain in rows:
        table.add_row(thresh, gain)
    publish("ablation_eager", table.render())
    assert all(g > -0.5 for _, g in rows)

    benchmark.pedantic(lambda: rows[-1], rounds=1, iterations=1)
