"""Figure 7 reproduction: throughput speedup of MPI_Bcast_opt over
MPI_Bcast_native for non-power-of-two process counts (9..129) at the
paper's three message sizes (12288 / 524287 / 1048576 bytes).

Shape claims: opt is consistently at least as fast as native at every
npof2 point, and the 12288-byte curve shows the largest speedups at
small process counts (the paper's strongest case).
"""

import pytest

from repro.bench import OPT, fig7, get_experiment, render_speedup_table
from repro.core import simulate_bcast
from repro.util import line_plot

from conftest import assert_opt_wins, publish


def _exp():
    return get_experiment("fig7", fig7)


def test_fig7_speedups(benchmark):
    exp = _exp()
    series = {}
    for n in exp.sizes_axis:
        xs, ys = [], []
        for p in exp.ranks_axis:
            cmp = exp.sweep.compare(p, n, "scatter_ring_native", OPT)
            xs.append(p)
            ys.append(cmp.speedup)
        series[f"ms={n}"] = (xs, ys)
    plot = line_plot(
        series,
        title="Fig 7: throughput speedup of opt over native",
        xlabel="Number of Processes",
        ylabel="speedup",
    )
    publish("fig7", render_speedup_table(exp) + "\n\n" + plot)
    assert_opt_wins(exp)

    # The smallest message size yields its best speedup at a small count
    # (paper: >2x at 9/17/33, dropping by 65) — check the ordering only.
    small = dict(zip(*series[f"ms={exp.sizes_axis[0]}"]))
    assert max(small, key=small.get) <= 65

    size, nranks = exp.sizes_axis[0], exp.ranks_axis[0]
    benchmark.pedantic(
        lambda: simulate_bcast(exp.spec, nranks, size, algorithm=OPT).time,
        rounds=2,
        iterations=1,
    )


def test_fig7_all_points_in_ring_regime():
    """Every Figure-7 grid point exercises the algorithm the paper tunes
    (mmsg-npof2 or lmsg -> scatter-ring path in MPICH3)."""
    from repro.collectives import is_ring_regime

    exp = _exp()
    for p in exp.ranks_axis:
        for n in exp.sizes_axis:
            assert is_ring_regime(n, p)
