"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark module renders the paper-style rows for its figure into
``benchmarks/results/<exp_id>.txt`` *and* prints them (visible with
``pytest -s``), then lets pytest-benchmark time one representative
simulation point.
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_collection_modifyitems(items):
    """Tag everything under benchmarks/ with the registered ``bench``
    marker so ``pytest -m "not bench"`` deselects the slow figure runs.

    The hook sees the whole collected session, so filter by path — other
    directories' tests must stay unmarked.
    """
    bench_dir = pathlib.Path(__file__).parent
    for item in items:
        if bench_dir in pathlib.Path(str(item.fspath)).parents:
            item.add_marker("bench")


def publish(exp_id: str, text: str) -> None:
    """Print a rendered table/plot and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def assert_opt_wins(experiment, slack: float = 1e-9) -> None:
    """The reproduction's hard shape claim: opt >= native at every point."""
    for cmp in experiment.comparisons():
        assert cmp.opt.time <= cmp.native.time * (1 + slack), (
            f"tuned design slower at P={cmp.nranks}, size={cmp.nbytes}: "
            f"{cmp.opt.time} vs {cmp.native.time}"
        )
