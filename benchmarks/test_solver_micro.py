"""Fluid-solver microbenchmarks: churn throughput and grid differentials.

Two kinds of check on the incremental, component-aware solver
(``docs/performance.md``):

* **Churn micro** — ring-allgather-shaped flow churn driven straight at
  a :class:`~repro.sim.FlowNetwork` at P in {16, 64, 256}, timed for
  both solver implementations. The incremental path must beat the
  ``REPRO_SOLVER=reference`` from-scratch path on solver wall time at
  P=256 (the BENCH_solver.json acceptance bar is >= 2x) while producing
  the identical simulated schedule.
* **Grid differential** — the full fig6a and fig7 sweeps run under both
  solvers must produce bitwise-identical simulated times at every grid
  point (honours ``REPRO_BENCH_FAST`` axis trimming like every other
  bench).
"""

import os

import pytest

from repro.bench import NATIVE, OPT, fig6, fig7, solver_churn

from conftest import publish

CHURN_RANKS = (16, 64, 256)


def _churn_pair(nranks):
    inc = solver_churn(nranks, solver="incremental")
    ref = solver_churn(nranks, solver="reference")
    return inc, ref


def test_solver_churn_micro(benchmark):
    """Both solvers replay the identical churn; incremental is faster."""
    rows = [
        "Solver churn micro (ring-allgather shape, 8 ranks/node):",
        f"  {'P':>4} {'flows':>6} {'inc solve ms':>13} {'ref solve ms':>13} "
        f"{'speedup':>8} {'max comp':>9}",
    ]
    speedups = {}
    for nranks in CHURN_RANKS:
        inc, ref = _churn_pair(nranks)
        # The two implementations must describe the same simulation ...
        assert inc.sim_time == ref.sim_time
        assert inc.flows_completed == ref.flows_completed
        assert inc.flows_cancelled == ref.flows_cancelled
        # ... and both must actually record telemetry.
        for result in (inc, ref):
            assert result.stats.solves > 0
            assert result.stats.rounds >= result.stats.solves
            assert result.stats.solve_time_s > 0.0
            assert result.stats.max_component <= result.nranks
        speedup = ref.solve_time_s / inc.solve_time_s
        speedups[nranks] = speedup
        rows.append(
            f"  {nranks:>4} {inc.flows_completed + inc.flows_cancelled:>6} "
            f"{inc.solve_time_s * 1e3:>13.2f} {ref.solve_time_s * 1e3:>13.2f} "
            f"{speedup:>7.2f}x {inc.stats.max_component:>9}"
        )
    publish("solver_churn", "\n".join(rows))
    # The acceptance bar: at P=256 the incremental solver at least
    # halves solver wall time relative to the reference path.
    assert speedups[256] >= 2.0

    benchmark.pedantic(
        lambda: solver_churn(256, solver="incremental").solve_time_s,
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("exp_factory", [lambda: fig6("a"), fig7], ids=["fig6a", "fig7"])
def test_solver_differential_on_figure_grids(exp_factory, benchmark):
    """Incremental and reference solvers agree bitwise on whole figure
    grids — every simulated time, message count and byte count."""
    grids = {}
    for mode in ("incremental", "reference"):
        os.environ["REPRO_SOLVER"] = mode
        try:
            exp = exp_factory()
            exp.run()  # no disk cache: both modes must really simulate
            grids[mode] = {
                (rec.algorithm, rec.nranks, rec.nbytes): (
                    rec.time,
                    rec.messages,
                    rec.bytes_on_wire,
                )
                for algo in (NATIVE, OPT)
                for p in exp.ranks_axis
                for size in exp.sizes_axis
                for rec in [exp.sweep.record(algo, p, size)]
            }
        finally:
            del os.environ["REPRO_SOLVER"]
    assert grids["incremental"] == grids["reference"]
    assert len(grids["incremental"]) >= 4

    benchmark.pedantic(lambda: len(grids["incremental"]), rounds=1, iterations=1)
