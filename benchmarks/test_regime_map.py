"""Regime map: does MPICH3's static selector pick the simulated winner?

Beyond reproducing the paper, the simulator can interrogate the policy
the paper works within: for each (P, size) cell, which broadcast
actually wins on the Hornet model, and how often the MPICH3 thresholds
(12288 / 524288 / pof2) land on that family. High agreement validates
both the selector and the machine model; the disagreement cells mark
where a paper like this one finds its opening.
"""

import pytest

from repro.core import regime_map, selector_agreement, simulate_bcast
from repro.machine import hornet
from repro.util import Table, format_size

from conftest import publish

SPEC = hornet(nodes=8)
RANKS = [8, 16, 17, 36, 64]
SIZES = [2048, 12288, 65536, 262144, 524288, 2**21]


def test_regime_map(benchmark):
    cells = regime_map(SPEC, ranks=RANKS, sizes=SIZES)
    table = Table(
        ["P", "msg size", "winner", "MPICH3 picks", "agree"],
        title="Broadcast regime map on the Hornet model",
    )
    for c in cells:
        table.add_row(
            c.nranks,
            format_size(c.nbytes),
            c.winner,
            c.mpich_choice,
            "yes" if c.selector_agrees else "NO",
        )
    agreement = selector_agreement(cells)
    publish(
        "regime_map",
        table.render() + f"\n\nselector agreement: {agreement * 100:.0f}%",
    )

    # The static selector captures the bulk of the structure...
    assert agreement >= 0.7
    # ...and its anchor rows are exact: tiny messages -> binomial,
    # long messages -> the ring family, at every rank count.
    for c in cells:
        if c.nbytes <= 2048:
            assert c.winner == "binomial"
        if c.nbytes >= 2**21:
            assert c.winner.startswith("scatter_ring")
    # Wherever the ring family wins *clearly* (by > 1%), the tuned
    # variant is the winner. Near-ties between native and opt can go
    # either way at mid sizes with eager chunks: max-min completion
    # times are not monotone under flow removal, a ~0.5% model-noise
    # effect the paper's own figure grid never samples.
    for c in cells:
        if not c.winner.startswith("scatter_ring"):
            continue
        runner_up = min(
            (t for n, t in c.times.items() if n != c.winner), default=None
        )
        if runner_up is not None and runner_up > c.winner_time * 1.01:
            assert c.winner == "scatter_ring_opt", (c.nranks, c.nbytes)

    benchmark.pedantic(
        lambda: simulate_bcast(SPEC, 36, 65536, algorithm="scatter_ring_opt").time,
        rounds=2,
        iterations=1,
    )
