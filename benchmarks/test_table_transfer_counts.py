"""Section IV transfer-count table: the paper's arithmetic, regenerated.

The paper states the enclosed ring issues P*(P-1) transfers and works
two examples: P=8 (56 -> 44, "reduces it by 12") and P=10 (90 -> 75,
"reduced by 15"), and argues the saving grows with P. This bench
regenerates that table for a grid of process counts, from both the
closed forms and the actual extracted schedules, and asserts they agree.
"""

import pytest

from repro.core import (
    measure_traffic,
    ring_transfers_native,
    ring_transfers_tuned,
    transfers_saved,
)
from repro.util import Table

from conftest import publish

GRID = [2, 4, 8, 10, 16, 17, 24, 32, 33, 64, 65, 100, 129, 256]


def test_transfer_count_table(benchmark):
    table = Table(
        ["P", "native P(P-1)", "tuned", "saved", "saved %"],
        formats=[None, None, None, None, ".1f"],
        title="Ring-allgather message transfers (Section IV)",
    )
    for P in GRID:
        native = ring_transfers_native(P)
        tuned = ring_transfers_tuned(P)
        saved = transfers_saved(P)
        table.add_row(P, native, tuned, saved, 100.0 * saved / native if native else 0.0)
    publish("table_transfers", table.render())

    # Paper's worked examples.
    assert ring_transfers_native(8) == 56 and ring_transfers_tuned(8) == 44
    assert ring_transfers_native(10) == 90 and ring_transfers_tuned(10) == 75
    # Savings grow with P (Section IV's deduction).
    savings = [transfers_saved(P) for P in GRID]
    assert savings == sorted(savings)

    # Time the measured (schedule-extraction) path at a mid-size P.
    def measured():
        return measure_traffic("scatter_ring_opt", 64, 64 * 1024).ring_transfers

    result = benchmark(measured)
    assert result == ring_transfers_tuned(64)


@pytest.mark.parametrize("P", [8, 10, 33, 64])
def test_schedule_agrees_with_closed_form(P):
    nbytes = 1024 * P
    native = measure_traffic("scatter_ring_native", P, nbytes)
    tuned = measure_traffic("scatter_ring_opt", P, nbytes)
    assert native.ring_transfers == ring_transfers_native(P)
    assert tuned.ring_transfers == ring_transfers_tuned(P)
