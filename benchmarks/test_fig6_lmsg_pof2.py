"""Figure 6 reproduction: long-message bandwidth at power-of-two process
counts (16 / 64 / 256) on the Hornet-like dragonfly machine.

Paper claims reproduced in *shape*: MPI_Bcast_opt is at least as fast as
MPI_Bcast_native at every point, with single- to double-digit percent
bandwidth improvements and a peak-bandwidth edge; 16 processes stay
intra-node under blocked placement (Section V-A).
"""

import pytest

from repro.bench import (
    NATIVE,
    OPT,
    fig6,
    get_experiment,
    render_bandwidth_table,
    render_plot,
)
from repro.core import simulate_bcast

from conftest import assert_opt_wins, publish


def _exp(sub):
    return get_experiment(f"fig6{sub}", lambda: fig6(sub))


@pytest.mark.parametrize("sub,nranks", [("a", 16), ("b", 64), ("c", 256)])
def test_fig6_panel(sub, nranks, benchmark):
    exp = _exp(sub)
    publish(
        exp.exp_id,
        render_bandwidth_table(exp, nranks) + "\n\n" + render_plot(exp, nranks),
    )
    assert_opt_wins(exp)
    # Improvements are strictly positive somewhere on the size axis.
    best = max(c.bandwidth_improvement_pct for c in exp.comparisons())
    assert best > 1.0

    # Time one representative simulated broadcast (the smallest lmsg point).
    size = exp.sizes_axis[0]

    def one_point():
        return simulate_bcast(exp.spec, nranks, size, algorithm=OPT).time

    benchmark.pedantic(one_point, rounds=1, iterations=1)


def test_fig6a_is_intra_node():
    """16 processes under blocked placement never leave the first node."""
    exp = _exp("a")
    rec = exp.sweep.record(OPT, 16, exp.sizes_axis[0])
    assert rec.inter_messages == 0
    assert rec.intra_messages == rec.messages


def test_peak_bandwidth_summary(benchmark):
    """Section V-A peak-bandwidth table: opt's peak beats native's peak at
    every process count (paper: +10% / +13% / +16%)."""
    lines = ["Peak bandwidth (MB/s) across the lmsg sweep:"]
    gains = {}
    for sub, nranks in (("a", 16), ("b", 64), ("c", 256)):
        exp = _exp(sub)
        peak_native = exp.sweep.peak_bandwidth(NATIVE, nranks)
        peak_opt = exp.sweep.peak_bandwidth(OPT, nranks)
        gain = (peak_opt / peak_native - 1) * 100
        gains[nranks] = gain
        lines.append(
            f"  np={nranks:>3}: native {peak_native:8.1f}  opt {peak_opt:8.1f}  "
            f"(+{gain:.1f}%; paper: +{ {16: 10, 64: 13, 256: 16}[nranks] }%)"
        )
    publish("fig6_peaks", "\n".join(lines))
    assert all(g > 0 for g in gains.values())

    benchmark.pedantic(lambda: gains, rounds=1, iterations=1)
