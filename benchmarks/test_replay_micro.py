"""Replay-engine microbenchmark: the numpy fast path vs the coroutine DES.

Times the same fig7-style broadcast cells (``scatter_ring_opt``-shaped
``bcast_opt``, message size 12 KiB, non-power-of-two rank counts on
hornet) on both execution engines:

* **DES** — the coroutine discrete-event runtime (``mpi.Job``);
* **replay** — the compiled static schedule on
  :class:`~repro.sim.replay.ReplayEngine` (schedule extracted and
  compiled once outside the timed region, as the process-wide dispatch
  memo does in sweeps).

Every cell first asserts *bitwise* result equality (makespan and
message counters), then compares best-of-2 wall times. The CI bar is
the dispatch-worthiness floor (>= 2x on the best cell); the measured
trajectory — including one-shot extraction overhead and the P=1024
feasibility run — is recorded in ``BENCH_replay.json``.

Honours ``REPRO_BENCH_FAST`` (drops the P=129 cell) like every other
bench.
"""

from time import perf_counter

from repro.analysis.verify import REGISTRY
from repro.bench import fast_mode
from repro.collectives.schedule import extract_schedule
from repro.machine import Machine, hornet
from repro.mpi import Job
from repro.sim.replay import ReplayEngine, compile_schedule

from conftest import publish

#: fig7 grid cells: FIG7_SIZES[0] = 12288 at non-pof2 rank counts.
NBYTES = 12288
RANKS = (65,) if fast_mode() else (65, 129)
#: CI acceptance bar on the best cell's replay-only speedup.
SPEEDUP_BAR = 2.0


def _best_of(fn, rounds=2):
    best, value = float("inf"), None
    for _ in range(rounds):
        t0 = perf_counter()
        value = fn()
        best = min(best, perf_counter() - t0)
    return best, value


def _des_run(nranks):
    return Job(
        Machine(hornet(), nranks=nranks),
        REGISTRY["bcast_opt"].build(nranks, NBYTES, 0),
        working_set=NBYTES,
    ).run()


def test_replay_vs_des_micro(benchmark):
    """Replay reproduces the DES bitwise and beats it on wall time."""
    rows = [
        f"Replay engine micro (bcast_opt, nbytes={NBYTES}, hornet):",
        f"  {'P':>4} {'sends':>6} {'DES s':>8} {'extract s':>10} "
        f"{'replay s':>9} {'speedup':>8} {'incl-ext':>9}",
    ]
    speedups = {}
    for nranks in RANKS:
        t_ext0 = perf_counter()
        schedule = extract_schedule(
            nranks, REGISTRY["bcast_opt"].build(nranks, NBYTES, 0)
        )
        compiled = compile_schedule(schedule)
        t_ext = perf_counter() - t_ext0

        t_des, des = _best_of(lambda: _des_run(nranks))
        t_rep, rep = _best_of(
            lambda: ReplayEngine(
                Machine(hornet(), nranks=nranks), compiled, working_set=NBYTES
            ).run()
        )
        # Equality first: a fast wrong answer is worthless.
        assert rep.time == des.time  # bitwise
        assert rep.counters.messages == des.counters.messages
        assert rep.counters.bytes == des.counters.bytes
        assert rep.flows_completed == des.flows_completed

        speedups[nranks] = t_des / t_rep
        rows.append(
            f"  {nranks:>4} {compiled.n_sends:>6} {t_des:>8.3f} {t_ext:>10.3f} "
            f"{t_rep:>9.3f} {t_des / t_rep:>7.2f}x "
            f"{t_des / (t_rep + t_ext):>8.2f}x"
        )
    publish("replay_micro", "\n".join(rows))
    assert max(speedups.values()) >= SPEEDUP_BAR, speedups

    largest = max(RANKS)
    schedule = extract_schedule(
        largest, REGISTRY["bcast_opt"].build(largest, NBYTES, 0)
    )
    compiled = compile_schedule(schedule)
    benchmark.pedantic(
        lambda: ReplayEngine(
            Machine(hornet(), nranks=largest), compiled, working_set=NBYTES
        ).run(),
        rounds=1,
        iterations=1,
    )
