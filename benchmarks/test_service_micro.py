"""Simulation-service microbenchmark: warm worker pool vs cold one-shot.

Runs the fig6b grid (P=64 on hornet, ``scatter_ring_native`` vs
``scatter_ring_opt`` across the paper's size axis) two ways, both with
the record cache disabled so every point is really simulated:

* **cold** — each point computed as a one-shot run: the process-wide
  dispatch memo and the shared solve-memo store are cleared before every
  point, the way a fresh ``python -m repro sweep`` process would start.
  (Interpreter startup is *not* charged to this side, so the measured
  ratio understates the real CLI gap.)
* **warm** — the whole grid submitted as one batch to a live
  :class:`~repro.service.SimulationServer` whose persistent worker has
  already served the grid once, so its schedule and solve memos are hot.

Every record first asserts *bitwise* equality across cold, first-pass
and warm-pass service runs — memo warmth must never change a record.
The CI bar is on the cold/warm throughput ratio; the full trajectory is
recorded in ``benchmarks/results/service_micro.txt`` (and the
real-subprocess version of the experiment in ``BENCH_service.json``).

Honours ``REPRO_BENCH_FAST`` (trims the size axis) like every other
bench.
"""

import threading
from time import perf_counter

from repro.bench import fast_mode
from repro.bench.figures import FIG6_SIZES, NATIVE, OPT
from repro.core import api
from repro.core.api import simulate_bcast
from repro.core.sweep import SweepPoint
from repro.machine import hornet
from repro.service import ServiceClient, SimulationServer
from repro.sim.replay import clear_solve_memo

from conftest import publish

#: fig6b axes: P=64 on a 16-node hornet, both ring designs.
NRANKS = 64
NODES = 16
SIZES = [FIG6_SIZES[0], FIG6_SIZES[-1]] if fast_mode() else FIG6_SIZES
#: CI acceptance bar on the cold/warm wall-time ratio. The full grid
#: re-solves more structures per point, so it clears a higher bar.
RATIO_BAR = 2.0 if fast_mode() else 3.0


def _grid():
    return [
        SweepPoint(algo, NRANKS, nbytes)
        for algo in (NATIVE, OPT)
        for nbytes in SIZES
    ]


def _go_cold():
    """Reset every cross-run memo, as a fresh process would start."""
    clear_solve_memo()
    api._REPLAY_MEMO.clear()


def _cold_pass(spec, points):
    """One-shot baseline: every point pays full schedule + solve cost."""
    records, total = [], 0.0
    for point in points:
        _go_cold()
        t0 = perf_counter()
        records.append(
            simulate_bcast(
                spec,
                nranks=point.nranks,
                nbytes=point.nbytes,
                algorithm=point.algorithm,
            )
        )
        total += perf_counter() - t0
    return total, records


def _service_pass(client, spec, points):
    outcomes = dict(client.sweep(spec, points, cache=False))
    records = []
    for i in range(len(points)):
        status, payload = outcomes[i][0], outcomes[i][1]
        assert status == "ok", outcomes[i]
        records.append(payload)
    return records


def test_service_warm_vs_cold_micro(benchmark, tmp_path):
    spec = hornet(nodes=NODES)
    points = _grid()

    t_cold, cold = _cold_pass(spec, points)

    srv = SimulationServer(jobs=1, state_file=tmp_path / "service.json")
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServiceClient(srv.host, srv.port)
        t0 = perf_counter()
        first = _service_pass(client, spec, points)  # warms the worker
        t_first = perf_counter() - t0

        t_warm, warm = float("inf"), None
        for _ in range(2):
            t0 = perf_counter()
            warm = _service_pass(client, spec, points)
            t_warm = min(t_warm, perf_counter() - t0)
    finally:
        srv.request_shutdown()
        thread.join(timeout=60)

    # Equality first: a fast wrong answer is worthless. Dataclass
    # equality already skips the non-compared solver_time_s wall clock.
    assert first == cold
    assert warm == cold

    ratio = t_cold / t_warm
    rows = [
        f"Service micro (fig6b grid: P={NRANKS}, {len(points)} points, "
        "hornet, cache off):",
        f"  {'pass':>12} {'total s':>8} {'s/point':>8}",
        f"  {'cold 1-shot':>12} {t_cold:>8.3f} {t_cold / len(points):>8.3f}",
        f"  {'service 1st':>12} {t_first:>8.3f} {t_first / len(points):>8.3f}",
        f"  {'service warm':>12} {t_warm:>8.3f} {t_warm / len(points):>8.3f}",
        f"  warm-pool throughput ratio vs cold: {ratio:.2f}x",
    ]
    publish("service_micro", "\n".join(rows))
    assert ratio >= RATIO_BAR, (t_cold, t_warm, ratio)

    # Representative single point for pytest-benchmark: a cold largest
    # cell (what one sweep point costs without any service help).
    largest = points[-1]
    _go_cold()
    benchmark.pedantic(
        lambda: simulate_bcast(
            spec,
            nranks=largest.nranks,
            nbytes=largest.nbytes,
            algorithm=largest.algorithm,
        ),
        rounds=1,
        iterations=1,
    )
