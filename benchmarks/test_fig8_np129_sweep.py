"""Figure 8 reproduction: bandwidth for medium and long messages at a
fixed non-power-of-two process count of 129, sizes 12288..2560000 bytes.

Shape claims: bandwidth grows steadily with message size (no protocol
knees inside this range), and MPI_Bcast_opt tracks above
MPI_Bcast_native throughout (paper: up to ~30% better).
"""

import pytest

from repro.bench import NATIVE, OPT, fig8, get_experiment, render_bandwidth_table, render_plot
from repro.core import simulate_bcast

from conftest import assert_opt_wins, publish


def _exp():
    return get_experiment("fig8", fig8)


def test_fig8_bandwidth_sweep(benchmark):
    exp = _exp()
    nranks = exp.ranks_axis[0]
    publish(
        "fig8",
        render_bandwidth_table(exp, nranks) + "\n\n" + render_plot(exp, nranks),
    )
    assert_opt_wins(exp)

    # Steady growth: bandwidth at the top of the range clearly exceeds
    # the bottom for both designs (the paper's "increases steadily").
    for algo in (NATIVE, OPT):
        xs, ys = exp.sweep.series(algo, nranks)
        assert ys[-1] > ys[0]

    size = exp.sizes_axis[0]
    benchmark.pedantic(
        lambda: simulate_bcast(exp.spec, nranks, size, algorithm=OPT).time,
        rounds=1,
        iterations=1,
    )


def test_fig8_no_rendezvous_knee_between_neighbours():
    """No sudden drops: each step along the size axis changes bandwidth
    smoothly (the paper attributes this to Cray MPI keeping one protocol
    across the range; our spec keeps one protocol past the eager bound)."""
    exp = _exp()
    nranks = exp.ranks_axis[0]
    for algo in (NATIVE, OPT):
        _, ys = exp.sweep.series(algo, nranks)
        for a, b in zip(ys, ys[1:]):
            assert b > 0.5 * a  # never halves from one point to the next
