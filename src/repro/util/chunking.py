"""MPICH-compatible buffer chunking math for scatter-allgather broadcasts.

MPICH's ``MPIR_Bcast_scatter_ring_allgather`` divides the ``nbytes``-byte
source buffer into ``P`` chunks of ``scatter_size = ceil(nbytes / P)``
bytes each; trailing chunks may be short or empty. The paper's pseudo-code
(Listing 1) uses exactly this scheme:

    scatter_size = (nbytes + comm_size - 1) / comm_size
    count_i      = clamp(min(scatter_size, nbytes - i * scatter_size), >= 0)
    disp_i       = i * scatter_size

All chunk indices used here are *relative* chunk numbers, i.e. chunk ``i``
is the block destined for the rank whose relative rank (w.r.t. the root)
is ``i``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CollectiveError

__all__ = [
    "Chunk",
    "scatter_size",
    "chunk_count",
    "chunk_disp",
    "chunk",
    "chunks",
    "nonempty_chunks",
    "total_bytes",
]


@dataclass(frozen=True)
class Chunk:
    """One scatter chunk: relative index, byte displacement and byte count."""

    index: int
    disp: int
    count: int

    @property
    def end(self) -> int:
        """One past the last byte of the chunk inside the source buffer."""
        return self.disp + self.count

    @property
    def empty(self) -> bool:
        return self.count == 0


def _check(nbytes: int, nprocs: int) -> None:
    if nprocs < 1:
        raise CollectiveError(f"chunking needs nprocs >= 1, got {nprocs}")
    if nbytes < 0:
        raise CollectiveError(f"chunking needs nbytes >= 0, got {nbytes}")


def scatter_size(nbytes: int, nprocs: int) -> int:
    """ceil(nbytes / nprocs), the nominal per-chunk byte count."""
    _check(nbytes, nprocs)
    return (nbytes + nprocs - 1) // nprocs


def chunk_disp(nbytes: int, nprocs: int, index: int) -> int:
    """Byte displacement of chunk *index* (clamped to the buffer end)."""
    _check(nbytes, nprocs)
    if not 0 <= index < nprocs:
        raise CollectiveError(f"chunk index {index} out of range for P={nprocs}")
    return min(index * scatter_size(nbytes, nprocs), nbytes)


def chunk_count(nbytes: int, nprocs: int, index: int) -> int:
    """Byte count of chunk *index*; zero for chunks past the buffer end."""
    _check(nbytes, nprocs)
    if not 0 <= index < nprocs:
        raise CollectiveError(f"chunk index {index} out of range for P={nprocs}")
    ssize = scatter_size(nbytes, nprocs)
    count = min(ssize, nbytes - index * ssize)
    return max(count, 0)


def chunk(nbytes: int, nprocs: int, index: int) -> Chunk:
    """The :class:`Chunk` record for chunk *index*."""
    return Chunk(index, chunk_disp(nbytes, nprocs, index), chunk_count(nbytes, nprocs, index))


def chunks(nbytes: int, nprocs: int) -> list:
    """All ``nprocs`` chunks, in relative-index order."""
    return [chunk(nbytes, nprocs, i) for i in range(nprocs)]


def nonempty_chunks(nbytes: int, nprocs: int) -> list:
    """Chunks that carry at least one byte."""
    return [c for c in chunks(nbytes, nprocs) if not c.empty]


def total_bytes(nbytes: int, nprocs: int) -> int:
    """Sum of all chunk counts — always exactly *nbytes* (tested invariant)."""
    return sum(c.count for c in chunks(nbytes, nprocs))
