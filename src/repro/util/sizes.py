"""Byte-size parsing, formatting and power-of-two helpers.

The paper uses base-2 units throughout ("we use megabytes (MB) and
kilobytes (KB) in the base-2 sense, i.e. 2**20 and 2**10"); this module
follows the same convention: ``KB``/``KiB`` = 1024 bytes, ``MB``/``MiB`` =
1024**2 bytes.
"""

from __future__ import annotations

import math
import re

from ..errors import ConfigurationError

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "parse_size",
    "format_size",
    "is_power_of_two",
    "next_power_of_two",
    "prev_power_of_two",
    "ceil_log2",
    "floor_log2",
    "pow2_range",
]

KIB = 1024
MIB = 1024**2
GIB = 1024**3

_UNITS = {
    "": 1,
    "b": 1,
    "k": KIB,
    "kb": KIB,
    "kib": KIB,
    "m": MIB,
    "mb": MIB,
    "mib": MIB,
    "g": GIB,
    "gb": GIB,
    "gib": GIB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_size(text: "str | int | float") -> int:
    """Parse a human byte size (``"512KB"``, ``"1.5MiB"``, ``4096``) to bytes.

    Units are base-2 as in the paper. Raises :class:`ConfigurationError`
    for unknown units or negative values.
    """
    if isinstance(text, bool):
        raise ConfigurationError(f"not a byte size: {text!r}")
    if isinstance(text, (int, float)):
        if text < 0:
            raise ConfigurationError(f"negative byte size: {text!r}")
        return int(text)
    m = _SIZE_RE.match(text)
    if not m:
        raise ConfigurationError(f"cannot parse byte size: {text!r}")
    value, unit = m.groups()
    factor = _UNITS.get(unit.lower())
    if factor is None:
        raise ConfigurationError(f"unknown byte-size unit {unit!r} in {text!r}")
    return int(float(value) * factor)


def format_size(nbytes: float, precision: int = 1) -> str:
    """Render *nbytes* with the largest fitting base-2 unit (``"2.0MiB"``)."""
    if nbytes < 0:
        return "-" + format_size(-nbytes, precision)
    for limit, suffix in ((GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if nbytes >= limit:
            scaled = nbytes / limit
            if scaled == int(scaled):
                return f"{int(scaled)}{suffix}"
            return f"{scaled:.{precision}f}{suffix}"
    if nbytes == int(nbytes):
        return f"{int(nbytes)}B"
    return f"{nbytes:.{precision}f}B"


def is_power_of_two(n: int) -> bool:
    """True iff *n* is a positive integral power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= *n* (n >= 1)."""
    if n < 1:
        raise ConfigurationError(f"next_power_of_two needs n >= 1, got {n}")
    return 1 << (n - 1).bit_length()


def prev_power_of_two(n: int) -> int:
    """Largest power of two <= *n* (n >= 1)."""
    if n < 1:
        raise ConfigurationError(f"prev_power_of_two needs n >= 1, got {n}")
    return 1 << (n.bit_length() - 1)


def ceil_log2(n: int) -> int:
    """ceil(log2(n)) for n >= 1; this is the binomial-tree depth for n ranks."""
    if n < 1:
        raise ConfigurationError(f"ceil_log2 needs n >= 1, got {n}")
    return (n - 1).bit_length()


def floor_log2(n: int) -> int:
    """floor(log2(n)) for n >= 1."""
    if n < 1:
        raise ConfigurationError(f"floor_log2 needs n >= 1, got {n}")
    return n.bit_length() - 1


def pow2_range(start: int, stop: int) -> list:
    """Powers of two from *start* to *stop* inclusive (both clamped to powers).

    Mirrors the paper's message-size axes (2**19 ... 2**25).
    """
    if start < 1 or stop < start:
        raise ConfigurationError(f"bad pow2_range({start}, {stop})")
    out = []
    v = next_power_of_two(start)
    while v <= stop:
        out.append(v)
        v *= 2
    return out


def _selftest() -> None:  # pragma: no cover - debugging helper
    assert parse_size("512KB") == 512 * KIB
    assert format_size(2 * MIB) == "2MiB"
    assert math.isclose(parse_size("1.5MiB"), 1.5 * MIB)


__doctest_skip__ = ["*"]
