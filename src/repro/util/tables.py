"""Plain-text table rendering for the benchmark harness.

The benchmark targets print the same rows the paper's figures plot; this
module renders them as aligned ASCII tables so ``pytest benchmarks/ -s``
output is directly comparable with the paper.
"""

from __future__ import annotations

from ..errors import ConfigurationError

__all__ = ["Table", "render_kv"]


class Table:
    """Column-aligned ASCII table with optional per-column formatting."""

    def __init__(self, columns, formats=None, title: str = ""):
        if not columns:
            raise ConfigurationError("Table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.formats = list(formats) if formats else [None] * len(self.columns)
        if len(self.formats) != len(self.columns):
            raise ConfigurationError("formats length must match columns length")
        self.title = title
        self.rows: list = []

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def _cell(self, value, fmt) -> str:
        if value is None:
            return "-"
        if fmt is None:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)
        if callable(fmt):
            return str(fmt(value))
        return format(value, fmt)

    def render(self) -> str:
        body = [
            [self._cell(v, f) for v, f in zip(row, self.formats)] for row in self.rows
        ]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in body)) if body else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * max(len(self.title), len(header)))
        lines.append(header)
        lines.append(sep)
        for r in body:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(r, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def render_kv(pairs, title: str = "") -> str:
    """Render ``(key, value)`` pairs as an aligned two-column block."""
    pairs = [(str(k), str(v)) for k, v in pairs]
    if not pairs:
        return title
    kw = max(len(k) for k, _ in pairs)
    lines = [title] if title else []
    lines.extend(f"{k.ljust(kw)} : {v}" for k, v in pairs)
    return "\n".join(lines)
