"""Chunk-ownership tracking for scatter/allgather schedules.

A :class:`ChunkSet` records which of the ``P`` scatter chunks a rank
currently owns. It is the data structure behind the library's central
correctness invariants:

* after the binomial scatter, relative rank ``r`` owns exactly the
  contiguous-modulo-P interval ``[r, r + subtree(r))``;
* the tuned ring allgather never delivers a chunk the receiver already
  owns;
* at the end of any broadcast, every rank's set is full.

The implementation keeps a plain frozen bitmask (Python int) which is
compact and fast for the process counts the paper studies (P <= 1024).
"""

from __future__ import annotations

from ..errors import CollectiveError

__all__ = ["ChunkSet"]


class ChunkSet:
    """A mutable subset of ``{0, .., universe-1}`` chunk indices."""

    __slots__ = ("_universe", "_bits")

    def __init__(self, universe: int, initial=()):
        if universe < 1:
            raise CollectiveError(f"ChunkSet universe must be >= 1, got {universe}")
        self._universe = universe
        self._bits = 0
        for idx in initial:
            self.add(idx)

    # -- constructors -------------------------------------------------
    @classmethod
    def full(cls, universe: int) -> "ChunkSet":
        """The set owning every chunk (the root's state)."""
        cs = cls(universe)
        cs._bits = (1 << universe) - 1
        return cs

    @classmethod
    def interval(cls, universe: int, start: int, length: int) -> "ChunkSet":
        """Contiguous-modulo-universe interval ``[start, start+length)``."""
        if not 0 <= length <= universe:
            raise CollectiveError(f"interval length {length} outside [0, {universe}]")
        cs = cls(universe)
        for k in range(length):
            cs.add((start + k) % universe)
        return cs

    # -- accessors ----------------------------------------------------
    @property
    def universe(self) -> int:
        return self._universe

    def __len__(self) -> int:
        return bin(self._bits).count("1")

    def __contains__(self, idx: int) -> bool:
        self._check(idx)
        return bool(self._bits >> idx & 1)

    def __iter__(self):
        bits, idx = self._bits, 0
        while bits:
            if bits & 1:
                yield idx
            bits >>= 1
            idx += 1

    def __eq__(self, other) -> bool:
        if not isinstance(other, ChunkSet):
            return NotImplemented
        return self._universe == other._universe and self._bits == other._bits

    def __hash__(self):
        return hash((self._universe, self._bits))

    def __repr__(self) -> str:
        return f"ChunkSet({self._universe}, {sorted(self)})"

    @property
    def is_full(self) -> bool:
        """True when every chunk in the universe is owned."""
        return self._bits == (1 << self._universe) - 1

    def missing(self) -> list:
        """Sorted list of chunk indices not yet owned."""
        return [i for i in range(self._universe) if not self._bits >> i & 1]

    # -- mutation -----------------------------------------------------
    def add(self, idx: int) -> bool:
        """Add chunk *idx*; returns True when it was newly added."""
        self._check(idx)
        before = self._bits
        self._bits |= 1 << idx
        return self._bits != before

    def add_strict(self, idx: int) -> None:
        """Add chunk *idx*, raising if it is already owned.

        Used by the tuned-ring invariant check: in ``MPI_Bcast_opt`` a
        rank must never be sent a chunk it already holds.
        """
        if not self.add(idx):
            raise CollectiveError(
                f"chunk {idx} delivered twice (already owned: {sorted(self)})"
            )

    def union_update(self, other: "ChunkSet") -> None:
        if other._universe != self._universe:
            raise CollectiveError("ChunkSet universes differ")
        self._bits |= other._bits

    def copy(self) -> "ChunkSet":
        cs = ChunkSet(self._universe)
        cs._bits = self._bits
        return cs

    # -- helpers ------------------------------------------------------
    def _check(self, idx: int) -> None:
        if not 0 <= idx < self._universe:
            raise CollectiveError(
                f"chunk index {idx} outside universe [0, {self._universe})"
            )

    def is_modular_interval(self) -> bool:
        """True when the owned chunks form one contiguous mod-universe run.

        The binomial scatter always leaves each rank with such a run; the
        ring allgather preserves the property step by step (each rank
        extends its run leftwards). An empty set counts as an interval.
        """
        n = self._universe
        if self._bits == 0 or self.is_full:
            return True
        # Count 0->1 transitions around the ring; an interval has exactly one.
        transitions = 0
        prev = bool(self._bits >> (n - 1) & 1)
        for i in range(n):
            cur = bool(self._bits >> i & 1)
            if cur and not prev:
                transitions += 1
            prev = cur
        return transitions == 1
