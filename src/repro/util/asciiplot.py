"""Terminal line plots for benchmark output.

Renders one or more ``(x, y)`` series on a character grid with optional
log-scaled axes — enough to eyeball the same curve shapes as the paper's
gnuplot figures straight from ``pytest benchmarks/ -s`` output.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

__all__ = ["line_plot"]

_MARKERS = "ox+*#@%&"


def _transform(values, log: bool):
    if not log:
        return [float(v) for v in values]
    out = []
    for v in values:
        if v <= 0:
            raise ConfigurationError(f"log-scale axis cannot show value {v!r}")
        out.append(math.log2(v))
    return out


def line_plot(
    series,
    width: int = 72,
    height: int = 18,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render ``{label: (xs, ys)}`` series as an ASCII chart string."""
    if not series:
        raise ConfigurationError("line_plot needs at least one series")
    if width < 16 or height < 4:
        raise ConfigurationError("plot area too small")

    pts = {}
    for label, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ConfigurationError(f"series {label!r} has mismatched x/y lengths")
        if not xs:
            continue
        pts[label] = (_transform(xs, logx), _transform(ys, logy))
    if not pts:
        raise ConfigurationError("all series empty")

    all_x = [x for xs, _ in pts.values() for x in xs]
    all_y = [y for _, ys in pts.values() for y in ys]
    xmin, xmax = min(all_x), max(all_x)
    ymin, ymax = min(all_y), max(all_y)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (label, (xs, ys)) in enumerate(pts.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        for x, y in zip(xs, ys):
            col = int(round((x - xmin) / xspan * (width - 1)))
            row = height - 1 - int(round((y - ymin) / yspan * (height - 1)))
            grid[row][col] = marker

    def _fmt_axis(v: float, log: bool) -> str:
        raw = 2.0**v if log else v
        if raw >= 1e6 or (0 < abs(raw) < 1e-2):
            return f"{raw:.2e}"
        return f"{raw:.6g}"

    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={label}" for i, label in enumerate(pts)
    )
    lines.append(legend)
    ytop = _fmt_axis(ymax, logy)
    ybot = _fmt_axis(ymin, logy)
    pad = max(len(ytop), len(ybot), len(ylabel))
    for r, row in enumerate(grid):
        if r == 0:
            prefix = ytop.rjust(pad)
        elif r == height - 1:
            prefix = ybot.rjust(pad)
        elif r == height // 2 and ylabel:
            prefix = ylabel.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    xleft = _fmt_axis(xmin, logx)
    xright = _fmt_axis(xmax, logx)
    gap = width - len(xleft) - len(xright)
    footer = " " * (pad + 2) + xleft + " " * max(gap, 1) + xright
    lines.append(footer)
    if xlabel:
        lines.append(" " * (pad + 2) + xlabel.center(width))
    return "\n".join(lines)
