"""Small summary-statistics helpers used by the sweep driver and benches.

Kept dependency-light (pure Python) because they run inside benchmark
loops; numpy arrays are accepted anywhere a sequence is.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

__all__ = [
    "mean",
    "geomean",
    "median",
    "stdev",
    "percent_change",
    "speedup",
    "summarize",
]


def _as_list(values) -> list:
    vals = [float(v) for v in values]
    if not vals:
        raise ConfigurationError("statistic of empty sequence")
    return vals


def mean(values) -> float:
    vals = _as_list(values)
    return sum(vals) / len(vals)


def geomean(values) -> float:
    """Geometric mean; the right average for speedup ratios."""
    vals = _as_list(values)
    if any(v <= 0 for v in vals):
        raise ConfigurationError("geomean needs strictly positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def median(values) -> float:
    vals = sorted(_as_list(values))
    n = len(vals)
    mid = n // 2
    if n % 2:
        return vals[mid]
    return 0.5 * (vals[mid - 1] + vals[mid])


def stdev(values) -> float:
    """Sample standard deviation (0 for a single observation)."""
    vals = _as_list(values)
    if len(vals) == 1:
        return 0.0
    mu = mean(vals)
    return math.sqrt(sum((v - mu) ** 2 for v in vals) / (len(vals) - 1))


def percent_change(baseline: float, new: float) -> float:
    """Signed percentage improvement of *new* over *baseline*.

    Matches the paper's reporting: +12 means "12 % higher than native".
    """
    if baseline == 0:
        raise ConfigurationError("percent_change with zero baseline")
    return (new - baseline) / baseline * 100.0


def speedup(baseline_time: float, new_time: float) -> float:
    """Classic time ratio: > 1 means *new* is faster."""
    if new_time <= 0:
        raise ConfigurationError("speedup with non-positive new_time")
    return baseline_time / new_time


def summarize(values) -> dict:
    """Dict of the standard summary statistics for a sample."""
    vals = _as_list(values)
    return {
        "n": len(vals),
        "mean": mean(vals),
        "median": median(vals),
        "min": min(vals),
        "max": max(vals),
        "stdev": stdev(vals),
    }
