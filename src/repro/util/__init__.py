"""Shared utilities: size math, chunking, ownership sets, tables, stats."""

from .sizes import (
    KIB,
    MIB,
    GIB,
    parse_size,
    format_size,
    is_power_of_two,
    next_power_of_two,
    prev_power_of_two,
    ceil_log2,
    floor_log2,
    pow2_range,
)
from .chunking import (
    Chunk,
    scatter_size,
    chunk,
    chunks,
    chunk_count,
    chunk_disp,
    nonempty_chunks,
    total_bytes,
)
from .intervals import ChunkSet
from .tables import Table, render_kv
from .asciiplot import line_plot
from .stats import (
    mean,
    geomean,
    median,
    stdev,
    percent_change,
    speedup,
    summarize,
)

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "parse_size",
    "format_size",
    "is_power_of_two",
    "next_power_of_two",
    "prev_power_of_two",
    "ceil_log2",
    "floor_log2",
    "pow2_range",
    "Chunk",
    "scatter_size",
    "chunk",
    "chunks",
    "chunk_count",
    "chunk_disp",
    "nonempty_chunks",
    "total_bytes",
    "ChunkSet",
    "Table",
    "render_kv",
    "line_plot",
    "mean",
    "geomean",
    "median",
    "stdev",
    "percent_change",
    "speedup",
    "summarize",
]
