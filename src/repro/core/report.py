"""Result records produced by the high-level API and the sweep driver."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..util import format_size, percent_change, speedup

__all__ = ["RunRecord", "ComparisonRecord", "MIB_S"]

# The paper reports bandwidth in base-2 megabytes per second.
MIB_S = 1024.0**2


@dataclass(frozen=True)
class RunRecord:
    """One (algorithm, nranks, nbytes) simulated broadcast."""

    algorithm: str
    nranks: int
    nbytes: int
    root: int
    time: float  # simulated seconds per broadcast
    messages: int
    bytes_on_wire: int
    intra_messages: int
    inter_messages: int
    machine: str = "unknown"
    # Which execution engine produced the record: "des" (coroutine
    # discrete-event runtime) or "replay" (vectorized schedule replay,
    # docs/performance.md). Both are bitwise-equivalent on static runs.
    engine: str = "des"
    # Fluid-solver telemetry (see docs/performance.md). Totals over the
    # run's iterations; all deterministic except solver_time_s, which is
    # host wall time and therefore excluded from record equality.
    solver_mode: str = ""
    solver_solves: int = 0
    solver_rounds: int = 0
    solver_components: int = 0
    solver_max_component: int = 0
    solver_flows_advanced: int = 0
    solver_time_s: float = field(default=0.0, compare=False)
    # Chaos / reliability telemetry (docs/robustness.md): whole-run
    # totals, all zero for fault-free runs on the plain transport.
    drops_injected: int = 0
    retrans_messages: int = 0
    retrans_bytes: int = 0
    ack_messages: int = 0
    ack_bytes: int = 0
    timeouts: int = 0

    @property
    def has_chaos(self) -> bool:
        """True when faults were injected or recovery traffic flowed."""
        return bool(
            self.drops_injected
            or self.retrans_messages
            or self.ack_messages
            or self.timeouts
        )

    @property
    def bandwidth(self) -> float:
        """Broadcast processing rate in bytes/s (the paper's metric)."""
        return self.nbytes / self.time if self.time > 0 else float("inf")

    @property
    def bandwidth_mib(self) -> float:
        """Bandwidth in MB/s, base-2, as plotted in Figures 6 and 8."""
        return self.bandwidth / MIB_S

    @property
    def throughput(self) -> float:
        """Broadcasts per second (the metric behind Figure 7)."""
        return 1.0 / self.time if self.time > 0 else float("inf")

    def describe(self) -> str:
        return (
            f"{self.algorithm}: P={self.nranks} size={format_size(self.nbytes)} "
            f"t={self.time * 1e6:.1f}us bw={self.bandwidth_mib:.1f}MB/s "
            f"msgs={self.messages}"
        )


@dataclass(frozen=True)
class ComparisonRecord:
    """Native vs tuned at one experiment point."""

    nranks: int
    nbytes: int
    native: RunRecord
    opt: RunRecord

    @property
    def speedup(self) -> float:
        """Throughput ratio opt/native (> 1 means the tuned design wins)."""
        return speedup(self.native.time, self.opt.time)

    @property
    def bandwidth_improvement_pct(self) -> float:
        """Percent bandwidth improvement, the paper's headline number."""
        return percent_change(self.native.bandwidth, self.opt.bandwidth)

    @property
    def transfers_saved(self) -> int:
        return self.native.messages - self.opt.messages

    @property
    def bytes_saved(self) -> int:
        return self.native.bytes_on_wire - self.opt.bytes_on_wire

    def describe(self) -> str:
        return (
            f"P={self.nranks} size={format_size(self.nbytes)}: "
            f"native {self.native.bandwidth_mib:.1f}MB/s -> "
            f"opt {self.opt.bandwidth_mib:.1f}MB/s "
            f"(+{self.bandwidth_improvement_pct:.1f}%, "
            f"{self.transfers_saved} transfers saved)"
        )
