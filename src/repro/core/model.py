"""Analytic alpha-beta cost model for the contention-free reference machine.

On the :func:`~repro.machine.presets.ideal` preset (full-bisection
crossbar, zero overheads, zero rendezvous handshake), the fluid model
degenerates to classic LogP-style arithmetic, which this module writes
down in closed form. Tests assert the DES matches these predictions —
the strongest cross-validation the simulator gets.

With ``alpha`` the per-message latency and ``beta = 1 / cpu_copy_bw`` the
per-byte time of a rank's copy engine:

* binomial bcast:   ``ceil(log2 P) * (alpha + n*beta)``
* binomial scatter: ``ceil(log2 P) * alpha + (P-1)/P * n * beta``
* enclosed ring:    ``(P-1) * (alpha + 2*ceil(n/P)*beta)`` — the factor 2
  is each rank's copy engine split between its concurrent send and
  receive (``MPI_Sendrecv``)
* scatter-ring bcast: scatter + ring.

A key structural fact the model makes explicit: the tuned ring does not
shorten the ring — interior ranks still run P-1 full-duplex steps, so
the formulas above are *exact* for the native ring and an *upper bound*
for the tuned one. The tuned ring's gain comes only from the capacity
its removed transfers release on shared resources: each rank's own copy
engine (send and receive compete even on the ideal machine), and — much
more strongly on realistic machines — node memory engines, NICs and
tapered fabric links shared by many ranks.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..machine import MachineSpec
from ..util import ceil_log2, scatter_size

__all__ = [
    "t_binomial_bcast",
    "t_binomial_scatter",
    "t_ring_allgather",
    "t_scatter_ring_bcast",
    "predict",
]


def _params(spec: MachineSpec):
    if spec.send_overhead or spec.recv_overhead or spec.rendezvous_rtt:
        raise ConfigurationError(
            "the analytic model covers only overhead-free, handshake-free "
            "specs (use machine.ideal())"
        )
    alpha = spec.alpha_intra
    if spec.alpha_inter != alpha:
        raise ConfigurationError(
            "the analytic model assumes uniform alpha (ideal preset)"
        )
    beta = 1.0 / spec.cpu_copy_bw
    return alpha, beta


def t_binomial_bcast(spec: MachineSpec, nprocs: int, nbytes: int) -> float:
    """Makespan of the binomial broadcast."""
    if nprocs < 1:
        raise ConfigurationError(f"nprocs must be >= 1, got {nprocs}")
    alpha, beta = _params(spec)
    if nprocs == 1:
        return 0.0
    return ceil_log2(nprocs) * (alpha + nbytes * beta)


def t_binomial_scatter(spec: MachineSpec, nprocs: int, nbytes: int) -> float:
    """Makespan of the binomial scatter phase."""
    if nprocs < 1:
        raise ConfigurationError(f"nprocs must be >= 1, got {nprocs}")
    alpha, beta = _params(spec)
    if nprocs == 1:
        return 0.0
    payload = nbytes - scatter_size(nbytes, nprocs)  # root keeps one chunk
    return ceil_log2(nprocs) * alpha + payload * beta


def t_ring_allgather(spec: MachineSpec, nprocs: int, nbytes: int) -> float:
    """Makespan of the (P-1)-step ring, native or tuned.

    Interior ranks sendrecv at every step, so each step moves one chunk
    at half the copy-engine rate; the critical path is identical for the
    enclosed and non-enclosed variants on a contention-free machine.
    """
    if nprocs < 1:
        raise ConfigurationError(f"nprocs must be >= 1, got {nprocs}")
    alpha, beta = _params(spec)
    if nprocs == 1:
        return 0.0
    chunk = scatter_size(nbytes, nprocs)
    return (nprocs - 1) * (alpha + 2.0 * chunk * beta)


def t_scatter_ring_bcast(spec: MachineSpec, nprocs: int, nbytes: int) -> float:
    """Makespan of the full scatter-ring broadcast (either ring variant)."""
    return t_binomial_scatter(spec, nprocs, nbytes) + t_ring_allgather(
        spec, nprocs, nbytes
    )


def predict(spec: MachineSpec, algorithm: str, nprocs: int, nbytes: int) -> float:
    """Dispatch on registry name."""
    if algorithm == "binomial":
        return t_binomial_bcast(spec, nprocs, nbytes)
    if algorithm in ("scatter_ring_native", "scatter_ring_opt"):
        return t_scatter_ring_bcast(spec, nprocs, nbytes)
    raise ConfigurationError(
        f"no analytic model for algorithm {algorithm!r}"
    )
