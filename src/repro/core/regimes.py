"""Algorithm regime maps: re-deriving MPICH's selection thresholds.

MPICH3's broadcast selector (12288 / 524288 bytes, pof2 tests) encodes
empirical measurements of real machines. With a simulator we can ask the
question directly: *which algorithm actually wins at each (P, size)
point of this machine model*, and how often does the static selector
agree? The bench ``benchmarks/test_regime_map.py`` prints the map; this
module computes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..collectives import choose_bcast_name
from ..errors import ConfigurationError
from ..machine import MachineSpec
from ..util import parse_size
from .api import simulate_bcast

__all__ = ["RegimeCell", "regime_map", "selector_agreement"]

DEFAULT_CANDIDATES = (
    "binomial",
    "scatter_rdbl",
    "scatter_ring_native",
    "scatter_ring_opt",
)


@dataclass(frozen=True)
class RegimeCell:
    """One grid point of the regime map."""

    nranks: int
    nbytes: int
    winner: str
    winner_time: float
    times: Dict[str, float]
    mpich_choice: str  # what the (tuned) selector would pick

    @property
    def selector_agrees(self) -> bool:
        """Agreement modulo the native/opt distinction (the selector's
        job is picking the *shape*, tuned-ness is a separate switch)."""
        base = self.mpich_choice.replace("_opt", "").replace("_native", "")
        win = self.winner.replace("_opt", "").replace("_native", "")
        return base == win


def regime_map(
    spec: MachineSpec,
    ranks: Sequence[int],
    sizes: Sequence,
    candidates: Sequence[str] = DEFAULT_CANDIDATES,
    placement="blocked",
) -> List[RegimeCell]:
    """Simulate every candidate at every grid point; report the winners."""
    if not ranks or not sizes:
        raise ConfigurationError("regime_map needs ranks and sizes")
    cells = []
    for nranks in ranks:
        for raw in sizes:
            nbytes = parse_size(raw)
            times = {}
            for name in candidates:
                if name == "scatter_rdbl" and nranks & (nranks - 1):
                    continue  # requires power-of-two
                rec = simulate_bcast(
                    spec, nranks, nbytes, algorithm=name, placement=placement
                )
                times[name] = rec.time
            winner = min(times, key=times.get)
            cells.append(
                RegimeCell(
                    nranks=nranks,
                    nbytes=nbytes,
                    winner=winner,
                    winner_time=times[winner],
                    times=times,
                    mpich_choice=choose_bcast_name(nbytes, nranks, tuned=True),
                )
            )
    return cells


def selector_agreement(cells: Sequence[RegimeCell]) -> float:
    """Fraction of grid points where MPICH's static choice is the
    simulated winner's family."""
    if not cells:
        raise ConfigurationError("selector_agreement needs at least one cell")
    return sum(1 for c in cells if c.selector_agrees) / len(cells)
