"""Persistent on-disk result cache for sweep points.

Every simulated point is a pure function of (machine spec, point, root,
placement) plus the simulator's code version, so its
:class:`~repro.core.report.RunRecord` can be persisted and reused across
processes: re-running a figure bench after the first pass skips every
already-simulated point.

Storage is a single JSON-lines file (one ``{"key": ..., "record": ...}``
object per line) under the cache directory — append-only writes, no
index file, human-greppable. The directory defaults to
``~/.cache/repro`` (respecting ``XDG_CACHE_HOME``) and can be overridden
with the ``REPRO_CACHE_DIR`` environment variable or the ``path=``
argument.

Keys are SHA-256 hashes over the canonical JSON of every input that can
change a result, salted with :data:`CACHE_VERSION`. Bump that constant
whenever the simulation semantics change — old entries then simply stop
matching (they are invalidated by construction, not migrated).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from ..machine import MachineSpec
from ..sim import solver_mode
from ..sim.replay import engine_mode
from .report import RunRecord

__all__ = ["DiskCache", "CacheStats", "cache_key", "default_cache_dir", "CACHE_VERSION"]

# Code-version salt folded into every key. Bump on any change that
# alters simulated results (engine semantics, fluid model, algorithms).
CACHE_VERSION = "2026.08.08.1"

_CACHE_FILENAME = "sweep-records.jsonl"


def default_cache_dir() -> Path:
    """Resolve the cache directory (without creating it).

    Precedence: ``REPRO_CACHE_DIR`` > ``$XDG_CACHE_HOME/repro`` >
    ``~/.cache/repro``.
    """
    override = os.environ.get("REPRO_CACHE_DIR", "")
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME", "")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def cache_key(
    spec: MachineSpec,
    point,
    root: int = 0,
    placement="blocked",
    salt: str = CACHE_VERSION,
    faults=None,
    reliable=None,
) -> str:
    """Content hash identifying one simulated point.

    ``point`` is anything with ``algorithm``/``nranks``/``nbytes``
    attributes (a :class:`~repro.core.sweep.SweepPoint`). Placement
    policies are keyed by ``str()`` so explicit rank lists and named
    policies both participate. ``faults`` (a
    :class:`~repro.sim.faults.FaultPlan`) enters via its content digest
    and ``reliable`` via its repr, so chaos records never collide with
    clean-run entries for the same point.
    """
    payload = {
        "spec": dataclasses.asdict(spec),
        "point": (point.algorithm, point.nranks, point.nbytes),
        "root": root,
        "placement": str(placement),
        # Both solvers produce bitwise-identical times, but the cached
        # record carries mode-specific telemetry, so key on the mode.
        # The execution engine (REPRO_ENGINE) is keyed for the same
        # reason: DES and replay agree bitwise on times and counters,
        # but the record's engine/solver telemetry differs.
        "solver": solver_mode(),
        "engine": engine_mode(),
        "faults": faults.digest() if faults is not None else "",
        "reliable": repr(reliable) if reliable else "",
        "salt": salt,
    }
    blob = json.dumps(payload, sort_keys=True, default=str, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting for one :class:`DiskCache` instance."""

    hits: int
    misses: int
    stores: int
    entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return (
            f"cache: {self.entries} entries, {self.hits} hits / "
            f"{self.misses} misses ({self.hit_rate:.0%}), {self.stores} stores"
        )


class DiskCache:
    """JSON-lines backed RunRecord store keyed by content hash."""

    def __init__(self, path: Union[str, Path, None] = None):
        self.dir = Path(path).expanduser() if path is not None else default_cache_dir()
        self.file = self.dir / _CACHE_FILENAME
        self._entries: Optional[Dict[str, RunRecord]] = None  # lazy-loaded
        self._hits = 0
        self._misses = 0
        self._stores = 0

    # -- persistence --------------------------------------------------
    def _load(self) -> Dict[str, RunRecord]:
        if self._entries is not None:
            return self._entries
        entries: Dict[str, RunRecord] = {}
        if self.file.exists():
            with open(self.file, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        obj = json.loads(line)
                        entries[obj["key"]] = RunRecord(**obj["record"])
                    except (ValueError, KeyError, TypeError):
                        continue  # torn/stale line: ignore, do not crash
        self._entries = entries
        return entries

    def _append(self, key: str, rec: RunRecord) -> None:
        self.dir.mkdir(parents=True, exist_ok=True)
        line = json.dumps(
            {"key": key, "record": dataclasses.asdict(rec)}, sort_keys=True
        )
        with open(self.file, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")

    # -- mapping ------------------------------------------------------
    def get(self, key: str) -> Optional[RunRecord]:
        """Cached record for *key*, counting a hit or a miss."""
        rec = self._load().get(key)
        if rec is None:
            self._misses += 1
        else:
            self._hits += 1
        return rec

    def put(self, key: str, rec: RunRecord) -> None:
        """Persist *rec* under *key* (no-op if the key is already stored)."""
        entries = self._load()
        if key in entries:
            return
        entries[key] = rec
        self._append(key, rec)
        self._stores += 1

    def __len__(self) -> int:
        return len(self._load())

    def __contains__(self, key: str) -> bool:
        return key in self._load()

    # -- maintenance --------------------------------------------------
    def invalidate(self) -> int:
        """Drop every stored record; returns how many were removed."""
        removed = len(self._load())
        self._entries = {}
        if self.file.exists():
            self.file.unlink()
        return removed

    clear = invalidate

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            stores=self._stores,
            entries=len(self._load()),
        )

    def __repr__(self) -> str:
        return f"<DiskCache {self.file} {self.stats().describe()}>"
