"""Persistent on-disk result cache for sweep points.

Every simulated point is a pure function of (machine spec, point, root,
placement) plus the simulator's code version, so its
:class:`~repro.core.report.RunRecord` can be persisted and reused across
processes: re-running a figure bench after the first pass skips every
already-simulated point.

Storage is *sharded* JSON-lines: records live under ``shards/<xx>.jsonl``
where ``xx`` is the first two hex digits of the key, one
``{"key": ..., "record": ...}`` object per line — append-only writes, no
index file, human-greppable. Sharding keeps two properties the
single-file layout could not offer at service scale:

* **lazy loading** — a lookup parses only the one shard its key hashes
  to (1/256th of the store), instead of the whole cache on first use;
* **concurrent safety** — appends take an exclusive ``flock`` on the
  shard file and writers touching different shards never contend at
  all. Readers that miss re-scan just the bytes appended since their
  last load, so many clients of one long-running simulation service can
  share a warm cache directory without lost or torn records.

Every line written carries a content checksum (``"sum"``: a SHA-256
prefix over the canonical ``{"key", "record"}`` JSON), so a torn append,
a truncated shard, or bit-rot is *detected*, not silently parsed into a
wrong record: readers skip lines whose checksum does not match, and
:meth:`DiskCache.fsck` (``repro cache --fsck``) reports every corrupt or
checksum-less line and can atomically rewrite the damaged shards keeping
only verified records. Lines from older cache versions (no ``"sum"``)
remain readable; ``fsck(repair=True)`` upgrades them in place.

Caches written by older versions (a single ``sweep-records.jsonl``) are
read transparently and can be folded into the sharded layout with
:meth:`DiskCache.migrate` (``repro cache --migrate``).

The directory defaults to ``~/.cache/repro`` (respecting
``XDG_CACHE_HOME``) and can be overridden with the ``REPRO_CACHE_DIR``
environment variable or the ``path=`` argument.

Keys are SHA-256 hashes over the canonical JSON of every input that can
change a result, salted with :data:`CACHE_VERSION`. Bump that constant
whenever the simulation semantics change — old entries then simply stop
matching (they are invalidated by construction, not migrated).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from ..machine import MachineSpec
from ..sim import solver_mode
from ..sim.replay import engine_mode
from .report import RunRecord

try:  # POSIX advisory locking; appends fall back to bare O_APPEND elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-posix platform
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "DiskCache",
    "CacheStats",
    "FsckReport",
    "cache_key",
    "default_cache_dir",
    "CACHE_VERSION",
]

# Code-version salt folded into every key. Bump on any change that
# alters simulated results (engine semantics, fluid model, algorithms).
# 2026.08.08.2: solver_rounds now counts kernel-equivalent rounds on
# memo hits too (cross-run shared solve memo).
CACHE_VERSION = "2026.08.08.2"

_LEGACY_FILENAME = "sweep-records.jsonl"
_SHARD_DIR = "shards"
_PREFIX_LEN = 2  # hex chars -> 256 shards


def default_cache_dir() -> Path:
    """Resolve the cache directory (without creating it).

    Precedence: ``REPRO_CACHE_DIR`` > ``$XDG_CACHE_HOME/repro`` >
    ``~/.cache/repro``.
    """
    override = os.environ.get("REPRO_CACHE_DIR", "")
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME", "")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def cache_key(
    spec: MachineSpec,
    point,
    root: int = 0,
    placement="blocked",
    salt: str = CACHE_VERSION,
    faults=None,
    reliable=None,
) -> str:
    """Content hash identifying one simulated point.

    ``point`` is anything with ``algorithm``/``nranks``/``nbytes``
    attributes (a :class:`~repro.core.sweep.SweepPoint`). Placement
    policies are keyed by ``str()`` so explicit rank lists and named
    policies both participate. ``faults`` (a
    :class:`~repro.sim.faults.FaultPlan`) enters via its content digest
    and ``reliable`` via its repr, so chaos records never collide with
    clean-run entries for the same point.
    """
    payload = {
        "spec": dataclasses.asdict(spec),
        "point": (point.algorithm, point.nranks, point.nbytes),
        "root": root,
        "placement": str(placement),
        # Both solvers produce bitwise-identical times, but the cached
        # record carries mode-specific telemetry, so key on the mode.
        # The execution engine (REPRO_ENGINE) is keyed for the same
        # reason: DES and replay agree bitwise on times and counters,
        # but the record's engine/solver telemetry differs.
        "solver": solver_mode(),
        "engine": engine_mode(),
        "faults": faults.digest() if faults is not None else "",
        "reliable": repr(reliable) if reliable else "",
        "salt": salt,
    }
    blob = json.dumps(payload, sort_keys=True, default=str, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting for one :class:`DiskCache` instance."""

    hits: int
    misses: int
    stores: int
    entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return (
            f"cache: {self.entries} entries, {self.hits} hits / "
            f"{self.misses} misses ({self.hit_rate:.0%}), {self.stores} stores"
        )


def _line_checksum(key: str, record: dict) -> str:
    """Content checksum of one cache line's payload (canonical JSON)."""
    blob = json.dumps(
        {"key": key, "record": record}, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


def _scan_lines(text: str):
    """Parse JSON-lines cache content, verifying per-line checksums.

    Returns ``(entries, corrupt, unsummed)``: the verified records, how
    many lines were dropped (torn JSON, missing fields, or a checksum
    mismatch — i.e. the payload was altered after it was written), and
    how many parsed fine but predate per-line checksums.
    """
    entries: Dict[str, RunRecord] = {}
    corrupt = 0
    unsummed = 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
            key = obj["key"]
            record = obj["record"]
            rec = RunRecord(**record)
        except (ValueError, KeyError, TypeError):
            corrupt += 1  # torn/stale line: ignore, do not crash
            continue
        declared = obj.get("sum")
        if declared is None:
            unsummed += 1
        elif declared != _line_checksum(key, record):
            corrupt += 1
            continue
        entries[key] = rec
    return entries, corrupt, unsummed


def _parse_lines(text: str) -> Dict[str, RunRecord]:
    """Parse JSON-lines cache content, skipping torn/corrupt lines."""
    return _scan_lines(text)[0]


@dataclass(frozen=True)
class FsckReport:
    """Outcome of one :meth:`DiskCache.fsck` integrity scan."""

    shards: int  # shard files scanned
    entries: int  # verified records across all shards + legacy file
    corrupt: int  # lines dropped: torn JSON or checksum mismatch
    unsummed: int  # valid lines that predate per-line checksums
    repaired: int  # corrupt+unsummed lines resolved by a repair rewrite

    @property
    def ok(self) -> bool:
        return self.corrupt == 0

    def describe(self) -> str:
        verdict = "clean" if self.ok else "CORRUPT"
        text = (
            f"cache fsck: {verdict} — {self.entries} verified record(s) in "
            f"{self.shards} shard(s); {self.corrupt} corrupt line(s), "
            f"{self.unsummed} pre-checksum line(s)"
        )
        if self.repaired:
            text += f"; repaired {self.repaired} (shards rewritten)"
        elif self.corrupt or self.unsummed:
            text += " (run with --repair to rewrite)"
        return text


class DiskCache:
    """Sharded JSON-lines RunRecord store keyed by content hash."""

    def __init__(self, path: Union[str, Path, None] = None):
        self.dir = Path(path).expanduser() if path is not None else default_cache_dir()
        # Pre-sharding single-file layout, still read transparently.
        self.file = self.dir / _LEGACY_FILENAME
        self.shard_dir = self.dir / _SHARD_DIR
        # prefix -> entries; loaded lazily, one shard at a time.
        self._shards: Dict[str, Dict[str, RunRecord]] = {}
        # prefix -> bytes of the shard file consumed so far. A miss on a
        # loaded shard re-reads only the tail another process appended.
        self._offsets: Dict[str, int] = {}
        self._legacy: Optional[Dict[str, RunRecord]] = None
        self._hits = 0
        self._misses = 0
        self._stores = 0

    # -- persistence --------------------------------------------------
    @staticmethod
    def _prefix(key: str) -> str:
        return key[:_PREFIX_LEN].lower()

    def _shard_path(self, prefix: str) -> Path:
        return self.shard_dir / f"{prefix}.jsonl"

    def _load_legacy(self) -> Dict[str, RunRecord]:
        if self._legacy is None:
            if self.file.exists():
                self._legacy = _parse_lines(
                    self.file.read_text(encoding="utf-8")
                )
            else:
                self._legacy = {}
        return self._legacy

    def _load_shard(self, prefix: str) -> Dict[str, RunRecord]:
        entries = self._shards.get(prefix)
        if entries is None:
            entries = {}
            path = self._shard_path(prefix)
            if path.exists():
                text = path.read_text(encoding="utf-8")
                self._offsets[prefix] = len(text.encode("utf-8"))
                entries = _parse_lines(text)
            else:
                self._offsets[prefix] = 0
            self._shards[prefix] = entries
        return entries

    def _refresh_shard(self, prefix: str) -> Dict[str, RunRecord]:
        """Pick up lines appended by other processes since our load."""
        entries = self._load_shard(prefix)
        path = self._shard_path(prefix)
        try:
            size = path.stat().st_size
        except OSError:
            return entries
        offset = self._offsets.get(prefix, 0)
        if size > offset:
            with open(path, "rb") as fh:
                fh.seek(offset)
                tail = fh.read()
            # Only complete lines: a concurrent writer may be mid-append.
            cut = tail.rfind(b"\n") + 1
            entries.update(_parse_lines(tail[:cut].decode("utf-8")))
            self._offsets[prefix] = offset + cut
        return entries

    def _append(self, key: str, rec: RunRecord) -> None:
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        record = dataclasses.asdict(rec)
        line = (
            json.dumps(
                {"key": key, "record": record,
                 "sum": _line_checksum(key, record)},
                sort_keys=True,
            )
            + "\n"
        )
        path = self._shard_path(self._prefix(key))
        # The loaded offset is deliberately NOT advanced past this line:
        # a concurrent writer may have appended before ours, and skipping
        # ahead would hide its records. The next refresh re-parses our
        # own line too, which is a harmless idempotent dict update.
        with open(path, "a", encoding="utf-8") as fh:
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                fh.write(line)
                fh.flush()
            finally:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    # -- mapping ------------------------------------------------------
    def get(self, key: str) -> Optional[RunRecord]:
        """Cached record for *key*, counting a hit or a miss."""
        prefix = self._prefix(key)
        rec = self._load_shard(prefix).get(key)
        if rec is None:
            # Another process may have stored it since our shard load.
            rec = self._refresh_shard(prefix).get(key)
        if rec is None:
            rec = self._load_legacy().get(key)
        if rec is None:
            self._misses += 1
        else:
            self._hits += 1
        return rec

    def put(self, key: str, rec: RunRecord) -> None:
        """Persist *rec* under *key* (no-op if the key is already stored)."""
        prefix = self._prefix(key)
        entries = self._load_shard(prefix)
        if key in entries or key in self._load_legacy():
            return
        entries[key] = rec
        self._append(key, rec)
        self._stores += 1

    def _all_entries(self) -> Dict[str, RunRecord]:
        entries: Dict[str, RunRecord] = dict(self._load_legacy())
        if self.shard_dir.is_dir():
            for path in sorted(self.shard_dir.glob("*.jsonl")):
                entries.update(self._refresh_shard(path.stem))
        return entries

    def __len__(self) -> int:
        return len(self._all_entries())

    def __contains__(self, key: str) -> bool:
        prefix = self._prefix(key)
        return key in self._load_shard(prefix) or key in self._load_legacy()

    # -- maintenance --------------------------------------------------
    def migrate(self) -> int:
        """Fold a legacy single-file cache into the sharded layout.

        Returns how many records moved. Safe to call on an already
        sharded (or empty) cache — it is then a no-op.
        """
        legacy = self._load_legacy()
        moved = 0
        for key, rec in legacy.items():
            prefix = self._prefix(key)
            entries = self._load_shard(prefix)
            if key not in entries:
                entries[key] = rec
                self._append(key, rec)
                moved += 1
        if self.file.exists():
            self.file.unlink()
        self._legacy = {}
        return moved

    def invalidate(self) -> int:
        """Drop every stored record; returns how many were removed."""
        removed = len(self._all_entries())
        self._shards = {}
        self._offsets = {}
        self._legacy = {}
        if self.file.exists():
            self.file.unlink()
        if self.shard_dir.is_dir():
            for path in self.shard_dir.glob("*.jsonl"):
                path.unlink()
            try:
                self.shard_dir.rmdir()
            except OSError:  # pragma: no cover - foreign files present
                pass
        return removed

    clear = invalidate

    def _rewrite_shard(self, path: Path, entries: Dict[str, RunRecord]) -> None:
        """Atomically replace one shard with verified, checksummed lines.

        The exclusive flock on the live file serialises against
        concurrent appenders; ``os.replace`` makes the swap atomic for
        readers (they see either the old file or the repaired one,
        never a half-written state).
        """
        lines = []
        for key in sorted(entries):
            record = dataclasses.asdict(entries[key])
            lines.append(
                json.dumps(
                    {"key": key, "record": record,
                     "sum": _line_checksum(key, record)},
                    sort_keys=True,
                )
                + "\n"
            )
        tmp = path.with_name(path.name + ".repair")
        with open(path, "a", encoding="utf-8") as fh:
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                tmp.write_text("".join(lines), encoding="utf-8")
                os.replace(tmp, path)
            finally:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    def fsck(self, repair: bool = False) -> FsckReport:
        """Verify every stored line's checksum; optionally repair.

        Detects torn appends, truncated shards and bit-rot (checksum
        mismatches). With ``repair=True``, shards holding corrupt or
        pre-checksum lines are atomically rewritten keeping only the
        verified records — corrupt lines are dropped (their points will
        simply re-simulate), legacy lines gain checksums.
        """
        shards = 0
        total = 0
        corrupt = 0
        unsummed = 0
        repaired = 0
        if self.shard_dir.is_dir():
            for path in sorted(self.shard_dir.glob("*.jsonl")):
                shards += 1
                entries, bad, old = _scan_lines(
                    path.read_text(encoding="utf-8")
                )
                total += len(entries)
                corrupt += bad
                unsummed += old
                if repair and (bad or old):
                    self._rewrite_shard(path, entries)
                    repaired += bad + old
                    # Drop the in-memory copy: offsets no longer match.
                    self._shards.pop(path.stem, None)
                    self._offsets.pop(path.stem, None)
        if self.file.exists():
            legacy, bad, old = _scan_lines(self.file.read_text(encoding="utf-8"))
            total += len(legacy)
            corrupt += bad
            unsummed += old  # legacy lines never carry checksums
        return FsckReport(
            shards=shards,
            entries=total,
            corrupt=corrupt,
            unsummed=unsummed,
            repaired=repaired,
        )

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            stores=self._stores,
            entries=len(self._all_entries()),
        )

    def __repr__(self) -> str:
        return f"<DiskCache {self.dir} {self.stats().describe()}>"
