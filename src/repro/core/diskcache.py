"""Persistent on-disk result cache for sweep points.

Every simulated point is a pure function of (machine spec, point, root,
placement) plus the simulator's code version, so its
:class:`~repro.core.report.RunRecord` can be persisted and reused across
processes: re-running a figure bench after the first pass skips every
already-simulated point.

Storage is *sharded* JSON-lines: records live under ``shards/<xx>.jsonl``
where ``xx`` is the first two hex digits of the key, one
``{"key": ..., "record": ...}`` object per line — append-only writes, no
index file, human-greppable. Sharding keeps two properties the
single-file layout could not offer at service scale:

* **lazy loading** — a lookup parses only the one shard its key hashes
  to (1/256th of the store), instead of the whole cache on first use;
* **concurrent safety** — appends take an exclusive ``flock`` on the
  shard file and writers touching different shards never contend at
  all. Readers that miss re-scan just the bytes appended since their
  last load, so many clients of one long-running simulation service can
  share a warm cache directory without lost or torn records.

Caches written by older versions (a single ``sweep-records.jsonl``) are
read transparently and can be folded into the sharded layout with
:meth:`DiskCache.migrate` (``repro cache --migrate``).

The directory defaults to ``~/.cache/repro`` (respecting
``XDG_CACHE_HOME``) and can be overridden with the ``REPRO_CACHE_DIR``
environment variable or the ``path=`` argument.

Keys are SHA-256 hashes over the canonical JSON of every input that can
change a result, salted with :data:`CACHE_VERSION`. Bump that constant
whenever the simulation semantics change — old entries then simply stop
matching (they are invalidated by construction, not migrated).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from ..machine import MachineSpec
from ..sim import solver_mode
from ..sim.replay import engine_mode
from .report import RunRecord

try:  # POSIX advisory locking; appends fall back to bare O_APPEND elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-posix platform
    fcntl = None  # type: ignore[assignment]

__all__ = ["DiskCache", "CacheStats", "cache_key", "default_cache_dir", "CACHE_VERSION"]

# Code-version salt folded into every key. Bump on any change that
# alters simulated results (engine semantics, fluid model, algorithms).
# 2026.08.08.2: solver_rounds now counts kernel-equivalent rounds on
# memo hits too (cross-run shared solve memo).
CACHE_VERSION = "2026.08.08.2"

_LEGACY_FILENAME = "sweep-records.jsonl"
_SHARD_DIR = "shards"
_PREFIX_LEN = 2  # hex chars -> 256 shards


def default_cache_dir() -> Path:
    """Resolve the cache directory (without creating it).

    Precedence: ``REPRO_CACHE_DIR`` > ``$XDG_CACHE_HOME/repro`` >
    ``~/.cache/repro``.
    """
    override = os.environ.get("REPRO_CACHE_DIR", "")
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME", "")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def cache_key(
    spec: MachineSpec,
    point,
    root: int = 0,
    placement="blocked",
    salt: str = CACHE_VERSION,
    faults=None,
    reliable=None,
) -> str:
    """Content hash identifying one simulated point.

    ``point`` is anything with ``algorithm``/``nranks``/``nbytes``
    attributes (a :class:`~repro.core.sweep.SweepPoint`). Placement
    policies are keyed by ``str()`` so explicit rank lists and named
    policies both participate. ``faults`` (a
    :class:`~repro.sim.faults.FaultPlan`) enters via its content digest
    and ``reliable`` via its repr, so chaos records never collide with
    clean-run entries for the same point.
    """
    payload = {
        "spec": dataclasses.asdict(spec),
        "point": (point.algorithm, point.nranks, point.nbytes),
        "root": root,
        "placement": str(placement),
        # Both solvers produce bitwise-identical times, but the cached
        # record carries mode-specific telemetry, so key on the mode.
        # The execution engine (REPRO_ENGINE) is keyed for the same
        # reason: DES and replay agree bitwise on times and counters,
        # but the record's engine/solver telemetry differs.
        "solver": solver_mode(),
        "engine": engine_mode(),
        "faults": faults.digest() if faults is not None else "",
        "reliable": repr(reliable) if reliable else "",
        "salt": salt,
    }
    blob = json.dumps(payload, sort_keys=True, default=str, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting for one :class:`DiskCache` instance."""

    hits: int
    misses: int
    stores: int
    entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return (
            f"cache: {self.entries} entries, {self.hits} hits / "
            f"{self.misses} misses ({self.hit_rate:.0%}), {self.stores} stores"
        )


def _parse_lines(text: str) -> Dict[str, RunRecord]:
    """Parse JSON-lines cache content, skipping torn/stale lines."""
    entries: Dict[str, RunRecord] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
            entries[obj["key"]] = RunRecord(**obj["record"])
        except (ValueError, KeyError, TypeError):
            continue  # torn/stale line: ignore, do not crash
    return entries


class DiskCache:
    """Sharded JSON-lines RunRecord store keyed by content hash."""

    def __init__(self, path: Union[str, Path, None] = None):
        self.dir = Path(path).expanduser() if path is not None else default_cache_dir()
        # Pre-sharding single-file layout, still read transparently.
        self.file = self.dir / _LEGACY_FILENAME
        self.shard_dir = self.dir / _SHARD_DIR
        # prefix -> entries; loaded lazily, one shard at a time.
        self._shards: Dict[str, Dict[str, RunRecord]] = {}
        # prefix -> bytes of the shard file consumed so far. A miss on a
        # loaded shard re-reads only the tail another process appended.
        self._offsets: Dict[str, int] = {}
        self._legacy: Optional[Dict[str, RunRecord]] = None
        self._hits = 0
        self._misses = 0
        self._stores = 0

    # -- persistence --------------------------------------------------
    @staticmethod
    def _prefix(key: str) -> str:
        return key[:_PREFIX_LEN].lower()

    def _shard_path(self, prefix: str) -> Path:
        return self.shard_dir / f"{prefix}.jsonl"

    def _load_legacy(self) -> Dict[str, RunRecord]:
        if self._legacy is None:
            if self.file.exists():
                self._legacy = _parse_lines(
                    self.file.read_text(encoding="utf-8")
                )
            else:
                self._legacy = {}
        return self._legacy

    def _load_shard(self, prefix: str) -> Dict[str, RunRecord]:
        entries = self._shards.get(prefix)
        if entries is None:
            entries = {}
            path = self._shard_path(prefix)
            if path.exists():
                text = path.read_text(encoding="utf-8")
                self._offsets[prefix] = len(text.encode("utf-8"))
                entries = _parse_lines(text)
            else:
                self._offsets[prefix] = 0
            self._shards[prefix] = entries
        return entries

    def _refresh_shard(self, prefix: str) -> Dict[str, RunRecord]:
        """Pick up lines appended by other processes since our load."""
        entries = self._load_shard(prefix)
        path = self._shard_path(prefix)
        try:
            size = path.stat().st_size
        except OSError:
            return entries
        offset = self._offsets.get(prefix, 0)
        if size > offset:
            with open(path, "rb") as fh:
                fh.seek(offset)
                tail = fh.read()
            # Only complete lines: a concurrent writer may be mid-append.
            cut = tail.rfind(b"\n") + 1
            entries.update(_parse_lines(tail[:cut].decode("utf-8")))
            self._offsets[prefix] = offset + cut
        return entries

    def _append(self, key: str, rec: RunRecord) -> None:
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        line = (
            json.dumps({"key": key, "record": dataclasses.asdict(rec)}, sort_keys=True)
            + "\n"
        )
        path = self._shard_path(self._prefix(key))
        # The loaded offset is deliberately NOT advanced past this line:
        # a concurrent writer may have appended before ours, and skipping
        # ahead would hide its records. The next refresh re-parses our
        # own line too, which is a harmless idempotent dict update.
        with open(path, "a", encoding="utf-8") as fh:
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                fh.write(line)
                fh.flush()
            finally:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    # -- mapping ------------------------------------------------------
    def get(self, key: str) -> Optional[RunRecord]:
        """Cached record for *key*, counting a hit or a miss."""
        prefix = self._prefix(key)
        rec = self._load_shard(prefix).get(key)
        if rec is None:
            # Another process may have stored it since our shard load.
            rec = self._refresh_shard(prefix).get(key)
        if rec is None:
            rec = self._load_legacy().get(key)
        if rec is None:
            self._misses += 1
        else:
            self._hits += 1
        return rec

    def put(self, key: str, rec: RunRecord) -> None:
        """Persist *rec* under *key* (no-op if the key is already stored)."""
        prefix = self._prefix(key)
        entries = self._load_shard(prefix)
        if key in entries or key in self._load_legacy():
            return
        entries[key] = rec
        self._append(key, rec)
        self._stores += 1

    def _all_entries(self) -> Dict[str, RunRecord]:
        entries: Dict[str, RunRecord] = dict(self._load_legacy())
        if self.shard_dir.is_dir():
            for path in sorted(self.shard_dir.glob("*.jsonl")):
                entries.update(self._refresh_shard(path.stem))
        return entries

    def __len__(self) -> int:
        return len(self._all_entries())

    def __contains__(self, key: str) -> bool:
        prefix = self._prefix(key)
        return key in self._load_shard(prefix) or key in self._load_legacy()

    # -- maintenance --------------------------------------------------
    def migrate(self) -> int:
        """Fold a legacy single-file cache into the sharded layout.

        Returns how many records moved. Safe to call on an already
        sharded (or empty) cache — it is then a no-op.
        """
        legacy = self._load_legacy()
        moved = 0
        for key, rec in legacy.items():
            prefix = self._prefix(key)
            entries = self._load_shard(prefix)
            if key not in entries:
                entries[key] = rec
                self._append(key, rec)
                moved += 1
        if self.file.exists():
            self.file.unlink()
        self._legacy = {}
        return moved

    def invalidate(self) -> int:
        """Drop every stored record; returns how many were removed."""
        removed = len(self._all_entries())
        self._shards = {}
        self._offsets = {}
        self._legacy = {}
        if self.file.exists():
            self.file.unlink()
        if self.shard_dir.is_dir():
            for path in self.shard_dir.glob("*.jsonl"):
                path.unlink()
            try:
                self.shard_dir.rmdir()
            except OSError:  # pragma: no cover - foreign files present
                pass
        return removed

    clear = invalidate

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            stores=self._stores,
            entries=len(self._all_entries()),
        )

    def __repr__(self) -> str:
        return f"<DiskCache {self.dir} {self.stats().describe()}>"
