"""Parameter-sweep driver: the engine behind every figure reproduction.

A :class:`Sweep` runs ``simulate_bcast`` over the cross product of
message sizes, process counts and algorithms, collects
:class:`~repro.core.report.RunRecord` rows and offers the slicing the
benchmark harness needs (series per algorithm, paper-style tables,
comparisons). Results are memoised per (spec-key, point) within the
sweep object so a bench can render several views without re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError
from ..machine import MachineSpec
from ..util import format_size, parse_size
from ..util.tables import Table
from .api import simulate_bcast
from .diskcache import DiskCache
from .executor import SweepExecutor
from .report import ComparisonRecord, RunRecord

__all__ = ["SweepPoint", "Sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the sweep grid."""

    algorithm: str
    nranks: int
    nbytes: int


class Sweep:
    """Cross-product sweep over sizes x ranks x algorithms."""

    def __init__(
        self,
        spec: MachineSpec,
        sizes: Iterable,
        ranks: Iterable[int],
        algorithms: Iterable[str],
        root: int = 0,
        placement="blocked",
        faults=None,
        reliable=None,
    ):
        """``faults``/``reliable`` apply to every point (see
        :func:`~repro.core.api.simulate_bcast`) — a chaos sweep is the
        same grid with a :class:`~repro.sim.faults.FaultPlan` attached."""
        self.spec = spec
        self.sizes = [parse_size(s) for s in sizes]
        self.ranks = list(ranks)
        self.algorithms = list(algorithms)
        self.root = root
        self.placement = placement
        self.faults = faults
        self.reliable = reliable
        if not self.sizes or not self.ranks or not self.algorithms:
            raise ConfigurationError("sweep needs sizes, ranks and algorithms")
        self._cache: Dict[SweepPoint, RunRecord] = {}

    # -- execution ------------------------------------------------------
    def points(self) -> List[SweepPoint]:
        return [
            SweepPoint(a, p, n)
            for a in self.algorithms
            for p in self.ranks
            for n in self.sizes
        ]

    def run_point(self, point: SweepPoint) -> RunRecord:
        rec = self._cache.get(point)
        if rec is None:
            rec = simulate_bcast(
                self.spec,
                nranks=point.nranks,
                nbytes=point.nbytes,
                algorithm=point.algorithm,
                root=self.root,
                placement=self.placement,
                faults=self.faults,
                reliable=self.reliable,
            )
            self._cache[point] = rec
        return rec

    def run(
        self,
        progress=None,
        jobs: Optional[int] = 1,
        cache: Optional[DiskCache] = None,
        serve=None,
    ) -> List[RunRecord]:
        """Run every point; optional ``progress(point)`` hook.

        ``jobs`` fans uncomputed points out over a process pool
        (``1`` = serial in-process, ``0`` = one worker per CPU); results
        are identical and identically ordered regardless. ``cache`` is
        an optional :class:`~repro.core.diskcache.DiskCache` consulted
        before simulating and populated afterwards, so repeat runs skip
        already-simulated points across processes. ``serve`` selects the
        persistent simulation service (see
        :class:`~repro.core.executor.SweepExecutor`): ``None`` defers to
        ``REPRO_SERVE``, ``False`` stays in-process, an address requires
        a live server.
        """
        points = self.points()
        todo = [p for p in points if p not in self._cache]
        if progress is not None:
            for point in points:
                if point in self._cache:
                    progress(point)
        if todo:
            records = SweepExecutor(jobs=jobs, cache=cache, serve=serve).run(
                self.spec,
                todo,
                root=self.root,
                placement=self.placement,
                progress=progress,
                faults=self.faults,
                reliable=self.reliable,
            )
            for point, rec in zip(todo, records):
                self._cache[point] = rec
        return [self._cache[p] for p in points]

    # -- slicing ------------------------------------------------------------
    def record(self, algorithm: str, nranks: int, nbytes) -> RunRecord:
        return self.run_point(SweepPoint(algorithm, nranks, parse_size(nbytes)))

    def series(self, algorithm: str, nranks: int) -> Tuple[List[int], List[float]]:
        """(sizes, bandwidth MB/s) for one algorithm at one rank count —
        the shape of a Figure 6/8 curve."""
        xs, ys = [], []
        for n in self.sizes:
            rec = self.record(algorithm, nranks, n)
            xs.append(n)
            ys.append(rec.bandwidth_mib)
        return xs, ys

    def compare(self, nranks: int, nbytes, native: str, opt: str) -> ComparisonRecord:
        size = parse_size(nbytes)
        return ComparisonRecord(
            nranks=nranks,
            nbytes=size,
            native=self.record(native, nranks, size),
            opt=self.record(opt, nranks, size),
        )

    def peak_bandwidth(self, algorithm: str, nranks: int) -> float:
        """Best MB/s across the size axis (the paper's 'peak bandwidth')."""
        return max(self.series(algorithm, nranks)[1])

    # -- rendering -------------------------------------------------------------
    CSV_FIELDS = (
        "algorithm",
        "nranks",
        "nbytes",
        "time_s",
        "bandwidth_mib",
        "messages",
        "bytes_on_wire",
        "intra_messages",
        "inter_messages",
        # solver telemetry columns come last so positional consumers of
        # the original fields keep working
        "solver_solves",
        "solver_rounds",
        "solver_time_s",
        # chaos / reliability telemetry (appended for the same reason;
        # all zero unless the sweep carries a fault plan)
        "retrans_messages",
        "retrans_bytes",
        "ack_messages",
        "ack_bytes",
        "timeouts",
        # which execution engine produced the row ("des" or "replay")
        "engine",
    )

    @staticmethod
    def csv_row(rec: RunRecord) -> Dict[str, str]:
        """One record as a ``{field: text}`` mapping over ``CSV_FIELDS``.

        Every row carries the full schema regardless of which engine
        produced the record — a mixed-engine sweep (e.g. replay for the
        clean points, DES for the chaos points) emits uniform CSV, with
        telemetry a given engine does not collect rendered as zeros.
        """
        row = {
            "algorithm": rec.algorithm,
            "nranks": rec.nranks,
            "nbytes": rec.nbytes,
            # fixed-width scientific notation: stable across platforms,
            # parses back to <1e-9 relative error, and diffs cleanly
            # (repr() would vary in length)
            "time_s": f"{rec.time:.9e}",
            "bandwidth_mib": f"{rec.bandwidth_mib:.6f}",
            "messages": rec.messages,
            "bytes_on_wire": rec.bytes_on_wire,
            "intra_messages": rec.intra_messages,
            "inter_messages": rec.inter_messages,
            "solver_solves": rec.solver_solves,
            "solver_rounds": rec.solver_rounds,
            # host wall time: informational, not reproducible
            "solver_time_s": f"{rec.solver_time_s:.3e}",
            "retrans_messages": rec.retrans_messages,
            "retrans_bytes": rec.retrans_bytes,
            "ack_messages": rec.ack_messages,
            "ack_bytes": rec.ack_bytes,
            "timeouts": rec.timeouts,
            "engine": rec.engine or "des",
        }
        missing = set(Sweep.CSV_FIELDS) - set(row)
        if missing:  # schema drift guard: fail loudly, not with a KeyError
            raise ConfigurationError(f"csv_row lacks field(s): {sorted(missing)}")
        return {field: str(row[field]) for field in Sweep.CSV_FIELDS}

    def to_csv(
        self, target=None, jobs: Optional[int] = 1, cache=None, serve=None
    ) -> str:
        """All sweep records as CSV (returned; also written to *target*
        path or file object when given). Runs any missing points,
        forwarding ``jobs``/``cache``/``serve`` to :meth:`run`."""
        lines = [",".join(self.CSV_FIELDS)]
        for rec in self.run(jobs=jobs, cache=cache, serve=serve):
            row = self.csv_row(rec)
            lines.append(",".join(row[field] for field in self.CSV_FIELDS))
        text = "\n".join(lines) + "\n"
        if target is not None:
            if isinstance(target, str):
                with open(target, "w", encoding="utf-8") as fh:
                    fh.write(text)
            elif hasattr(target, "write"):
                target.write(text)
            else:
                raise ConfigurationError(
                    f"target must be a path or file object, got {type(target).__name__}"
                )
        return text

    def to_table(
        self, nranks: int, native: str, opt: str, title: str = ""
    ) -> Table:
        """Paper-style rows: size | native MB/s | opt MB/s | improvement %."""
        table = Table(
            ["msg size", f"{native} MB/s", f"{opt} MB/s", "improvement"],
            formats=[None, ".1f", ".1f", lambda v: f"{v:+.1f}%"],
            title=title,
        )
        for n in self.sizes:
            cmp = self.compare(nranks, n, native, opt)
            table.add_row(
                format_size(n),
                cmp.native.bandwidth_mib,
                cmp.opt.bandwidth_mib,
                cmp.bandwidth_improvement_pct,
            )
        return table
