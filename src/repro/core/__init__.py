"""High-level API: simulate, compare, count traffic, predict, sweep."""

from .api import (
    simulate_bcast,
    compare_bcast,
    validate_bcast,
    simulate_allgather,
    available_algorithms,
)
from .report import RunRecord, ComparisonRecord, MIB_S
from .traffic import (
    subtree_sum,
    ring_transfers_native,
    ring_transfers_tuned,
    transfers_saved,
    scatter_transfers,
    total_transfers,
    ring_bytes_native,
    ring_bytes_tuned,
    TrafficReport,
    measure_traffic,
)
from .model import (
    t_binomial_bcast,
    t_binomial_scatter,
    t_ring_allgather,
    t_scatter_ring_bcast,
    predict,
)
from .fitting import FittedModel, fit_alpha_beta, characterize
from .regimes import RegimeCell, regime_map, selector_agreement
from .sweep import Sweep, SweepPoint
from .executor import SweepExecutor, group_points, resolve_jobs
from .diskcache import DiskCache, CacheStats, cache_key, default_cache_dir

__all__ = [
    "simulate_bcast",
    "compare_bcast",
    "validate_bcast",
    "simulate_allgather",
    "available_algorithms",
    "RunRecord",
    "ComparisonRecord",
    "MIB_S",
    "subtree_sum",
    "ring_transfers_native",
    "ring_transfers_tuned",
    "transfers_saved",
    "scatter_transfers",
    "total_transfers",
    "ring_bytes_native",
    "ring_bytes_tuned",
    "TrafficReport",
    "measure_traffic",
    "t_binomial_bcast",
    "t_binomial_scatter",
    "t_ring_allgather",
    "t_scatter_ring_bcast",
    "predict",
    "FittedModel",
    "fit_alpha_beta",
    "characterize",
    "RegimeCell",
    "regime_map",
    "selector_agreement",
    "Sweep",
    "SweepPoint",
    "SweepExecutor",
    "resolve_jobs",
    "group_points",
    "DiskCache",
    "CacheStats",
    "cache_key",
    "default_cache_dir",
]
