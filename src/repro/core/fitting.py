"""Fit Hockney alpha-beta parameters from microbenchmark measurements.

Closes the calibration loop: run :func:`repro.bench.micro.pingpong` on a
machine, fit ``t(m) = alpha + m * beta`` by least squares, and compare
the *effective* latency/bandwidth the transport delivers against the
spec's nominal constants. Tests pin the fit to the known ground truth on
the ideal machine; example scripts use it to characterise the presets
the way one would characterise real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

from ..errors import ConfigurationError
from ..machine import Machine, MachineSpec

__all__ = ["FittedModel", "fit_alpha_beta", "characterize"]


@dataclass(frozen=True)
class FittedModel:
    """Least-squares Hockney model ``t = alpha + m * beta``."""

    alpha: float  # seconds
    beta: float  # seconds per byte
    r_squared: float
    npoints: int

    @property
    def bandwidth(self) -> float:
        """Asymptotic bandwidth in bytes/s (1/beta)."""
        return 1.0 / self.beta if self.beta > 0 else float("inf")

    def predict(self, nbytes: float) -> float:
        return self.alpha + nbytes * self.beta

    def describe(self) -> str:
        return (
            f"alpha={self.alpha * 1e6:.3f}us, "
            f"bw={self.bandwidth / 2**30:.2f}GiB/s, "
            f"R^2={self.r_squared:.4f} ({self.npoints} points)"
        )


def fit_alpha_beta(points: Sequence[Tuple[float, float]]) -> FittedModel:
    """Fit ``(nbytes, seconds)`` samples; needs >= 2 distinct sizes."""
    pts = [(float(m), float(t)) for m, t in points]
    if len(pts) < 2:
        raise ConfigurationError("fit needs at least two measurements")
    sizes = np.array([m for m, _ in pts])
    times = np.array([t for _, t in pts])
    if np.unique(sizes).size < 2:
        raise ConfigurationError("fit needs at least two distinct sizes")
    design = np.column_stack([np.ones_like(sizes), sizes])
    coeffs, *_ = np.linalg.lstsq(design, times, rcond=None)
    alpha, beta = float(coeffs[0]), float(coeffs[1])
    predicted = design @ coeffs
    ss_res = float(np.sum((times - predicted) ** 2))
    ss_tot = float(np.sum((times - times.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return FittedModel(alpha=alpha, beta=beta, r_squared=r2, npoints=len(pts))


def characterize(
    spec_or_machine: Union[MachineSpec, Machine],
    sizes: Sequence = (4096, 65536, 262144, 1048576, 4194304),
    src: int = 0,
    dst: int = 1,
) -> FittedModel:
    """Ping-pong the pair and fit the effective alpha-beta model.

    Pick an intra-node or inter-node (src, dst) pair to characterise the
    corresponding communication level.
    """
    from ..bench.micro import pingpong

    points = pingpong(spec_or_machine, sizes, src=src, dst=dst, iterations=4)
    return fit_alpha_beta([(p.nbytes, p.latency) for p in points])
