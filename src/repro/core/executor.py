"""Parallel sweep execution over a process pool.

Each sweep point is an independent pure simulation, so the cross product
behind a figure is embarrassingly parallel. :class:`SweepExecutor` fans
points out over a :class:`concurrent.futures.ProcessPoolExecutor` and
guarantees:

* **deterministic ordering** — results come back in the order the points
  were given, regardless of worker completion order;
* **identical records** — workers run the same ``simulate_bcast`` as the
  serial path, so ``jobs=1`` and ``jobs=N`` produce equal
  :class:`~repro.core.report.RunRecord` rows;
* **faithful failures** — a worker exception is captured worker-side and
  re-raised in the parent as
  :class:`~repro.errors.SweepExecutionError` with the offending point
  attached (arbitrary exceptions do not always survive pickling);
* **cache integration** — an optional
  :class:`~repro.core.diskcache.DiskCache` is consulted before
  simulating and populated afterwards, so only cold points cost CPU.

``jobs=1`` (the default) never spawns processes — it is the exact serial
path the sweep driver always had, kept as the fallback for environments
where ``multiprocessing`` is unavailable or unwanted.
"""

from __future__ import annotations

import concurrent.futures
import os
import traceback
from typing import Callable, List, Optional, Sequence

from ..errors import SweepExecutionError
from ..machine import MachineSpec
from .api import simulate_bcast
from .diskcache import DiskCache, cache_key
from .report import RunRecord

__all__ = ["SweepExecutor", "resolve_jobs"]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` argument: ``None``/1 → serial, 0/negative →
    one worker per CPU, otherwise the requested count."""
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _simulate_point(task):
    """Worker entry point: simulate one point, never raise.

    Returns ``("ok", record)`` or ``("err", type_name, message, tb)`` so
    failures cross the process boundary even when the original exception
    type does not pickle.
    """
    spec, point, root, placement, faults, reliable = task
    try:
        rec = simulate_bcast(
            spec,
            nranks=point.nranks,
            nbytes=point.nbytes,
            algorithm=point.algorithm,
            root=root,
            placement=placement,
            faults=faults,
            reliable=reliable,
        )
        return ("ok", rec)
    except Exception as exc:  # noqa: BLE001 - serialised and re-raised in parent
        return ("err", type(exc).__name__, str(exc), traceback.format_exc())


class SweepExecutor:
    """Run sweep points serially or across a process pool, with caching."""

    def __init__(self, jobs: Optional[int] = 1, cache: Optional[DiskCache] = None):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache

    # -- internals -----------------------------------------------------
    @staticmethod
    def _unwrap(outcome, point) -> RunRecord:
        if outcome[0] == "ok":
            return outcome[1]
        _, error_type, message, tb = outcome
        raise SweepExecutionError(point, error_type, message, tb)

    def _run_parallel(
        self, tasks: Sequence[tuple], points: Sequence
    ) -> List[RunRecord]:
        records: List[Optional[RunRecord]] = [None] * len(tasks)
        failures: dict = {}  # index -> SweepExecutionError
        workers = min(self.jobs, len(tasks))
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_simulate_point, task): i for i, task in enumerate(tasks)
            }
            for fut in concurrent.futures.as_completed(futures):
                i = futures[fut]
                try:
                    records[i] = self._unwrap(fut.result(), points[i])
                except SweepExecutionError as exc:
                    failures[i] = exc  # drain the rest, then raise
        if failures:
            # Deterministic choice regardless of completion order: the
            # failure at the earliest point index.
            raise failures[min(failures)]
        return records  # type: ignore[return-value]

    # -- API -----------------------------------------------------------
    def run(
        self,
        spec: MachineSpec,
        points: Sequence,
        root: int = 0,
        placement="blocked",
        progress: Optional[Callable] = None,
        faults=None,
        reliable=None,
    ) -> List[RunRecord]:
        """Simulate every point; results align index-for-index with
        *points*. ``progress(point)`` fires once per point (cache hits
        included) in point order, before any simulation output is used.
        ``faults``/``reliable`` apply to every point and participate in
        the cache key (a chaos run never collides with a clean one)."""
        points = list(points)
        results: List[Optional[RunRecord]] = [None] * len(points)

        # Cache pass: satisfy what we can, collect the cold remainder.
        cold: List[int] = []
        keys: List[Optional[str]] = [None] * len(points)
        for i, point in enumerate(points):
            if progress is not None:
                progress(point)
            if self.cache is not None:
                keys[i] = cache_key(
                    spec,
                    point,
                    root=root,
                    placement=placement,
                    faults=faults,
                    reliable=reliable,
                )
                results[i] = self.cache.get(keys[i])
            if results[i] is None:
                cold.append(i)

        # Simulate the cold points, serially or fanned out.
        tasks = [(spec, points[i], root, placement, faults, reliable) for i in cold]
        if self.jobs == 1 or len(cold) <= 1:
            fresh = [
                self._unwrap(_simulate_point(task), points[i])
                for task, i in zip(tasks, cold)
            ]
        else:
            fresh = self._run_parallel(tasks, [points[i] for i in cold])

        for i, rec in zip(cold, fresh):
            results[i] = rec
            if self.cache is not None and keys[i] is not None:
                self.cache.put(keys[i], rec)
        return results  # type: ignore[return-value]
