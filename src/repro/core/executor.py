"""Parallel sweep execution over a process pool or the simulation service.

Each sweep point is an independent pure simulation, so the cross product
behind a figure is embarrassingly parallel. :class:`SweepExecutor` fans
points out over a :class:`concurrent.futures.ProcessPoolExecutor` — or,
when a persistent simulation server is up (``repro serve``), submits
them to its warm worker pool — and guarantees:

* **deterministic ordering** — results come back in the order the points
  were given, regardless of worker completion order;
* **identical records** — workers run the same ``simulate_bcast`` as the
  serial path, so ``jobs=1``, ``jobs=N`` and the service produce equal
  :class:`~repro.core.report.RunRecord` rows;
* **faithful failures** — a worker exception is captured worker-side and
  re-raised in the parent as
  :class:`~repro.errors.SweepExecutionError` (service-side:
  :class:`~repro.errors.ServiceJobError`, a subclass) with the offending
  point attached (arbitrary exceptions do not always survive pickling);
* **cache integration** — an optional
  :class:`~repro.core.diskcache.DiskCache` is consulted before
  simulating and populated afterwards, so only cold points cost CPU;
* **memo-friendly batching** — cold points are grouped by
  ``(algorithm, nranks)`` before fan-out and each group runs start to
  finish inside one worker, so the process-wide schedule/compile/solve
  memos hit across the group's size axis instead of being scattered
  over the pool.

``jobs=1`` (the default) never spawns processes — it is the exact serial
path the sweep driver always had, kept as the fallback for environments
where ``multiprocessing`` is unavailable or unwanted.
"""

from __future__ import annotations

import os
import signal
import traceback
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import SweepExecutionError
from ..machine import MachineSpec
from .api import simulate_bcast
from .diskcache import DiskCache, cache_key
from .report import RunRecord

__all__ = [
    "SweepExecutor",
    "resolve_jobs",
    "group_points",
    "CHAOS_CRASH_ENV",
]

#: Chaos-injection latch directory (service-chaos gate + crash tests).
#: When set, a worker about to simulate point ``(alg, nranks, nbytes)``
#: first checks ``$REPRO_CHAOS_CRASH/<alg>-<nranks>-<nbytes>``: a file
#: holding a positive integer N makes the worker decrement it and
#: SIGKILL itself — deterministically reproducing "this exact point
#: crashed its worker N times" without mocking the pool.
CHAOS_CRASH_ENV = "REPRO_CHAOS_CRASH"


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` argument: ``None``/1 → serial, 0/negative →
    one worker per CPU, otherwise the requested count."""
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _warm_worker() -> None:
    """Pool initializer: pay the heavy imports at worker birth, not on
    the first submitted batch (under ``spawn`` start methods the child
    would otherwise re-import numpy + the collectives registry inside
    the first job's critical path)."""
    from .. import collectives  # noqa: F401
    from ..sim import replay  # noqa: F401
    from . import api  # noqa: F401


def _chaos_crash_hook(point) -> None:
    """Kill this worker if a chaos latch names *point* (see
    :data:`CHAOS_CRASH_ENV`). No-op unless the env var is set."""
    latch_dir = os.environ.get(CHAOS_CRASH_ENV, "")
    if not latch_dir:
        return
    latch = (
        Path(latch_dir) / f"{point.algorithm}-{point.nranks}-{point.nbytes}"
    )
    try:
        remaining = int(latch.read_text(encoding="utf-8").strip())
    except (OSError, ValueError):
        return
    if remaining <= 0:
        return
    latch.write_text(str(remaining - 1), encoding="utf-8")
    os.kill(os.getpid(), signal.SIGKILL)


def _simulate_point(task):
    """Worker entry point: simulate one point, never raise.

    Returns ``("ok", record)`` or ``("err", type_name, message, tb)`` so
    failures cross the process boundary even when the original exception
    type does not pickle.
    """
    spec, point, root, placement, faults, reliable = task
    _chaos_crash_hook(point)
    try:
        rec = simulate_bcast(
            spec,
            nranks=point.nranks,
            nbytes=point.nbytes,
            algorithm=point.algorithm,
            root=root,
            placement=placement,
            faults=faults,
            reliable=reliable,
        )
        return ("ok", rec)
    except Exception as exc:  # noqa: BLE001 - serialised and re-raised in parent
        return ("err", type(exc).__name__, str(exc), traceback.format_exc())


def _simulate_batch(tasks: Sequence[tuple]) -> List[tuple]:
    """Worker entry point for one memo-coherent batch of points.

    Each point is wrapped individually, so one failing point never takes
    its batch siblings down with it.
    """
    return [_simulate_point(task) for task in tasks]


def group_points(points: Sequence, indices: Sequence[int], workers: int) -> List[List[int]]:
    """Partition *indices* into batches that keep worker memos hot.

    Points sharing ``(algorithm, nranks)`` extract/compile the same
    schedule family and solve the same contention structures, so they
    are batched together (in submission order, preserving the size
    axis). When that yields fewer batches than *workers*, the largest
    batches are split in half until the pool is saturated — memo
    coherence is worth nothing if half the workers sit idle.
    Deterministic: depends only on the points, their order and *workers*.
    """
    groups: Dict[tuple, List[int]] = {}
    order: List[tuple] = []
    for i in indices:
        key = (points[i].algorithm, points[i].nranks)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(i)
    batches = [groups[key] for key in order]
    while len(batches) < workers:
        largest = max(range(len(batches)), key=lambda b: len(batches[b]))
        batch = batches[largest]
        if len(batch) <= 1:
            break
        mid = (len(batch) + 1) // 2
        batches[largest : largest + 1] = [batch[:mid], batch[mid:]]
    return batches


class SweepExecutor:
    """Run sweep points serially, across a process pool, or on the
    persistent simulation service — with caching throughout.

    ``serve`` selects the service routing: ``None`` (default) submits to
    a server only when ``REPRO_SERVE`` asks for one and falls back to
    the in-process path when none is up; ``False`` never uses a server;
    an explicit address (``"host:port"``, a state-file path, or
    ``"auto"``) requires one and raises
    :class:`~repro.errors.ServiceUnavailableError` when unreachable.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        cache: Optional[DiskCache] = None,
        serve=None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.serve = serve

    # -- internals -----------------------------------------------------
    @staticmethod
    def _typed_error(point, error_type: str, message: str, tb: str = ""):
        """Map a wire/worker ``error_type`` back to the richest typed
        exception: quarantine and deadline failures keep their identity
        across the process (and service) boundary."""
        from ..errors import PoisonPointError, ServiceDeadlineError

        if error_type == "PoisonPointError":
            return PoisonPointError(point, error_type, message, tb)
        if error_type == "ServiceDeadlineError":
            return ServiceDeadlineError(point, error_type, message, tb)
        return SweepExecutionError(point, error_type, message, tb)

    @staticmethod
    def _unwrap(outcome, point) -> RunRecord:
        if outcome[0] == "ok":
            return outcome[1]
        _, error_type, message, tb = outcome
        raise SweepExecutor._typed_error(point, error_type, message, tb)

    def _run_parallel(
        self, tasks: Sequence[tuple], points: Sequence
    ) -> List[RunRecord]:
        """Fan out over a fault-tolerant pool: a SIGKILL'd worker costs a
        respawn and a re-dispatch of the in-flight batches, not the
        sweep; a point that keeps killing workers surfaces as a typed
        :class:`~repro.errors.PoisonPointError`."""
        from ..service.resilience import ResilientPool

        records: List[Optional[RunRecord]] = [None] * len(tasks)
        failures: dict = {}  # index -> SweepExecutionError
        workers = min(self.jobs, len(tasks))
        batches = group_points(
            [task[1] for task in tasks], list(range(len(tasks))), workers
        )
        task_map = dict(enumerate(tasks))

        def poison_key(i: int) -> str:
            p = points[i]
            return f"{p.algorithm}:{p.nranks}:{p.nbytes}"

        pool = ResilientPool(jobs=workers, initializer=_warm_worker)
        try:
            for i, outcome in pool.run(
                _simulate_batch, batches, task_map, poison_key=poison_key
            ):
                try:
                    records[i] = self._unwrap(outcome, points[i])
                except SweepExecutionError as exc:
                    failures[i] = exc  # drain the rest, then raise
        finally:
            pool.shutdown(wait=True)
        if failures:
            # Deterministic choice regardless of completion order: the
            # failure at the earliest point index.
            raise failures[min(failures)]
        return records  # type: ignore[return-value]

    def _run_service(
        self, client, spec, points: Sequence, cold: Sequence[int],
        root, placement, faults, reliable,
    ) -> List[RunRecord]:
        """Submit the cold points to a live server, index-aligned."""
        from ..errors import ServiceJobError

        records: List[Optional[RunRecord]] = [None] * len(cold)
        failures: dict = {}
        for local, outcome in client.sweep(
            spec,
            [points[i] for i in cold],
            root=root,
            placement=placement,
            faults=faults,
            reliable=reliable,
            # A cache-bypassing run must bypass the server's cache too,
            # or "cold" points could come back warm.
            cache=self.cache is not None,
        ):
            if outcome[0] == "ok":
                records[local] = outcome[1]
            else:
                _, error_type, message, tb = outcome
                # Quarantine/deadline failures keep their typed identity;
                # everything else becomes the generic service job error.
                if error_type in ("PoisonPointError", "ServiceDeadlineError"):
                    failures[local] = self._typed_error(
                        points[cold[local]], error_type, message, tb
                    )
                else:
                    failures[local] = ServiceJobError(
                        points[cold[local]], error_type, message, tb
                    )
        if failures:
            raise failures[min(failures)]
        missing = [i for i, rec in enumerate(records) if rec is None]
        if missing:
            raise ServiceJobError(
                points[cold[missing[0]]],
                "ServiceError",
                f"server returned no result for {len(missing)} point(s)",
            )
        return records  # type: ignore[return-value]

    def _service_client(self):
        """A connected client per the ``serve`` policy, or ``None``."""
        if self.serve is False:
            return None
        from ..service.client import connect_or_none

        return connect_or_none(self.serve)

    # -- API -----------------------------------------------------------
    def run(
        self,
        spec: MachineSpec,
        points: Sequence,
        root: int = 0,
        placement="blocked",
        progress: Optional[Callable] = None,
        faults=None,
        reliable=None,
    ) -> List[RunRecord]:
        """Simulate every point; results align index-for-index with
        *points*. ``progress(point)`` fires once per point (cache hits
        included) in point order, before any simulation output is used.
        ``faults``/``reliable`` apply to every point and participate in
        the cache key (a chaos run never collides with a clean one)."""
        points = list(points)
        results: List[Optional[RunRecord]] = [None] * len(points)

        # Cache pass: satisfy what we can, collect the cold remainder.
        cold: List[int] = []
        keys: List[Optional[str]] = [None] * len(points)
        for i, point in enumerate(points):
            if progress is not None:
                progress(point)
            if self.cache is not None:
                keys[i] = cache_key(
                    spec,
                    point,
                    root=root,
                    placement=placement,
                    faults=faults,
                    reliable=reliable,
                )
                results[i] = self.cache.get(keys[i])
            if results[i] is None:
                cold.append(i)

        # Simulate the cold points: service, pool fan-out, or serial.
        tasks = [(spec, points[i], root, placement, faults, reliable) for i in cold]
        client = self._service_client() if cold else None
        if client is not None:
            with client:
                fresh = self._run_service(
                    client, spec, points, cold, root, placement, faults, reliable
                )
        elif self.jobs == 1 or len(cold) <= 1:
            fresh = [
                self._unwrap(_simulate_point(task), points[i])
                for task, i in zip(tasks, cold)
            ]
        else:
            fresh = self._run_parallel(tasks, [points[i] for i in cold])

        for i, rec in zip(cold, fresh):
            results[i] = rec
            if self.cache is not None and keys[i] is not None:
                self.cache.put(keys[i], rec)
        return results  # type: ignore[return-value]
