"""Closed-form and measured traffic accounting.

Section IV of the paper argues entirely in transfer counts; this module
provides those numbers three ways, which the tests cross-validate:

1. closed form (this file's formulas),
2. schedule extraction (running the real algorithm generators through
   the zero-time executor),
3. DES counters (the timed run's :class:`TrafficCounters`).

Key formulas (ring phase only, P >= 2):

* native:  ``P * (P - 1)`` transfers;
* tuned:   ``P * (P - 1) - (S - P)`` where ``S = sum of binomial-subtree
  sizes`` — every non-leaf subtree root of size ``e`` lets its left
  neighbour skip ``e - 1`` sends;
* both phases also pay the binomial scatter's ``P - 1`` transfers
  (fewer when trailing chunks are empty).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..collectives import (
    extract_schedule,
    get_algorithm,
    subtree_chunks,
)
from ..collectives.scatter import span_bytes
from ..errors import CollectiveError

__all__ = [
    "subtree_sum",
    "ring_transfers_native",
    "ring_transfers_tuned",
    "transfers_saved",
    "scatter_transfers",
    "total_transfers",
    "ring_bytes_native",
    "ring_bytes_tuned",
    "TrafficReport",
    "measure_traffic",
]


def _check_p(nprocs: int) -> None:
    if nprocs < 1:
        raise CollectiveError(f"need nprocs >= 1, got {nprocs}")


def subtree_sum(nprocs: int) -> int:
    """S = sum over ranks of binomial-subtree chunk counts."""
    _check_p(nprocs)
    return sum(subtree_chunks(r, nprocs) for r in range(nprocs))


def ring_transfers_native(nprocs: int) -> int:
    """Enclosed-ring transfer count: P x (P - 1)."""
    _check_p(nprocs)
    return nprocs * (nprocs - 1)


def transfers_saved(nprocs: int) -> int:
    """Transfers the tuned ring eliminates: S - P (= 12 at P=8, 15 at P=10)."""
    _check_p(nprocs)
    return subtree_sum(nprocs) - nprocs


def ring_transfers_tuned(nprocs: int) -> int:
    """Non-enclosed-ring transfer count."""
    return ring_transfers_native(nprocs) - transfers_saved(nprocs)


def scatter_transfers(nprocs: int, nbytes: Optional[int] = None) -> int:
    """Binomial-scatter transfer count.

    Structurally P - 1; with a concrete *nbytes*, zero-byte subtrees are
    skipped (MPICH behaviour), so the count can be lower for tiny
    buffers.
    """
    _check_p(nprocs)
    if nprocs == 1:
        return 0
    if nbytes is None:
        return nprocs - 1
    count = 0
    # A subtree rooted at relative rank r receives iff its span holds bytes.
    for r in range(1, nprocs):
        if span_bytes(nbytes, nprocs, r, subtree_chunks(r, nprocs)) > 0:
            count += 1
    return count


def total_transfers(nprocs: int, tuned: bool, nbytes: Optional[int] = None) -> int:
    """Scatter + ring transfers for the full broadcast."""
    _check_p(nprocs)
    if nprocs == 1:
        return 0
    ring = ring_transfers_tuned(nprocs) if tuned else ring_transfers_native(nprocs)
    return scatter_transfers(nprocs, nbytes) + ring


def ring_bytes_native(nprocs: int, nbytes: int) -> int:
    """Wire bytes of the enclosed ring: every chunk travels P-1 hops."""
    _check_p(nprocs)
    return (nprocs - 1) * nbytes


def ring_bytes_tuned(nprocs: int, nbytes: int) -> int:
    """Wire bytes of the tuned ring.

    A receive-only endpoint with role step ``s`` skips its last ``s - 1``
    sends; the skipped send at ring iteration ``i`` would have carried
    chunk ``(rel - i + 1) mod P``.
    """
    from ..collectives import tuned_ring_role

    _check_p(nprocs)
    total = ring_bytes_native(nprocs, nbytes)
    for rel in range(nprocs):
        step, flag = tuned_ring_role(rel, nprocs)
        if flag != 1:
            continue
        for i in range(nprocs - step + 1, nprocs):
            chunk = (rel - i + 1) % nprocs
            total -= span_bytes(nbytes, nprocs, chunk, 1)
    return total


@dataclass(frozen=True)
class TrafficReport:
    """Measured traffic of one algorithm at one point."""

    algorithm: str
    nprocs: int
    nbytes: int
    transfers: int
    ring_transfers: int
    scatter_transfers: int
    wire_bytes: int
    intra: Optional[int] = None
    inter: Optional[int] = None


def measure_traffic(
    algorithm: str, nprocs: int, nbytes: int, root: int = 0, placement=None
) -> TrafficReport:
    """Extract the real schedule and tally its traffic."""
    algo = get_algorithm(algorithm)

    def factory(ctx):
        def program():
            return (yield from algo(ctx, nbytes, root))

        return program()

    schedule = extract_schedule(nprocs, factory, placement=placement)
    ring = sum(1 for s in schedule.sends if s.tag == 2)
    rd = sum(1 for s in schedule.sends if s.tag == 3)
    scatter = sum(1 for s in schedule.sends if s.tag == 1)
    intra = inter = None
    if placement is not None:
        intra, inter = schedule.transfers_by_level()
    return TrafficReport(
        algorithm=algorithm,
        nprocs=nprocs,
        nbytes=nbytes,
        transfers=schedule.transfers,
        ring_transfers=ring + rd,
        scatter_transfers=scatter,
        wire_bytes=schedule.total_bytes,
        intra=intra,
        inter=inter,
    )
