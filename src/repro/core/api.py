"""High-level public API: simulate and compare broadcast algorithms.

This is the façade a downstream user starts from::

    from repro import core, machine

    spec = machine.hornet()
    run = core.simulate_bcast(spec, nranks=64, nbytes="1MiB",
                              algorithm="scatter_ring_opt")
    print(run.describe())

    cmp = core.compare_bcast(spec, nranks=64, nbytes="1MiB")
    print(cmp.describe())
"""

from __future__ import annotations

from typing import Optional, Union

from ..collectives import (
    ALGORITHMS,
    ALLGATHER_ALGORITHMS,
    bcast_smp,
    choose_bcast_name,
    get_algorithm,
)
from ..collectives.barrier import barrier
from ..collectives.schedule import extract_schedule
from ..errors import ConfigurationError, ReplayUnsupportedError
from ..machine import Machine, MachineSpec
from ..mpi import Job, RealBuffer
from ..sim import Trace
from ..sim.faults import FaultPlan
from ..sim.flows import solver_mode
from ..sim.replay import ReplayEngine, compile_schedule, engine_mode
from ..util import parse_size
from .report import ComparisonRecord, RunRecord

__all__ = [
    "simulate_bcast",
    "compare_bcast",
    "validate_bcast",
    "simulate_allgather",
    "available_algorithms",
]


def available_algorithms() -> list:
    """Registry names accepted by ``algorithm=`` (plus ``"auto"``/``"smp"``)."""
    return sorted(ALGORITHMS) + ["auto", "auto_tuned", "smp", "smp_opt"]


def _make_machine(spec_or_machine, nranks: int, placement) -> Machine:
    if isinstance(spec_or_machine, Machine):
        if spec_or_machine.nranks != nranks:
            raise ConfigurationError(
                f"machine hosts {spec_or_machine.nranks} ranks, requested {nranks}"
            )
        return spec_or_machine
    if isinstance(spec_or_machine, MachineSpec):
        return Machine(spec_or_machine, nranks=nranks, placement=placement)
    raise ConfigurationError(
        f"expected MachineSpec or Machine, got {type(spec_or_machine).__name__}"
    )


def _resolve_algorithm(
    name: str, nbytes: int, nranks: int, machine: Machine, faults=None
):
    """Map an ``algorithm=`` argument to a program-producing callable.

    ``faults`` only affects the ``auto``/``auto_tuned`` rows: the
    selector degrades the ring regime to the binomial tree when the plan
    has a crashed rank (an explicit algorithm name is always honoured).
    """
    if name == "auto":
        name = choose_bcast_name(nbytes, nranks, tuned=False, faults=faults)
    elif name == "auto_tuned":
        name = choose_bcast_name(nbytes, nranks, tuned=True, faults=faults)
    if name in ("smp", "smp_opt"):
        inner = get_algorithm(
            "scatter_ring_opt" if name == "smp_opt" else "scatter_ring_native"
        )
        label = name

        def algo(ctx, nbytes, root):
            return bcast_smp(
                ctx, nbytes, root, placement=machine.placement, inner=inner
            )

        return label, algo
    return name, get_algorithm(name)


# Process-wide memo of compiled replay schedules. Extraction dominates
# the replay path's cost, and sweep/figure/gate drivers revisit the same
# (algorithm, P, size) points many times per process; the compiled form
# is machine-independent, so one entry serves every spec. The key folds
# in the placement's exact node map — the only machine input an
# algorithm can close over (``smp``/``smp_opt``).
_REPLAY_MEMO: dict = {}
_REPLAY_MEMO_CAP = 256


def _is_static(machine: Machine, faults, reliable, trace, validate: bool) -> bool:
    """True when the run's timing is statically determined (replayable).

    Fault injection, the ARQ transport, tracing, data validation and
    stochastic latencies all need the coroutine DES.
    """
    return (
        (faults is None or faults.is_zero)
        and not reliable
        and trace is None
        and not validate
        and machine.spec.jitter_sigma == 0.0
        and machine.spec.queueing_kappa == 0.0
    )


def _replay_compiled(kind: str, machine: Machine, factory, key_tail: tuple):
    """Extract + compile *factory*'s schedule, memoised per process."""
    placement = machine.placement
    key = (
        kind,
        machine.nranks,
        key_tail,
        tuple(placement.node_of(r) for r in range(machine.nranks)),
    )
    compiled = _REPLAY_MEMO.get(key)
    if compiled is None:
        schedule = extract_schedule(machine.nranks, factory, placement=placement)
        compiled = compile_schedule(schedule)
        if len(_REPLAY_MEMO) < _REPLAY_MEMO_CAP:
            _REPLAY_MEMO[key] = compiled
    return compiled


def _dispatch(machine, factory, kind, key_tail, working_set, *, static=True):
    """Run *factory* on the engine ``REPRO_ENGINE`` selects.

    Returns ``(result, engine_name)`` where *result* quacks like a
    ``JobResult`` (``time``/``rank_finish_times``/``counters``/
    ``solver_stats``). ``static=False`` marks configurations the replay
    engine cannot express; ``auto`` then runs the DES and a forced
    ``replay`` fails loudly instead of silently changing semantics.
    """
    mode = engine_mode()
    if solver_mode() != "incremental":
        # REPRO_SOLVER=reference is the solver differential-testing
        # escape hatch; replay has its own data plane and cannot honour
        # it, so the request routes to the DES.
        if mode == "replay":
            raise ConfigurationError(
                "REPRO_ENGINE=replay cannot honour REPRO_SOLVER="
                f"{solver_mode()!r}: the replay engine has its own "
                "data plane; unset one of the two"
            )
        return None, "des"
    if mode != "des" and static:
        try:
            compiled = _replay_compiled(kind, machine, factory, key_tail)
            engine = ReplayEngine(machine, compiled, working_set=working_set)
            return engine.run(), "replay"
        except ReplayUnsupportedError as exc:
            if mode == "replay":
                raise ConfigurationError(
                    f"REPRO_ENGINE=replay but the schedule cannot be "
                    f"replayed: {exc}"
                ) from exc
    elif mode == "replay":
        raise ConfigurationError(
            "REPRO_ENGINE=replay requires a static run: no fault plan, "
            "no reliable transport, no trace, no validation and "
            "deterministic latencies (jitter_sigma=queueing_kappa=0)"
        )
    return None, "des"


def _solver_fields(stats) -> dict:
    """RunRecord kwargs for a run's fluid-solver telemetry (whole-run
    totals, not divided by ``iterations`` — the solver cost is per run)."""
    if stats is None:
        return {}
    return {
        "solver_mode": stats.mode,
        "solver_solves": stats.solves,
        "solver_rounds": stats.rounds,
        "solver_components": stats.components_solved,
        "solver_max_component": stats.max_component,
        "solver_flows_advanced": stats.flows_advanced,
        "solver_time_s": stats.solve_time_s,
    }


def simulate_bcast(
    spec_or_machine: Union[MachineSpec, Machine],
    nranks: int,
    nbytes: Union[int, str],
    algorithm: str = "auto",
    root: int = 0,
    placement="blocked",
    validate: bool = False,
    trace: Optional[Trace] = None,
    iterations: int = 1,
    faults: Optional[FaultPlan] = None,
    reliable=None,
) -> RunRecord:
    """Simulate one broadcast and return its :class:`RunRecord`.

    ``algorithm`` is a registry name, ``"auto"`` (MPICH3 selection),
    ``"auto_tuned"`` (MPICH3 selection with the paper's tuned ring), or
    ``"smp"``/``"smp_opt"`` (three-phase multi-core-aware broadcast).
    ``validate=True`` moves real bytes and asserts every rank ends with
    the root's payload — slower; use for correctness checks, not sweeps.
    ``iterations > 1`` mirrors the paper's measurement loop (a
    dissemination barrier before each broadcast, 100 repetitions); the
    reported ``time`` is then the per-iteration average and message
    counts are per iteration (barrier tokens excluded from bytes but
    counted as messages / iterations rounding down).

    ``faults`` attaches a :class:`~repro.sim.faults.FaultPlan`;
    ``reliable`` opts into the ARQ transport (``True`` or a
    :class:`~repro.mpi.reliable.ReliableConfig`). When ``reliable`` is
    left ``None`` it defaults to on exactly when a non-zero fault plan
    is given — injecting faults without a recovery protocol is a recipe
    for a deadlock, which stays available explicitly via
    ``reliable=False``. Chaos telemetry lands in the record as
    whole-run totals (not divided by ``iterations``).
    """
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
    if reliable is None:
        reliable = faults is not None and not faults.is_zero
    size = parse_size(nbytes)
    machine = _make_machine(spec_or_machine, nranks, placement)
    label, algo = _resolve_algorithm(algorithm, size, nranks, machine, faults=faults)

    fill = 0xA5
    buffers = None
    if validate:
        buffers = [
            RealBuffer(size, fill=(fill if r == root else 0)) for r in range(nranks)
        ]

    def factory(ctx):
        def program():
            last = None
            for _ in range(iterations):
                if iterations > 1:
                    yield from barrier(ctx)
                last = yield from algo(ctx, size, root)
            return last

        return program()

    result, engine = _dispatch(
        machine,
        factory,
        "bcast",
        (label, size, root, iterations),
        size,
        static=_is_static(machine, faults, reliable, trace, validate),
    )
    if result is None:
        result = Job(
            machine,
            factory,
            buffers=buffers,
            trace=trace,
            working_set=size,
            faults=faults,
            reliable=reliable,
        ).run()

    if validate:
        for rank, buf in enumerate(buffers):
            if not (buf.array == fill).all():
                raise ConfigurationError(
                    f"broadcast validation failed: rank {rank} buffer incomplete"
                )

    c = result.counters
    return RunRecord(
        algorithm=label,
        nranks=nranks,
        nbytes=size,
        root=root,
        time=result.time / iterations,
        messages=c.messages // iterations,
        bytes_on_wire=c.bytes // iterations,
        intra_messages=c.intra_messages // iterations,
        inter_messages=c.inter_messages // iterations,
        machine=machine.spec.name,
        engine=engine,
        drops_injected=c.drops_injected,
        retrans_messages=c.retrans_messages,
        retrans_bytes=c.retrans_bytes,
        ack_messages=c.ack_messages,
        ack_bytes=c.ack_bytes,
        timeouts=c.timeouts,
        **_solver_fields(result.solver_stats),
    )


def compare_bcast(
    spec: MachineSpec,
    nranks: int,
    nbytes: Union[int, str],
    root: int = 0,
    placement="blocked",
    native: str = "scatter_ring_native",
    opt: str = "scatter_ring_opt",
    faults: Optional[FaultPlan] = None,
    reliable=None,
) -> ComparisonRecord:
    """Run the native and tuned designs at one point (paper-style A/B).

    Fresh machines are built per run so no fluid-resource state leaks
    between the two measurements. ``faults``/``reliable`` apply to both
    runs (see :func:`simulate_bcast`).
    """
    size = parse_size(nbytes)
    rec_native = simulate_bcast(
        spec, nranks, size, algorithm=native, root=root, placement=placement,
        faults=faults, reliable=reliable,
    )
    rec_opt = simulate_bcast(
        spec, nranks, size, algorithm=opt, root=root, placement=placement,
        faults=faults, reliable=reliable,
    )
    return ComparisonRecord(nranks=nranks, nbytes=size, native=rec_native, opt=rec_opt)


def validate_bcast(
    spec: MachineSpec,
    nranks: int,
    nbytes: Union[int, str],
    algorithm: str = "auto_tuned",
    root: int = 0,
) -> RunRecord:
    """Shorthand for a data-validating run (real buffers)."""
    return simulate_bcast(
        spec, nranks, nbytes, algorithm=algorithm, root=root, validate=True
    )


def simulate_allgather(
    spec_or_machine: Union[MachineSpec, Machine],
    nranks: int,
    block_nbytes: Union[int, str],
    algorithm: str = "ring",
    placement="blocked",
    trace: Optional[Trace] = None,
) -> RunRecord:
    """Simulate a standalone ``MPI_Allgather`` (the operation the paper
    tunes inside broadcast), with ``algorithm`` one of
    ``ring | rdbl | bruck``. Each rank contributes ``block_nbytes``;
    the record's ``nbytes`` is the gathered total (P x block)."""
    block = parse_size(block_nbytes)
    machine = _make_machine(spec_or_machine, nranks, placement)
    try:
        algo = ALLGATHER_ALGORITHMS[algorithm]
    except KeyError:
        raise ConfigurationError(
            f"unknown allgather algorithm {algorithm!r}; "
            f"known: {sorted(ALLGATHER_ALGORITHMS)}"
        ) from None

    def factory(ctx):
        def program():
            return (yield from algo(ctx, block))

        return program()

    total = block * nranks
    result, engine = _dispatch(
        machine,
        factory,
        "allgather",
        (algorithm, block),
        total,
        static=_is_static(machine, None, None, trace, False),
    )
    if result is None:
        result = Job(machine, factory, trace=trace, working_set=total).run()
    c = result.counters
    return RunRecord(
        algorithm=f"allgather_{algorithm}",
        nranks=nranks,
        nbytes=total,
        root=0,
        time=result.time,
        messages=c.messages,
        bytes_on_wire=c.bytes,
        intra_messages=c.intra_messages,
        inter_messages=c.inter_messages,
        machine=machine.spec.name,
        engine=engine,
        **_solver_fields(result.solver_stats),
    )
