"""Fabric topology base class and the ideal/aggregate crossbar.

A topology answers one question for the flow model: *which shared fabric
resources does a transfer between two nodes cross, and how many hops is
it?* Per-node NICs and memory engines are owned by
:class:`~repro.machine.machine.Machine`, so topology resources represent
only the switching fabric between NICs.

Every concrete topology also exposes itself as a :mod:`networkx` digraph
(:meth:`Topology.graph`) whose edges carry the backing
:class:`~repro.sim.resources.Resource`; tests cross-validate the routing
tables against shortest paths on that graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from ..errors import MachineError
from ..sim import Resource

__all__ = ["Route", "Topology", "CrossbarTopology"]


@dataclass(frozen=True)
class Route:
    """Fabric crossing for one (src_node, dst_node) pair."""

    hops: int
    resources: Tuple[Resource, ...]


class Topology:
    """Base class: validates node ids and caches computed routes."""

    name = "abstract"

    def __init__(self, nodes: int, nic_bw: float):
        if nodes < 1:
            raise MachineError(f"topology needs nodes >= 1, got {nodes}")
        if nic_bw <= 0:
            raise MachineError(f"topology needs nic_bw > 0, got {nic_bw}")
        self.nodes = nodes
        self.nic_bw = float(nic_bw)
        self._route_cache: Dict[Tuple[int, int], Route] = {}

    # -- public API --------------------------------------------------
    def route(self, src_node: int, dst_node: int) -> Route:
        """Fabric route between two distinct nodes (cached)."""
        self._check_node(src_node)
        self._check_node(dst_node)
        if src_node == dst_node:
            raise MachineError(
                "topology.route is for inter-node transfers; "
                f"both endpoints are node {src_node}"
            )
        key = (src_node, dst_node)
        cached = self._route_cache.get(key)
        if cached is None:
            cached = self._compute_route(src_node, dst_node)
            self._route_cache[key] = cached
        return cached

    def all_resources(self) -> List[Resource]:
        """Every fabric resource, deterministically ordered."""
        raise NotImplementedError

    def graph(self) -> "nx.DiGraph":
        """The fabric as a digraph; edge attr ``resource`` may be None."""
        raise NotImplementedError

    def _compute_route(self, src_node: int, dst_node: int) -> Route:
        raise NotImplementedError

    # -- helpers -------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.nodes:
            raise MachineError(f"node {node} outside [0, {self.nodes})")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} nodes={self.nodes}>"


class CrossbarTopology(Topology):
    """Ideal single-switch fabric, optionally with an aggregate core cap.

    ``core_taper = None`` (default) models a full-bisection crossbar: the
    only inter-node bottlenecks are the per-node NICs. With a taper
    ``t``, one aggregate core resource of capacity ``t * nodes * nic_bw``
    is shared by *all* inter-node flows — the simplest way to express
    "the network core is provisioned below full bisection", which is
    what makes removing redundant ring transfers pay off at scale.
    """

    name = "crossbar"

    def __init__(self, nodes: int, nic_bw: float, core_taper: float = None):
        super().__init__(nodes, nic_bw)
        if core_taper is not None and not 0 < core_taper:
            raise MachineError(f"core_taper must be positive, got {core_taper}")
        self.core_taper = core_taper
        self.core: Resource = None
        if core_taper is not None:
            self.core = Resource(
                "core", core_taper * nodes * nic_bw, kind="fabric-core"
            )

    def _compute_route(self, src_node: int, dst_node: int) -> Route:
        resources = (self.core,) if self.core is not None else ()
        return Route(hops=2, resources=resources)

    def all_resources(self) -> List[Resource]:
        return [self.core] if self.core is not None else []

    def graph(self) -> "nx.DiGraph":
        g = nx.DiGraph()
        g.add_node("core", kind="switch")
        for n in range(self.nodes):
            g.add_node(("node", n), kind="node")
            g.add_edge(("node", n), "core", resource=self.core)
            g.add_edge("core", ("node", n), resource=self.core)
        return g
