"""Machine specification: the calibrated constants of the cluster model.

A :class:`MachineSpec` collects everything the fluid network model needs
to know about a cluster — the multi-core layout, the intra-node (shared
memory) and inter-node (NIC + fabric) bandwidths and latencies, and the
host-side per-message costs. Presets approximating the paper's two
evaluation systems live in :mod:`repro.machine.presets`.

All bandwidths are bytes/second, all latencies seconds, all sizes bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import MachineError
from ..util import GIB, KIB, MIB

__all__ = ["MachineSpec"]


@dataclass(frozen=True)
class MachineSpec:
    """Immutable description of a simulated cluster.

    Parameters mirror the physical effects Section IV of the paper argues
    the tuned broadcast exploits:

    * ``cpu_copy_bw`` — per-rank message-processing engine. Every
      transfer a rank sources or sinks crosses this resource, so a rank
      doing a full-duplex ``MPI_Sendrecv`` splits it between two flows
      ("cpu-interference" in the paper's words).
    * ``mem_bw`` — per-node memory engine shared by all copies touching
      the node (intra-node transfers cross it once; NIC traffic stages
      through it too).
    * ``nic_bw`` — per-node injection/ejection capacity, one resource per
      direction.
    * topology link capacities — tapered core bandwidth; the source of
      inter-node congestion ("the quantity of data transmission"
      degrading the network).
    * ``send_overhead``/``recv_overhead`` — fixed per-message host costs,
      the alpha-side analogue of the above.
    """

    name: str = "generic"

    # -- layout -----------------------------------------------------------
    nodes: int = 16
    cores_per_node: int = 24

    # -- latency ----------------------------------------------------------
    alpha_intra: float = 0.6e-6
    alpha_inter: float = 1.8e-6
    hop_latency: float = 0.3e-6
    send_overhead: float = 0.4e-6
    recv_overhead: float = 0.4e-6
    rendezvous_rtt: float = 2.0  # handshake cost, in units of alpha

    # -- bandwidth ---------------------------------------------------------
    cpu_copy_bw: float = 5.0 * GIB
    mem_bw: float = 40.0 * GIB
    nic_bw: float = 10.0 * GIB

    # -- protocol -----------------------------------------------------------
    eager_threshold: int = 8 * KIB

    # -- cache / memory-capacity effects ------------------------------------
    l3_bytes: int = 30 * MIB
    l3_penalty: float = 0.55  # copy-bandwidth multiplier past the L3
    mem_pressure_bytes: int = 1 * GIB
    mem_penalty: float = 0.7  # additional multiplier under memory pressure

    # -- topology ------------------------------------------------------------
    topology: str = "crossbar"
    topology_params: dict = field(default_factory=dict)

    # -- optional second-order effects -----------------------------------------
    jitter_sigma: float = 0.0
    seed: int = 0
    # Queueing-delay extension (default off): every launched message pays
    # extra latency kappa * L * m / C, with L the flow count already on
    # the message's most-loaded resource and C its bottleneck capacity —
    # a deterministic stand-in for the congestion-variance tails a fluid
    # model smooths out (see docs/model.md and EXPERIMENTS.md deviations).
    queueing_kappa: float = 0.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise MachineError(f"need at least one node, got {self.nodes}")
        if self.cores_per_node < 1:
            raise MachineError(
                f"need at least one core per node, got {self.cores_per_node}"
            )
        for attr in (
            "alpha_intra",
            "alpha_inter",
            "hop_latency",
            "send_overhead",
            "recv_overhead",
            "rendezvous_rtt",
            "jitter_sigma",
            "queueing_kappa",
        ):
            if getattr(self, attr) < 0:
                raise MachineError(f"{attr} must be >= 0")
        for attr in ("cpu_copy_bw", "mem_bw", "nic_bw"):
            if getattr(self, attr) <= 0:
                raise MachineError(f"{attr} must be positive")
        if self.eager_threshold < 0:
            raise MachineError("eager_threshold must be >= 0")
        for attr in ("l3_penalty", "mem_penalty"):
            if not 0 < getattr(self, attr) <= 1:
                raise MachineError(f"{attr} must be in (0, 1]")
        if self.l3_bytes <= 0 or self.mem_pressure_bytes <= 0:
            raise MachineError("cache thresholds must be positive")

    # -- derived -----------------------------------------------------------
    @property
    def total_cores(self) -> int:
        """Maximum number of ranks the machine can host."""
        return self.nodes * self.cores_per_node

    def with_(self, **changes) -> "MachineSpec":
        """A copy with the given fields replaced (ablation helper)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human summary used by benchmark headers."""
        return (
            f"{self.name}: {self.nodes} nodes x {self.cores_per_node} cores, "
            f"topology={self.topology}, nic={self.nic_bw / GIB:.1f}GiB/s, "
            f"mem={self.mem_bw / GIB:.1f}GiB/s, copy={self.cpu_copy_bw / GIB:.1f}GiB/s"
        )
