"""Cache and memory-capacity effectiveness model.

Figure 6 of the paper shows two bandwidth knees that have nothing to do
with the algorithm: a drop around 3 MiB at 256 processes "due to cache
effects" and a drop past ~4 MiB at 16 processes "attributed to the
limited memory capacity". We model both as a multiplicative penalty on
the per-rank copy bandwidth as a function of the broadcast *working set*
(the full source-buffer size):

* below the L3 capacity the multiplier is 1;
* between ``l3_bytes`` and ``2 x l3_bytes`` it ramps smoothly down to
  ``l3_penalty`` (caches degrade gradually, not as a step);
* past ``mem_pressure_bytes`` an additional ``mem_penalty`` ramp applies.

The working set seen by each rank is the buffer size times the number of
ranks co-located on its node (they all stream their own copy of the
buffer through the shared LLC), which is why the knee appears earlier at
higher process counts — exactly the paper's 3 MiB @ 256 vs 4 MiB @ 16
ordering.
"""

from __future__ import annotations

from ..errors import MachineError
from .spec import MachineSpec

__all__ = ["copy_effectiveness", "working_set_bytes"]


def _ramp(x: float, start: float, end: float, floor: float) -> float:
    """Smoothstep from 1.0 at *start* down to *floor* at *end*."""
    if x <= start:
        return 1.0
    if x >= end:
        return floor
    t = (x - start) / (end - start)
    smooth = t * t * (3.0 - 2.0 * t)
    return 1.0 - (1.0 - floor) * smooth


def working_set_bytes(buffer_bytes: int, ranks_on_node: int) -> int:
    """Aggregate cache footprint on a node during a broadcast."""
    if buffer_bytes < 0:
        raise MachineError(f"buffer_bytes must be >= 0, got {buffer_bytes}")
    if ranks_on_node < 1:
        raise MachineError(f"ranks_on_node must be >= 1, got {ranks_on_node}")
    return buffer_bytes * ranks_on_node


def copy_effectiveness(spec: MachineSpec, working_set: int) -> float:
    """Copy-bandwidth multiplier in (0, 1] for the given working set."""
    if working_set < 0:
        raise MachineError(f"working_set must be >= 0, got {working_set}")
    eff = _ramp(float(working_set), spec.l3_bytes, 2.0 * spec.l3_bytes, spec.l3_penalty)
    eff *= _ramp(
        float(working_set),
        spec.mem_pressure_bytes,
        2.0 * spec.mem_pressure_bytes,
        spec.mem_penalty,
    )
    return eff
