"""Cluster machine model: specs, topologies, placement, cache effects."""

from .spec import MachineSpec
from .cache import copy_effectiveness, working_set_bytes
from .placement import Placement, blocked, round_robin, custom, make_placement
from .topology import Route, Topology, CrossbarTopology
from .fattree import FatTreeTopology
from .dragonfly import DragonflyTopology
from .graphtopo import GraphTopology, node_key
from .machine import Machine, TransferPlan, build_topology
from .presets import hornet, laki, ideal

__all__ = [
    "MachineSpec",
    "copy_effectiveness",
    "working_set_bytes",
    "Placement",
    "blocked",
    "round_robin",
    "custom",
    "make_placement",
    "Route",
    "Topology",
    "CrossbarTopology",
    "FatTreeTopology",
    "DragonflyTopology",
    "GraphTopology",
    "node_key",
    "Machine",
    "TransferPlan",
    "build_topology",
    "hornet",
    "laki",
    "ideal",
]
