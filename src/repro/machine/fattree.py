"""Two-level fat-tree fabric (the "Laki" InfiniBand-style topology).

Nodes are grouped ``radix`` per leaf switch; each leaf owns one tapered
uplink and one downlink to an ideal spine. Transfers under the same leaf
cross no shared fabric resource (the leaf switch is non-blocking);
transfers between leaves cross the source leaf's uplink and the
destination leaf's downlink. The taper below 1.0 is what creates core
contention.
"""

from __future__ import annotations

from typing import List

import networkx as nx

from ..errors import MachineError
from ..sim import Resource
from .topology import Route, Topology

__all__ = ["FatTreeTopology"]


class FatTreeTopology(Topology):
    """Leaf/spine fat tree with per-leaf tapered uplinks."""

    name = "fattree"

    def __init__(
        self,
        nodes: int,
        nic_bw: float,
        radix: int = 16,
        uplink_taper: float = 0.5,
    ):
        super().__init__(nodes, nic_bw)
        if radix < 1:
            raise MachineError(f"fat-tree radix must be >= 1, got {radix}")
        if uplink_taper <= 0:
            raise MachineError(f"uplink_taper must be positive, got {uplink_taper}")
        self.radix = radix
        self.uplink_taper = uplink_taper
        self.n_leaves = -(-nodes // radix)
        uplink_cap = uplink_taper * radix * nic_bw
        self.uplinks = [
            Resource(f"leaf{l}.up", uplink_cap, kind="fabric-uplink")
            for l in range(self.n_leaves)
        ]
        self.downlinks = [
            Resource(f"leaf{l}.down", uplink_cap, kind="fabric-downlink")
            for l in range(self.n_leaves)
        ]

    def leaf_of(self, node: int) -> int:
        """Leaf switch hosting *node*."""
        self._check_node(node)
        return node // self.radix

    def _compute_route(self, src_node: int, dst_node: int) -> Route:
        src_leaf = self.leaf_of(src_node)
        dst_leaf = self.leaf_of(dst_node)
        if src_leaf == dst_leaf:
            return Route(hops=2, resources=())
        return Route(
            hops=4,
            resources=(self.uplinks[src_leaf], self.downlinks[dst_leaf]),
        )

    def all_resources(self) -> List[Resource]:
        out: List[Resource] = []
        for l in range(self.n_leaves):
            out.append(self.uplinks[l])
            out.append(self.downlinks[l])
        return out

    def graph(self) -> "nx.DiGraph":
        g = nx.DiGraph()
        g.add_node("spine", kind="switch")
        for l in range(self.n_leaves):
            leaf = ("leaf", l)
            g.add_node(leaf, kind="switch")
            g.add_edge(leaf, "spine", resource=self.uplinks[l])
            g.add_edge("spine", leaf, resource=self.downlinks[l])
        for n in range(self.nodes):
            g.add_node(("node", n), kind="node")
            leaf = ("leaf", self.leaf_of(n))
            g.add_edge(("node", n), leaf, resource=None)
            g.add_edge(leaf, ("node", n), resource=None)
        return g
