"""Simplified dragonfly fabric (the "Hornet" Cray Aries-style topology).

Nodes are partitioned into groups of ``group_size``. Each group owns

* a local crossbar resource shared by every flow entering or leaving any
  node of the group (Aries router/backplane capacity), and
* tapered global ingress/egress resources crossed by inter-group flows
  (the dragonfly's all-to-all optical links, aggregated per group).

Routes: same group = 1 fabric hop over the local crossbar; different
groups = local(src) -> global-out(src) -> global-in(dst) -> local(dst).
Adaptive/indirect routing is out of scope (DESIGN.md §7); the aggregate
per-group global capacity captures the contention that matters for the
broadcast study.
"""

from __future__ import annotations

from typing import List

import networkx as nx

from ..errors import MachineError
from ..sim import Resource
from .topology import Route, Topology

__all__ = ["DragonflyTopology"]


class DragonflyTopology(Topology):
    """Group-based dragonfly with aggregate per-group global links."""

    name = "dragonfly"

    def __init__(
        self,
        nodes: int,
        nic_bw: float,
        group_size: int = 4,
        local_factor: float = 2.0,
        global_taper: float = 0.35,
    ):
        super().__init__(nodes, nic_bw)
        if group_size < 1:
            raise MachineError(f"group_size must be >= 1, got {group_size}")
        if local_factor <= 0 or global_taper <= 0:
            raise MachineError("local_factor and global_taper must be positive")
        self.group_size = group_size
        self.local_factor = local_factor
        self.global_taper = global_taper
        self.n_groups = -(-nodes // group_size)
        local_cap = local_factor * group_size * nic_bw
        global_cap = global_taper * group_size * nic_bw
        self.local = [
            Resource(f"grp{g}.local", local_cap, kind="fabric-local")
            for g in range(self.n_groups)
        ]
        self.global_out = [
            Resource(f"grp{g}.gout", global_cap, kind="fabric-global")
            for g in range(self.n_groups)
        ]
        self.global_in = [
            Resource(f"grp{g}.gin", global_cap, kind="fabric-global")
            for g in range(self.n_groups)
        ]

    def group_of(self, node: int) -> int:
        """Dragonfly group hosting *node*."""
        self._check_node(node)
        return node // self.group_size

    def _compute_route(self, src_node: int, dst_node: int) -> Route:
        src_g = self.group_of(src_node)
        dst_g = self.group_of(dst_node)
        if src_g == dst_g:
            return Route(hops=2, resources=(self.local[src_g],))
        return Route(
            hops=5,
            resources=(
                self.local[src_g],
                self.global_out[src_g],
                self.global_in[dst_g],
                self.local[dst_g],
            ),
        )

    def all_resources(self) -> List[Resource]:
        out: List[Resource] = []
        for g in range(self.n_groups):
            out.extend((self.local[g], self.global_out[g], self.global_in[g]))
        return out

    def graph(self) -> "nx.DiGraph":
        g = nx.DiGraph()
        for gi in range(self.n_groups):
            g.add_node(("router", gi), kind="switch")
        # All-to-all global links between group routers.
        for a in range(self.n_groups):
            for b in range(self.n_groups):
                if a != b:
                    g.add_edge(("router", a), ("router", b), resource=self.global_out[a])
        for n in range(self.nodes):
            gi = self.group_of(n)
            g.add_node(("node", n), kind="node")
            g.add_edge(("node", n), ("router", gi), resource=self.local[gi])
            g.add_edge(("router", gi), ("node", n), resource=self.local[gi])
        return g
