"""The Machine: spec + topology + placement + live fluid resources.

A :class:`Machine` instantiates every shared capacity the flow model
needs — one copy engine per rank, one memory engine and one NIC pair per
used node, plus whatever fabric resources the topology defines — and
answers :meth:`transfer_plan` queries from the MPI transport: *"rank a
sends n bytes to rank b; which resources does the flow cross, what is
the latency, and is there a per-flow rate cap?"*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import MachineError
from ..sim import Resource
from .cache import copy_effectiveness, working_set_bytes
from .dragonfly import DragonflyTopology
from .fattree import FatTreeTopology
from .placement import Placement, make_placement
from .spec import MachineSpec
from .topology import CrossbarTopology, Topology

__all__ = ["Machine", "TransferPlan", "build_topology"]


def build_topology(spec: MachineSpec) -> Topology:
    """Instantiate the topology named by ``spec.topology``."""
    params = dict(spec.topology_params)
    if spec.topology == "crossbar":
        return CrossbarTopology(spec.nodes, spec.nic_bw, **params)
    if spec.topology == "fattree":
        return FatTreeTopology(spec.nodes, spec.nic_bw, **params)
    if spec.topology == "dragonfly":
        return DragonflyTopology(spec.nodes, spec.nic_bw, **params)
    raise MachineError(
        f"unknown topology {spec.topology!r}; known: crossbar, fattree, dragonfly"
    )


@dataclass(frozen=True)
class TransferPlan:
    """Everything the transport needs to move one message."""

    latency: float
    resources: Tuple[Resource, ...]
    rate_cap: Optional[float]
    intra_node: bool


class Machine:
    """A running cluster instance hosting ``nranks`` MPI ranks."""

    def __init__(
        self,
        spec: MachineSpec,
        nranks: int,
        placement="blocked",
        topology: Optional[Topology] = None,
        cpu_scale=None,
    ):
        """``cpu_scale`` optionally injects heterogeneity: a mapping
        ``{rank: factor}`` (or a full per-rank sequence) scaling each
        rank's copy-engine capacity — factors < 1 model stragglers
        (thermal throttling, OS noise pinned to a core), factors > 1
        faster nodes."""
        if nranks < 1:
            raise MachineError(f"need nranks >= 1, got {nranks}")
        if nranks > spec.total_cores:
            raise MachineError(
                f"{nranks} ranks exceed capacity {spec.total_cores} "
                f"({spec.nodes} nodes x {spec.cores_per_node} cores)"
            )
        self.spec = spec
        self.nranks = nranks
        self.placement: Placement = make_placement(
            placement, nranks, spec.nodes, spec.cores_per_node
        )
        self.topology = topology if topology is not None else build_topology(spec)
        if self.topology.nodes != spec.nodes:
            raise MachineError(
                f"topology spans {self.topology.nodes} nodes, spec has {spec.nodes}"
            )

        # Per-rank copy engines; per-node memory engines and NIC pairs.
        scales = self._resolve_cpu_scale(cpu_scale, nranks)
        self.cpu = [
            Resource(f"rank{r}.cpu", spec.cpu_copy_bw * scales[r], kind="cpu")
            for r in range(nranks)
        ]
        self.mem = {}
        self.nic_out = {}
        self.nic_in = {}
        for node in self.placement.used_nodes():
            self.mem[node] = Resource(f"node{node}.mem", spec.mem_bw, kind="mem")
            self.nic_out[node] = Resource(
                f"node{node}.nic.out", spec.nic_bw, kind="nic"
            )
            self.nic_in[node] = Resource(f"node{node}.nic.in", spec.nic_bw, kind="nic")

        # The working set modulates the per-flow copy-rate cap (cache and
        # memory-capacity effects); jobs set it per collective invocation.
        self._working_set = 0
        # Plans are static per (src, dst) under a fixed working set; the
        # cache also keeps path tuples identical across calls, which the
        # flow network exploits for its id-array cache.
        self._plan_cache = {}

    @staticmethod
    def _resolve_cpu_scale(cpu_scale, nranks: int):
        if cpu_scale is None:
            return [1.0] * nranks
        if isinstance(cpu_scale, dict):
            scales = [1.0] * nranks
            for rank, factor in cpu_scale.items():
                if not 0 <= rank < nranks:
                    raise MachineError(f"cpu_scale rank {rank} outside [0, {nranks})")
                scales[rank] = float(factor)
        else:
            scales = [float(f) for f in cpu_scale]
            if len(scales) != nranks:
                raise MachineError(
                    f"cpu_scale needs {nranks} factors, got {len(scales)}"
                )
        for rank, factor in enumerate(scales):
            if factor <= 0:
                raise MachineError(
                    f"cpu_scale factor for rank {rank} must be positive, got {factor}"
                )
        return scales

    # -- working-set control -------------------------------------------------
    def set_working_set(self, buffer_bytes: int) -> None:
        """Declare the collective's buffer size for cache-effect modelling."""
        if buffer_bytes < 0:
            raise MachineError(f"buffer_bytes must be >= 0, got {buffer_bytes}")
        if buffer_bytes != self._working_set:
            self._working_set = buffer_bytes
            self._plan_cache.clear()

    def copy_rate_cap(self, rank: int) -> Optional[float]:
        """Per-flow cap on rank's copy rate under the current working set."""
        if self._working_set == 0:
            return None
        node = self.placement.node_of(rank)
        ws = working_set_bytes(self._working_set, len(self.placement.ranks_on(node)))
        eff = copy_effectiveness(self.spec, ws)
        if eff >= 1.0:
            return None
        return self.spec.cpu_copy_bw * eff

    # -- queries -----------------------------------------------------------
    def all_resources(self) -> Tuple[Resource, ...]:
        """Every shared capacity of the machine, deterministically ordered:
        per-rank copy engines, then per-used-node memory engines and NIC
        pairs, then the topology's fabric resources. This is the link
        universe the static cost model accumulates byte loads over."""
        out = list(self.cpu)
        for node in self.placement.used_nodes():
            out.extend((self.mem[node], self.nic_out[node], self.nic_in[node]))
        out.extend(self.topology.all_resources())
        return tuple(out)

    def node_of(self, rank: int) -> int:
        return self.placement.node_of(rank)

    def is_intra(self, src: int, dst: int) -> bool:
        return self.placement.same_node(src, dst)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nranks:
            raise MachineError(f"rank {rank} outside [0, {self.nranks})")

    def transfer_plan(self, src: int, dst: int) -> TransferPlan:
        """Latency, resource path and rate cap for one src->dst message."""
        cached = self._plan_cache.get((src, dst))
        if cached is not None:
            return cached
        plan = self._build_plan(src, dst)
        self._plan_cache[(src, dst)] = plan
        return plan

    def _build_plan(self, src: int, dst: int) -> TransferPlan:
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise MachineError(f"self-message on rank {src} needs no transfer")
        spec = self.spec
        src_node = self.node_of(src)
        dst_node = self.node_of(dst)

        caps = [c for c in (self.copy_rate_cap(src), self.copy_rate_cap(dst)) if c]
        rate_cap = min(caps) if caps else None

        if src_node == dst_node:
            resources = (self.cpu[src], self.mem[src_node], self.cpu[dst])
            return TransferPlan(
                latency=spec.alpha_intra,
                resources=resources,
                rate_cap=rate_cap,
                intra_node=True,
            )

        route = self.topology.route(src_node, dst_node)
        resources = (
            self.cpu[src],
            self.mem[src_node],
            self.nic_out[src_node],
            *route.resources,
            self.nic_in[dst_node],
            self.mem[dst_node],
            self.cpu[dst],
        )
        latency = spec.alpha_inter + spec.hop_latency * route.hops
        return TransferPlan(
            latency=latency,
            resources=resources,
            rate_cap=rate_cap,
            intra_node=False,
        )

    def describe(self) -> str:
        """Multi-line summary used by example scripts."""
        used = self.placement.used_nodes()
        return (
            f"{self.spec.describe()}\n"
            f"ranks: {self.nranks} on {len(used)} node(s), "
            f"placement={self.placement.policy}"
        )

    def __repr__(self) -> str:
        return (
            f"<Machine {self.spec.name} nranks={self.nranks} "
            f"topology={self.topology.name}>"
        )
