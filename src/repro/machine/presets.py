"""Machine presets approximating the paper's two evaluation systems.

Constants are calibrated (not measured) to land simulated broadcast
bandwidths in the same order of magnitude as the paper's figures — e.g.
a ~2.7 GiB/s intra-node peak for 16 ranks on Hornet (Fig. 6a). The
*shape* of the curves is the reproduction target; EXPERIMENTS.md records
paper-vs-measured per figure.
"""

from __future__ import annotations

from ..util import GIB, KIB, MIB
from .spec import MachineSpec

__all__ = ["hornet", "laki", "ideal"]


def hornet(nodes: int = 16, **overrides) -> MachineSpec:
    """Cray XC40 "Hornet": 24-core Haswell nodes, Aries dragonfly.

    - dual Intel E5-2680v3, 24 cores and 128 GB per node;
    - per-rank copy engine ~6 GiB/s, node memory engine ~80 GiB/s
      (stream-class bandwidth shared by all on-node copies);
    - ~10 GiB/s NIC per direction; dragonfly groups of 8 nodes with
      tapered global links.
    """
    params = dict(
        name="hornet",
        nodes=nodes,
        cores_per_node=24,
        alpha_intra=0.5e-6,
        alpha_inter=1.6e-6,
        hop_latency=0.1e-6,
        send_overhead=0.3e-6,
        recv_overhead=0.3e-6,
        rendezvous_rtt=2.0,
        cpu_copy_bw=12.0 * GIB,
        mem_bw=80.0 * GIB,
        nic_bw=10.0 * GIB,
        eager_threshold=8 * KIB,
        l3_bytes=30 * MIB,
        l3_penalty=0.55,
        mem_pressure_bytes=2 * GIB,
        mem_penalty=0.75,
        topology="dragonfly",
        topology_params={"group_size": 8, "local_factor": 2.0, "global_taper": 0.35},
    )
    params.update(overrides)
    return MachineSpec(**params)


def laki(nodes: int = 32, **overrides) -> MachineSpec:
    """NEC cluster "Laki": 8-core Nehalem nodes, InfiniBand fat tree.

    - dual Intel X5560, 8 cores per node, 8 MB L3;
    - QDR-class InfiniBand (~3 GiB/s) under a 2:1 tapered fat tree.
    """
    params = dict(
        name="laki",
        nodes=nodes,
        cores_per_node=8,
        alpha_intra=0.7e-6,
        alpha_inter=2.4e-6,
        hop_latency=0.15e-6,
        send_overhead=0.5e-6,
        recv_overhead=0.5e-6,
        rendezvous_rtt=2.0,
        cpu_copy_bw=4.0 * GIB,
        mem_bw=36.0 * GIB,
        nic_bw=3.0 * GIB,
        eager_threshold=8 * KIB,
        l3_bytes=8 * MIB,
        l3_penalty=0.6,
        mem_pressure_bytes=1 * GIB,
        mem_penalty=0.75,
        topology="fattree",
        topology_params={"radix": 16, "uplink_taper": 0.5},
    )
    params.update(overrides)
    return MachineSpec(**params)


def ideal(nodes: int = 16, cores_per_node: int = 16, **overrides) -> MachineSpec:
    """Contention-free reference machine for model cross-validation.

    Full-bisection crossbar, no cache effects, no host overheads: the
    analytic alpha-beta model predicts transfer times on this machine
    exactly, which the tests exploit.
    """
    params = dict(
        name="ideal",
        nodes=nodes,
        cores_per_node=cores_per_node,
        alpha_intra=1.0e-6,
        alpha_inter=1.0e-6,
        hop_latency=0.0,
        send_overhead=0.0,
        recv_overhead=0.0,
        rendezvous_rtt=0.0,
        cpu_copy_bw=1.0 * GIB,
        mem_bw=1024.0 * GIB,
        nic_bw=1024.0 * GIB,
        eager_threshold=0,
        l3_bytes=1 << 60,
        l3_penalty=1.0,
        mem_pressure_bytes=1 << 60,
        mem_penalty=1.0,
        topology="crossbar",
        topology_params={},
    )
    params.update(overrides)
    return MachineSpec(**params)
