"""Rank-to-node placement policies.

The paper notes that "all the processes are placed among the nodes in a
blocked manner by default on Hornet"; placement determines which ring
neighbours are intra-node (memory copies) versus inter-node (NIC +
fabric), so it materially shapes the broadcast bandwidth curves.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Union

from ..errors import PlacementError

__all__ = ["Placement", "blocked", "round_robin", "custom"]


class Placement:
    """An explicit rank -> node assignment with reverse lookups."""

    def __init__(self, node_of_rank: Sequence[int], nodes: int, policy: str):
        if nodes < 1:
            raise PlacementError(f"placement needs nodes >= 1, got {nodes}")
        if not node_of_rank:
            raise PlacementError("placement needs at least one rank")
        self._node_of = list(node_of_rank)
        self.nodes = nodes
        self.policy = policy
        self._by_node: Dict[int, List[int]] = {}
        for rank, node in enumerate(self._node_of):
            if not 0 <= node < nodes:
                raise PlacementError(
                    f"rank {rank} placed on node {node}, valid range is [0, {nodes})"
                )
            self._by_node.setdefault(node, []).append(rank)

    # -- queries ------------------------------------------------------
    @property
    def nranks(self) -> int:
        return len(self._node_of)

    def node_of(self, rank: int) -> int:
        if not 0 <= rank < self.nranks:
            raise PlacementError(f"rank {rank} outside [0, {self.nranks})")
        return self._node_of[rank]

    def ranks_on(self, node: int) -> List[int]:
        """Ranks hosted by *node* in rank order (empty list if none)."""
        if not 0 <= node < self.nodes:
            raise PlacementError(f"node {node} outside [0, {self.nodes})")
        return list(self._by_node.get(node, []))

    def used_nodes(self) -> List[int]:
        """Nodes hosting at least one rank, ascending."""
        return sorted(self._by_node)

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self.node_of(rank_a) == self.node_of(rank_b)

    def max_ranks_per_node(self) -> int:
        return max(len(v) for v in self._by_node.values())

    def node_leader(self, node: int) -> int:
        """Lowest rank on *node* (the SMP-aware broadcast's local root)."""
        ranks = self.ranks_on(node)
        if not ranks:
            raise PlacementError(f"node {node} hosts no ranks")
        return ranks[0]

    def __repr__(self) -> str:
        return (
            f"<Placement {self.policy}: {self.nranks} ranks on "
            f"{len(self._by_node)}/{self.nodes} nodes>"
        )


def blocked(nranks: int, nodes: int, cores_per_node: int) -> Placement:
    """Fill nodes in order: ranks [0..c) on node 0, [c..2c) on node 1, ...

    This is the default `aprun`-style placement on the paper's Cray
    system.
    """
    _check(nranks, nodes, cores_per_node)
    return Placement(
        [rank // cores_per_node for rank in range(nranks)], nodes, "blocked"
    )


def round_robin(nranks: int, nodes: int, cores_per_node: int) -> Placement:
    """Cyclic placement: rank i on node ``i % used_nodes``.

    Spreads ring neighbours across nodes, maximising inter-node traffic —
    the adversarial counterpart to blocked placement used by the
    placement ablation.
    """
    _check(nranks, nodes, cores_per_node)
    used = min(nodes, -(-nranks // cores_per_node))
    # Use exactly as many nodes as blocked placement would, but cyclically.
    return Placement([rank % used for rank in range(nranks)], nodes, "round_robin")


def custom(node_of_rank: Iterable[int], nodes: int) -> Placement:
    """Fully explicit placement (used by tests and what-if experiments)."""
    return Placement(list(node_of_rank), nodes, "custom")


PlacementFactory = Union[str, Callable[[int, int, int], Placement]]

_POLICIES = {"blocked": blocked, "round_robin": round_robin}


def make_placement(
    policy: PlacementFactory, nranks: int, nodes: int, cores_per_node: int
) -> Placement:
    """Resolve a policy name or factory callable into a Placement."""
    if isinstance(policy, Placement):
        return policy
    if callable(policy):
        return policy(nranks, nodes, cores_per_node)
    try:
        factory = _POLICIES[policy]
    except KeyError:
        raise PlacementError(
            f"unknown placement policy {policy!r}; known: {sorted(_POLICIES)}"
        ) from None
    return factory(nranks, nodes, cores_per_node)


def _check(nranks: int, nodes: int, cores_per_node: int) -> None:
    if nranks < 1:
        raise PlacementError(f"need nranks >= 1, got {nranks}")
    if nranks > nodes * cores_per_node:
        raise PlacementError(
            f"{nranks} ranks exceed machine capacity "
            f"{nodes} nodes x {cores_per_node} cores = {nodes * cores_per_node}"
        )
