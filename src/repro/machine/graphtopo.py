"""User-defined fabrics: route over an arbitrary networkx graph.

:class:`GraphTopology` lets experiments model any fabric: supply a
digraph whose nodes include ``("node", i)`` endpoints for every compute
node and whose edges carry a ``capacity`` attribute (bytes/s) or
``capacity=None`` for non-blocking hops. Routing is deterministic
shortest-path (hop count, ties broken lexicographically by path), and
each capacitated edge becomes one shared fluid resource.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from ..errors import MachineError
from ..sim import Resource
from .topology import Route, Topology

__all__ = ["GraphTopology", "node_key"]


def node_key(i: int) -> Tuple[str, int]:
    """Graph vertex naming convention for compute node *i*."""
    return ("node", i)


class GraphTopology(Topology):
    """Shortest-path routing over an explicit capacity graph."""

    name = "graph"

    def __init__(self, nodes: int, nic_bw: float, graph: "nx.DiGraph"):
        super().__init__(nodes, nic_bw)
        for i in range(nodes):
            if node_key(i) not in graph:
                raise MachineError(
                    f"graph topology is missing vertex {node_key(i)!r}"
                )
        self._graph = graph
        self._edge_resources: Dict[tuple, Resource] = {}
        for u, v, data in sorted(graph.edges(data=True), key=lambda e: (str(e[0]), str(e[1]))):
            cap = data.get("capacity")
            if cap is None:
                continue
            if cap <= 0:
                raise MachineError(f"edge {u!r}->{v!r} has capacity {cap}")
            res = Resource(f"edge[{u}->{v}]", float(cap), kind="fabric-edge")
            self._edge_resources[(u, v)] = res
            data["resource"] = res

    def _compute_route(self, src_node: int, dst_node: int) -> Route:
        src, dst = node_key(src_node), node_key(dst_node)
        try:
            # Deterministic tie-break: Dijkstra over unit weights with a
            # lexicographic secondary key via sorted neighbor iteration.
            path = nx.shortest_path(self._graph, src, dst)
        except nx.NetworkXNoPath:
            raise MachineError(
                f"no fabric path from node {src_node} to node {dst_node}"
            ) from None
        resources = []
        for u, v in zip(path, path[1:]):
            res = self._edge_resources.get((u, v))
            if res is not None:
                resources.append(res)
        return Route(hops=len(path) - 1, resources=tuple(resources))

    def all_resources(self) -> List[Resource]:
        return [self._edge_resources[k] for k in sorted(self._edge_resources, key=str)]

    def graph(self) -> "nx.DiGraph":
        return self._graph
