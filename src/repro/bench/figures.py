"""Experiment definitions for every figure and table in the paper.

Each ``fig*``/``table*`` function returns an :class:`Experiment` that
knows how to run its sweep and render the same rows/series the paper
reports, together with the paper's qualitative expectations so the
harness can check the *shape* (who wins, roughly by how much) rather
than absolute MB/s.

Set ``REPRO_BENCH_FAST=1`` to subsample the axes (used in CI-style quick
runs); the full axes match the paper.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Tuple

from ..core import Sweep
from ..machine import MachineSpec, hornet

__all__ = [
    "Experiment",
    "fig6",
    "fig7",
    "fig8",
    "NATIVE",
    "OPT",
    "fast_mode",
]

NATIVE = "scatter_ring_native"
OPT = "scatter_ring_opt"

# Fig. 6 x-axis: 2^19 .. 2^25 bytes (the paper sweeps to 30 MB; we keep
# the labelled powers of two).
FIG6_SIZES = [2**k for k in range(19, 26)]
# Fig. 7: the three message sizes at npof2 process counts.
FIG7_SIZES = [12288, 524287, 1048576]
FIG7_RANKS = [9, 17, 33, 65, 129]
# Fig. 8: 12288 .. 2560000 bytes at 129 processes.
FIG8_SIZES = [12288, 32768, 65536, 131072, 262144, 524288, 1048576, 2097152, 2560000]
FIG8_RANKS = 129


def fast_mode() -> bool:
    """Trim axes when REPRO_BENCH_FAST is set (quick sanity runs)."""
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


@dataclass
class Experiment:
    """A figure/table reproduction: sweep + expectations + rendering."""

    exp_id: str
    title: str
    spec: MachineSpec
    sweep: Sweep
    ranks_axis: List[int]
    sizes_axis: List[int]
    paper_claim: str

    def run(self, jobs=1, cache=None, serve=None) -> None:
        """Populate the sweep; ``jobs``/``cache``/``serve`` forward to
        :meth:`repro.core.Sweep.run` (parallel fan-out, disk cache,
        simulation-service routing)."""
        self.sweep.run(jobs=jobs, cache=cache, serve=serve)

    def comparisons(self) -> List:
        """All (nranks, nbytes) comparison records of the grid."""
        return [
            self.sweep.compare(p, n, NATIVE, OPT)
            for p in self.ranks_axis
            for n in self.sizes_axis
        ]


def _axes(sizes: List[int], ranks: List[int]) -> Tuple[List[int], List[int]]:
    if fast_mode():
        sizes = sizes[:: max(1, len(sizes) // 3)]
        ranks = [r for r in ranks if r <= 33] or ranks[:1]
    return sizes, ranks


def _spec() -> MachineSpec:
    return hornet(nodes=16)


def fig6(sub: str) -> Experiment:
    """Figure 6(a)/(b)/(c): bandwidth vs lmsg size at pof2 process counts."""
    nranks = {"a": 16, "b": 64, "c": 256}[sub]
    sizes, _ = _axes(FIG6_SIZES, [nranks])
    spec = _spec()
    sweep = Sweep(spec, sizes=sizes, ranks=[nranks], algorithms=[NATIVE, OPT])
    claims = {
        "a": "16 procs (intra-node): opt up to ~12% better; peak +10% (2748 vs 2623 MB/s)",
        "b": "64 procs: opt up to ~41% better; peak +13%",
        "c": "256 procs: opt up to ~20% better; peak +16%; cache-effect dip near 3MB",
    }
    return Experiment(
        exp_id=f"fig6{sub}",
        title=f"Figure 6({sub}): lmsg bandwidth, np={nranks}, Hornet-like dragonfly",
        spec=spec,
        sweep=sweep,
        ranks_axis=[nranks],
        sizes_axis=sizes,
        paper_claim=claims[sub],
    )


def fig7() -> Experiment:
    """Figure 7: throughput speedup of opt over native at npof2 counts."""
    sizes, ranks = _axes(FIG7_SIZES, FIG7_RANKS)
    spec = _spec()
    sweep = Sweep(spec, sizes=sizes, ranks=ranks, algorithms=[NATIVE, OPT])
    return Experiment(
        exp_id="fig7",
        title="Figure 7: throughput speedup, npof2 processes (9..129)",
        spec=spec,
        sweep=sweep,
        ranks_axis=ranks,
        sizes_axis=sizes,
        paper_claim=(
            "opt consistently >= native; highest speedups for ms=12288 at "
            "small npof2 counts, flattest curve for ms=1048576"
        ),
    )


def fig8() -> Experiment:
    """Figure 8: bandwidth vs size (12 KiB .. 2.5 MB) at 129 processes."""
    sizes, ranks = _axes(FIG8_SIZES, [FIG8_RANKS])
    spec = _spec()
    sweep = Sweep(spec, sizes=sizes, ranks=ranks, algorithms=[NATIVE, OPT])
    return Experiment(
        exp_id="fig8",
        title="Figure 8: medium+long message bandwidth, np=129",
        spec=spec,
        sweep=sweep,
        ranks_axis=ranks,
        sizes_axis=sizes,
        paper_claim=(
            "bandwidth grows steadily with size; opt up to ~30% better; "
            "no sudden protocol knees"
        ),
    )
