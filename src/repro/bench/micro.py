"""Point-to-point microbenchmarks (OSU-style) on the simulated machine.

Real MPI installations are characterised with ping-pong latency and
streaming-bandwidth microbenchmarks before anyone trusts collective
numbers; these are the same probes for the simulator. They drive the
full transport (matching, protocols, flows), so their results reflect
every modelled effect — and :mod:`repro.core.fitting` turns them back
into effective alpha/beta parameters, closing the calibration loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

from ..errors import ConfigurationError
from ..machine import Machine, MachineSpec
from ..mpi import Job
from ..util import parse_size

__all__ = ["PingPongPoint", "pingpong", "streaming_bandwidth"]

MICRO_TAG = 12


@dataclass(frozen=True)
class PingPongPoint:
    """One ping-pong measurement."""

    nbytes: int
    latency: float  # one-way seconds (round trip / 2)
    bandwidth: float  # bytes/s at this size

    @property
    def latency_us(self) -> float:
        return self.latency * 1e6


def _machine(spec_or_machine, nranks: int) -> Machine:
    if isinstance(spec_or_machine, Machine):
        return spec_or_machine
    if isinstance(spec_or_machine, MachineSpec):
        return Machine(spec_or_machine, nranks=nranks)
    raise ConfigurationError(
        f"expected MachineSpec or Machine, got {type(spec_or_machine).__name__}"
    )


def pingpong(
    spec_or_machine: Union[MachineSpec, Machine],
    sizes: Sequence,
    src: int = 0,
    dst: int = 1,
    iterations: int = 10,
) -> List[PingPongPoint]:
    """Classic ping-pong: ``src`` and ``dst`` bounce each size
    ``iterations`` times; one-way latency is half the averaged round
    trip."""
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
    if src == dst:
        raise ConfigurationError("ping-pong needs two distinct ranks")
    parsed = [parse_size(s) for s in sizes]
    if not parsed:
        raise ConfigurationError("ping-pong needs at least one size")
    machine = _machine(spec_or_machine, max(src, dst) + 1)

    points = []
    for nbytes in parsed:

        def factory(ctx, nbytes=nbytes):
            def program():
                if ctx.rank == src:
                    for _ in range(iterations):
                        yield from ctx.send(dst, nbytes, tag=MICRO_TAG)
                        yield from ctx.recv(dst, nbytes, tag=MICRO_TAG)
                elif ctx.rank == dst:
                    for _ in range(iterations):
                        yield from ctx.recv(src, nbytes, tag=MICRO_TAG)
                        yield from ctx.send(src, nbytes, tag=MICRO_TAG)

            return program()

        result = Job(machine, factory).run()
        one_way = result.time / (2 * iterations)
        points.append(
            PingPongPoint(
                nbytes=nbytes,
                latency=one_way,
                bandwidth=(nbytes / one_way) if one_way > 0 else float("inf"),
            )
        )
    return points


def streaming_bandwidth(
    spec_or_machine: Union[MachineSpec, Machine],
    nbytes: Union[int, str] = "1MiB",
    window: int = 16,
    src: int = 0,
    dst: int = 1,
) -> float:
    """Unidirectional streaming bandwidth (bytes/s): ``window`` messages
    in flight via isend/irecv, like OSU's ``osu_bw``."""
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    size = parse_size(nbytes)
    machine = _machine(spec_or_machine, max(src, dst) + 1)

    def factory(ctx):
        def program():
            if ctx.rank == src:
                reqs = []
                for _ in range(window):
                    reqs.append((yield from ctx.isend(dst, size, tag=MICRO_TAG)))
                yield from ctx.waitall(reqs)
                # Close with a handshake so makespan covers delivery.
                yield from ctx.recv(dst, 0, tag=MICRO_TAG)
            elif ctx.rank == dst:
                reqs = []
                for _ in range(window):
                    reqs.append((yield from ctx.irecv(src, size, tag=MICRO_TAG)))
                yield from ctx.waitall(reqs)
                yield from ctx.send(src, 0, tag=MICRO_TAG)

        return program()

    result = Job(machine, factory).run()
    return window * size / result.time if result.time > 0 else float("inf")
