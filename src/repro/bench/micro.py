"""Point-to-point microbenchmarks (OSU-style) on the simulated machine.

Real MPI installations are characterised with ping-pong latency and
streaming-bandwidth microbenchmarks before anyone trusts collective
numbers; these are the same probes for the simulator. They drive the
full transport (matching, protocols, flows), so their results reflect
every modelled effect — and :mod:`repro.core.fitting` turns them back
into effective alpha/beta parameters, closing the calibration loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Sequence, Union

from ..errors import ConfigurationError
from ..machine import Machine, MachineSpec
from ..mpi import Job
from ..sim import Engine, FlowNetwork, Resource, SolverStats
from ..util import parse_size

__all__ = [
    "PingPongPoint",
    "pingpong",
    "streaming_bandwidth",
    "SolverChurnResult",
    "solver_churn",
]

MICRO_TAG = 12


@dataclass(frozen=True)
class PingPongPoint:
    """One ping-pong measurement."""

    nbytes: int
    latency: float  # one-way seconds (round trip / 2)
    bandwidth: float  # bytes/s at this size

    @property
    def latency_us(self) -> float:
        return self.latency * 1e6


def _machine(spec_or_machine, nranks: int) -> Machine:
    if isinstance(spec_or_machine, Machine):
        return spec_or_machine
    if isinstance(spec_or_machine, MachineSpec):
        return Machine(spec_or_machine, nranks=nranks)
    raise ConfigurationError(
        f"expected MachineSpec or Machine, got {type(spec_or_machine).__name__}"
    )


def pingpong(
    spec_or_machine: Union[MachineSpec, Machine],
    sizes: Sequence,
    src: int = 0,
    dst: int = 1,
    iterations: int = 10,
) -> List[PingPongPoint]:
    """Classic ping-pong: ``src`` and ``dst`` bounce each size
    ``iterations`` times; one-way latency is half the averaged round
    trip."""
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
    if src == dst:
        raise ConfigurationError("ping-pong needs two distinct ranks")
    parsed = [parse_size(s) for s in sizes]
    if not parsed:
        raise ConfigurationError("ping-pong needs at least one size")
    machine = _machine(spec_or_machine, max(src, dst) + 1)

    points = []
    for nbytes in parsed:

        def factory(ctx, nbytes=nbytes):
            def program():
                if ctx.rank == src:
                    for _ in range(iterations):
                        yield from ctx.send(dst, nbytes, tag=MICRO_TAG)
                        yield from ctx.recv(dst, nbytes, tag=MICRO_TAG)
                elif ctx.rank == dst:
                    for _ in range(iterations):
                        yield from ctx.recv(src, nbytes, tag=MICRO_TAG)
                        yield from ctx.send(src, nbytes, tag=MICRO_TAG)

            return program()

        result = Job(machine, factory).run()
        one_way = result.time / (2 * iterations)
        points.append(
            PingPongPoint(
                nbytes=nbytes,
                latency=one_way,
                bandwidth=(nbytes / one_way) if one_way > 0 else float("inf"),
            )
        )
    return points


def streaming_bandwidth(
    spec_or_machine: Union[MachineSpec, Machine],
    nbytes: Union[int, str] = "1MiB",
    window: int = 16,
    src: int = 0,
    dst: int = 1,
) -> float:
    """Unidirectional streaming bandwidth (bytes/s): ``window`` messages
    in flight via isend/irecv, like OSU's ``osu_bw``."""
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    size = parse_size(nbytes)
    machine = _machine(spec_or_machine, max(src, dst) + 1)

    def factory(ctx):
        def program():
            if ctx.rank == src:
                reqs = []
                for _ in range(window):
                    reqs.append((yield from ctx.isend(dst, size, tag=MICRO_TAG)))
                yield from ctx.waitall(reqs)
                # Close with a handshake so makespan covers delivery.
                yield from ctx.recv(dst, 0, tag=MICRO_TAG)
            elif ctx.rank == dst:
                reqs = []
                for _ in range(window):
                    reqs.append((yield from ctx.irecv(src, size, tag=MICRO_TAG)))
                yield from ctx.waitall(reqs)
                yield from ctx.send(src, 0, tag=MICRO_TAG)

        return program()

    result = Job(machine, factory).run()
    return window * size / result.time if result.time > 0 else float("inf")


@dataclass(frozen=True)
class SolverChurnResult:
    """Outcome of one :func:`solver_churn` run."""

    nranks: int
    flows_completed: int
    flows_cancelled: int
    sim_time: float  # simulated seconds to drain the churn
    wall_s: float  # host seconds for the whole run
    stats: SolverStats  # the network's solver telemetry

    @property
    def solve_time_s(self) -> float:
        return self.stats.solve_time_s

    @property
    def solves_per_s(self) -> float:
        """Solver throughput: re-solves per host second of solver time."""
        if self.stats.solve_time_s <= 0:
            return float("inf")
        return self.stats.solves / self.stats.solve_time_s


def solver_churn(
    nranks: int,
    steps: int = 8,
    ranks_per_node: int = 8,
    block_nbytes: Union[int, str] = "64KiB",
    cancel_every: int = 7,
    solver: Optional[str] = None,
) -> SolverChurnResult:
    """Ring-allgather-shaped flow churn driven straight at a FlowNetwork.

    Every rank streams ``steps`` blocks to its right neighbour through a
    private copy-out engine, the node's shared NIC and the neighbour's
    copy-in engine — the contention shape of the paper's ring allgather
    on a multi-core cluster. Each completion immediately launches the
    rank's next block, and every ``cancel_every``-th flow is aborted
    mid-flight instead, so the solver sees a constant storm of
    add/complete/cancel transitions (~``nranks`` flows in flight,
    ``nranks x steps`` transfers total). Because per-rank engines are
    private and only the NIC is shared, the network decomposes into one
    contention component per node — exactly the structure the
    incremental solver exploits and the reference solver re-derives from
    scratch at every event.

    The workload is fully deterministic (sizes staggered by a fixed
    rank/step hash); ``solver`` picks the implementation under test.
    """
    if nranks < 2:
        raise ConfigurationError(f"solver churn needs >= 2 ranks, got {nranks}")
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1, got {steps}")
    block = parse_size(block_nbytes)
    engine = Engine()
    net = FlowNetwork(engine, solver=solver)

    nodes = (nranks + ranks_per_node - 1) // ranks_per_node
    out_eng = [Resource(f"churn.out{r}", 4e9, kind="cpu") for r in range(nranks)]
    in_eng = [Resource(f"churn.in{r}", 4e9, kind="cpu") for r in range(nranks)]
    nic = [Resource(f"churn.nic{n}", 8e9, kind="nic") for n in range(nodes)]

    cancelled = [0]
    # Abort point well inside a block's ~65us service time at these caps.
    cancel_delay = block / 16e9

    def launch(r: int, s: int) -> None:
        if s >= steps:
            return
        # Deterministic per-(rank, step) size stagger spreads completions
        # so events interleave instead of arriving in lockstep.
        nbytes = block * (1.0 + ((r * 31 + s * 17) % 64) / 64.0)
        path = (out_eng[r], nic[r // ranks_per_node], in_eng[(r + 1) % nranks])
        state = {"done": False}

        def on_complete(_flow, r=r, s=s, state=state):
            state["done"] = True
            launch(r, s + 1)

        flow = net.add_flow(nbytes, path, on_complete=on_complete)
        if (r + 3 * s) % cancel_every == 0:

            def abort(flow=flow, r=r, s=s, state=state):
                if state["done"]:
                    return
                net.cancel_flow(flow)
                cancelled[0] += 1
                launch(r, s + 1)

            engine.schedule(cancel_delay, abort)

    start = perf_counter()  # det: allow — benchmark stopwatch, not sim time
    for r in range(nranks):
        engine.schedule(0.0, launch, r, 0)
    engine.run()
    wall = perf_counter() - start  # det: allow — benchmark stopwatch
    return SolverChurnResult(
        nranks=nranks,
        flows_completed=net.completed_count,
        flows_cancelled=cancelled[0],
        sim_time=engine.now,
        wall_s=wall,
        stats=net.stats(),
    )
