"""Bench harness: run experiments once per process, render paper-style
output.

``pytest-benchmark`` times a representative simulation per figure; the
full sweep (which is what actually regenerates the figure's rows) runs
once and is cached here so every assertion and rendering in a benchmark
module reuses it.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..util import Table, format_size, line_plot
from .figures import NATIVE, OPT, Experiment

__all__ = ["get_experiment", "render_bandwidth_table", "render_speedup_table", "render_plot"]

_CACHE: Dict[str, Experiment] = {}


def get_experiment(exp_id: str, factory: Callable[[], Experiment]) -> Experiment:
    """Build + run an experiment once per process (results memoised)."""
    exp = _CACHE.get(exp_id)
    if exp is None:
        exp = factory()
        exp.run()
        _CACHE[exp_id] = exp
    return exp


def render_bandwidth_table(exp: Experiment, nranks: int) -> str:
    """The rows behind a Figure 6/8 panel."""
    table = exp.sweep.to_table(
        nranks,
        NATIVE,
        OPT,
        title=f"{exp.title}\npaper: {exp.paper_claim}",
    )
    return table.render()


def render_speedup_table(exp: Experiment) -> str:
    """The rows behind Figure 7: one speedup per (size, nranks)."""
    table = Table(
        ["msg size"] + [f"np={p}" for p in exp.ranks_axis],
        formats=[None] + [".3f"] * len(exp.ranks_axis),
        title=f"{exp.title}\npaper: {exp.paper_claim}",
    )
    for n in exp.sizes_axis:
        row = [format_size(n)]
        for p in exp.ranks_axis:
            cmp = exp.sweep.compare(p, n, NATIVE, OPT)
            row.append(cmp.speedup)
        table.add_row(*row)
    return table.render()


def render_plot(exp: Experiment, nranks: int) -> str:
    """ASCII rendition of a bandwidth-vs-size figure panel."""
    series = {
        "native": exp.sweep.series(NATIVE, nranks),
        "opt": exp.sweep.series(OPT, nranks),
    }
    return line_plot(
        series,
        logx=True,
        logy=True,
        title=f"{exp.exp_id} np={nranks}",
        xlabel="Message Size (Bytes)",
        ylabel="MB/s",
    )
