"""Bench harness: run experiments once per process, render paper-style
output.

``pytest-benchmark`` times a representative simulation per figure; the
full sweep (which is what actually regenerates the figure's rows) runs
once and is cached here so every assertion and rendering in a benchmark
module reuses it.

Sweeps route through :class:`repro.core.SweepExecutor`, steered by two
environment variables:

* ``REPRO_JOBS`` — worker processes per sweep (default ``1`` = serial,
  ``0`` = one per CPU);
* ``REPRO_CACHE`` — set to ``0``/``off``/``no`` to bypass the persistent
  on-disk result cache (default: enabled, under ``REPRO_CACHE_DIR`` or
  ``~/.cache/repro``), so a re-run of a figure bench skips every
  already-simulated point.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

from ..core import DiskCache
from ..util import Table, format_size, line_plot
from .figures import NATIVE, OPT, Experiment

__all__ = [
    "get_experiment",
    "bench_jobs",
    "bench_cache",
    "render_bandwidth_table",
    "render_speedup_table",
    "render_plot",
]

_CACHE: Dict[str, Experiment] = {}


def bench_jobs() -> int:
    """Sweep worker count from ``REPRO_JOBS`` (default 1 = serial)."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    try:
        return int(raw) if raw else 1
    except ValueError:
        return 1


def bench_cache() -> Optional[DiskCache]:
    """The shared on-disk result cache, or None when ``REPRO_CACHE``
    disables it."""
    if os.environ.get("REPRO_CACHE", "").strip().lower() in ("0", "off", "no", "false"):
        return None
    return DiskCache()


def get_experiment(exp_id: str, factory: Callable[[], Experiment]) -> Experiment:
    """Build + run an experiment once per process (results memoised)."""
    exp = _CACHE.get(exp_id)
    if exp is None:
        exp = factory()
        exp.run(jobs=bench_jobs(), cache=bench_cache())
        _CACHE[exp_id] = exp
    return exp


def render_bandwidth_table(exp: Experiment, nranks: int) -> str:
    """The rows behind a Figure 6/8 panel."""
    table = exp.sweep.to_table(
        nranks,
        NATIVE,
        OPT,
        title=f"{exp.title}\npaper: {exp.paper_claim}",
    )
    return table.render()


def render_speedup_table(exp: Experiment) -> str:
    """The rows behind Figure 7: one speedup per (size, nranks)."""
    table = Table(
        ["msg size"] + [f"np={p}" for p in exp.ranks_axis],
        formats=[None] + [".3f"] * len(exp.ranks_axis),
        title=f"{exp.title}\npaper: {exp.paper_claim}",
    )
    for n in exp.sizes_axis:
        row = [format_size(n)]
        for p in exp.ranks_axis:
            cmp = exp.sweep.compare(p, n, NATIVE, OPT)
            row.append(cmp.speedup)
        table.add_row(*row)
    return table.render()


def render_plot(exp: Experiment, nranks: int) -> str:
    """ASCII rendition of a bandwidth-vs-size figure panel."""
    series = {
        "native": exp.sweep.series(NATIVE, nranks),
        "opt": exp.sweep.series(OPT, nranks),
    }
    return line_plot(
        series,
        logx=True,
        logy=True,
        title=f"{exp.exp_id} np={nranks}",
        xlabel="Message Size (Bytes)",
        ylabel="MB/s",
    )
