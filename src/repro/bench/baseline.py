"""Bench baselines: persist results and detect regressions between runs.

A production benchmark suite needs memory: ``save_baseline`` snapshots a
set of named scalar metrics (bandwidths, times, counts) to JSON, and
``compare_to_baseline`` diffs a new run against it with a relative
tolerance — catching both performance regressions *and* accidental
changes to the deterministic simulator (whose metrics should reproduce
bit-for-bit; see docs/reproducing.md).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ConfigurationError

__all__ = ["BaselineDiff", "save_baseline", "load_baseline", "compare_to_baseline"]

_FORMAT_VERSION = 1


def save_baseline(path: str, metrics: Dict[str, float], meta: Optional[dict] = None) -> None:
    """Write ``{name: value}`` metrics (plus free-form *meta*) to JSON."""
    if not metrics:
        raise ConfigurationError("refusing to save an empty baseline")
    clean = {}
    for name, value in metrics.items():
        try:
            clean[name] = float(value)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"baseline metric {name!r} is not numeric: {value!r}"
            ) from None
    payload = {
        "format": _FORMAT_VERSION,
        "metrics": clean,
        "meta": meta or {},
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    os.replace(tmp, path)


def load_baseline(path: str) -> Dict[str, float]:
    """Read a baseline's metrics; raises on unknown format."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("format") != _FORMAT_VERSION:
        raise ConfigurationError(
            f"baseline {path!r} has format {payload.get('format')!r}, "
            f"expected {_FORMAT_VERSION}"
        )
    return dict(payload["metrics"])


@dataclass
class BaselineDiff:
    """Outcome of comparing a run against a baseline."""

    matched: Dict[str, float] = field(default_factory=dict)  # name -> rel change
    regressions: Dict[str, float] = field(default_factory=dict)
    missing: List[str] = field(default_factory=list)  # in baseline, not in run
    new: List[str] = field(default_factory=list)  # in run, not in baseline

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def describe(self) -> str:
        lines = []
        for name, change in sorted(self.regressions.items()):
            lines.append(f"REGRESSION {name}: {change * 100:+.2f}%")
        for name in self.missing:
            lines.append(f"MISSING {name}")
        for name in self.new:
            lines.append(f"NEW {name}")
        if not lines:
            lines.append(f"all {len(self.matched)} metrics within tolerance")
        return "\n".join(lines)


def compare_to_baseline(
    baseline: Dict[str, float],
    current: Dict[str, float],
    rel_tol: float = 0.0,
    higher_is_better: bool = True,
) -> BaselineDiff:
    """Diff *current* metrics against *baseline*.

    A metric regresses when it moves in the bad direction by more than
    ``rel_tol`` (relative). ``rel_tol=0`` demands bit-identical values —
    the right setting for the deterministic simulator's own metrics.
    """
    if rel_tol < 0:
        raise ConfigurationError(f"rel_tol must be >= 0, got {rel_tol}")
    diff = BaselineDiff()
    for name, base_value in baseline.items():
        if name not in current:
            diff.missing.append(name)
            continue
        value = float(current[name])
        if base_value == 0:
            # Signed pseudo-change: any move away from zero keeps its
            # direction so the bad-direction test below still works.
            change = 0.0 if value == 0 else float("inf") * (1 if value > 0 else -1)
        else:
            change = (value - base_value) / abs(base_value)
        bad = -change if higher_is_better else change
        if bad > rel_tol:
            diff.regressions[name] = change
        else:
            diff.matched[name] = change
    diff.new = sorted(set(current) - set(baseline))
    return diff
