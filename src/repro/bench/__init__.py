"""Benchmark harness: figure/table experiment definitions and rendering."""

from .figures import Experiment, fig6, fig7, fig8, NATIVE, OPT, fast_mode
from .micro import (
    PingPongPoint,
    SolverChurnResult,
    pingpong,
    solver_churn,
    streaming_bandwidth,
)
from .baseline import BaselineDiff, save_baseline, load_baseline, compare_to_baseline
from .runner import (
    get_experiment,
    bench_jobs,
    bench_cache,
    render_bandwidth_table,
    render_speedup_table,
    render_plot,
)

__all__ = [
    "Experiment",
    "fig6",
    "fig7",
    "fig8",
    "NATIVE",
    "OPT",
    "fast_mode",
    "PingPongPoint",
    "SolverChurnResult",
    "pingpong",
    "solver_churn",
    "streaming_bandwidth",
    "BaselineDiff",
    "save_baseline",
    "load_baseline",
    "compare_to_baseline",
    "get_experiment",
    "bench_jobs",
    "bench_cache",
    "render_bandwidth_table",
    "render_speedup_table",
    "render_plot",
]
