"""Seeded service-chaos gate: kill workers, sever sockets, tear shards.

The fault-injection doctrine of the simulation layers (the ``chaos``
differential gate) asserted: under injected faults, a collective either
delivers bit-identical payloads or fails with a typed error. This gate
asserts the same doctrine one layer up, for the *infrastructure* the
results flow through — the persistent service, its worker pool, its
wire protocol and its sharded result cache:

* **worker kill mid-batch** — a sweep point SIGKILLs its pool worker
  once (via the deterministic :data:`~repro.core.executor.CHAOS_CRASH_ENV`
  latch); the server must respawn the pool, re-dispatch only the
  in-flight work and stream records bitwise-equal to a fault-free
  serial reference;
* **poison point** — a point that kills workers beyond the quarantine
  threshold must come back as a typed ``PoisonPointError`` *naming the
  point*, while every other point still matches the reference;
* **severed socket** — a proxy cuts the client's response stream after
  the first record; the client must resume, re-request only the
  missing points, and assemble a bitwise-equal result set;
* **torn shard** — a truncated cache shard must be detected by the
  per-line checksums (``fsck``), repaired, and re-simulation must
  reproduce the reference bitwise instead of parsing garbage;
* **stale state file** — discovery against the advertisement of a
  SIGKILL'd (dead-pid) server must report "no server" and remove the
  stale file, while a live advertisement keeps working.

Every scenario is seeded and deterministic: the gate either passes or
names the scenario and the divergence. Run it with
``python -m repro service-chaos`` (exit 1 on any failure with
``--strict``); CI runs it in the verify job.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from ..core.diskcache import DiskCache
from ..core.executor import CHAOS_CRASH_ENV, SweepExecutor
from ..core.sweep import SweepPoint
from ..machine import ideal
from . import protocol
from .client import ServiceClient
from .server import SimulationServer

__all__ = ["ServiceChaosCheck", "ServiceChaosReport", "service_chaos_gate"]

# One small, memo-friendly grid shared by every scenario: two algorithm
# families at two sizes — enough to exercise batching, cheap enough for CI.
_POINTS = [
    SweepPoint("binomial", 8, 1024),
    SweepPoint("binomial", 8, 4096),
    SweepPoint("scatter_ring_opt", 8, 1024),
    SweepPoint("scatter_ring_opt", 8, 4096),
]


@dataclass(frozen=True)
class ServiceChaosCheck:
    """One scenario's verdict."""

    name: str
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


@dataclass(frozen=True)
class ServiceChaosReport:
    """Verdicts for every service-chaos scenario."""

    checks: Tuple[ServiceChaosCheck, ...]
    seed: int

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> List[ServiceChaosCheck]:
        return [c for c in self.checks if not c.ok]

    def describe(self) -> str:
        lines = []
        for c in self.checks:
            mark = "ok" if c.ok else "FAIL"
            line = f"  [{mark:>4}] {c.name}"
            if c.detail and not c.ok:
                line += f": {c.detail}"
            lines.append(line)
        passed = sum(1 for c in self.checks if c.ok)
        lines.append(
            f"service-chaos gate (seed={self.seed}): "
            f"{passed}/{len(self.checks)} scenario(s) survived"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "checks": [c.to_dict() for c in self.checks],
        }


# -- plumbing ----------------------------------------------------------
@contextmanager
def _server(jobs: int, cache_dir: Optional[Path], state_file: Path):
    cache = DiskCache(cache_dir) if cache_dir is not None else None
    server = SimulationServer(
        host="127.0.0.1", port=0, jobs=jobs, cache=cache,
        state_file=state_file,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.request_shutdown()
        thread.join(30)


@contextmanager
def _env(name: str, value: str):
    prior = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = prior


def _reference(points) -> list:
    """Fault-free serial records (the bitwise baseline)."""
    return SweepExecutor(jobs=1, cache=None, serve=False).run(ideal(), points)


def _sweep_all(client: ServiceClient, points) -> dict:
    """Drain a service sweep into {index: outcome}."""
    outcomes = {}
    for i, outcome in client.sweep(ideal(), points):
        outcomes[i] = outcome
    return outcomes


def _diff_records(reference, outcomes, skip=()) -> List[str]:
    """Bitwise comparison of outcomes against the reference records."""
    problems = []
    for i, ref in enumerate(reference):
        if i in skip:
            continue
        got = outcomes.get(i)
        if got is None:
            problems.append(f"point {i}: no outcome delivered")
        elif got[0] != "ok":
            problems.append(f"point {i}: {got[1]}: {got[2]}")
        elif got[1] != ref:
            problems.append(f"point {i}: record differs from reference")
    return problems


def _latch_for(latch_dir: Path, point: SweepPoint, crashes: int) -> None:
    latch_dir.mkdir(parents=True, exist_ok=True)
    name = f"{point.algorithm}-{point.nranks}-{point.nbytes}"
    (latch_dir / name).write_text(str(crashes), encoding="utf-8")


# -- scenarios ---------------------------------------------------------
def _check_worker_kill(tmp: Path, seed: int) -> ServiceChaosCheck:
    """A point SIGKILLs its worker once; the sweep must still complete
    with records bitwise-equal to the fault-free reference."""
    name = "worker-kill-mid-batch"
    points = list(_POINTS)
    reference = _reference(points)
    victim = points[seed % len(points)]
    latch = tmp / "latch-kill"
    _latch_for(latch, victim, crashes=1)
    with _env(CHAOS_CRASH_ENV, str(latch)):
        with _server(2, tmp / "cache-kill", tmp / "state-kill.json") as srv:
            outcomes = _sweep_all(
                ServiceClient("127.0.0.1", srv.port), points
            )
            respawns = srv._pool.respawns_total
    problems = _diff_records(reference, outcomes)
    if respawns < 1:
        problems.append("pool never respawned — the kill latch did not fire")
    if problems:
        return ServiceChaosCheck(name, False, "; ".join(problems))
    return ServiceChaosCheck(
        name, True, f"{respawns} respawn(s), records bitwise-equal"
    )


def _check_poison_point(tmp: Path, seed: int) -> ServiceChaosCheck:
    """A point that keeps killing workers must be quarantined with a
    typed PoisonPointError naming it; siblings must match the reference."""
    name = "poison-point-quarantine"
    points = list(_POINTS)
    reference = _reference(points)
    victim_idx = seed % len(points)
    victim = points[victim_idx]
    latch = tmp / "latch-poison"
    _latch_for(latch, victim, crashes=99)
    with _env(CHAOS_CRASH_ENV, str(latch)):
        with _server(2, tmp / "cache-poison", tmp / "state-poison.json") as srv:
            outcomes = _sweep_all(
                ServiceClient("127.0.0.1", srv.port), points
            )
    problems = _diff_records(reference, outcomes, skip={victim_idx})
    got = outcomes.get(victim_idx)
    if got is None:
        problems.append("poisoned point produced no outcome at all")
    elif got[0] != "err" or got[1] != "PoisonPointError":
        problems.append(
            f"poisoned point came back as {got[0]}/{got[1] if got[0] == 'err' else 'record'}, "
            f"expected a typed PoisonPointError"
        )
    elif str(victim.algorithm) not in got[2] or str(victim.nbytes) not in got[2]:
        problems.append(
            f"PoisonPointError message does not name the point: {got[2]!r}"
        )
    if problems:
        return ServiceChaosCheck(name, False, "; ".join(problems))
    return ServiceChaosCheck(
        name, True, "typed PoisonPointError named the point; siblings bitwise-equal"
    )


def _hard_close(sock: socket.socket) -> None:
    """Close *sock* so the peer sees EOF immediately.

    ``close()`` alone is not enough: the pump thread blocked in
    ``recv()`` on the same socket keeps the kernel object alive, so no
    FIN is sent and the peer blocks until its own timeout.
    ``shutdown()`` acts on the socket itself, regardless of other
    threads, delivering EOF to both the peer and the pump thread.
    """
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class _SeveringProxy:
    """TCP proxy that cuts the first connection's response stream after
    one full line, then forwards later connections untouched."""

    def __init__(self, backend_host: str, backend_port: int):
        self.backend = (backend_host, backend_port)
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self.connections = 0
        self.severed = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                self.sock.settimeout(0.2)
                conn, _ = self.sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.connections += 1
            threading.Thread(
                target=self._handle,
                args=(conn, self.connections == 1),
                daemon=True,
            ).start()

    def _handle(self, conn: socket.socket, sever: bool) -> None:
        try:
            upstream = socket.create_connection(self.backend, timeout=10)
        except OSError:
            conn.close()
            return

        def pump_request() -> None:
            try:
                while True:
                    data = conn.recv(65536)
                    if not data:
                        break
                    upstream.sendall(data)
                upstream.shutdown(socket.SHUT_WR)
            except OSError:
                pass

        threading.Thread(target=pump_request, daemon=True).start()
        try:
            if sever:
                # Forward exactly one response line, then cut the wire.
                buf = b""
                while b"\n" not in buf:
                    data = upstream.recv(65536)
                    if not data:
                        break
                    buf += data
                line, _, _rest = buf.partition(b"\n")
                conn.sendall(line + b"\n")
                self.severed += 1
                _hard_close(conn)
                _hard_close(upstream)
                return
            while True:
                data = upstream.recv(65536)
                if not data:
                    break
                conn.sendall(data)
        except OSError:
            pass
        finally:
            _hard_close(conn)
            _hard_close(upstream)

    def close(self) -> None:
        self._stop.set()
        try:
            self.sock.close()
        except OSError:
            pass
        self._thread.join(5)


def _check_severed_socket(tmp: Path, seed: int) -> ServiceChaosCheck:
    """The response stream dies after one record; the client must resume
    with only the missing points and assemble a bitwise-equal set."""
    name = "severed-socket-resume"
    points = list(_POINTS)
    reference = _reference(points)
    with _server(2, tmp / "cache-sever", tmp / "state-sever.json") as srv:
        proxy = _SeveringProxy("127.0.0.1", srv.port)
        try:
            client = ServiceClient("127.0.0.1", proxy.port)
            outcomes = _sweep_all(client, points)
        finally:
            proxy.close()
    problems = _diff_records(reference, outcomes)
    if proxy.severed < 1:
        problems.append("proxy never severed a connection")
    if proxy.connections < 2:
        problems.append(
            f"client never resumed (only {proxy.connections} connection(s))"
        )
    if problems:
        return ServiceChaosCheck(name, False, "; ".join(problems))
    return ServiceChaosCheck(
        name,
        True,
        f"stream cut after 1 record; resumed over "
        f"{proxy.connections} connection(s), records bitwise-equal",
    )


def _check_torn_shard(tmp: Path, seed: int) -> ServiceChaosCheck:
    """A shard truncated mid-line must be detected, repaired, and the
    re-simulated records must match the reference bitwise."""
    name = "torn-shard-fsck"
    points = list(_POINTS)
    reference = _reference(points)
    cache_dir = tmp / "cache-torn"
    SweepExecutor(jobs=1, cache=DiskCache(cache_dir), serve=False).run(
        ideal(), points
    )
    shards = sorted((cache_dir / "shards").glob("*.jsonl"))
    if not shards:
        return ServiceChaosCheck(name, False, "cache wrote no shards")
    victim = shards[seed % len(shards)]
    blob = victim.read_bytes()
    victim.write_bytes(blob[: max(1, len(blob) - 17)])  # torn mid-line

    cache = DiskCache(cache_dir)
    report = cache.fsck()
    if report.corrupt < 1:
        return ServiceChaosCheck(
            name, False, "fsck did not detect the truncated shard"
        )
    repair = cache.fsck(repair=True)
    if repair.repaired < 1:
        return ServiceChaosCheck(name, False, "fsck --repair rewrote nothing")
    after = DiskCache(cache_dir)
    if not after.fsck().ok:
        return ServiceChaosCheck(name, False, "shard still corrupt after repair")
    rerun = SweepExecutor(jobs=1, cache=after, serve=False).run(ideal(), points)
    if rerun != reference:
        return ServiceChaosCheck(
            name, False, "post-repair records differ from the reference"
        )
    return ServiceChaosCheck(
        name,
        True,
        f"{report.corrupt} torn line(s) detected, repaired, records bitwise-equal",
    )


def _check_stale_state(tmp: Path, seed: int) -> ServiceChaosCheck:
    """Discovery must reject (and remove) the advertisement of a dead
    server, and keep honouring a live one."""
    name = "stale-state-file"
    stale = tmp / "stale-state.json"
    # A pid that existed and is now certainly dead: a reaped child.
    proc = subprocess.Popen(
        [sys.executable, "-c", "pass"],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    proc.wait()
    protocol.write_state(stale, "127.0.0.1", 1, proc.pid)
    located = protocol.locate_live_server(stale)
    problems = []
    if located is not None:
        problems.append(f"discovery trusted a dead pid {proc.pid}")
    if stale.exists():
        problems.append("stale state file was not removed")
    live = tmp / "live-state.json"
    protocol.write_state(live, "127.0.0.1", 12345, os.getpid())
    if protocol.locate_live_server(live) != ("127.0.0.1", 12345):
        problems.append("discovery rejected a live advertisement")
    if not live.exists():
        problems.append("live state file was removed")
    if problems:
        return ServiceChaosCheck(name, False, "; ".join(problems))
    return ServiceChaosCheck(
        name, True, "dead advertisement removed, live one honoured"
    )


_SCENARIOS: List[Callable[[Path, int], ServiceChaosCheck]] = [
    _check_worker_kill,
    _check_poison_point,
    _check_severed_socket,
    _check_torn_shard,
    _check_stale_state,
]


def service_chaos_gate(
    seed: int = 0,
    tmp: Optional[Path] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ServiceChaosReport:
    """Run every scenario in an isolated scratch directory."""
    import tempfile

    checks = []
    with tempfile.TemporaryDirectory(prefix="repro-service-chaos-") as scratch:
        base = Path(tmp) if tmp is not None else Path(scratch)
        for scenario in _SCENARIOS:
            if progress is not None:
                progress(f"service-chaos: {scenario.__name__.lstrip('_')} ...")
            try:
                check = scenario(base, seed)
            except Exception as exc:  # noqa: BLE001 - a crash is a failure
                check = ServiceChaosCheck(
                    scenario.__name__.lstrip("_").replace("_check_", ""),
                    False,
                    f"scenario raised {type(exc).__name__}: {exc}",
                )
            checks.append(check)
    return ServiceChaosReport(checks=tuple(checks), seed=seed)
