"""The persistent simulation server behind ``repro serve``.

A :class:`SimulationServer` owns

* a **warm worker pool** — a :class:`~concurrent.futures.ProcessPoolExecutor`
  whose processes live for the server's lifetime, so the process-wide
  memos (extracted schedules, compiled replays, the shared water-filling
  solve memo) accumulate across jobs instead of dying with every CLI
  invocation;
* a **batched job queue** — sweep submissions are grouped by
  ``(algorithm, nranks)`` (the :func:`~repro.core.executor.group_points`
  batching the in-process pool also uses) and each batch runs start to
  finish inside one worker, keeping its memos coherent;
* a **sharded result cache** — one :class:`~repro.core.diskcache.DiskCache`
  consulted before any simulation and populated afterwards, shared by
  every client of this server (appends are flock-protected, so external
  processes may write the same directory concurrently);
* a **streaming response path** — records are written back the moment
  their batch completes, tagged with the submission index so clients
  reassemble deterministic order.

The TCP listener is threaded (one thread per connection, IO-bound); all
simulation happens in the pool. ``verify``/``cost``/``chaos``/``replay``
grid gates are jobs on the same queue (op ``gate``).

The pool itself is a :class:`~repro.service.resilience.ResilientPool`
(docs/robustness.md): a SIGKILL'd worker no longer wedges the server —
the pool is respawned, only the in-flight batches are re-dispatched,
points that repeatedly kill workers are quarantined with a typed
``PoisonPointError``, and sweeps may carry a wall-clock ``deadline_s``
that cancels what cannot finish in time.
"""

from __future__ import annotations

import os
import socketserver
import threading
import time
import traceback
from typing import Optional

from ..core.diskcache import DiskCache, cache_key
from ..core.executor import _simulate_batch, _warm_worker, group_points, resolve_jobs
from ..errors import ServiceError
from . import protocol
from .resilience import ResilientPool

__all__ = ["SimulationServer"]


def _run_gate(gate: str, params: dict) -> dict:
    """Worker entry point for one analysis-gate grid job.

    Returns ``{"ok": ..., "text": ..., "report": ...}``; raises nothing
    (failures are serialised like sweep-point failures).
    """
    try:
        spec = (
            protocol.decode_spec(params["spec"]) if params.get("spec") else None
        )
        if gate == "cost":
            from ..analysis.costmodel import differential_gate
            from ..machine import ideal

            report = differential_gate(
                spec=spec if spec is not None else ideal(),
                placement=params.get("placement", "blocked"),
                band=float(params.get("band", 0.5)),
            )
        elif gate == "chaos":
            from ..analysis.chaos import DEFAULT_RANKS, chaos_gate
            from ..machine import ideal

            report = chaos_gate(
                seed=int(params.get("seed", 0)),
                spec=spec if spec is not None else ideal(),
                ranks=params.get("ranks") or DEFAULT_RANKS,
                nbytes=int(params.get("nbytes", 4096)),
            )
        elif gate == "replay":
            from ..analysis.replaygate import (
                DEFAULT_RANKS,
                DEFAULT_SIZES,
                replay_gate,
            )
            from ..machine import hornet

            report = replay_gate(
                spec=spec if spec is not None else hornet(),
                ranks=params.get("ranks") or DEFAULT_RANKS,
                sizes=params.get("sizes") or DEFAULT_SIZES,
            )
        elif gate == "verify":
            from ..analysis.verify import verifiable_collectives, verify_collective

            ranks = [int(p) for p in params.get("ranks") or [8]]
            nbytes = int(params.get("nbytes", 65536))
            root = int(params.get("root", 0))
            strict = bool(params.get("strict", False))
            rendezvous = bool(params.get("rendezvous", True))
            reports = [
                verify_collective(
                    name, nranks, nbytes=nbytes, root=root, rendezvous=rendezvous
                )
                for nranks in ranks
                for name in verifiable_collectives(nranks)
            ]
            verdicts = [r.ok_strict() if strict else r.ok for r in reports]
            ok = all(verdicts)
            failed = [r for r, v in zip(reports, verdicts) if not v]
            text = f"{len(reports) - len(failed)}/{len(reports)} schedule(s) verified"
            for r in failed:
                text += "\n" + r.describe()
            return {
                "ok": ok,
                "text": text,
                "report": [r.to_dict() for r in reports],
            }
        else:
            return {
                "ok": False,
                "text": f"unknown gate {gate!r}",
                "report": None,
            }
        return {"ok": report.ok, "text": report.describe(), "report": report.to_dict()}
    except Exception as exc:  # noqa: BLE001 - serialised for the client
        return {
            "ok": False,
            "text": f"gate {gate!r} raised {type(exc).__name__}: {exc}",
            "report": None,
            "traceback": traceback.format_exc(),
        }


class _Handler(socketserver.StreamRequestHandler):
    """One connection = one request (ping/stats/sweep/gate/shutdown)."""

    server: "_TCPServer"

    def handle(self) -> None:
        sim = self.server.sim
        try:
            msg = protocol.read_message(self.rfile)
        except Exception as exc:  # noqa: BLE001 - protocol error, report+drop
            protocol.write_message(
                self.wfile, {"type": "error", "index": -1, "error_type":
                             type(exc).__name__, "message": str(exc),
                             "traceback": ""}
            )
            return
        if msg is None:
            return
        op = msg.get("op")
        try:
            if op == "ping":
                protocol.write_message(self.wfile, sim.describe_pong())
            elif op == "stats":
                protocol.write_message(self.wfile, sim.describe_stats())
            elif op == "sweep":
                sim.handle_sweep(msg, self.wfile)
            elif op == "gate":
                sim.handle_gate(msg, self.wfile)
            elif op == "shutdown":
                protocol.write_message(self.wfile, {"type": "bye"})
                sim.request_shutdown()
            else:
                protocol.write_message(
                    self.wfile,
                    {"type": "error", "index": -1, "error_type":
                     "ConfigurationError", "message": f"unknown op {op!r}",
                     "traceback": ""},
                )
        except BrokenPipeError:  # client went away mid-stream
            pass


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    sim: "SimulationServer"


class SimulationServer:
    """Long-running warm-pool simulation service on a local TCP port."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: Optional[int] = 0,
        cache: Optional[DiskCache] = None,
        state_file=None,
    ):
        self.host = host
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.state_file = protocol.state_file_path(state_file)
        self._tcp = _TCPServer((host, port), _Handler, bind_and_activate=True)
        self._tcp.sim = self
        self.port = self._tcp.server_address[1]
        self._pool = ResilientPool(jobs=self.jobs, initializer=_warm_worker)
        self._lock = threading.Lock()  # pool submissions + counters
        self._started = time.time()  # det: allow — uptime telemetry only
        self._jobs_served = 0
        self._points_served = 0
        self._shutdown_requested = threading.Event()
        protocol.write_state(self.state_file, self.host, self.port, os.getpid())

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`request_shutdown`."""
        try:
            self._tcp.serve_forever(poll_interval=0.1)
        finally:
            self.close()

    def request_shutdown(self) -> None:
        """Stop the accept loop (callable from handler threads)."""
        if not self._shutdown_requested.is_set():
            self._shutdown_requested.set()
            threading.Thread(target=self._tcp.shutdown, daemon=True).start()

    def close(self) -> None:
        """Drain the pool, stop listening and withdraw the state file."""
        self._shutdown_requested.set()
        self._tcp.server_close()
        self._pool.shutdown(wait=True)  # ResilientPool: drains the live pool
        try:
            if self.state_file.exists():
                self.state_file.unlink()
        except OSError:  # pragma: no cover - state dir vanished
            pass

    def __enter__(self) -> "SimulationServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection -------------------------------------------------
    def describe_pong(self) -> dict:
        return {
            "type": "pong",
            "pid": os.getpid(),
            "workers": self.jobs,
            "version": protocol.PROTOCOL_VERSION,
        }

    def describe_stats(self) -> dict:
        cache_stats = self.cache.stats() if self.cache is not None else None
        return {
            "type": "stats",
            "pid": os.getpid(),
            "workers": self.jobs,
            "uptime_s": time.time() - self._started,  # det: allow — telemetry
            "jobs": self._jobs_served,
            "points": self._points_served,
            "respawns": self._pool.respawns_total,
            "quarantined": len(self._pool.quarantined),
            "cache": None
            if cache_stats is None
            else {
                "entries": cache_stats.entries,
                "hits": cache_stats.hits,
                "misses": cache_stats.misses,
                "stores": cache_stats.stores,
            },
        }

    # -- job handling ----------------------------------------------------
    def handle_sweep(self, msg: dict, wfile) -> None:
        """Run one sweep job: cache pass, batched fan-out, streaming.

        Fan-out goes through the :class:`ResilientPool`: worker crashes
        respawn the pool and re-dispatch only the in-flight batches,
        repeatedly-crashing points stream back as typed
        ``PoisonPointError`` outcomes, and an optional ``deadline_s``
        cancels whatever cannot finish in time (typed
        ``ServiceDeadlineError`` per unfinished point).
        """
        spec = protocol.decode_spec(msg["spec"])
        points = protocol.decode_points(msg["points"])
        root = int(msg.get("root", 0))
        placement = msg.get("placement", "blocked")
        faults = protocol.decode_faults(msg.get("faults"))
        reliable = protocol.decode_reliable(msg.get("reliable"))
        use_cache = bool(msg.get("cache", True)) and self.cache is not None
        deadline_s = msg.get("deadline_s")
        deadline_s = None if deadline_s is None else float(deadline_s)
        job = str(msg.get("job", ""))

        sent = 0
        cold = []
        keys = {}
        for i, point in enumerate(points):
            if use_cache:
                keys[i] = cache_key(
                    spec, point, root=root, placement=placement,
                    faults=faults, reliable=reliable,
                )
                rec = self.cache.get(keys[i])
                if rec is not None:
                    protocol.write_message(
                        wfile,
                        {"type": "result", "index": i,
                         "record": protocol.encode_record(rec)},
                    )
                    sent += 1
                    continue
            cold.append(i)

        if cold:
            tasks = {
                i: (spec, points[i], root, placement, faults, reliable)
                for i in cold
            }
            batches = group_points(points, cold, self.jobs)
            fault_digest = faults.digest() if faults is not None else ""

            def poison_key(i: int) -> str:
                p = points[i]
                return (
                    f"{p.algorithm}:{p.nranks}:{p.nbytes}:{root}:"
                    f"{placement}:{fault_digest}"
                )

            for i, outcome in self._pool.run(
                _simulate_batch,
                batches,
                tasks,
                deadline_s=deadline_s,
                poison_key=poison_key,
            ):
                if outcome[0] == "ok":
                    rec = outcome[1]
                    if use_cache:
                        self.cache.put(keys[i], rec)
                    protocol.write_message(
                        wfile,
                        {"type": "result", "index": i,
                         "record": protocol.encode_record(rec)},
                    )
                else:
                    _, error_type, message, tb = outcome
                    protocol.write_message(
                        wfile,
                        {"type": "error", "index": i,
                         "error_type": error_type, "message": message,
                         "traceback": tb},
                    )
                sent += 1

        with self._lock:
            self._jobs_served += 1
            self._points_served += len(points)
        protocol.write_message(
            wfile, {"type": "done", "count": sent, "job": job}
        )

    def handle_gate(self, msg: dict, wfile) -> None:
        """Run one verify/cost/chaos/replay grid on the worker pool."""
        gate = str(msg.get("gate", ""))
        params = msg.get("params") or {}
        try:
            result = self._pool.submit_once(_run_gate, gate, params)
        except ServiceError as exc:
            result = {"ok": False, "text": str(exc), "report": None}
        with self._lock:
            self._jobs_served += 1
        protocol.write_message(
            wfile,
            {"type": "gate", "gate": gate, "ok": result.get("ok", False),
             "text": result.get("text", ""), "report": result.get("report")},
        )
