"""Wire protocol of the simulation service: JSON lines over a socket.

One connection carries one request and its (possibly streamed) response.
Every message is a single JSON object on its own line — human-debuggable
with ``nc localhost <port>`` and immune to partial-read framing bugs.

Requests (``op`` selects the handler):

* ``{"op": "ping"}`` → ``{"type": "pong", "pid": ..., "workers": ...,
  "version": ...}``
* ``{"op": "stats"}`` → ``{"type": "stats", ...}`` (jobs/points served,
  cache stats, uptime)
* ``{"op": "sweep", "spec": {...}, "points": [[alg, nranks, nbytes],
  ...], "root": 0, "placement": "blocked", "faults": null,
  "reliable": null, "cache": true}`` → a stream of
  ``{"type": "result", "index": i, "record": {...}}`` /
  ``{"type": "error", "index": i, "error_type": ..., "message": ...,
  "traceback": ...}`` messages (one per point, completion order)
  terminated by ``{"type": "done", "count": N}``
* ``{"op": "gate", "gate": "cost"|"chaos"|"replay"|"verify",
  "params": {...}}`` → ``{"type": "gate", "ok": ..., "text": ...,
  "report": {...}}``
* ``{"op": "shutdown"}`` → ``{"type": "bye"}`` and the server drains
  its pool and exits.

Floats survive the trip exactly: Python's ``json`` emits shortest
round-trip ``repr`` floats, so a decoded
:class:`~repro.core.report.RunRecord` is equal — field for field,
bit for bit — to the record the worker produced. The service smoke
tests assert exactly that against the serial path.
"""

from __future__ import annotations

import dataclasses
import json
import os
import socket
from pathlib import Path
from typing import IO, Iterable, List, Optional, Tuple

from ..core.diskcache import default_cache_dir
from ..core.report import RunRecord
from ..core.sweep import SweepPoint
from ..errors import ConfigurationError
from ..machine import MachineSpec
from ..mpi.reliable import ReliableConfig
from ..sim.faults import FaultPlan

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_STATE_FILE",
    "read_message",
    "write_message",
    "encode_spec",
    "decode_spec",
    "encode_record",
    "decode_record",
    "encode_points",
    "decode_points",
    "encode_faults",
    "decode_faults",
    "encode_reliable",
    "decode_reliable",
    "state_file_path",
    "read_state",
    "read_state_full",
    "write_state",
    "pid_alive",
    "locate_live_server",
    "open_connection",
]

PROTOCOL_VERSION = 1

# Where a server advertises itself for auto-discovery (REPRO_SERVE=auto
# or --serve with no address): a JSON file with host/port/pid.
DEFAULT_STATE_FILE = "service.json"


# -- framing ----------------------------------------------------------
def write_message(stream: IO, obj: dict) -> None:
    """Serialise one protocol message (newline-delimited JSON)."""
    stream.write(
        (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")
    )
    stream.flush()


def read_message(stream: IO) -> Optional[dict]:
    """Read one message; ``None`` on a cleanly closed connection."""
    line = stream.readline()
    if not line:
        return None
    try:
        obj = json.loads(line.decode("utf-8"))
    except ValueError as exc:
        raise ConfigurationError(f"malformed service message: {exc}") from exc
    if not isinstance(obj, dict):
        raise ConfigurationError(
            f"malformed service message: expected object, got {type(obj).__name__}"
        )
    return obj


# -- payload codecs ---------------------------------------------------
def encode_spec(spec: MachineSpec) -> dict:
    return dataclasses.asdict(spec)


def decode_spec(data: dict) -> MachineSpec:
    return MachineSpec(**data)


def encode_record(rec: RunRecord) -> dict:
    return dataclasses.asdict(rec)


def decode_record(data: dict) -> RunRecord:
    return RunRecord(**data)


def encode_points(points: Iterable) -> List[list]:
    return [[p.algorithm, p.nranks, p.nbytes] for p in points]


def decode_points(data: Iterable) -> List[SweepPoint]:
    return [SweepPoint(str(a), int(p), int(n)) for a, p, n in data]


def encode_faults(faults: Optional[FaultPlan]) -> Optional[dict]:
    return None if faults is None else faults.to_dict()


def decode_faults(data: Optional[dict]) -> Optional[FaultPlan]:
    return None if data is None else FaultPlan.from_dict(data)


def encode_reliable(reliable) -> Optional[dict]:
    """``None``/bool/:class:`ReliableConfig` → wire form."""
    if reliable is None:
        return None
    if isinstance(reliable, bool):
        return {"kind": "bool", "value": reliable}
    if isinstance(reliable, ReliableConfig):
        return {"kind": "config", "value": dataclasses.asdict(reliable)}
    raise ConfigurationError(
        f"reliable must be None, bool or ReliableConfig for service jobs, "
        f"got {type(reliable).__name__}"
    )


def decode_reliable(data: Optional[dict]):
    if data is None:
        return None
    if data.get("kind") == "bool":
        return bool(data["value"])
    if data.get("kind") == "config":
        return ReliableConfig(**data["value"])
    raise ConfigurationError(f"malformed reliable payload: {data!r}")


# -- discovery state file ---------------------------------------------
def state_file_path(path=None) -> Path:
    """Resolve the discovery state file (default: under the cache dir)."""
    if path:
        return Path(path).expanduser()
    return default_cache_dir() / DEFAULT_STATE_FILE


def write_state(path: Path, host: str, port: int, pid: int) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps({"host": host, "port": port, "pid": pid}) + "\n",
        encoding="utf-8",
    )


def read_state(path: Path) -> Optional[Tuple[str, int]]:
    """(host, port) from a state file, or ``None`` if unusable."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        return str(data["host"]), int(data["port"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


def read_state_full(path: Path) -> Optional[Tuple[str, int, int]]:
    """(host, port, pid) from a state file, or ``None`` if unusable.

    ``pid`` is 0 when the file predates pid recording (or recorded
    garbage) — callers must treat 0 as "no liveness information".
    """
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        host, port = str(data["host"]), int(data["port"])
    except (OSError, ValueError, KeyError, TypeError):
        return None
    try:
        pid = int(data.get("pid", 0))
    except (ValueError, TypeError):
        pid = 0
    return host, port, max(0, pid)


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a *local* server pid.

    ``pid <= 0`` carries no information and reads as alive (never signal
    pid 0 — that is our own process group). A pid we may not signal
    (EPERM) exists, hence alive.
    """
    if pid <= 0:
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


def locate_live_server(path: Path) -> Optional[Tuple[str, int]]:
    """(host, port) of the advertised server, validating liveness.

    A SIGKILL'd server cannot withdraw its state file; discovery that
    trusted the file would then connect (or hang) on a dead address.
    This reads the state file, checks the recorded pid is still alive,
    and *removes* the stale file when it is not — so the next discovery
    does not trip over it either. Returns ``None`` when no live server
    is advertised.
    """
    state = read_state_full(path)
    if state is None:
        return None
    host, port, pid = state
    if not pid_alive(pid):
        try:
            path.unlink()
        except OSError:  # pragma: no cover - raced with another cleaner
            pass
        return None
    return host, port


def open_connection(host: str, port: int, timeout: Optional[float]) -> socket.socket:
    """TCP connect helper shared by client and ``serve --stop``."""
    return socket.create_connection((host, port), timeout=timeout)
