"""Thin client for the persistent simulation service.

:class:`ServiceClient` turns a live ``repro serve`` instance into a
drop-in replacement for in-process simulation: :meth:`ServiceClient.sweep`
streams ``(index, outcome)`` pairs exactly shaped like the executor's
worker outcomes, so :class:`~repro.core.executor.SweepExecutor` treats a
server and a local pool identically.

Discovery policy (:func:`resolve_address` / :func:`connect_or_none`):

======================  =========================  =====================
``serve`` argument       where the address comes    when nothing answers
                         from
======================  =========================  =====================
``False``                —                          never connects
``None`` (default)       ``REPRO_SERVE`` env var    silent fallback to
                         (unset/``0``/``off`` →     the in-process path
                         never connects)
``True``/``"auto"``      state file under the       silent fallback
                         cache dir
``"host:port"``          the literal address        raises
                                                    :class:`~repro.errors.\
ServiceUnavailableError`
``"/path/to/state"``     that state file            raises
======================  =========================  =====================

so exported pipelines can set ``REPRO_SERVE=auto`` and keep working with
no server up, while an explicit ``--serve ADDR`` fails loudly instead of
silently simulating in-process. State-file discovery validates the
recorded server pid and deletes stale files (a SIGKILL'd server cannot
withdraw its own advertisement), so auto mode never connects to a dead
address.

Every RPC carries a default deadline (:func:`default_timeout`,
env-overridable via ``REPRO_SERVE_TIMEOUT``; ``0``/``off`` disables), so
a hung server fails a sweep with a typed error instead of blocking it
forever. :meth:`ServiceClient.sweep` additionally resumes: a stream cut
mid-job (server restart, severed socket) is retried up to
``REPRO_SERVE_RETRIES`` times, re-requesting *only* the points whose
outcomes have not been delivered, under the same content-digest job id
— resubmission is idempotent because completed points are answered from
the server's cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Sequence, Tuple

from ..errors import ServiceError, ServiceUnavailableError
from . import protocol

__all__ = [
    "ServiceClient",
    "ResolvedService",
    "resolve_address",
    "connect_or_none",
    "default_timeout",
    "default_retries",
    "job_digest",
    "SERVE_ENV",
    "TIMEOUT_ENV",
    "RETRY_ENV",
]

SERVE_ENV = "REPRO_SERVE"

#: Default wall-clock deadline (seconds) for every RPC's socket
#: operations. ``0``/``off`` disables deadlines entirely.
TIMEOUT_ENV = "REPRO_SERVE_TIMEOUT"
DEFAULT_TIMEOUT_S = 300.0

#: How many times a cut sweep stream is resumed before giving up.
RETRY_ENV = "REPRO_SERVE_RETRIES"
DEFAULT_RETRIES = 2

# Env/flag values meaning "do not use a service" / "discover one".
_OFF_VALUES = frozenset({"", "0", "off", "no", "false", "none"})
_AUTO_VALUES = frozenset({"1", "auto", "on", "true"})

# How long a discovery ping may take before we declare the server absent.
PING_TIMEOUT_S = 2.0

# Sentinel: distinguishes "caller said no timeout" (None) from "caller
# said nothing" (fall back to the env-resolved default).
_UNSET = object()


def default_timeout() -> Optional[float]:
    """The env-resolved RPC deadline: seconds, or ``None`` for none."""
    raw = os.environ.get(TIMEOUT_ENV, "").strip()
    if not raw:
        return DEFAULT_TIMEOUT_S
    if raw.lower() in _OFF_VALUES:
        return None
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_TIMEOUT_S
    return value if value > 0 else None


def default_retries() -> int:
    """The env-resolved sweep resume budget (attempts after the first)."""
    try:
        return max(0, int(os.environ.get(RETRY_ENV, "")))
    except ValueError:
        return DEFAULT_RETRIES


def job_digest(payload: dict) -> str:
    """Content digest identifying one sweep job across resubmissions.

    A pure function of the job's full wire payload (spec, every point,
    root, placement, faults, reliability), so a resumed partial
    resubmission carries the same id as the original request.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class ResolvedService:
    """Outcome of the discovery policy for one ``serve`` argument."""

    host: str
    port: int
    explicit: bool  # explicit → unreachable raises instead of falling back
    source: str  # human-readable provenance for error messages


def _parse_address(value: str, explicit: bool) -> Optional[ResolvedService]:
    """``host:port`` or a state-file path → :class:`ResolvedService`."""
    host, sep, port = value.rpartition(":")
    if sep and port.isdigit() and "/" not in port:
        return ResolvedService(host or "127.0.0.1", int(port), explicit, value)
    state = protocol.state_file_path(value)
    located = protocol.locate_live_server(state)
    if located is None:
        if explicit:
            raise ServiceUnavailableError(
                value, "no usable state file (or the advertised server is dead)"
            )
        return None
    return ResolvedService(located[0], located[1], explicit, value)


def _auto_resolve() -> Optional[ResolvedService]:
    """Default state file → address, or ``None`` when no server advertised.

    Liveness-validated: a stale advertisement from a SIGKILL'd server is
    removed and discovery reports "no server" instead of a dead address.
    """
    state = protocol.state_file_path(None)
    located = protocol.locate_live_server(state)
    if located is None:
        return None
    return ResolvedService(located[0], located[1], False, str(state))


def resolve_address(serve=None) -> Optional[ResolvedService]:
    """Apply the discovery policy; ``None`` means "stay in-process"."""
    if serve is False:
        return None
    if serve is None:
        env = os.environ.get(SERVE_ENV, "").strip()
        if env.lower() in _OFF_VALUES:
            return None
        if env.lower() in _AUTO_VALUES:
            return _auto_resolve()
        return _parse_address(env, explicit=False)
    if serve is True:
        return _auto_resolve()
    value = str(serve).strip()
    if value.lower() in _AUTO_VALUES:
        return _auto_resolve()
    if value.lower() in _OFF_VALUES:
        return None
    if isinstance(serve, Path):
        return _parse_address(str(serve), explicit=True)
    return _parse_address(value, explicit=True)


def connect_or_none(serve=None) -> Optional["ServiceClient"]:
    """A pinged :class:`ServiceClient` per the policy, or ``None``.

    Auto-discovered servers that fail the ping fall back silently
    (returns ``None``); explicitly named servers raise
    :class:`~repro.errors.ServiceUnavailableError`.
    """
    resolved = resolve_address(serve)
    if resolved is None:
        return None
    client = ServiceClient(resolved.host, resolved.port)
    try:
        client.ping(timeout=PING_TIMEOUT_S)
        return client
    except ServiceUnavailableError:
        if resolved.explicit:
            raise
        return None
    except (OSError, ServiceError) as exc:
        if resolved.explicit:
            raise ServiceUnavailableError(resolved.source, str(exc)) from exc
        return None


class ServiceClient:
    """One simulation server, addressed by host and port.

    Connections are per-request (the protocol is one request, one
    response stream, close), so a client object is cheap, reusable and
    safe to keep around across many sweeps.
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = int(port)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # The executor drives clients through a ``with`` block; per-request
    # connections mean there is nothing to tear down.
    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """No persistent connection to close; kept for symmetry."""

    # -- plumbing ------------------------------------------------------
    def _request(self, msg: dict, timeout=_UNSET):
        """Open a connection, send *msg*, yield response messages.

        ``timeout`` bounds every socket operation (connect and each
        read). Unspecified → :func:`default_timeout`; ``None`` → no
        deadline (opt-in, not the default — a hung server must not be
        able to block a sweep forever).
        """
        if timeout is _UNSET:
            timeout = default_timeout()
        try:
            sock = protocol.open_connection(self.host, self.port, timeout)
        except OSError as exc:
            raise ServiceUnavailableError(self.address, str(exc)) from exc
        try:
            with sock, sock.makefile("rwb") as stream:
                protocol.write_message(stream, msg)
                sock.shutdown(socket.SHUT_WR)
                while True:
                    reply = protocol.read_message(stream)
                    if reply is None:
                        return
                    yield reply
        except socket.timeout as exc:
            raise ServiceError(
                f"simulation server {self.address} exceeded the "
                f"{timeout}s RPC deadline ({TIMEOUT_ENV} overrides)"
            ) from exc
        except OSError as exc:
            raise ServiceError(
                f"connection to simulation server {self.address} failed "
                f"mid-request: {exc}"
            ) from exc

    def _request_one(self, msg: dict, timeout=_UNSET) -> dict:
        for reply in self._request(msg, timeout=timeout):
            return reply
        raise ServiceError(
            f"simulation server {self.address} closed the connection "
            f"without answering {msg.get('op')!r}"
        )

    # -- operations ----------------------------------------------------
    def ping(self, timeout=_UNSET) -> dict:
        """Round-trip liveness + version check; returns the pong payload."""
        pong = self._request_one({"op": "ping"}, timeout=timeout)
        if pong.get("type") != "pong":
            raise ServiceError(
                f"unexpected ping reply from {self.address}: {pong!r}"
            )
        version = pong.get("version")
        if version != protocol.PROTOCOL_VERSION:
            raise ServiceError(
                f"simulation server {self.address} speaks protocol "
                f"{version!r}, client needs {protocol.PROTOCOL_VERSION}"
            )
        return pong

    def stats(self, timeout=_UNSET) -> dict:
        """Server-side counters (jobs/points served, cache stats, uptime)."""
        return self._request_one({"op": "stats"}, timeout=timeout)

    def sweep(
        self,
        spec,
        points: Sequence,
        root: int = 0,
        placement="blocked",
        faults=None,
        reliable=None,
        cache: bool = True,
        deadline_s: Optional[float] = None,
        timeout=_UNSET,
        retries: Optional[int] = None,
    ) -> Iterator[Tuple[int, tuple]]:
        """Stream ``(index, outcome)`` pairs for *points*, completion order.

        Outcomes mirror the executor's worker protocol:
        ``("ok", RunRecord)`` or ``("err", error_type, message, tb)``.
        Indices refer to positions in *points*. ``placement`` must be a
        named strategy (strings travel the wire; explicit node maps do
        not) — the executor only routes string placements to a server.

        Crash-safe: if the stream is cut mid-job (server restart,
        severed socket, RPC deadline), the client resumes up to
        ``retries`` times (default :func:`default_retries`),
        re-requesting **only** the points whose outcomes have not been
        delivered yet. Every (re)submission carries the same
        content-digest ``job`` id — computed over the *full* original
        payload — so the server can correlate them, and completed points
        are answered idempotently from its cache. ``deadline_s`` bounds
        the job server-side: points that cannot finish in time come back
        as typed ``ServiceDeadlineError`` outcomes. ``timeout`` bounds
        each socket operation client-side (default
        :func:`default_timeout`).
        """
        base = {
            "op": "sweep",
            "spec": protocol.encode_spec(spec),
            "root": int(root),
            "placement": placement,
            "faults": protocol.encode_faults(faults),
            "reliable": protocol.encode_reliable(reliable),
            "cache": bool(cache),
        }
        if deadline_s is not None:
            base["deadline_s"] = float(deadline_s)
        wire_points = protocol.encode_points(points)
        job = job_digest({**base, "points": wire_points})
        budget = default_retries() if retries is None else max(0, int(retries))

        missing = list(range(len(points)))  # original indices, undelivered
        attempts = 0
        while missing:
            sub = list(missing)  # wire index -> original index
            msg = {**base, "points": [wire_points[i] for i in sub], "job": job}
            got = set()
            try:
                for reply in self._request(msg, timeout=timeout):
                    kind = reply.get("type")
                    if kind == "result":
                        orig = sub[int(reply["index"])]
                        got.add(orig)
                        yield orig, ("ok", protocol.decode_record(reply["record"]))
                    elif kind == "error":
                        orig = sub[int(reply["index"])]
                        got.add(orig)
                        yield orig, (
                            "err",
                            str(reply.get("error_type", "ServiceError")),
                            str(reply.get("message", "")),
                            str(reply.get("traceback", "")),
                        )
                    elif kind == "done":
                        if int(reply.get("count", -1)) != len(got):
                            raise ServiceError(
                                f"simulation server {self.address} reported "
                                f"{reply.get('count')} outcome(s) but "
                                f"streamed {len(got)}"
                            )
                        break
                    else:
                        raise ServiceError(
                            f"unexpected sweep reply from {self.address}: "
                            f"{reply!r}"
                        )
                else:  # stream ended without a "done" frame
                    raise ServiceError(
                        f"simulation server {self.address} dropped the sweep "
                        f"stream after {len(got)} of {len(sub)} outcome(s)"
                    )
            except (OSError, ServiceError) as exc:
                missing = [i for i in missing if i not in got]
                attempts += 1
                if attempts > budget:
                    raise ServiceError(
                        f"sweep job {job} failed after {attempts} attempt(s) "
                        f"with {len(missing)} of {len(points)} point(s) "
                        f"undelivered: {exc}"
                    ) from exc
                # Deterministic linear backoff before resuming the rest.
                time.sleep(0.05 * attempts)  # det: allow — retry pacing
                continue
            missing = [i for i in missing if i not in got]
            if missing:  # "done" yet points absent: corrupt stream, resume
                attempts += 1
                if attempts > budget:
                    raise ServiceError(
                        f"sweep job {job} completed without outcomes for "
                        f"{len(missing)} of {len(points)} point(s)"
                    )

    def gate(
        self, gate: str, params: Optional[dict] = None, timeout=_UNSET
    ) -> dict:
        """Run a verify/cost/chaos/replay grid server-side.

        Returns ``{"ok": bool, "text": str, "report": ...}``.
        """
        reply = self._request_one(
            {"op": "gate", "gate": gate, "params": params or {}},
            timeout=timeout,
        )
        if reply.get("type") != "gate":
            raise ServiceError(
                f"unexpected gate reply from {self.address}: {reply!r}"
            )
        return reply

    def shutdown_server(self, timeout=_UNSET) -> bool:
        """Ask the server to drain its pool and exit; True on ack."""
        try:
            reply = self._request_one({"op": "shutdown"}, timeout=timeout)
        except (OSError, ServiceError):
            return False
        return reply.get("type") == "bye"
