"""Thin client for the persistent simulation service.

:class:`ServiceClient` turns a live ``repro serve`` instance into a
drop-in replacement for in-process simulation: :meth:`ServiceClient.sweep`
streams ``(index, outcome)`` pairs exactly shaped like the executor's
worker outcomes, so :class:`~repro.core.executor.SweepExecutor` treats a
server and a local pool identically.

Discovery policy (:func:`resolve_address` / :func:`connect_or_none`):

======================  =========================  =====================
``serve`` argument       where the address comes    when nothing answers
                         from
======================  =========================  =====================
``False``                —                          never connects
``None`` (default)       ``REPRO_SERVE`` env var    silent fallback to
                         (unset/``0``/``off`` →     the in-process path
                         never connects)
``True``/``"auto"``      state file under the       silent fallback
                         cache dir
``"host:port"``          the literal address        raises
                                                    :class:`~repro.errors.\
ServiceUnavailableError`
``"/path/to/state"``     that state file            raises
======================  =========================  =====================

so exported pipelines can set ``REPRO_SERVE=auto`` and keep working with
no server up, while an explicit ``--serve ADDR`` fails loudly instead of
silently simulating in-process.
"""

from __future__ import annotations

import os
import socket
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Sequence, Tuple

from ..errors import ServiceError, ServiceUnavailableError
from . import protocol

__all__ = [
    "ServiceClient",
    "ResolvedService",
    "resolve_address",
    "connect_or_none",
    "SERVE_ENV",
]

SERVE_ENV = "REPRO_SERVE"

# Env/flag values meaning "do not use a service" / "discover one".
_OFF_VALUES = frozenset({"", "0", "off", "no", "false", "none"})
_AUTO_VALUES = frozenset({"1", "auto", "on", "true"})

# How long a discovery ping may take before we declare the server absent.
PING_TIMEOUT_S = 2.0


@dataclass(frozen=True)
class ResolvedService:
    """Outcome of the discovery policy for one ``serve`` argument."""

    host: str
    port: int
    explicit: bool  # explicit → unreachable raises instead of falling back
    source: str  # human-readable provenance for error messages


def _parse_address(value: str, explicit: bool) -> Optional[ResolvedService]:
    """``host:port`` or a state-file path → :class:`ResolvedService`."""
    host, sep, port = value.rpartition(":")
    if sep and port.isdigit() and "/" not in port:
        return ResolvedService(host or "127.0.0.1", int(port), explicit, value)
    state = protocol.state_file_path(value)
    located = protocol.read_state(state)
    if located is None:
        if explicit:
            raise ServiceUnavailableError(value, "no usable state file")
        return None
    return ResolvedService(located[0], located[1], explicit, value)


def _auto_resolve() -> Optional[ResolvedService]:
    """Default state file → address, or ``None`` when no server advertised."""
    state = protocol.state_file_path(None)
    located = protocol.read_state(state)
    if located is None:
        return None
    return ResolvedService(located[0], located[1], False, str(state))


def resolve_address(serve=None) -> Optional[ResolvedService]:
    """Apply the discovery policy; ``None`` means "stay in-process"."""
    if serve is False:
        return None
    if serve is None:
        env = os.environ.get(SERVE_ENV, "").strip()
        if env.lower() in _OFF_VALUES:
            return None
        if env.lower() in _AUTO_VALUES:
            return _auto_resolve()
        return _parse_address(env, explicit=False)
    if serve is True:
        return _auto_resolve()
    value = str(serve).strip()
    if value.lower() in _AUTO_VALUES:
        return _auto_resolve()
    if value.lower() in _OFF_VALUES:
        return None
    if isinstance(serve, Path):
        return _parse_address(str(serve), explicit=True)
    return _parse_address(value, explicit=True)


def connect_or_none(serve=None) -> Optional["ServiceClient"]:
    """A pinged :class:`ServiceClient` per the policy, or ``None``.

    Auto-discovered servers that fail the ping fall back silently
    (returns ``None``); explicitly named servers raise
    :class:`~repro.errors.ServiceUnavailableError`.
    """
    resolved = resolve_address(serve)
    if resolved is None:
        return None
    client = ServiceClient(resolved.host, resolved.port)
    try:
        client.ping(timeout=PING_TIMEOUT_S)
        return client
    except ServiceUnavailableError:
        if resolved.explicit:
            raise
        return None
    except (OSError, ServiceError) as exc:
        if resolved.explicit:
            raise ServiceUnavailableError(resolved.source, str(exc)) from exc
        return None


class ServiceClient:
    """One simulation server, addressed by host and port.

    Connections are per-request (the protocol is one request, one
    response stream, close), so a client object is cheap, reusable and
    safe to keep around across many sweeps.
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = int(port)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # The executor drives clients through a ``with`` block; per-request
    # connections mean there is nothing to tear down.
    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """No persistent connection to close; kept for symmetry."""

    # -- plumbing ------------------------------------------------------
    def _request(self, msg: dict, timeout: Optional[float] = None):
        """Open a connection, send *msg*, yield response messages."""
        try:
            sock = protocol.open_connection(self.host, self.port, timeout)
        except OSError as exc:
            raise ServiceUnavailableError(self.address, str(exc)) from exc
        try:
            with sock, sock.makefile("rwb") as stream:
                protocol.write_message(stream, msg)
                sock.shutdown(socket.SHUT_WR)
                while True:
                    reply = protocol.read_message(stream)
                    if reply is None:
                        return
                    yield reply
        except OSError as exc:
            raise ServiceError(
                f"connection to simulation server {self.address} failed "
                f"mid-request: {exc}"
            ) from exc

    def _request_one(self, msg: dict, timeout: Optional[float] = None) -> dict:
        for reply in self._request(msg, timeout=timeout):
            return reply
        raise ServiceError(
            f"simulation server {self.address} closed the connection "
            f"without answering {msg.get('op')!r}"
        )

    # -- operations ----------------------------------------------------
    def ping(self, timeout: Optional[float] = None) -> dict:
        """Round-trip liveness + version check; returns the pong payload."""
        pong = self._request_one({"op": "ping"}, timeout=timeout)
        if pong.get("type") != "pong":
            raise ServiceError(
                f"unexpected ping reply from {self.address}: {pong!r}"
            )
        version = pong.get("version")
        if version != protocol.PROTOCOL_VERSION:
            raise ServiceError(
                f"simulation server {self.address} speaks protocol "
                f"{version!r}, client needs {protocol.PROTOCOL_VERSION}"
            )
        return pong

    def stats(self) -> dict:
        """Server-side counters (jobs/points served, cache stats, uptime)."""
        return self._request_one({"op": "stats"})

    def sweep(
        self,
        spec,
        points: Sequence,
        root: int = 0,
        placement="blocked",
        faults=None,
        reliable=None,
        cache: bool = True,
    ) -> Iterator[Tuple[int, tuple]]:
        """Stream ``(index, outcome)`` pairs for *points*, completion order.

        Outcomes mirror the executor's worker protocol:
        ``("ok", RunRecord)`` or ``("err", error_type, message, tb)``.
        Indices refer to positions in *points*. ``placement`` must be a
        named strategy (strings travel the wire; explicit node maps do
        not) — the executor only routes string placements to a server.
        """
        msg = {
            "op": "sweep",
            "spec": protocol.encode_spec(spec),
            "points": protocol.encode_points(points),
            "root": int(root),
            "placement": placement,
            "faults": protocol.encode_faults(faults),
            "reliable": protocol.encode_reliable(reliable),
            "cache": bool(cache),
        }
        seen = 0
        for reply in self._request(msg):
            kind = reply.get("type")
            if kind == "result":
                yield (
                    int(reply["index"]),
                    ("ok", protocol.decode_record(reply["record"])),
                )
                seen += 1
            elif kind == "error":
                yield (
                    int(reply["index"]),
                    (
                        "err",
                        str(reply.get("error_type", "ServiceError")),
                        str(reply.get("message", "")),
                        str(reply.get("traceback", "")),
                    ),
                )
                seen += 1
            elif kind == "done":
                if int(reply.get("count", -1)) != seen:
                    raise ServiceError(
                        f"simulation server {self.address} reported "
                        f"{reply.get('count')} outcome(s) but streamed {seen}"
                    )
                return
            else:
                raise ServiceError(
                    f"unexpected sweep reply from {self.address}: {reply!r}"
                )
        raise ServiceError(
            f"simulation server {self.address} dropped the sweep stream "
            f"after {seen} of {len(points)} outcome(s)"
        )

    def gate(self, gate: str, params: Optional[dict] = None) -> dict:
        """Run a verify/cost/chaos/replay grid server-side.

        Returns ``{"ok": bool, "text": str, "report": ...}``.
        """
        reply = self._request_one(
            {"op": "gate", "gate": gate, "params": params or {}}
        )
        if reply.get("type") != "gate":
            raise ServiceError(
                f"unexpected gate reply from {self.address}: {reply!r}"
            )
        return reply

    def shutdown_server(self) -> bool:
        """Ask the server to drain its pool and exit; True on ack."""
        try:
            reply = self._request_one({"op": "shutdown"})
        except (OSError, ServiceError):
            return False
        return reply.get("type") == "bye"
