"""Persistent local simulation service (``repro serve``).

Turns the one-shot sweep CLI into a client/server split: a long-running
:class:`~repro.service.server.SimulationServer` owns a warm worker pool
and a sharded result cache, and every ``repro sweep``/``repro figure``
invocation (plus the verify/cost/chaos/replay grids) can become a thin
:class:`~repro.service.client.ServiceClient` that submits jobs over a
local TCP socket and streams records back as they complete. See
docs/performance.md ("Simulation service") for the architecture and
batching semantics.
"""

from .client import ServiceClient, connect_or_none, resolve_address
from .protocol import PROTOCOL_VERSION, DEFAULT_STATE_FILE
from .server import SimulationServer

__all__ = [
    "ServiceClient",
    "SimulationServer",
    "connect_or_none",
    "resolve_address",
    "PROTOCOL_VERSION",
    "DEFAULT_STATE_FILE",
]
