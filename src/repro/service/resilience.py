"""Fault-tolerant wrapper around the warm simulation worker pool.

A :class:`concurrent.futures.ProcessPoolExecutor` is brittle by design:
one SIGKILL'd worker (OOM killer, a segfaulting native extension, an
operator ``kill -9``) marks the whole pool broken and every outstanding
future — including batches that were queued but never started — fails
with :class:`~concurrent.futures.process.BrokenProcessPool`. Before
this module, that either wedged a multi-hour sweep or silently dropped
its results; now the pool is a replaceable part:

* **crash recovery** — when the pool breaks, :class:`ResilientPool`
  respawns it (bounded by ``respawn_limit``, with deterministic
  exponential backoff) and re-dispatches *only* the units that were in
  flight, so finished work is never re-simulated;
* **blame isolation** — a crashed multi-point batch is split into
  single-point units and re-run one at a time ("careful mode"), so the
  next crash is attributable to exactly one point;
* **poison-point quarantine** — a single point that kills its worker
  ``poison_threshold`` times is quarantined: it returns a typed
  :class:`~repro.errors.PoisonPointError` outcome naming the point, and
  the rest of the sweep completes normally. Quarantine is remembered
  for the pool's lifetime, so a long-running server refuses to let the
  same point kill workers job after job;
* **wall-clock deadlines** — ``deadline_s`` bounds one job end to end:
  on expiry, unstarted units are cancelled, running ones abandoned, and
  every unfinished point yields a typed ``ServiceDeadlineError``
  outcome. Finished points are still delivered, so clients can resume
  with just the missing remainder.

Outcomes use the executor's worker protocol — ``("ok", record)`` or
``("err", type_name, message, traceback)`` — so the server and the
in-process :class:`~repro.core.executor.SweepExecutor` consume a
resilient pool and a bare one identically. Every decision here is a
pure function of the crash/completion sequence; the only clock reads
are deadline bookkeeping and are marked for the determinism lint.
"""

from __future__ import annotations

import concurrent.futures
import os
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ServiceError

__all__ = [
    "ResilientPool",
    "RESPAWN_ENV",
    "POISON_ENV",
    "BACKOFF_ENV",
    "DEFAULT_RESPAWN_LIMIT",
    "DEFAULT_POISON_THRESHOLD",
    "DEFAULT_BACKOFF_BASE_S",
]

#: Maximum pool respawns per :meth:`ResilientPool.run` call.
RESPAWN_ENV = "REPRO_SERVE_RESPAWNS"
DEFAULT_RESPAWN_LIMIT = 8

#: Worker kills attributable to one point before it is quarantined.
POISON_ENV = "REPRO_SERVE_POISON"
DEFAULT_POISON_THRESHOLD = 2

#: Base of the deterministic exponential backoff between respawns.
BACKOFF_ENV = "REPRO_SERVE_BACKOFF"
DEFAULT_BACKOFF_BASE_S = 0.05

_BACKOFF_CAP_S = 2.0


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, ""))
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, ""))
    except ValueError:
        return default


def _deadline_outcome(deadline_s: float) -> tuple:
    return (
        "err",
        "ServiceDeadlineError",
        f"job deadline of {deadline_s:.3f}s exceeded; point cancelled "
        f"before completing (finished points were delivered — resubmit "
        f"the remainder)",
        "",
    )


def _exhausted_outcome(respawns: int) -> tuple:
    return (
        "err",
        "ServiceError",
        f"worker pool kept dying: {respawns} respawn(s) exhausted without "
        f"isolating a culprit point",
        "",
    )


class ResilientPool:
    """A warm process pool that survives worker crashes.

    ``initializer`` is passed to every (re)spawned
    :class:`~concurrent.futures.ProcessPoolExecutor`, so worker-side
    memo warm-up behaves exactly as on the bare pool. One instance may
    serve many :meth:`run` calls; the pool and the poison quarantine
    persist across them (that is the point of a warm server).
    """

    def __init__(
        self,
        jobs: int,
        initializer: Optional[Callable[[], None]] = None,
        respawn_limit: Optional[int] = None,
        poison_threshold: Optional[int] = None,
        backoff_base_s: Optional[float] = None,
    ):
        self.jobs = max(1, int(jobs))
        self._initializer = initializer
        self.respawn_limit = (
            _env_int(RESPAWN_ENV, DEFAULT_RESPAWN_LIMIT)
            if respawn_limit is None
            else respawn_limit
        )
        self.poison_threshold = max(
            1,
            _env_int(POISON_ENV, DEFAULT_POISON_THRESHOLD)
            if poison_threshold is None
            else poison_threshold,
        )
        self.backoff_base_s = (
            _env_float(BACKOFF_ENV, DEFAULT_BACKOFF_BASE_S)
            if backoff_base_s is None
            else backoff_base_s
        )
        self._pool = self._spawn()
        # Guards pool replacement: several handler threads may share one
        # pool, and exactly one of them must win the respawn race.
        self._guard = threading.RLock()
        self._generation = 0
        # poison key -> attributable worker kills (pool lifetime).
        self.crash_counts: Dict[str, int] = {}
        self.quarantined: Dict[str, int] = {}
        self.respawns_total = 0

    # -- lifecycle -----------------------------------------------------
    def _spawn(self) -> concurrent.futures.ProcessPoolExecutor:
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.jobs, initializer=self._initializer
        )

    def _checkout(self):
        """Current (pool, generation) snapshot for one submission round."""
        with self._guard:
            return self._pool, self._generation

    def _respawn(self, generation: int, respawns: int) -> None:
        """Replace a broken pool; deterministic exponential backoff.

        ``generation`` is the snapshot the caller submitted against: if
        another thread already replaced that pool, this call is a no-op
        (its respawn covers ours).
        """
        with self._guard:
            if self._generation != generation:
                return
            self._pool.shutdown(wait=False)
            delay = min(
                self.backoff_base_s * (2 ** max(0, respawns - 1)), _BACKOFF_CAP_S
            )
            if delay > 0:
                time.sleep(delay)
            self._pool = self._spawn()
            self._generation += 1
            self.respawns_total += 1

    def worker_pids(self) -> List[int]:
        """PIDs of the live worker processes (chaos gates kill these)."""
        processes = getattr(self._pool, "_processes", None) or {}
        return sorted(processes.keys())

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)

    # -- simple jobs (gates) -------------------------------------------
    def submit_once(self, fn: Callable, *args, retries: int = 1):
        """Run ``fn(*args)`` on the pool; one bounded respawn+retry on a
        broken pool. Raises :class:`~repro.errors.ServiceError` when the
        pool cannot stay alive long enough to answer."""
        attempt = 0
        while True:
            pool, gen = self._checkout()
            try:
                fut = pool.submit(fn, *args)
                return fut.result()
            except concurrent.futures.BrokenExecutor as exc:
                attempt += 1
                if attempt > retries:
                    raise ServiceError(
                        f"worker pool died {attempt} time(s) running "
                        f"{getattr(fn, '__name__', fn)!r}: {exc}"
                    ) from exc
                self._respawn(gen, attempt)

    # -- batched sweep jobs --------------------------------------------
    def run(
        self,
        fn: Callable[[Sequence[tuple]], List[tuple]],
        batches: Sequence[Sequence[int]],
        tasks: Dict[int, tuple],
        deadline_s: Optional[float] = None,
        poison_key: Optional[Callable[[int], str]] = None,
    ) -> Iterator[Tuple[int, tuple]]:
        """Yield ``(index, outcome)`` for every index in *batches*.

        ``fn`` maps a list of tasks to a list of outcomes (the executor's
        ``_simulate_batch``). Completion order is arbitrary; every index
        yields exactly once — as a result, a worker-side error, a typed
        ``PoisonPointError``, a typed ``ServiceDeadlineError``, or a
        pool-exhaustion ``ServiceError``.
        """
        keyer = poison_key if poison_key is not None else lambda i: str(tasks[i])
        start = time.monotonic()  # det: allow — wall-clock job deadline

        def remaining() -> Optional[float]:
            if deadline_s is None:
                return None
            return deadline_s - (time.monotonic() - start)  # det: allow

        pending: List[List[int]] = []
        for batch in batches:
            unit = []
            for i in batch:
                key = keyer(i)
                if key in self.quarantined:
                    yield i, self._poison_outcome(i, tasks, self.quarantined[key])
                else:
                    unit.append(i)
            if unit:
                pending.append(unit)

        respawns = 0
        careful = False  # after a crash: one unit at a time, precise blame
        while pending:
            left = remaining()
            if left is not None and left <= 0:
                for unit in pending:
                    for i in unit:
                        yield i, _deadline_outcome(deadline_s or 0.0)
                return
            in_flight = pending[:1] if careful else pending
            pending = pending[1:] if careful else []
            pool, gen = self._checkout()
            try:
                futures = {
                    pool.submit(fn, [tasks[i] for i in unit]): unit
                    for unit in in_flight
                }
            except concurrent.futures.BrokenExecutor:
                # The pool died while idle (or between jobs): nothing was
                # running, so nobody is to blame — respawn and retry.
                respawns += 1
                if respawns > self.respawn_limit:
                    for unit in in_flight + pending:
                        for i in unit:
                            yield i, _exhausted_outcome(respawns - 1)
                    return
                self._respawn(gen, respawns)
                pending = in_flight + pending
                continue
            crashed: List[List[int]] = []
            try:
                for fut in concurrent.futures.as_completed(
                    futures, timeout=remaining()
                ):
                    unit = futures.pop(fut)
                    try:
                        outcomes = fut.result()
                    except concurrent.futures.BrokenExecutor:
                        crashed.append(unit)
                        continue
                    for i, outcome in zip(unit, outcomes):
                        yield i, outcome
            except concurrent.futures.TimeoutError:
                # Deadline expired mid-round: cancel what has not
                # started, abandon what has, fail the rest typed.
                for fut, unit in futures.items():
                    fut.cancel()
                    crashed.append(unit)
                for unit in crashed + pending:
                    for i in unit:
                        yield i, _deadline_outcome(deadline_s or 0.0)
                return
            if not crashed:
                careful = False
                continue
            respawns += 1
            if respawns > self.respawn_limit:
                for unit in crashed + pending:
                    for i in unit:
                        yield i, _exhausted_outcome(respawns - 1)
                return
            self._respawn(gen, respawns)
            requeue: List[List[int]] = []
            for unit in crashed:
                if len(unit) > 1 or not careful:
                    # Not attributable (several points shared the pool,
                    # or the batch had siblings): narrow, do not blame.
                    requeue.extend([i] for i in unit)
                    continue
                (i,) = unit
                key = keyer(i)
                self.crash_counts[key] = self.crash_counts.get(key, 0) + 1
                if self.crash_counts[key] >= self.poison_threshold:
                    self.quarantined[key] = self.crash_counts[key]
                    yield i, self._poison_outcome(i, tasks, self.crash_counts[key])
                else:
                    requeue.append([i])
            pending = requeue + pending
            careful = True

    @staticmethod
    def _poison_outcome(i: int, tasks: Dict[int, tuple], crashes: int) -> tuple:
        task = tasks.get(i)
        point = task[1] if task is not None and len(task) > 1 else i
        return (
            "err",
            "PoisonPointError",
            f"sweep point {point} killed {crashes} worker process(es) and "
            f"was quarantined; the rest of the sweep completed",
            "",
        )
