"""Durable run artifacts: every result ships with its own repro recipe.

A :class:`RunArtifact` freezes one completed run — a sweep, or a
verify/cost/chaos/replay/mc/prove gate — into a single JSON file
holding everything needed to re-execute it bit-for-bit later:

* ``config`` — the full re-execution recipe (machine spec, points,
  seeds, budgets …), content-addressed by ``config_digest``;
* ``env`` — the fingerprint the result is only valid under: the cache
  code-version salt, solver and engine modes, python/platform. An audit
  under a different fingerprint reports *why* a mismatch is expected;
* ``records`` — the complete result payload (RunRecord rows or a gate
  report), digested by ``records_digest`` after scrubbing the few
  wall-clock telemetry fields (:data:`VOLATILE_KEYS`) that are allowed
  to differ between runs.

``repro audit <artifact>`` (:mod:`repro.artifacts.audit`) re-executes
the recipe and diffs the payload bitwise — extending the BENCH_*.json
perf trajectory into an auditable *results* history: a figure in the
paper write-up can point at an artifact file, and anyone can replay it.

Artifacts live under a store directory (``REPRO_ARTIFACTS`` env var,
``--artifact DIR``, or ``<cache-dir>/artifacts`` by default), named
``<kind>-<config_digest12>.json`` so resubmitting the same run
overwrites its own artifact instead of accumulating duplicates.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..core.diskcache import CACHE_VERSION, default_cache_dir
from ..errors import ArtifactError

__all__ = [
    "ARTIFACT_VERSION",
    "ARTIFACTS_ENV",
    "VOLATILE_KEYS",
    "RunArtifact",
    "ArtifactStore",
    "artifact_digest",
    "canonical_json",
    "default_store_dir",
    "env_fingerprint",
    "scrub",
]

ARTIFACT_VERSION = 1

#: Default store directory override (a path; empty/unset → disabled for
#: implicit persistence, ``<cache-dir>/artifacts`` for explicit use).
ARTIFACTS_ENV = "REPRO_ARTIFACTS"

#: Record fields that legitimately differ between bitwise-equal runs
#: (wall-clock telemetry). Dropped, recursively, before digesting.
VOLATILE_KEYS = frozenset({"solver_time_s"})


def scrub(obj: Any) -> Any:
    """Recursively drop volatile (wall-clock telemetry) keys."""
    if isinstance(obj, dict):
        return {
            k: scrub(v) for k, v in obj.items() if k not in VOLATILE_KEYS
        }
    if isinstance(obj, (list, tuple)):
        return [scrub(v) for v in obj]
    return obj


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, scrubbed."""
    return json.dumps(
        scrub(obj), sort_keys=True, separators=(",", ":"), default=str
    )


def artifact_digest(obj: Any) -> str:
    """SHA-256 over the canonical JSON of *obj* (volatile keys dropped)."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def env_fingerprint() -> Dict[str, str]:
    """The environment a result is only comparable under."""
    from ..sim import solver_mode
    from ..sim.replay import engine_mode

    return {
        "cache_version": CACHE_VERSION,
        "solver": solver_mode(),
        "engine": engine_mode(),
        "python": platform.python_version(),
        "platform": sys.platform,
    }


@dataclass(frozen=True)
class RunArtifact:
    """One frozen run: recipe + fingerprint + full results + digests."""

    kind: str  # "sweep" | "verify" | "cost" | "chaos" | "replay" | "mc" | "prove"
    config: dict  # everything needed to re-execute
    records: Any  # list of RunRecord dicts, or one gate-report dict
    config_digest: str
    records_digest: str
    env: Dict[str, str] = field(default_factory=dict)
    created: str = ""
    version: int = ARTIFACT_VERSION

    @classmethod
    def create(cls, kind: str, config: dict, records: Any) -> "RunArtifact":
        return cls(
            kind=kind,
            config=config,
            records=records,
            config_digest=artifact_digest(config),
            records_digest=artifact_digest(records),
            env=env_fingerprint(),
            created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        )

    # -- integrity -----------------------------------------------------
    def integrity_problems(self) -> List[str]:
        """Internal-consistency check: do the digests match the payload?

        A tampered or torn artifact file fails here without any
        re-execution at all.
        """
        problems = []
        if self.version != ARTIFACT_VERSION:
            problems.append(
                f"artifact version {self.version} (this build writes "
                f"{ARTIFACT_VERSION})"
            )
        actual = artifact_digest(self.config)
        if actual != self.config_digest:
            problems.append(
                f"config digest mismatch: stored {self.config_digest[:12]}, "
                f"payload hashes to {actual[:12]} (config was altered)"
            )
        actual = artifact_digest(self.records)
        if actual != self.records_digest:
            problems.append(
                f"records digest mismatch: stored {self.records_digest[:12]}, "
                f"payload hashes to {actual[:12]} (records were altered)"
            )
        return problems

    def env_drift(self) -> List[str]:
        """Fingerprint fields that differ from the current environment."""
        current = env_fingerprint()
        return [
            f"{key}: artifact {value!r}, current {current.get(key)!r}"
            for key, value in sorted(self.env.items())
            if current.get(key) != value
        ]

    # -- (de)serialisation ---------------------------------------------
    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunArtifact":
        try:
            return cls(
                kind=str(data["kind"]),
                config=dict(data["config"]),
                records=data["records"],
                config_digest=str(data["config_digest"]),
                records_digest=str(data["records_digest"]),
                env=dict(data.get("env") or {}),
                created=str(data.get("created", "")),
                version=int(data.get("version", ARTIFACT_VERSION)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(f"malformed artifact payload: {exc}") from exc

    @property
    def name(self) -> str:
        return f"{self.kind}-{self.config_digest[:12]}"


def default_store_dir() -> Path:
    """Resolve the artifact store directory (without creating it)."""
    override = os.environ.get(ARTIFACTS_ENV, "").strip()
    if override and override.lower() not in ("1", "auto", "on", "true"):
        return Path(override).expanduser()
    return default_cache_dir() / "artifacts"


class ArtifactStore:
    """Directory of ``<kind>-<digest12>.json`` artifact files."""

    def __init__(self, path: Union[str, Path, None] = None):
        self.dir = (
            Path(path).expanduser() if path else default_store_dir()
        )

    def save(self, artifact: RunArtifact) -> Path:
        """Persist *artifact*; same recipe → same file (idempotent)."""
        self.dir.mkdir(parents=True, exist_ok=True)
        path = self.dir / f"{artifact.name}.json"
        tmp = path.with_name(path.name + ".tmp")
        try:
            tmp.write_text(
                json.dumps(artifact.to_dict(), indent=2, sort_keys=True)
                + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, path)
        except OSError as exc:
            raise ArtifactError(
                f"cannot store artifact {artifact.name}: {exc}"
            ) from exc
        return path

    def load(self, ref: Union[str, Path]) -> RunArtifact:
        """Load an artifact by path, by name, or by ``kind-digest``."""
        candidates = [Path(ref)]
        if not str(ref).endswith(".json"):
            candidates.append(self.dir / f"{ref}.json")
        candidates.append(self.dir / str(ref))
        for path in candidates:
            if path.is_file():
                try:
                    data = json.loads(path.read_text(encoding="utf-8"))
                except (OSError, ValueError) as exc:
                    raise ArtifactError(
                        f"cannot decode artifact {path}: {exc}"
                    ) from exc
                if not isinstance(data, dict):
                    raise ArtifactError(
                        f"artifact {path} is not a JSON object"
                    )
                return RunArtifact.from_dict(data)
        raise ArtifactError(
            f"no artifact found for {ref!r} (looked in {self.dir})"
        )

    def list(self) -> List[Path]:
        """Every artifact file in the store, sorted by name."""
        if not self.dir.is_dir():
            return []
        return sorted(self.dir.glob("*.json"))

    def __len__(self) -> int:
        return len(self.list())

    def __repr__(self) -> str:
        return f"<ArtifactStore {self.dir} ({len(self)} artifact(s))>"
