"""``repro audit``: re-execute a run artifact and diff it bitwise.

An audit answers, with exit-code certainty, "does this stored result
still reproduce?":

1. **integrity** — the artifact's internal digests are recomputed from
   its payload; a tampered or torn file fails here (exit 1) without
   simulating anything;
2. **re-execution** — the artifact's ``config`` recipe is replayed
   through the same entry points that produced it (the sweep executor,
   or a verify/cost/chaos/replay/mc/prove gate), serially and without
   the result cache, so the comparison is against fresh simulation;
3. **bitwise diff** — the fresh payload must equal the stored
   ``records`` exactly (after scrubbing the wall-clock telemetry fields
   every comparison ignores, see :data:`~repro.artifacts.store.VOLATILE_KEYS`);
   the first differing paths are named in the report.

A mismatch with environment drift (different code-version salt, solver
or engine mode) is still a mismatch — but the report says which
fingerprint fields moved, so "the simulator changed" is distinguishable
from "the result rotted".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import ArtifactError
from .store import ArtifactStore, RunArtifact, artifact_digest, scrub

__all__ = ["AuditResult", "audit_artifact", "reexecute", "diff_payload"]

_DIFF_LIMIT = 10


def diff_payload(expected: Any, actual: Any) -> List[str]:
    """Paths where two scrubbed payloads differ (bounded list)."""
    out: List[str] = []
    _diff(scrub(expected), scrub(actual), "$", out)
    return out


def _diff(exp: Any, act: Any, path: str, out: List[str]) -> None:
    if len(out) >= _DIFF_LIMIT:
        return
    if isinstance(exp, dict) and isinstance(act, dict):
        for key in sorted(set(exp) | set(act)):
            if key not in exp:
                out.append(f"{path}.{key}: unexpected in re-execution")
            elif key not in act:
                out.append(f"{path}.{key}: missing from re-execution")
            else:
                _diff(exp[key], act[key], f"{path}.{key}", out)
            if len(out) >= _DIFF_LIMIT:
                return
        return
    if isinstance(exp, list) and isinstance(act, list):
        if len(exp) != len(act):
            out.append(
                f"{path}: length {len(exp)} stored vs {len(act)} re-executed"
            )
            return
        for i, (e, a) in enumerate(zip(exp, act)):
            _diff(e, a, f"{path}[{i}]", out)
            if len(out) >= _DIFF_LIMIT:
                return
        return
    if exp != act:
        out.append(f"{path}: stored {exp!r} vs re-executed {act!r}")


# -- per-kind re-execution runners ------------------------------------
def _rerun_sweep(config: dict) -> Any:
    import dataclasses

    from ..core.executor import SweepExecutor
    from ..service import protocol

    spec = protocol.decode_spec(config["spec"])
    points = protocol.decode_points(config["points"])
    faults = protocol.decode_faults(config.get("faults"))
    reliable = protocol.decode_reliable(config.get("reliable"))
    records = SweepExecutor(jobs=1, cache=None, serve=False).run(
        spec,
        points,
        root=int(config.get("root", 0)),
        placement=config.get("placement", "blocked"),
        faults=faults,
        reliable=reliable,
    )
    return [dataclasses.asdict(rec) for rec in records]


def _rerun_verify(config: dict) -> Any:
    from ..analysis.verify import verifiable_collectives, verify_collective

    nbytes = int(config.get("nbytes", 65536))
    root = int(config.get("root", 0))
    rendezvous = bool(config.get("rendezvous", True))
    collective = config.get("collective", "all")
    reports = []
    for nranks in [int(p) for p in config.get("ranks", [8])]:
        names = (
            verifiable_collectives(nranks)
            if collective == "all"
            else [collective]
        )
        for name in names:
            reports.append(
                verify_collective(
                    name, nranks, nbytes=nbytes, root=root,
                    rendezvous=rendezvous,
                )
            )
    return [r.to_dict() for r in reports]


def _rerun_cost(config: dict) -> Any:
    from ..analysis.costmodel import differential_gate
    from ..service import protocol

    return differential_gate(
        spec=protocol.decode_spec(config["spec"]),
        placement=config.get("placement", "blocked"),
        band=float(config.get("band", 0.5)),
    ).to_dict()


def _rerun_chaos(config: dict) -> Any:
    from ..analysis.chaos import DEFAULT_RANKS, chaos_gate
    from ..service import protocol

    return chaos_gate(
        seed=int(config.get("seed", 0)),
        spec=protocol.decode_spec(config["spec"]),
        collectives=config.get("collectives"),
        ranks=config.get("ranks") or DEFAULT_RANKS,
        nbytes=int(config.get("nbytes", 4096)),
    ).to_dict()


def _rerun_replay(config: dict) -> Any:
    from ..analysis.replaygate import DEFAULT_RANKS, DEFAULT_SIZES, replay_gate
    from ..service import protocol

    return replay_gate(
        spec=protocol.decode_spec(config["spec"]),
        ranks=config.get("ranks") or DEFAULT_RANKS,
        sizes=config.get("sizes") or DEFAULT_SIZES,
    ).to_dict()


def _rerun_mc(config: dict) -> Any:
    from ..analysis.modelcheck import mc_grid

    return mc_grid(
        nbytes=int(config.get("nbytes", 1024)),
        max_states=int(config.get("max_states", 20000)),
        seed=int(config.get("seed", 0)),
    ).to_dict()


def _rerun_prove(config: dict) -> Any:
    from ..analysis.certify import prove_all

    return prove_all(
        xval_lo=int(config.get("xval_lo", 2)),
        xval_hi=int(config.get("xval_hi", 64)),
        nbytes=int(config.get("nbytes", 65536)),
        skip_crossval=bool(config.get("skip_crossval", False)),
    ).to_dict()


RUNNERS: Dict[str, Callable[[dict], Any]] = {
    "sweep": _rerun_sweep,
    "verify": _rerun_verify,
    "cost": _rerun_cost,
    "chaos": _rerun_chaos,
    "replay": _rerun_replay,
    "mc": _rerun_mc,
    "prove": _rerun_prove,
}


def reexecute(artifact: RunArtifact) -> Any:
    """Replay an artifact's recipe; returns the fresh payload."""
    runner = RUNNERS.get(artifact.kind)
    if runner is None:
        raise ArtifactError(
            f"cannot re-execute artifact kind {artifact.kind!r} "
            f"(known: {sorted(RUNNERS)})"
        )
    return runner(artifact.config)


@dataclass(frozen=True)
class AuditResult:
    """Verdict of one artifact audit."""

    name: str
    kind: str
    ok: bool
    integrity: List[str] = field(default_factory=list)  # digest problems
    mismatches: List[str] = field(default_factory=list)  # bitwise diffs
    env_drift: List[str] = field(default_factory=list)  # fingerprint moved
    reexecuted: bool = False

    def describe(self) -> str:
        if self.ok:
            return (
                f"audit {self.name}: OK — re-execution reproduced the "
                f"stored records bit-for-bit"
            )
        lines = [f"audit {self.name}: FAILED"]
        for p in self.integrity:
            lines.append(f"  integrity: {p}")
        for m in self.mismatches:
            lines.append(f"  mismatch: {m}")
        if self.mismatches and self.env_drift:
            lines.append(
                "  note: the environment fingerprint moved since this "
                "artifact was recorded —"
            )
            for d in self.env_drift:
                lines.append(f"    {d}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "ok": self.ok,
            "integrity": list(self.integrity),
            "mismatches": list(self.mismatches),
            "env_drift": list(self.env_drift),
            "reexecuted": self.reexecuted,
        }


def audit_artifact(
    ref, store: Optional[ArtifactStore] = None
) -> AuditResult:
    """Audit one artifact (a path, name, or loaded :class:`RunArtifact`).

    Integrity problems short-circuit (a tampered file is a failure; no
    point re-simulating against altered records). Otherwise the recipe
    is re-executed and diffed bitwise.
    """
    if isinstance(ref, RunArtifact):
        artifact = ref
        name = artifact.name
    else:
        artifact = (store or ArtifactStore()).load(ref)
        name = str(ref)
    problems = artifact.integrity_problems()
    if problems:
        return AuditResult(
            name=name,
            kind=artifact.kind,
            ok=False,
            integrity=problems,
            env_drift=artifact.env_drift(),
        )
    fresh = reexecute(artifact)
    if artifact_digest(fresh) == artifact.records_digest:
        return AuditResult(
            name=name, kind=artifact.kind, ok=True, reexecuted=True
        )
    return AuditResult(
        name=name,
        kind=artifact.kind,
        ok=False,
        mismatches=diff_payload(artifact.records, fresh)
        or ["records digest differs but no structural diff found"],
        env_drift=artifact.env_drift(),
        reexecuted=True,
    )
