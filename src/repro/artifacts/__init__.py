"""Durable, re-executable run artifacts and the ``repro audit`` gate.

See :mod:`repro.artifacts.store` for the artifact schema and store
layout, and :mod:`repro.artifacts.audit` for re-execution and bitwise
diffing. ``docs/robustness.md`` documents the workflow.
"""

from .audit import AuditResult, audit_artifact, diff_payload, reexecute
from .store import (
    ARTIFACT_VERSION,
    ARTIFACTS_ENV,
    VOLATILE_KEYS,
    ArtifactStore,
    RunArtifact,
    artifact_digest,
    canonical_json,
    default_store_dir,
    env_fingerprint,
    scrub,
)

__all__ = [
    "ARTIFACT_VERSION",
    "ARTIFACTS_ENV",
    "VOLATILE_KEYS",
    "ArtifactStore",
    "RunArtifact",
    "AuditResult",
    "artifact_digest",
    "audit_artifact",
    "canonical_json",
    "default_store_dir",
    "diff_payload",
    "env_fingerprint",
    "reexecute",
    "scrub",
]
