"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause.
The sub-classes mirror the architectural layers: simulation kernel,
machine model, simulated MPI runtime and collective algorithms.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "ReplayUnsupportedError",
    "MachineError",
    "PlacementError",
    "MpiError",
    "MatchingError",
    "TruncationError",
    "TransportExhaustedError",
    "CollectiveError",
    "ConfigurationError",
    "SweepExecutionError",
    "PoisonPointError",
    "ServiceError",
    "ServiceUnavailableError",
    "ServiceJobError",
    "ServiceDeadlineError",
    "ArtifactError",
    "AuditMismatchError",
]


class ReproError(Exception):
    """Base class of all exceptions raised by :mod:`repro`."""


class SimulationError(ReproError):
    """A failure inside the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked.

    Carries the list of blocked rank descriptions to make diagnosing a
    mis-matched send/receive schedule straightforward. Repeated
    descriptions (e.g. P-2 ranks all parked on the same ring receive)
    collapse to one line with a ``(xN)`` multiplicity so the headline
    stays readable at large P; ``.blocked`` keeps the full list.

    ``witness`` optionally attaches a minimized model-checker witness
    (:class:`repro.analysis.modelcheck.DeadlockWitness` — anything whose
    ``str()`` renders a replayable schedule) so the error names not just
    *who* is stuck but the shortest interleaving that gets them stuck.
    """

    def __init__(self, blocked: list, witness=None) -> None:
        self.blocked = list(blocked)
        self.witness = witness
        counts: dict = {}
        for b in self.blocked:
            line = str(b)
            counts[line] = counts.get(line, 0) + 1
        unique = [
            line if n == 1 else f"{line} (x{n})" for line, n in counts.items()
        ]
        detail = "; ".join(unique[:8])
        if len(unique) > 8:
            detail += f"; ... ({len(unique) - 8} more)"
        message = (
            f"simulation deadlocked with {len(self.blocked)} blocked "
            f"process(es): {detail}"
        )
        if witness is not None:
            message += f"\n{witness}"
        super().__init__(message)


class ReplayUnsupportedError(SimulationError):
    """A schedule cannot be executed by the vectorized replay engine.

    Raised by :func:`repro.sim.replay.compile_schedule` when the
    extracted schedule uses features whose timing is not statically
    determined (wildcard ``ANY_SOURCE`` receives, never-matched blocking
    receives) or when the machine spec enables stochastic latencies.
    The auto-dispatch layer catches this and falls back to the DES;
    ``REPRO_ENGINE=replay`` surfaces it as a configuration failure.
    """


class MachineError(ReproError):
    """Invalid machine specification or topology construction failure."""


class PlacementError(MachineError):
    """A rank-to-node placement request cannot be satisfied."""


class MpiError(ReproError):
    """Semantic violation of the simulated MPI API."""


class MatchingError(MpiError):
    """Internal message-matching inconsistency."""


class TruncationError(MpiError):
    """An incoming message is larger than the posted receive buffer.

    Real MPI flags this as ``MPI_ERR_TRUNCATE``; we fail loudly because a
    truncated transfer in a collective schedule is always a bug.
    """


class TransportExhaustedError(MpiError):
    """The reliability layer gave up on a link.

    Raised when a message exhausts its retransmission budget — every
    attempt (and its ACK) was lost. Names the dead link so chaos runs
    fail with an actionable diagnosis instead of a generic deadlock.
    """

    def __init__(
        self,
        src: int,
        dst: int,
        tag: int,
        attempts: int,
        nbytes: int = 0,
        cause: str = "",
    ) -> None:
        self.src = src
        self.dst = dst
        self.tag = tag
        self.attempts = attempts
        self.nbytes = nbytes
        self.cause = cause
        detail = (
            f"link {src}->{dst} presumed dead: message tag={tag} "
            f"({nbytes} bytes) undeliverable after {attempts} attempt(s)"
        )
        if cause:
            detail += f"; last loss: {cause}"
        super().__init__(detail)


class CollectiveError(ReproError):
    """A collective algorithm was invoked with unusable parameters."""


class ConfigurationError(ReproError):
    """Invalid experiment or sweep configuration."""


class SweepExecutionError(ReproError):
    """A sweep point failed inside a worker.

    Worker processes cannot reliably pickle arbitrary exceptions back to
    the parent, so the executor serialises the failure and re-raises it
    as this type with the offending point attached (``.point``), the
    original exception class name (``.error_type``) and the worker-side
    traceback text (``.worker_traceback``).
    """

    def __init__(
        self, point, error_type: str, message: str, worker_traceback: str = ""
    ) -> None:
        self.point = point
        self.error_type = error_type
        self.worker_traceback = worker_traceback
        detail = f"sweep point {point} failed: {error_type}: {message}"
        if worker_traceback:
            detail += f"\n--- worker traceback ---\n{worker_traceback}"
        super().__init__(detail)


class PoisonPointError(SweepExecutionError):
    """A sweep point repeatedly crashed pool workers and was quarantined.

    The fault-tolerant pool (:class:`repro.service.resilience.ResilientPool`)
    respawns crashed worker pools and re-dispatches the in-flight points
    one by one; a point whose simulation keeps killing its worker — a
    segfaulting extension, an OOM kill — is quarantined after a bounded
    number of attempts and surfaces here, naming the offending point
    instead of sinking the whole sweep. Carries the same payload as
    :class:`SweepExecutionError` (``.point``, ``.error_type``,
    ``.worker_traceback``).
    """


class ServiceError(ReproError):
    """Base class for simulation-service (``repro serve``) failures."""


class ServiceUnavailableError(ServiceError):
    """No simulation server answered at the requested address.

    Raised when ``--serve``/``REPRO_SERVE`` names a server explicitly
    and nothing is listening there (auto-discovery without an explicit
    address falls back to the in-process path instead of raising).
    """

    def __init__(self, address: str, reason: str = "") -> None:
        self.address = address
        detail = f"no simulation server reachable at {address}"
        if reason:
            detail += f": {reason}"
        detail += " (start one with `python -m repro serve`)"
        super().__init__(detail)


class ServiceJobError(SweepExecutionError, ServiceError):
    """A job failed inside the simulation service.

    Subclasses :class:`SweepExecutionError` so sweep drivers handle
    service-side and worker-side failures uniformly: the offending point
    (``.point``), original exception class name (``.error_type``) and
    server-side traceback text (``.worker_traceback``) all survive the
    wire.
    """


class ServiceDeadlineError(ServiceJobError):
    """A service job exceeded its wall-clock deadline and was cancelled.

    Raised (or streamed per point as ``error_type ==
    "ServiceDeadlineError"``) when a sweep carries a ``deadline_s`` and
    the warm pool cannot finish the remaining points inside it. The
    server cancels what has not started and abandons what has; finished
    points are still delivered, so a client can resubmit just the
    missing remainder.
    """


class ArtifactError(ReproError):
    """A run artifact cannot be stored, located, or decoded."""


class AuditMismatchError(ReproError):
    """Re-executing a run artifact produced different bytes.

    Raised by :func:`repro.artifacts.audit.audit_artifact` callers that
    asked for exceptions (the CLI reports it as exit 1 instead): either
    the artifact's internal digests no longer match its payload (the
    file was tampered with or torn) or a faithful re-execution diverged
    from the recorded records.
    """

