"""repro: reproduction of "A Bandwidth-saving Optimization for MPI
Broadcast Collective Operation" (Zhou et al., ICPP 2015).

A simulated-MPI testbed: a deterministic discrete-event machine model
(:mod:`repro.sim`, :mod:`repro.machine`), an MPI point-to-point runtime
(:mod:`repro.mpi`), the paper's native and tuned scatter-ring-allgather
broadcasts plus their MPICH peers (:mod:`repro.collectives`), and a
high-level experiment API (:mod:`repro.core`).

Quickstart::

    from repro import core, machine

    cmp = core.compare_bcast(machine.hornet(), nranks=64, nbytes="1MiB")
    print(cmp.describe())
"""

from . import analysis, collectives, core, machine, mpi, sim, util
from .errors import ReproError
from .core import compare_bcast, simulate_bcast, validate_bcast

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "collectives",
    "core",
    "machine",
    "mpi",
    "sim",
    "util",
    "ReproError",
    "compare_bcast",
    "simulate_bcast",
    "validate_bcast",
    "__version__",
]
