"""Critical-path extraction from a simulation trace.

The makespan of a collective equals the longest chain of *dependent*
message spans: span B depends on span A when they share a rank and B
starts at-or-after A ends (program order at that rank), or when B is the
onward hop of the payload A delivered. This module builds that DAG and
returns the heaviest chain — the answer to "which sequence of transfers
actually set the finish time?", which for the ring broadcasts is the
chunk that travels farthest.

The dependency rule is conservative (rank-serialisation only), so the
reported chain is a *lower bound* certificate: its duration can never
exceed the makespan, and for serialised schedules like the ring it is
tight (tests pin this on the ideal machine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sim import Trace
from .timeline import message_spans

__all__ = ["CriticalPath", "critical_path"]

_EPS = 1e-15


@dataclass(frozen=True)
class CriticalPath:
    """The heaviest dependency chain found in a trace."""

    spans: tuple  # MessageSpan chain, time-ordered
    duration: float  # end of last minus start of first
    transfer_time: float  # sum of span durations along the chain

    @property
    def hops(self) -> int:
        return len(self.spans)

    def describe(self) -> str:
        if not self.spans:
            return "(empty trace)"
        hops = " -> ".join(f"{s.src}" for s in self.spans) + f" -> {self.spans[-1].dst}"
        return (
            f"{self.hops} hops over {self.duration * 1e6:.1f}us "
            f"({self.transfer_time * 1e6:.1f}us in transfers): {hops}"
        )


def critical_path(trace: Trace, tag: Optional[int] = None) -> CriticalPath:
    """Longest (by finishing time, then transfer time) dependency chain."""
    spans = message_spans(trace)
    if tag is not None:
        spans = [s for s in spans if s.tag == tag]
    if not spans:
        return CriticalPath(spans=(), duration=0.0, transfer_time=0.0)

    # DAG over spans; edge A -> B when B could only start after A at a
    # shared endpoint. Spans sorted by start; longest-path DP over that
    # topological-compatible order. The (src, dst, tag) tail makes the
    # order — and therefore parent choice among equal-time spans — a
    # pure function of the trace contents.
    spans.sort(key=lambda s: (s.start, s.end, s.src, s.dst, s.tag))
    n = len(spans)
    best_time = [s.duration for s in spans]  # accumulated transfer time
    parent: List[Optional[int]] = [None] * n

    for j in range(n):
        sj = spans[j]
        for i in range(j):
            si = spans[i]
            if si.end > sj.start + _EPS:
                continue  # not causally ordered
            if not ({si.src, si.dst} & {sj.src, sj.dst}):
                continue  # no shared endpoint: independent
            cand = best_time[i] + sj.duration
            if cand > best_time[j] + _EPS:
                best_time[j] = cand
                parent[j] = i

    # Chain with the latest end; ties broken by transfer time, then by
    # the deterministic span order (max keeps the first of exact ties,
    # so prefer the lowest (src, dst, tag) explicitly).
    end_idx = max(
        range(n),
        key=lambda k: (
            spans[k].end,
            best_time[k],
            (-spans[k].src, -spans[k].dst, -spans[k].tag),
        ),
    )
    chain = []
    k: Optional[int] = end_idx
    while k is not None:
        chain.append(spans[k])
        k = parent[k]
    chain.reverse()
    return CriticalPath(
        spans=tuple(chain),
        duration=chain[-1].end - chain[0].start,
        transfer_time=sum(s.duration for s in chain),
    )
