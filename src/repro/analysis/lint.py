"""Determinism lint: an AST pass banning wall-clock and unseeded RNG.

The whole repository's claim to reproducibility rests on the simulation
being a pure function of its inputs: the same sweep re-run on another
machine must produce bit-identical transfer counts, timings, and cached
results (the disk cache keys on content hashes, so hidden
nondeterminism silently poisons it). This lint enforces that statically
for the deterministic core — ``sim/``, ``collectives/``, ``mpi/``,
``machine/``, ``analysis/``, ``service/``, ``core/``, ``bench/`` —
where neither wall-clock time nor global random state may be consulted:

* ``time.time`` / ``monotonic`` / ``perf_counter`` (and ``_ns``
  variants): simulated time comes from the event loop, never the host.
* ``datetime.now`` / ``utcnow`` / ``today``: same, for dates.
* module-level ``random.*`` calls (global, unseeded RNG state) and the
  legacy ``numpy.random.*`` functions: randomness must flow through an
  explicitly seeded ``random.Random(seed)`` or
  ``numpy.random.default_rng(seed)`` instance passed in by the caller.

A line can opt out with a trailing ``# det: allow`` comment — the only
current uses are the solver's wall-time *telemetry* counters in
``sim/flows.py``, the simulation server's uptime bookkeeping in
``service/server.py``, and the microbenchmark harness's stopwatch in
``bench/micro.py``, which measure how long something took without ever
feeding back into simulated results. The marker keeps such exceptions
visible in review rather than smuggled in.

Run as ``python -m repro.analysis.lint [paths...]`` (or ``repro lint``);
with no arguments it checks the default target packages. Exit status is
the number of files with violations (0 = clean).
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "LintViolation",
    "DEFAULT_TARGETS",
    "lint_source",
    "lint_file",
    "lint_paths",
    "default_target_paths",
    "main",
]

#: Packages under ``src/repro`` that must stay deterministic. ``machine``
#: and ``analysis`` joined once the static cost model started deriving
#: results from them (a nondeterministic link enumeration or cost pass
#: would poison the differential gate just like a nondeterministic sim).
#: ``service`` joined when the simulation server started executing the
#: same gate jobs out-of-process — its results must be byte-identical to
#: the in-process path, so only explicitly marked telemetry lines (the
#: server loop's uptime clock) may touch the host clock. ``core`` and
#: ``bench`` joined with the parametric proof layer: the high-level
#: experiment drivers feed cached result files and BENCH ledgers, and
#: the microbenchmark harness's stopwatch is exactly the kind of clock
#: read that must stay visibly marked rather than drift into measured
#: results.
DEFAULT_TARGETS = (
    "sim",
    "collectives",
    "mpi",
    "machine",
    "analysis",
    "service",
    "core",
    "bench",
)

ALLOW_MARKER = "det: allow"

#: Fully-qualified callables that read the host clock.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: ``random.*`` attributes that are fine to call at module level.
#: ``Random`` / ``SystemRandom`` are constructors (seeding checked at the
#: call site); everything else on the module mutates or reads the hidden
#: global generator.
_RANDOM_ALLOWED = {"Random", "SystemRandom"}

#: ``numpy.random.*`` attributes that are part of the modern, explicitly
#: seeded Generator API rather than the legacy global-state one.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}

#: Constructors that must receive an explicit seed argument.
_NEEDS_SEED = {"random.Random", "numpy.random.default_rng"}


@dataclass(frozen=True)
class LintViolation:
    """One determinism finding."""

    path: str
    line: int
    col: int
    rule: str  # "wall-clock" | "global-random" | "unseeded-rng"
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


class _AliasTracker(ast.NodeVisitor):
    """Resolve names back to the canonical modules they were imported as.

    Handles ``import time``, ``import time as t``, ``from time import
    monotonic``, ``from datetime import datetime as dt``, ``import
    numpy as np`` / ``from numpy import random as npr`` — enough to see
    through the aliasing idioms that actually occur in Python code.
    """

    def __init__(self) -> None:
        # local name -> canonical dotted prefix ("time", "numpy.random", ...)
        self.aliases: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            canonical = alias.name if alias.asname else alias.name.split(".")[0]
            self.aliases[local] = canonical
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                self.aliases[local] = f"{node.module}.{alias.name}"
        self.generic_visit(node)


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` attribute chain as a string, or None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _canonical(aliases: Dict[str, str], dotted: str) -> str:
    """Rewrite the leading alias segment to its canonical module path."""
    head, _, rest = dotted.partition(".")
    base = aliases.get(head)
    if base is None:
        return dotted
    return f"{base}.{rest}" if rest else base


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str, aliases: Dict[str, str]) -> None:
        self.path = path
        self.aliases = aliases
        self.violations: List[LintViolation] = []

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            LintViolation(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            name = _canonical(self.aliases, dotted)
            self._check_call(node, name)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, name: str) -> None:
        if name in _WALL_CLOCK:
            self._flag(
                node,
                "wall-clock",
                f"call to {name}() — simulated components must not read "
                f"the host clock; take time from the event loop",
            )
            return
        if name in _NEEDS_SEED:
            if not node.args and not node.keywords:
                self._flag(
                    node,
                    "unseeded-rng",
                    f"{name}() without a seed — pass an explicit seed so "
                    f"runs are reproducible",
                )
            return
        head, _, attr = name.rpartition(".")
        if head == "random" and attr not in _RANDOM_ALLOWED:
            self._flag(
                node,
                "global-random",
                f"call to {name}() uses the hidden module-level generator; "
                f"use an explicitly seeded random.Random(seed) instance",
            )
        elif head == "numpy.random" and attr not in _NP_RANDOM_ALLOWED:
            self._flag(
                node,
                "global-random",
                f"call to {name}() uses numpy's legacy global generator; "
                f"use numpy.random.default_rng(seed)",
            )


def lint_source(source: str, filename: str = "<string>") -> List[LintViolation]:
    """Lint Python *source*; returns the violations found."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            LintViolation(
                path=filename,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule="syntax",
                message=f"could not parse: {exc.msg}",
            )
        ]
    tracker = _AliasTracker()
    tracker.visit(tree)
    visitor = _DeterminismVisitor(filename, tracker.aliases)
    visitor.visit(tree)
    lines = source.splitlines()
    kept = []
    for v in visitor.violations:
        text = lines[v.line - 1] if 0 < v.line <= len(lines) else ""
        if ALLOW_MARKER in text:
            continue
        kept.append(v)
    return kept


def lint_file(path: Path) -> List[LintViolation]:
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def lint_paths(paths: Iterable[Path]) -> List[LintViolation]:
    """Lint every ``.py`` file under *paths* (files or directories)."""
    violations: List[LintViolation] = []
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                violations.extend(lint_file(sub))
        else:
            violations.extend(lint_file(path))
    return violations


def default_target_paths() -> List[Path]:
    """The deterministic-core packages, located relative to this file."""
    pkg_root = Path(__file__).resolve().parent.parent
    return [pkg_root / name for name in DEFAULT_TARGETS]


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    paths = [Path(a) for a in args] if args else default_target_paths()
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"determinism lint: no such path: {p}", file=sys.stderr)
        return 2
    violations = lint_paths(paths)
    for v in violations:
        print(v)
    checked = ", ".join(str(p) for p in paths)
    if violations:
        files = len({v.path for v in violations})
        print(f"determinism lint: {len(violations)} violation(s) in {files} file(s)")
        return 1
    print(f"determinism lint: clean ({checked})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
