"""Static α-β/LogGP cost engine over extracted schedules.

An abstract interpreter over :class:`~repro.collectives.schedule.ScheduleResult`
programs: instead of simulating a schedule it *reads* one, and derives

1. **Dependency rounds** — happens-before over per-rank program order
   plus message edges, using the executor's ``observed``/``dep_counts``
   metadata: send *o* depends on exactly the messages its sender's
   program had consumed before issuing it (an unwaited irecv never gates
   a send). ``round(o) = 1 + max(round over dependencies)``.
2. **Per-link byte loads** — each send is mapped onto the machine's
   resource path via :meth:`Machine.transfer_plan` (per-rank copy
   engines, node memory, NIC pairs, fabric links from the topology), and
   byte/message loads accumulate per link and per round.
3. **Time lower bounds** from :class:`~repro.machine.spec.MachineSpec`:

   * ``t_chain`` — longest-path DP over the dependency DAG where each
     message costs its protocol's minimum end-to-end latency: eager pays
     ``send_overhead + max(latency, n/beta_rate) + recv_overhead``
     (payload flow and envelope travel concurrently), rendezvous pays
     ``send_overhead + latency*(1 + rendezvous_rtt) + n/beta_rate +
     recv_overhead`` (envelope, clear-to-send, then the flow);
     ``beta_rate`` is the min capacity on the path, capped by the
     working-set copy-rate cap — the best rate the fluid model can ever
     grant the flow.
   * ``t_link`` — max over links of total consumed bytes / capacity:
     every flow crossing a link must drain through it.
   * ``t_bound = max(t_chain, t_link)``.

   Both are sound lower bounds of the simulated makespan whenever the
   spec is deterministic (``jitter_sigma == 0``): the DP only counts
   costs the transport provably pays before the consuming rank can
   finish, and restricts itself to messages some program actually
   consumed. Per-round link loads are *diagnostics* — summing per-round
   maxima would not be a valid bound (later rounds need not wait for the
   busiest link of an earlier round to drain).

The :func:`differential_gate` cross-checks the static layer against the
dynamic one for every collective in the verify registry: byte counts
must equal a fresh :class:`ScheduleExecutor` extraction exactly (and the
DES :class:`TrafficCounters` at the simulated points), time bounds must
lower-bound — and track within a band — simulated makespans on the
ideal machine, the native-vs-tuned ranking must agree with the
simulator, and the symbolic savings proofs of
:mod:`repro.analysis.symbolic` must hold for all P with the paper's
P=8 → 12 and P=10 → 15 instances pinned.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..collectives.schedule import ScheduleResult, cached_schedule
from ..errors import ConfigurationError, ReproError
from ..machine import Machine, MachineSpec, TransferPlan, ideal
from ..mpi.runtime import Job
from ..util import KIB, MIB
from . import symbolic
from .verify import REGISTRY

__all__ = [
    "LinkLoad",
    "CostReport",
    "analyze_schedule",
    "analyze_collective",
    "GateCheck",
    "GateReport",
    "differential_gate",
]


# ---------------------------------------------------------------------------
# Report records
# ---------------------------------------------------------------------------


@dataclass
class LinkLoad:
    """Accumulated traffic over one machine resource."""

    name: str
    kind: str  # "cpu" | "mem" | "nic" | "link"
    capacity: float  # bytes/s
    nbytes: int = 0
    messages: int = 0
    by_round: Dict[int, int] = field(default_factory=dict)

    @property
    def drain_time(self) -> float:
        """Seconds just to push this link's bytes through its capacity."""
        return self.nbytes / self.capacity

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "capacity": self.capacity,
            "nbytes": self.nbytes,
            "messages": self.messages,
            "by_round": {str(r): b for r, b in sorted(self.by_round.items())},
        }


@dataclass
class CostReport:
    """Everything the static cost engine derived from one schedule."""

    collective: str
    nranks: int
    nbytes: int
    root: int
    machine: str
    placement: str
    transfers: int = 0
    total_bytes: int = 0
    intra_messages: int = 0
    inter_messages: int = 0
    consumed_transfers: int = 0
    rounds: int = 0
    round_messages: Dict[int, int] = field(default_factory=dict)
    sent_messages_by_rank: Dict[int, int] = field(default_factory=dict)
    received_messages_by_rank: Dict[int, int] = field(default_factory=dict)
    sent_bytes_by_rank: Dict[int, int] = field(default_factory=dict)
    received_bytes_by_rank: Dict[int, int] = field(default_factory=dict)
    link_loads: List[LinkLoad] = field(default_factory=list)
    t_chain: float = 0.0
    t_link: float = 0.0

    @property
    def t_bound(self) -> float:
        """The α-β/LogGP makespan lower bound."""
        return max(self.t_chain, self.t_link)

    @property
    def busiest_link(self) -> Optional[LinkLoad]:
        loaded = [l for l in self.link_loads if l.nbytes > 0]
        if not loaded:
            return None
        return max(loaded, key=lambda l: (l.drain_time, l.name))

    def describe(self) -> str:
        lines = [
            f"{self.collective}: P={self.nranks}, nbytes={self.nbytes}, "
            f"root={self.root} on {self.machine} ({self.placement})",
            f"  transfers: {self.transfers} ({self.intra_messages} intra, "
            f"{self.inter_messages} inter), {self.total_bytes} wire byte(s)",
            f"  dependency rounds: {self.rounds}",
            f"  t_chain={self.t_chain * 1e6:.2f}us  "
            f"t_link={self.t_link * 1e6:.2f}us  "
            f"t_bound={self.t_bound * 1e6:.2f}us",
        ]
        busiest = self.busiest_link
        if busiest is not None:
            lines.append(
                f"  busiest link: {busiest.name} ({busiest.messages} msg(s), "
                f"{busiest.nbytes} B, {busiest.drain_time * 1e6:.2f}us drain)"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "collective": self.collective,
            "nranks": self.nranks,
            "nbytes": self.nbytes,
            "root": self.root,
            "machine": self.machine,
            "placement": self.placement,
            "transfers": self.transfers,
            "total_bytes": self.total_bytes,
            "intra_messages": self.intra_messages,
            "inter_messages": self.inter_messages,
            "rounds": self.rounds,
            "round_messages": {
                str(r): n for r, n in sorted(self.round_messages.items())
            },
            "sent_bytes_by_rank": {
                str(r): b for r, b in sorted(self.sent_bytes_by_rank.items())
            },
            "received_bytes_by_rank": {
                str(r): b for r, b in sorted(self.received_bytes_by_rank.items())
            },
            "t_chain": self.t_chain,
            "t_link": self.t_link,
            "t_bound": self.t_bound,
            "link_loads": [
                l.to_dict() for l in self.link_loads if l.messages > 0
            ],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)


# ---------------------------------------------------------------------------
# The abstract interpreter
# ---------------------------------------------------------------------------


def _duration_lb(spec: MachineSpec, plan: TransferPlan, nbytes: int) -> float:
    """Minimum end-to-end seconds the transport pays for one message.

    Mirrors :mod:`repro.mpi.transport` exactly: under eager the payload
    flow and the envelope travel concurrently from launch; under
    rendezvous the envelope, the clear-to-send and only then the flow
    are serialised. The beta rate is the best the fluid model can ever
    grant the flow (min path capacity, working-set cap applied).
    """
    rate = min(res.capacity for res in plan.resources)
    if plan.rate_cap is not None:
        rate = min(rate, plan.rate_cap)
    beta = nbytes / rate if nbytes else 0.0
    if nbytes <= spec.eager_threshold:
        return spec.send_overhead + max(plan.latency, beta) + spec.recv_overhead
    return (
        spec.send_overhead
        + plan.latency * (1.0 + spec.rendezvous_rtt)
        + beta
        + spec.recv_overhead
    )


def analyze_schedule(
    schedule: ScheduleResult,
    machine: Machine,
    collective: str = "<program>",
    nbytes: int = 0,
    root: int = 0,
) -> CostReport:
    """Run the abstract interpreter over one extracted schedule.

    The caller owns the machine's working-set state
    (:meth:`Machine.set_working_set`) so the copy-rate caps match the
    simulation being bounded.
    """
    if schedule.nranks > machine.nranks:
        raise ConfigurationError(
            f"schedule spans {schedule.nranks} ranks, machine hosts "
            f"{machine.nranks}"
        )
    report = CostReport(
        collective=collective,
        nranks=schedule.nranks,
        nbytes=nbytes,
        root=root,
        machine=machine.spec.name,
        placement=machine.placement.policy,
        transfers=schedule.transfers,
        total_bytes=schedule.total_bytes,
    )
    loads = {
        res.name: LinkLoad(name=res.name, kind=res.kind, capacity=res.capacity)
        for res in machine.all_resources()
    }
    consumed = {o for orders in schedule.observed.values() for o in orders}
    report.consumed_transfers = len(consumed)
    consumed_link_bytes: Dict[str, int] = {}

    # One forward pass: per-rank prefix maxima over the observed lists
    # give each send's dependency round and earliest-finish DP in O(n)
    # (a dependency's order always precedes the dependent send's).
    obs_ptr: Dict[int, int] = {}
    max_depth: Dict[int, int] = {}
    max_finish: Dict[int, float] = {}
    depth: List[int] = [0] * schedule.transfers
    finish: List[float] = [0.0] * schedule.transfers
    t_chain = 0.0
    for send in schedule.sends:
        o = send.order
        src, dst = send.src, send.dst
        report.sent_messages_by_rank[src] = (
            report.sent_messages_by_rank.get(src, 0) + 1
        )
        report.received_messages_by_rank[dst] = (
            report.received_messages_by_rank.get(dst, 0) + 1
        )
        report.sent_bytes_by_rank[src] = (
            report.sent_bytes_by_rank.get(src, 0) + send.nbytes
        )
        report.received_bytes_by_rank[dst] = (
            report.received_bytes_by_rank.get(dst, 0) + send.nbytes
        )

        plan = machine.transfer_plan(src, dst)
        if plan.intra_node:
            report.intra_messages += 1
        else:
            report.inter_messages += 1

        k = schedule.dep_counts.get(o, 0)
        observed = schedule.observed.get(src, [])
        i = obs_ptr.get(src, 0)
        while i < k:
            m = observed[i]
            if depth[m] > max_depth.get(src, 0):
                max_depth[src] = depth[m]
            if finish[m] > max_finish.get(src, 0.0):
                max_finish[src] = finish[m]
            i += 1
        obs_ptr[src] = i
        depth[o] = max_depth.get(src, 0) + 1
        finish[o] = max_finish.get(src, 0.0) + _duration_lb(
            machine.spec, plan, send.nbytes
        )
        if o in consumed and finish[o] > t_chain:
            t_chain = finish[o]

        report.round_messages[depth[o]] = (
            report.round_messages.get(depth[o], 0) + 1
        )
        for res in plan.resources:
            load = loads[res.name]
            load.nbytes += send.nbytes
            load.messages += 1
            load.by_round[depth[o]] = load.by_round.get(depth[o], 0) + send.nbytes
            if o in consumed:
                consumed_link_bytes[res.name] = (
                    consumed_link_bytes.get(res.name, 0) + send.nbytes
                )

    report.rounds = max(depth, default=0)
    report.t_chain = t_chain
    report.t_link = max(
        (b / loads[name].capacity for name, b in consumed_link_bytes.items()),
        default=0.0,
    )
    report.link_loads = sorted(
        loads.values(), key=lambda l: (-l.nbytes, l.name)
    )
    return report


def analyze_collective(
    name: str,
    nranks: int,
    nbytes: int = 65536,
    root: int = 0,
    spec: Optional[MachineSpec] = None,
    placement: str = "blocked",
) -> CostReport:
    """Extract a registry collective's schedule and cost it statically."""
    try:
        collective = REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown collective {name!r}; known: {sorted(REGISTRY)}"
        ) from None
    if not collective.supports(nranks):
        raise ConfigurationError(
            f"collective {name!r} does not support P={nranks}"
            + (" (power-of-two only)" if collective.pof2_only else "")
        )
    machine = Machine(spec if spec is not None else ideal(), nranks, placement)
    machine.set_working_set(nbytes)
    node_map = tuple(machine.placement.node_of(r) for r in range(nranks))
    schedule = cached_schedule(
        ("registry", name, nranks, nbytes, root, node_map),
        nranks,
        collective.build(nranks, nbytes, root),
        placement=machine.placement,
    )
    return analyze_schedule(
        schedule, machine, collective=name, nbytes=nbytes, root=root
    )


# ---------------------------------------------------------------------------
# The differential gate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GateCheck:
    """One static-vs-dynamic cross-check."""

    kind: str  # "bytes" | "time-bound" | "ranking" | "symbolic"
    subject: str
    ok: bool
    detail: str

    def describe(self) -> str:
        return f"[{self.kind}] {self.subject}: {'OK' if self.ok else 'FAIL'} — {self.detail}"


@dataclass
class GateReport:
    """Outcome of the full differential gate."""

    checks: List[GateCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> List[GateCheck]:
        return [c for c in self.checks if not c.ok]

    def counts(self) -> Dict[str, Tuple[int, int]]:
        """``kind -> (passed, total)``."""
        out: Dict[str, Tuple[int, int]] = {}
        for c in self.checks:
            passed, total = out.get(c.kind, (0, 0))
            out[c.kind] = (passed + (1 if c.ok else 0), total + 1)
        return out

    def describe(self) -> str:
        lines = []
        for kind, (passed, total) in sorted(self.counts().items()):
            lines.append(f"{kind}: {passed}/{total} check(s) passed")
        for c in self.failures:
            lines.append(c.describe())
        lines.append(f"verdict: {'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "counts": {k: {"passed": p, "total": t} for k, (p, t) in self.counts().items()},
            "checks": [
                {
                    "kind": c.kind,
                    "subject": c.subject,
                    "ok": c.ok,
                    "detail": c.detail,
                }
                for c in self.checks
            ],
        }


def _static_totals(schedule: ScheduleResult) -> Tuple[int, int, Dict[int, int], Dict[int, int]]:
    sent: Dict[int, int] = {}
    received: Dict[int, int] = {}
    for s in schedule.sends:
        sent[s.src] = sent.get(s.src, 0) + s.nbytes
        received[s.dst] = received.get(s.dst, 0) + s.nbytes
    return schedule.transfers, schedule.total_bytes, sent, received


def differential_gate(
    spec: Optional[MachineSpec] = None,
    placement: str = "blocked",
    static_ranks: Sequence[int] = (2, 3, 4, 5, 8, 10, 16),
    sim_ranks: Sequence[int] = (8, 10),
    sizes: Sequence[int] = (64 * KIB, 1 * MIB),
    band: float = 0.5,
    symbolic_max: int = 64,
    progress: Optional[Callable[[str], None]] = None,
) -> GateReport:
    """Cross-check the static cost layer against the dynamic one.

    * **bytes** — for every registry collective at every static grid
      point, the cost report's totals and per-rank byte/message tallies
      must equal a fresh :class:`ScheduleExecutor` extraction exactly;
      at the simulated points they must also equal the DES
      :class:`TrafficCounters`.
    * **time-bound** — at the simulated points, ``t_bound`` must
      lower-bound the simulated makespan and stay within the tolerance
      band (``t_bound >= band * makespan``).
    * **ranking** — static ``t_bound`` and simulated makespan must agree
      that the tuned broadcast is never slower than the native one.
    * **symbolic** — :func:`repro.analysis.symbolic.prove_savings_range`
      must hold for P in [2, symbolic_max] with the paper's instances
      pinned, and the recurrence must match the transfer counts of the
      actually-extracted schedules at the simulated points.

    ``spec`` defaults to the ideal machine — the only preset whose
    makespans the α-β bound is guaranteed to track tightly; the gate is
    meaningful on any deterministic (zero-jitter) spec.
    """
    machine_spec = spec if spec is not None else ideal()
    if machine_spec.jitter_sigma > 0:
        raise ConfigurationError(
            "differential gate needs a deterministic spec (jitter_sigma == 0)"
        )
    if not 0 < band <= 1:
        raise ConfigurationError(f"band must be in (0, 1], got {band}")
    report = GateReport()
    say = progress if progress is not None else (lambda _msg: None)

    # -- pass 1: static byte accounting over the full grid -------------------
    say("pass 1/4: static byte accounting vs schedule executor")
    for nranks in static_ranks:
        for name in sorted(REGISTRY):
            collective = REGISTRY[name]
            if not collective.supports(nranks):
                continue
            nbytes = sizes[-1]
            subject = f"{name} P={nranks} nbytes={nbytes}"
            try:
                cost = analyze_collective(
                    name, nranks, nbytes, spec=machine_spec, placement=placement
                )
                check = cached_schedule(
                    ("registry", name, nranks, nbytes, 0, None),
                    nranks,
                    collective.build(nranks, nbytes, 0),
                )
            except ReproError as exc:
                report.checks.append(
                    GateCheck("bytes", subject, False, f"{type(exc).__name__}: {exc}")
                )
                continue
            transfers, total, sent, received = _static_totals(check)
            ok = (
                cost.transfers == transfers
                and cost.total_bytes == total
                and cost.sent_bytes_by_rank == sent
                and cost.received_bytes_by_rank == received
            )
            report.checks.append(
                GateCheck(
                    "bytes",
                    subject,
                    ok,
                    f"static {cost.transfers} msg / {cost.total_bytes} B vs "
                    f"executor {transfers} msg / {total} B",
                )
            )

    # -- pass 2 + 3: simulated points ----------------------------------------
    say("pass 2/4: time bounds vs simulated makespans")
    makespans: Dict[Tuple[str, int, int], float] = {}
    bounds: Dict[Tuple[str, int, int], float] = {}
    for nranks in sim_ranks:
        for nbytes in sizes:
            for name in sorted(REGISTRY):
                collective = REGISTRY[name]
                if not collective.supports(nranks):
                    continue
                subject = f"{name} P={nranks} nbytes={nbytes}"
                try:
                    cost = analyze_collective(
                        name, nranks, nbytes, spec=machine_spec, placement=placement
                    )
                    machine = Machine(machine_spec, nranks, placement)
                    job = Job(
                        machine,
                        collective.build(nranks, nbytes, 0),
                        working_set=nbytes,
                    )
                    result = job.run()
                except ReproError as exc:
                    report.checks.append(
                        GateCheck(
                            "time-bound",
                            subject,
                            False,
                            f"{type(exc).__name__}: {exc}",
                        )
                    )
                    continue
                makespans[(name, nranks, nbytes)] = result.time
                bounds[(name, nranks, nbytes)] = cost.t_bound

                counters = result.counters
                bytes_ok = (
                    cost.transfers == counters.messages
                    and cost.total_bytes == counters.bytes
                    and cost.intra_messages == counters.intra_messages
                    and cost.inter_messages == counters.inter_messages
                    and cost.sent_bytes_by_rank == counters.bytes_sent_by_rank
                    and cost.received_bytes_by_rank
                    == counters.bytes_received_by_rank
                )
                report.checks.append(
                    GateCheck(
                        "bytes",
                        f"{subject} (sim counters)",
                        bytes_ok,
                        f"static {cost.transfers} msg / {cost.total_bytes} B vs "
                        f"DES {counters.messages} msg / {counters.bytes} B",
                    )
                )

                makespan = result.time
                lower = cost.t_bound <= makespan * (1 + 1e-9)
                tracks = makespan == 0.0 or cost.t_bound >= band * makespan
                report.checks.append(
                    GateCheck(
                        "time-bound",
                        subject,
                        lower and tracks,
                        f"t_bound={cost.t_bound * 1e6:.2f}us vs "
                        f"makespan={makespan * 1e6:.2f}us "
                        f"(ratio {cost.t_bound / makespan:.3f}, band {band})"
                        if makespan > 0
                        else f"t_bound={cost.t_bound * 1e6:.2f}us, makespan=0",
                    )
                )

    say("pass 3/4: native-vs-tuned ranking")
    for nranks in sim_ranks:
        for nbytes in sizes:
            key_n = ("bcast_native", nranks, nbytes)
            key_o = ("bcast_opt", nranks, nbytes)
            if key_n not in makespans or key_o not in makespans:
                continue
            subject = f"bcast_opt vs bcast_native P={nranks} nbytes={nbytes}"
            static_ok = bounds[key_o] <= bounds[key_n] * (1 + 1e-9)
            sim_ok = makespans[key_o] <= makespans[key_n] * (1 + 1e-9)
            report.checks.append(
                GateCheck(
                    "ranking",
                    subject,
                    static_ok and sim_ok,
                    f"static {bounds[key_o] * 1e6:.2f}us <= "
                    f"{bounds[key_n] * 1e6:.2f}us: {static_ok}; "
                    f"sim {makespans[key_o] * 1e6:.2f}us <= "
                    f"{makespans[key_n] * 1e6:.2f}us: {sim_ok}",
                )
            )

    # -- pass 4: symbolic proofs ---------------------------------------------
    say("pass 4/4: symbolic savings proofs")
    failures = symbolic.prove_savings_range(2, symbolic_max)
    report.checks.append(
        GateCheck(
            "symbolic",
            f"savings(P) == S - P for P in [2, {symbolic_max}], "
            f"pinned P=8->12, P=10->15",
            not failures,
            "all proofs held" if not failures else "; ".join(failures),
        )
    )
    for nranks in sim_ranks:
        nbytes = sizes[-1]
        subject = f"recurrence vs extracted schedules P={nranks} nbytes={nbytes}"
        try:
            native = cached_schedule(
                ("registry", "bcast_native", nranks, nbytes, 0, None),
                nranks,
                REGISTRY["bcast_native"].build(nranks, nbytes, 0),
            )
            tuned = cached_schedule(
                ("registry", "bcast_opt", nranks, nbytes, 0, None),
                nranks,
                REGISTRY["bcast_opt"].build(nranks, nbytes, 0),
            )
        except ReproError as exc:
            report.checks.append(
                GateCheck("symbolic", subject, False, f"{type(exc).__name__}: {exc}")
            )
            continue
        expected = symbolic.savings(nranks)
        measured = native.transfers - tuned.transfers
        bytes_expected = symbolic.ring_bytes_saved(nranks, nbytes)
        bytes_measured = native.total_bytes - tuned.total_bytes
        ok = measured == expected and bytes_measured == bytes_expected
        report.checks.append(
            GateCheck(
                "symbolic",
                subject,
                ok,
                f"transfers saved {measured} (recurrence {expected}), "
                f"bytes saved {bytes_measured} (closed form {bytes_expected})",
            )
        )
    return report
