"""Chrome trace-event export.

Writes a simulation trace as the Trace Event Format JSON that
``chrome://tracing`` / Perfetto load: one "complete" (``ph: "X"``) event
per message span, one thread lane per rank, phases colour-grouped via
categories. Handy for inspecting a broadcast schedule interactively.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Union

from ..errors import ConfigurationError
from ..sim import Trace
from .timeline import message_spans

__all__ = ["to_chrome_trace", "write_chrome_trace"]


def to_chrome_trace(trace: Trace, process_name: str = "repro") -> Dict[str, object]:
    """The trace as a Trace-Event-Format dict (``traceEvents`` inside)."""
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": process_name},
        }
    ]
    seen_ranks = set()
    for span in message_spans(trace):
        for rank in {span.src, span.dst}:
            if rank not in seen_ranks:
                seen_ranks.add(rank)
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 0,
                        "tid": rank,
                        "args": {"name": f"rank {rank}"},
                    }
                )
        events.append(
            {
                "name": f"{span.phase} {span.src}->{span.dst}",
                "cat": span.phase,
                "ph": "X",
                "pid": 0,
                "tid": span.src,
                "ts": span.start * 1e6,  # microseconds per the format
                "dur": span.duration * 1e6,
                "args": {"nbytes": span.nbytes, "dst": span.dst, "tag": span.tag},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    trace: Trace, target: Union[str, IO], process_name: str = "repro"
) -> None:
    """Serialise :func:`to_chrome_trace` to a path or file object."""
    payload = to_chrome_trace(trace, process_name=process_name)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
    elif hasattr(target, "write"):
        json.dump(payload, target)
    else:
        raise ConfigurationError(
            f"target must be a path or file object, got {type(target).__name__}"
        )
