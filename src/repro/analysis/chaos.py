"""Chaos differential gate: collectives must survive injected faults.

PRs 3-4 proved the schedules correct and cost-consistent on a lossless
fabric. This gate closes the robustness loop: every registry collective
is run under a grid of seeded :class:`~repro.sim.faults.FaultPlan`\\ s on
the ARQ transport (:mod:`repro.mpi.reliable`) and judged against a
fault-free reference run of the same program over the same buffers:

(a) **payload integrity** — every rank's final buffer must be
    bit-identical to the reference run's;
(b) **termination** — the run completes within the retry budget or
    fails with a clean, typed
    :class:`~repro.errors.TransportExhaustedError` naming the dead link
    (acceptable only under a plan that can actually lose messages);
(c) **wire-accounting equivalence** — with zero retransmissions the
    transport byte counters must be bitwise-identical to the fault-free
    run, keeping the PR-4 cost-engine equivalence intact. The all-zero
    plan additionally runs on the *plain* transport and must reproduce
    the reference makespan and counters exactly.

A static selector check rides along: a plan with a crashed rank must
degrade the tuned ring to the binomial tree
(:func:`repro.collectives.selector.choose_bcast_name`).

Surfaced as ``python -m repro chaos`` (``--seed/--grid/--strict/--json``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..collectives.selector import LONG_MSG_SIZE, choose_bcast_name
from ..errors import DeadlockError, ReproError, TransportExhaustedError
from ..machine import Machine, MachineSpec, ideal
from ..mpi import Job, RealBuffer
from ..mpi.counters import TrafficCounters
from ..mpi.runtime import JobResult
from ..sim.faults import Blackout, FaultPlan, LatencySpike
from ..util import scatter_size
from .verify import REGISTRY

__all__ = [
    "ChaosCheck",
    "ChaosReport",
    "default_plans",
    "run_chaos_point",
    "chaos_gate",
]

#: Grid defaults: small payloads and modest P keep the full grid cheap
#: while still covering eager-path retransmission, reassembly and dedup.
DEFAULT_RANKS = (5, 8)
DEFAULT_NBYTES = 4096


def default_plans(seed: int = 0) -> List[FaultPlan]:
    """The gate's seeded plan grid, from benign to fatal."""
    return [
        FaultPlan.none(seed=seed, name="zero"),
        FaultPlan.uniform(seed=seed, drop_p=0.05, name="drop5"),
        FaultPlan.uniform(seed=seed + 1, drop_p=0.2, name="drop20"),
        FaultPlan.uniform(
            seed=seed + 2, dup_p=0.15, corrupt_p=0.1, name="dup_corrupt"
        ),
        FaultPlan.uniform(seed=seed + 3, extra_latency=2e-6, name="slow")
        .with_spike(LatencySpike(t0=0.0, t1=1e-3, extra_latency=5e-6))
        .with_blackout(Blackout(t0=20e-6, t1=60e-6, label="mid-run blackout")),
        FaultPlan.none(seed=seed + 4, name="crash").with_crash(1),
    ]


@dataclass(frozen=True)
class ChaosCheck:
    """Verdict for one (collective, P, plan) grid cell."""

    collective: str
    nranks: int
    plan: str
    status: str  # "ok" | "exhausted" | "fail"
    detail: str = ""
    drops: int = 0
    retrans: int = 0
    timeouts: int = 0
    acks: int = 0

    @property
    def ok(self) -> bool:
        return self.status != "fail"

    def to_dict(self) -> Dict[str, object]:
        return {
            "collective": self.collective,
            "nranks": self.nranks,
            "plan": self.plan,
            "status": self.status,
            "detail": self.detail,
            "drops": self.drops,
            "retrans": self.retrans,
            "timeouts": self.timeouts,
            "acks": self.acks,
        }


@dataclass(frozen=True)
class ChaosReport:
    """Every grid cell's verdict plus the run parameters."""

    checks: Tuple[ChaosCheck, ...]
    seed: int
    nbytes: int
    machine: str

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> List[ChaosCheck]:
        return [c for c in self.checks if not c.ok]

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "nbytes": self.nbytes,
            "machine": self.machine,
            "ok": self.ok,
            "checks": [c.to_dict() for c in self.checks],
        }

    def describe(self) -> str:
        lines = [
            f"chaos differential gate: seed={self.seed} nbytes={self.nbytes} "
            f"on {self.machine} — {len(self.checks)} check(s)"
        ]
        exhausted = sum(1 for c in self.checks if c.status == "exhausted")
        for c in self.failures:
            lines.append(
                f"  FAIL {c.collective} P={c.nranks} plan={c.plan}: {c.detail}"
            )
        lines.append(
            f"  {len(self.checks) - len(self.failures)}/{len(self.checks)} OK "
            f"({exhausted} clean typed exhaustion(s))"
        )
        lines.append(f"verdict: {'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _buffer_sizes(name: str, nranks: int, nbytes: int) -> List[int]:
    """Per-rank buffer sizes large enough for the collective's writes."""
    if name == "allgatherv_ring":
        from .verify import _allgatherv_counts

        total = sum(_allgatherv_counts(nranks, nbytes, 0))
        return [total] * nranks
    # Block collectives address P blocks of scatter_size bytes, which can
    # exceed nbytes when P does not divide it; cover both layouts.
    total = max(nbytes, scatter_size(nbytes, nranks) * nranks)
    return [total] * nranks


def _make_buffers(name: str, nranks: int, nbytes: int) -> List[RealBuffer]:
    """Deterministic, rank-distinguishable buffer contents (uint8)."""
    bufs = []
    for rank, size in enumerate(_buffer_sizes(name, nranks, nbytes)):
        pattern = (np.arange(size, dtype=np.uint32) * 31 + rank * 131 + 7) % 251
        bufs.append(RealBuffer.from_array(pattern.astype(np.uint8)))
    return bufs


def _wire_dict(counters: TrafficCounters) -> Dict[str, int]:
    """The transport byte counters check (c) compares bitwise."""
    return {
        "messages": counters.messages,
        "bytes": counters.bytes,
        "intra_messages": counters.intra_messages,
        "intra_bytes": counters.intra_bytes,
        "inter_messages": counters.inter_messages,
        "inter_bytes": counters.inter_bytes,
    }


def _run(
    spec: MachineSpec,
    name: str,
    nranks: int,
    nbytes: int,
    faults: Optional[FaultPlan] = None,
    reliable: Optional[bool] = None,
) -> Tuple[JobResult, List[RealBuffer]]:
    """One job of registry collective *name* over fresh real buffers."""
    machine = Machine(spec, nranks)
    bufs = _make_buffers(name, nranks, nbytes)
    factory = REGISTRY[name].build(nranks, nbytes, 0)
    job = Job(machine, factory, buffers=bufs, faults=faults, reliable=reliable)
    result = job.run()
    return result, bufs


def run_chaos_point(
    name: str,
    nranks: int,
    plan: FaultPlan,
    nbytes: int = DEFAULT_NBYTES,
    spec: Optional[MachineSpec] = None,
) -> ChaosCheck:
    """Judge one (collective, P, plan) cell against its clean reference."""
    spec = spec if spec is not None else ideal()
    ref, ref_bufs = _run(spec, name, nranks, nbytes)
    # The all-zero plan exercises the plain transport's injection fast
    # path; everything else runs the ARQ layer.
    reliable = not plan.is_zero
    try:
        res, bufs = _run(
            spec, name, nranks, nbytes, faults=plan, reliable=reliable
        )
    except TransportExhaustedError as exc:
        if plan.lossy:
            return ChaosCheck(
                name, nranks, plan.name, "exhausted", detail=str(exc)
            )
        return ChaosCheck(
            name,
            nranks,
            plan.name,
            "fail",
            detail=f"typed exhaustion under a lossless plan: {exc}",
        )
    except DeadlockError as exc:
        return ChaosCheck(
            name, nranks, plan.name, "fail", detail=f"deadlock: {exc}"
        )
    except ReproError as exc:
        return ChaosCheck(
            name,
            nranks,
            plan.name,
            "fail",
            detail=f"untyped {type(exc).__name__}: {exc}",
        )
    c = res.counters
    stats = {
        "drops": c.drops_injected,
        "retrans": c.retrans_messages,
        "timeouts": c.timeouts,
        "acks": c.ack_messages,
    }
    # (a) payload integrity at every rank, bit for bit.
    for rank, (buf, ref_buf) in enumerate(zip(bufs, ref_bufs)):
        if not np.array_equal(buf.array, ref_buf.array):
            diffs = int(np.count_nonzero(buf.array != ref_buf.array))
            return ChaosCheck(
                name,
                nranks,
                plan.name,
                "fail",
                detail=f"rank {rank} payload differs in {diffs} byte(s)",
                **stats,
            )
    # (c) zero retransmissions => wire counters identical to fault-free.
    if c.retrans_messages == 0 and _wire_dict(c) != _wire_dict(ref.counters):
        return ChaosCheck(
            name,
            nranks,
            plan.name,
            "fail",
            detail=(
                f"zero retransmissions but wire counters diverge: "
                f"{_wire_dict(c)} vs {_wire_dict(ref.counters)}"
            ),
            **stats,
        )
    # The all-zero plan must be a perfect no-op: same makespan, same wire.
    if plan.is_zero and res.time != ref.time:
        return ChaosCheck(
            name,
            nranks,
            plan.name,
            "fail",
            detail=f"zero plan changed makespan: {res.time} vs {ref.time}",
            **stats,
        )
    return ChaosCheck(name, nranks, plan.name, "ok", **stats)


def _degradation_check(seed: int) -> ChaosCheck:
    """Static selector check: a crashed rank steers the tuned ring onto
    the binomial tree (and leaves the lossless selection untouched)."""
    crash = FaultPlan.none(seed=seed).with_crash(1)
    picked = choose_bcast_name(LONG_MSG_SIZE, 10, tuned=True, faults=crash)
    clean = choose_bcast_name(LONG_MSG_SIZE, 10, tuned=True)
    if picked != "binomial":
        return ChaosCheck(
            "selector_degradation",
            10,
            "crash",
            "fail",
            detail=f"crash plan selected {picked!r}, expected 'binomial'",
        )
    if clean != "scatter_ring_opt":
        return ChaosCheck(
            "selector_degradation",
            10,
            "crash",
            "fail",
            detail=f"lossless selection drifted to {clean!r}",
        )
    return ChaosCheck("selector_degradation", 10, "crash", "ok")


def chaos_gate(
    seed: int = 0,
    spec: Optional[MachineSpec] = None,
    collectives: Optional[Sequence[str]] = None,
    ranks: Sequence[int] = DEFAULT_RANKS,
    nbytes: int = DEFAULT_NBYTES,
    plans: Optional[Sequence[FaultPlan]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Run the full grid: registry collectives x ranks x fault plans."""
    spec = spec if spec is not None else ideal()
    names = list(collectives) if collectives is not None else sorted(REGISTRY)
    plans = list(plans) if plans is not None else default_plans(seed)
    checks: List[ChaosCheck] = [_degradation_check(seed)]
    for name in names:
        registered = REGISTRY[name]
        for nranks in ranks:
            if not registered.supports(nranks):
                continue
            for plan in plans:
                if progress is not None:
                    progress(f"chaos {name} P={nranks} plan={plan.name}")
                checks.append(
                    run_chaos_point(name, nranks, plan, nbytes=nbytes, spec=spec)
                )
    return ChaosReport(
        checks=tuple(checks), seed=seed, nbytes=nbytes, machine=spec.name
    )
