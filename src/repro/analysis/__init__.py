"""Trace analysis: timelines, phase summaries, Chrome trace export."""

from .timeline import (
    TAG_NAMES,
    MessageSpan,
    message_spans,
    phase_summary,
    rank_activity,
    concurrency_profile,
    busiest_rank,
    ascii_timeline,
)
from .critical_path import CriticalPath, critical_path
from .chrometrace import to_chrome_trace, write_chrome_trace

__all__ = [
    "TAG_NAMES",
    "MessageSpan",
    "message_spans",
    "phase_summary",
    "rank_activity",
    "concurrency_profile",
    "busiest_rank",
    "ascii_timeline",
    "CriticalPath",
    "critical_path",
    "to_chrome_trace",
    "write_chrome_trace",
]
