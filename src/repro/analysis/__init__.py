"""Trace analysis and static verification.

Post-hoc trace tooling (timelines, phase summaries, Chrome trace
export, critical path) plus the static schedule verifier
(:mod:`repro.analysis.verify`), the α-β/LogGP cost engine
(:mod:`repro.analysis.costmodel`), the symbolic all-P savings proofs
(:mod:`repro.analysis.symbolic`), the determinism lint
(:mod:`repro.analysis.lint`), the exhaustive match-order model checker
with dynamic partial-order reduction
(:mod:`repro.analysis.modelcheck`), the engine differential gates:
chaos (:mod:`repro.analysis.chaos`) and replay-vs-DES
(:mod:`repro.analysis.replaygate`), and the parametric proof layer —
an exact symbolic abstract domain (:mod:`repro.analysis.abstract`)
driving inductive schedule certificates
(:mod:`repro.analysis.certify`) that hold for all ``P >= 2``.
"""

from .abstract import (
    AbstractDomainError,
    Env,
    Interval,
    Lin,
    RingSet,
    SymSet,
    const,
    lin,
    var,
)
from .certify import (
    CertificateReport,
    Obligation,
    ProveReport,
    crossvalidate_certificate,
    crossvalidate_roles,
    predicted_redundant_exact,
    predicted_ring_ownership,
    predicted_role,
    prove_all,
    prove_collective,
)
from .timeline import (
    TAG_NAMES,
    MessageSpan,
    message_spans,
    phase_summary,
    rank_activity,
    concurrency_profile,
    busiest_rank,
    ascii_timeline,
)
from .critical_path import CriticalPath, critical_path
from .chrometrace import to_chrome_trace, write_chrome_trace
from .costmodel import (
    CostReport,
    GateCheck,
    GateReport,
    LinkLoad,
    analyze_collective,
    analyze_schedule,
    differential_gate,
)
from .chaos import (
    ChaosCheck,
    ChaosReport,
    chaos_gate,
    default_plans,
    run_chaos_point,
)
from .replaygate import (
    ReplayCheck,
    ReplayReport,
    replay_gate,
    run_replay_point,
)
from .lint import LintViolation, lint_paths, lint_source
from .modelcheck import (
    DeadlockWitness,
    MCCheck,
    MCGridReport,
    MCReport,
    check_collective,
    check_program,
    default_mc_plans,
    mc_grid,
)
from .symbolic import (
    SavingsProof,
    prove_savings,
    prove_savings_range,
    subtree_extents,
    subtree_sum,
)
from .verify import (
    CollectiveSpec,
    HazardPair,
    RedundantTransfer,
    RendezvousAnalyzer,
    RendezvousReport,
    VerifyReport,
    Violation,
    WaitForEdge,
    analyze_rendezvous,
    expected_redundant_native,
    find_match_hazards,
    verifiable_collectives,
    verify_collective,
    verify_program,
    verify_provenance,
)

__all__ = [
    "AbstractDomainError",
    "Env",
    "Interval",
    "Lin",
    "RingSet",
    "SymSet",
    "const",
    "lin",
    "var",
    "CertificateReport",
    "Obligation",
    "ProveReport",
    "crossvalidate_certificate",
    "crossvalidate_roles",
    "predicted_redundant_exact",
    "predicted_ring_ownership",
    "predicted_role",
    "prove_all",
    "prove_collective",
    "TAG_NAMES",
    "MessageSpan",
    "message_spans",
    "phase_summary",
    "rank_activity",
    "concurrency_profile",
    "busiest_rank",
    "ascii_timeline",
    "CriticalPath",
    "critical_path",
    "to_chrome_trace",
    "write_chrome_trace",
    "CostReport",
    "GateCheck",
    "GateReport",
    "LinkLoad",
    "analyze_collective",
    "analyze_schedule",
    "differential_gate",
    "ChaosCheck",
    "ChaosReport",
    "chaos_gate",
    "default_plans",
    "run_chaos_point",
    "ReplayCheck",
    "ReplayReport",
    "replay_gate",
    "run_replay_point",
    "LintViolation",
    "lint_paths",
    "lint_source",
    "DeadlockWitness",
    "MCCheck",
    "MCGridReport",
    "MCReport",
    "check_collective",
    "check_program",
    "default_mc_plans",
    "mc_grid",
    "SavingsProof",
    "prove_savings",
    "prove_savings_range",
    "subtree_extents",
    "subtree_sum",
    "CollectiveSpec",
    "HazardPair",
    "RedundantTransfer",
    "RendezvousAnalyzer",
    "RendezvousReport",
    "VerifyReport",
    "Violation",
    "WaitForEdge",
    "analyze_rendezvous",
    "expected_redundant_native",
    "find_match_hazards",
    "verifiable_collectives",
    "verify_collective",
    "verify_program",
    "verify_provenance",
]
