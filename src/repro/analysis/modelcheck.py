"""Exhaustive match-order model checking with dynamic partial-order reduction.

``repro verify`` (PR 3) flags *match-order hazard pairs* on one observed
trace, but a hazard is only a warning: it says two messages relied on
MPI's non-overtaking rule, not whether any alternative match order
actually deadlocks or corrupts a payload. This module closes that gap
the way ISP/MOPPER-style verifiers do for real MPI programs: it
*explores every distinguishable match order* of a rank program at small
P and proves, per interleaving,

1. **deadlock-freedom** — with a replayable, greedily *minimized*
   witness schedule when a deadlock exists;
2. **payload bit-determinism** — every interleaving terminates with
   identical per-rank final buffers;
3. **wire-counter invariance** — logical message/byte counters are the
   same in every interleaving;
4. **delivery-or-typed-exhaustion under faults** — with a seeded
   :class:`~repro.sim.faults.FaultPlan` attached, every interleaving
   either delivers every message (the ARQ model retries through drop /
   corrupt decisions) or terminates in a typed retry-budget exhaustion
   naming the dead link; never a silent loss.

State-space semantics
---------------------

A *transition* is a macro step of one rank (ISP/POE style): resume the
rank if it was parked on a now-satisfied receive/wait, then advance its
generator — absorbing computes, receive posts, and already-satisfied
waits inline — until it either **issues one send**, **parks** on an
unsatisfied blocking receive/wait, or **finishes**. Sends are buffered
(they never block) and matching reuses
:class:`~repro.mpi.matching.MatchingEngine` verbatim, so a single
maximal run has exactly the semantics of
:class:`~repro.collectives.schedule.ScheduleExecutor`.

Stopping only at sends is sound because receive-*post* timing cannot
change a match outcome here: per-(src, dst) delivery is FIFO and a
rank's posts are program-ordered, so which send an (even wildcard)
receive matches is a function of the *delivery interleaving* alone.
Matching nondeterminism therefore reduces to the relative order of send
transitions racing into a wildcard (``ANY_SOURCE``) receiver — exactly
the pairs the DPOR dependence relation tracks.

DPOR sketch
-----------

Stateless depth-first exploration with persistent (backtrack) sets and
sleep sets (Flanagan-Godefroid). Each executed transition carries a
vector clock (program order + send->consumer edges, the same
happens-before structure the schedule executor's ``observed`` /
``dep_counts`` metadata records); after each maximal run, every pair of
send transitions that is (a) dependent — same destination, different
sources, pattern-compatible with a wildcard receive the destination
posts — and (b) *not* happens-before ordered is a race, and the later
sender is added to the backtrack set of the frame where the earlier
send fired. Sleep sets prune re-exploration of commuting suffixes.
Programs without wildcard receives (the whole registry) have an empty
dependence relation and are covered by a **single** maximal run; a
``naive`` mode (full enumeration over a canonical state fingerprint)
exists purely to measure the reduction and to cross-check the explored
terminal set on wildcard fixtures.

Surfaced as ``repro mc`` (``--collective/--nranks/--grid/--strict/
--json/--max-states``, exit != 0 on violation) and fed back into
``repro verify --mc``, which confirms pass-3 hazard pairs as real
divergences or auto-downgrades them to benign.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..errors import ConfigurationError, DeadlockError, ReproError, TruncationError
from ..mpi.comm import Communicator
from ..mpi.context import RankContext
from ..mpi.matching import Envelope, MatchingEngine
from ..mpi.ops import ANY_TAG, ComputeOp, IrecvOp, IsendOp, RecvOp, SendOp, WaitOp
from ..mpi.request import Request, Status
from ..sim import Proc
from ..sim.faults import FaultPlan, LinkRule
from .verify import REGISTRY, Violation

__all__ = [
    "DEFAULT_MAX_STATES",
    "DEFAULT_NBYTES",
    "DEFAULT_MAX_ATTEMPTS",
    "DeadlockWitness",
    "MCReport",
    "MCCheck",
    "MCGridReport",
    "default_mc_plans",
    "buffer_digests",
    "check_program",
    "check_collective",
    "mc_grid",
]

#: Exploration budget per point: distinct states for ``naive``, executed
#: transitions (excluding replays) for ``dpor``. Registry collectives are
#: wildcard-free, so DPOR needs exactly one maximal run — the budget only
#: bites on adversarial wildcard programs.
DEFAULT_MAX_STATES = 20000

#: Small payloads keep per-step buffer hashing cheap; determinism is a
#: bit-level property, so size does not change what the check proves.
DEFAULT_NBYTES = 1024

#: Retry budget of the abstract ARQ send (mirrors the reliable
#: transport's bounded retransmission: budget exhausted => typed failure).
DEFAULT_MAX_ATTEMPTS = 4


# ---------------------------------------------------------------------------
# Controlled execution (one interleaving)
# ---------------------------------------------------------------------------


def _describe_req(req: Request) -> str:
    if req.kind == "recv":
        src = "ANY_SOURCE" if req.peer < 0 else req.peer
        tag = "ANY_TAG" if req.tag < 0 else req.tag
        return f"recv(src={src}, tag={tag}, nbytes={req.nbytes})"
    return f"send(dst={req.peer}, tag={req.tag}, nbytes={req.nbytes})"


class _SendRecord:
    """One delivered logical send (ARQ retries are hidden inside it)."""

    __slots__ = ("order", "src", "dst", "tag", "nbytes", "chunks", "chan_seq", "clock")

    def __init__(
        self,
        order: int,
        src: int,
        dst: int,
        tag: int,
        nbytes: int,
        chunks: Tuple[int, ...],
        chan_seq: int,
        clock: Tuple[int, ...],
    ) -> None:
        self.order = order
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.chunks = chunks
        self.chan_seq = chan_seq  # per-(src, dst) logical message index
        self.clock = clock  # sender's vector clock at issue


class _PRecv:
    __slots__ = ("req",)

    def __init__(self, req: Request) -> None:
        self.req = req


class _PWait:
    __slots__ = ("requests",)

    def __init__(self, requests: List[Request]) -> None:
        self.requests = requests


@dataclass(frozen=True)
class _Transition:
    """One executed macro step (for the trace / race detection)."""

    rank: int
    kind: str  # "send" | "block" | "finish" | "error"
    detail: str
    send: Optional[_SendRecord]
    clock: Tuple[int, ...]
    own: int  # this rank's transition count after the step


#: (src, dst, tag) of a send transition; None for block/finish/error.
_Sig = Optional[Tuple[int, int, int]]

#: A rank's park state: None (runnable), blocked recv, or blocked waitall.
_Park = Optional[Union["_PRecv", "_PWait"]]


def _send_sig(t: _Transition) -> _Sig:
    """(src, dst, tag) of a send transition; None for anything else."""
    if t.send is None:
        return None
    return (t.send.src, t.send.dst, t.send.tag)


class _Execution:
    """One controlled run: the scheduler (explorer) picks which enabled
    rank takes the next macro step. Matching semantics are identical to
    :class:`~repro.collectives.schedule.ScheduleExecutor` (buffered
    sends, shared :class:`MatchingEngine` state machine)."""

    def __init__(
        self,
        nranks: int,
        program_factory: Callable[[RankContext], object],
        buffers: Optional[List[object]] = None,
        faults: Optional[FaultPlan] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        wildcards: Optional[Dict[int, Set[int]]] = None,
    ) -> None:
        self.nranks = nranks
        self.buffers = buffers
        self.faults = faults if faults is not None and not faults.is_zero else None
        self.max_attempts = max_attempts
        # Shared across an exploration so dependence stays stable between
        # replayed branches (wildcard patterns observed anywhere count).
        self.wildcards = wildcards if wildcards is not None else {}
        comm = Communicator.world(nranks)
        self.matching = [MatchingEngine(r) for r in range(nranks)]
        self.procs: List[Proc] = []
        self._parked: List[_Park] = [None] * nranks
        self._resume: List[object] = [None] * nranks
        self._ops_done = [0] * nranks
        self.trace: List[_Transition] = []
        self.sends: List[_SendRecord] = []
        self._chan_seq: Dict[Tuple[int, int], int] = {}
        self._op_index: Dict[Tuple[int, int], int] = {}
        self._recv_order: Dict[Request, int] = {}
        self.clock = [[0] * nranks for _ in range(nranks)]
        self._own = [0] * nranks
        self._buf_digest = [b""] * nranks
        self.sent_msgs = [0] * nranks
        self.sent_bytes = [0] * nranks
        self.recv_msgs = [0] * nranks
        self.recv_bytes = [0] * nranks
        self.injected = {"drop": 0, "dup": 0, "corrupt": 0}
        self.exhausted: Optional[Tuple[int, int, int, int, str]] = None
        self.error: Optional[str] = None
        for rank in range(nranks):
            buf = buffers[rank] if buffers is not None else None
            ctx = RankContext(rank, comm, buffer=buf)
            self.procs.append(Proc(f"rank{rank}", program_factory(ctx)))

    # -- scheduling interface -------------------------------------------
    def _satisfied(self, parked: Union["_PRecv", "_PWait"]) -> bool:
        if isinstance(parked, _PRecv):
            return parked.req.complete
        return all(r.complete for r in parked.requests)

    def enabled_ranks(self) -> List[int]:
        if self.exhausted is not None or self.error is not None:
            return []
        out = []
        for r in range(self.nranks):
            if self.procs[r].finished:
                continue
            parked = self._parked[r]
            if parked is None or self._satisfied(parked):
                out.append(r)
        return out

    def step(self, rank: int) -> _Transition:
        """Run *rank* up to (and including) its next send, park, or end."""
        clock = list(self.clock[rank])
        self._own[rank] += 1
        own = self._own[rank]
        clock[rank] = own

        def consume(req: Request) -> None:
            # Join the matched send's clock: the message edge of the
            # happens-before relation (idempotent, like _observe).
            order = self._recv_order.pop(req, None)
            if order is not None:
                sc = self.sends[order].clock
                for i in range(self.nranks):
                    if sc[i] > clock[i]:
                        clock[i] = sc[i]

        value: object
        parked = self._parked[rank]
        if parked is not None:
            if not self._satisfied(parked):
                raise ConfigurationError(f"stepped parked rank {rank}")
            self._parked[rank] = None
            if isinstance(parked, _PRecv):
                consume(parked.req)
                value = parked.req.status
            else:
                for r in parked.requests:
                    consume(r)
                value = [r.status for r in parked.requests]
        else:
            value = self._resume[rank]
            self._resume[rank] = None
        proc = self.procs[rank]
        kind = "finish"
        detail = f"rank {rank} finished"
        send_rec: Optional[_SendRecord] = None
        try:
            while True:
                outcome = proc.advance(value)
                if outcome.done:
                    break
                op = outcome.value
                self._ops_done[rank] += 1
                if isinstance(op, ComputeOp):
                    value = None
                    continue
                if isinstance(op, (SendOp, IsendOp)):
                    req = Request(
                        "send",
                        owner=rank,
                        peer=op.dst,
                        tag=op.tag,
                        nbytes=op.nbytes,
                        buffer=op.buffer,
                        disp=op.disp,
                        chunks=op.chunks,
                    )
                    self._resume[rank] = req if isinstance(op, IsendOp) else None
                    send_rec = self._do_send(req, tuple(clock))
                    kind = "send"
                    detail = f"rank {rank}: {_describe_req(req)}"
                    if self.exhausted is not None:
                        s, d, tag, attempts, cause = self.exhausted
                        detail += (
                            f" EXHAUSTED after {attempts} attempt(s)"
                            f" ({cause or 'loss'})"
                        )
                    break
                if isinstance(op, (RecvOp, IrecvOp)):
                    req = Request(
                        "recv",
                        owner=rank,
                        peer=op.src,
                        tag=op.tag,
                        nbytes=op.nbytes,
                        buffer=op.buffer,
                        disp=op.disp,
                    )
                    if op.src < 0:
                        self.wildcards.setdefault(rank, set()).add(op.tag)
                    env = self.matching[rank].post_recv(req)
                    if env is not None:
                        self._complete_recv(req, env)
                    if isinstance(op, IrecvOp):
                        value = req
                        continue
                    if req.complete:
                        consume(req)
                        value = req.status
                        continue
                    self._parked[rank] = _PRecv(req)
                    kind = "block"
                    detail = f"rank {rank} blocked in {_describe_req(req)}"
                    break
                if isinstance(op, WaitOp):
                    if all(r.complete for r in op.requests):
                        for r in op.requests:
                            consume(r)
                        value = [r.status for r in op.requests]
                        continue
                    self._parked[rank] = _PWait(tuple(op.requests))
                    pending = sum(1 for r in op.requests if not r.complete)
                    kind = "block"
                    detail = (
                        f"rank {rank} blocked in waitall on {pending} of "
                        f"{len(op.requests)} request(s)"
                    )
                    break
                raise ConfigurationError(f"model checker got unknown op {op!r}")
        except ReproError as exc:
            self.error = f"{type(exc).__name__}: {exc}"
            kind = "error"
            detail = f"rank {rank}: {self.error}"
        self.clock[rank] = clock
        t = _Transition(
            rank=rank,
            kind=kind,
            detail=detail,
            send=send_rec,
            clock=tuple(clock),
            own=own,
        )
        self.trace.append(t)
        return t

    # -- transfer plumbing ----------------------------------------------
    def _do_send(self, req: Request, clock: Tuple[int, ...]) -> Optional[_SendRecord]:
        src, dst = req.owner, req.peer
        payload = None
        if req.buffer is not None:
            payload = req.buffer.read(req.disp, req.nbytes)
        if self.faults is not None:
            # Abstract ARQ: each attempt burns one per-link op index and a
            # fresh fault coin; corrupt attempts are checksum-discarded
            # like drops, duplicates are delivered once (receiver dedup).
            delivered = False
            cause = ""
            attempts = 0
            for _ in range(self.max_attempts):
                attempts += 1
                oi = self._op_index.get((src, dst), 0)
                self._op_index[(src, dst)] = oi + 1
                decision = self.faults.decide(src, dst, req.tag, oi)
                if decision.duplicate:
                    self.injected["dup"] += 1
                if decision.drop:
                    self.injected["drop"] += 1
                    cause = decision.cause or "drop"
                    continue
                if decision.corrupt:
                    self.injected["corrupt"] += 1
                    cause = decision.cause or "corrupt"
                    continue
                delivered = True
                break
            if not delivered:
                self.exhausted = (src, dst, req.tag, attempts, cause)
                req.finish()
                return None
        else:
            oi = self._op_index.get((src, dst), 0)
            self._op_index[(src, dst)] = oi + 1
        chan_seq = self._chan_seq.get((src, dst), 0)
        self._chan_seq[(src, dst)] = chan_seq + 1
        order = len(self.sends)
        rec = _SendRecord(
            order, src, dst, req.tag, req.nbytes, req.chunks, chan_seq, clock
        )
        self.sends.append(rec)
        self.sent_msgs[src] += 1
        self.sent_bytes[src] += req.nbytes
        req.finish()  # buffered: sends always complete immediately
        env = Envelope(src, req.tag, req.nbytes, (rec, payload), order + 1)
        recv_req = self.matching[dst].arrive(env)
        if recv_req is not None:
            self._complete_recv(recv_req, env)
        return rec

    def _complete_recv(self, recv_req: Request, env: Envelope) -> None:
        rec, payload = env.send_req
        if env.nbytes > recv_req.nbytes:
            raise TruncationError(
                f"message of {env.nbytes} bytes truncates receive of "
                f"{recv_req.nbytes} bytes on rank {recv_req.owner}"
            )
        if recv_req.buffer is not None and payload is not None:
            recv_req.buffer.write(recv_req.disp, payload)
            h = hashlib.sha256()
            h.update(self._buf_digest[recv_req.owner])
            h.update(recv_req.disp.to_bytes(8, "little"))
            h.update(payload.tobytes())
            self._buf_digest[recv_req.owner] = h.digest()
        self.recv_msgs[recv_req.owner] += 1
        self.recv_bytes[recv_req.owner] += env.nbytes
        self._recv_order[recv_req] = rec.order
        recv_req.finish(Status(env.src, env.tag, env.nbytes, rec.chunks))

    # -- terminal classification ----------------------------------------
    def status(self) -> str:
        if self.error is not None:
            return "error"
        if self.exhausted is not None:
            return "exhausted"
        if all(p.finished for p in self.procs):
            return "done"
        if not self.enabled_ranks():
            return "deadlock"
        return "running"

    def blocked_summary(self) -> List[str]:
        lines = []
        for r in range(self.nranks):
            if self.procs[r].finished:
                continue
            parked = self._parked[r]
            if isinstance(parked, _PRecv):
                lines.append(f"rank {r} blocked in {_describe_req(parked.req)}")
            elif isinstance(parked, _PWait):
                pending = [
                    _describe_req(q) for q in parked.requests if not q.complete
                ]
                lines.append(
                    f"rank {r} blocked in waitall on {len(pending)} of "
                    f"{len(parked.requests)} request(s): {', '.join(pending)}"
                )
            else:
                lines.append(f"rank {r} never ran to completion")
        lines.extend(
            eng.describe_blockage()
            for eng in self.matching
            if eng.pending_unexpected
        )
        return lines

    def payload_signature(self) -> Optional[Tuple[str, ...]]:
        if self.buffers is None:
            return None
        return buffer_digests(self.buffers)

    def wire_signature(self) -> Tuple[object, ...]:
        return (
            tuple(self.sent_msgs),
            tuple(self.sent_bytes),
            tuple(self.recv_msgs),
            tuple(self.recv_bytes),
        )

    def fingerprint(self) -> Tuple[object, ...]:
        """Canonical state key for naive-mode deduplication.

        Interleaving-invariant identifiers only: per-rank program
        positions and park signatures, matching-engine contents keyed by
        per-link logical sequence numbers (never global issue order),
        and the rolling per-rank buffer-write digests.
        """
        ranks = []
        for r in range(self.nranks):
            if self.procs[r].finished:
                st: Tuple[object, ...] = ("F",)
            else:
                parked = self._parked[r]
                if parked is None:
                    st = ("R",)
                elif isinstance(parked, _PRecv):
                    st = ("pr", parked.req.complete)
                else:
                    st = ("pw", sum(1 for q in parked.requests if not q.complete))
            ranks.append((self._ops_done[r],) + st)
        engines = []
        for eng in self.matching:
            posted = tuple((q.peer, q.tag, q.nbytes) for q in eng.posted)
            unexpected = tuple(
                sorted(
                    (e.send_req[0].src, e.send_req[0].chan_seq, e.tag, e.nbytes)
                    for e in eng.unexpected
                )
            )
            engines.append((posted, unexpected))
        return (
            tuple(ranks),
            tuple(engines),
            tuple(self._buf_digest),
            self.exhausted is not None,
            self.error,
        )


def buffer_digests(buffers: Sequence[object]) -> Tuple[str, ...]:
    """Per-rank SHA-256 of each buffer's full contents (hex)."""
    out = []
    for buf in buffers:
        data = buf.read(0, buf.nbytes)
        out.append(hashlib.sha256(data.tobytes()).hexdigest())
    return tuple(out)


# ---------------------------------------------------------------------------
# Witness / report records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeadlockWitness:
    """A replayable schedule (rank choice per step) ending in deadlock."""

    schedule: Tuple[int, ...]
    steps: Tuple[str, ...]
    blocked: Tuple[str, ...]
    minimized: bool

    def describe(self) -> str:
        lines = [
            f"{'minimized ' if self.minimized else ''}deadlock witness "
            f"({len(self.schedule)} step(s)): "
            + " -> ".join(str(r) for r in self.schedule)
        ]
        for i, step in enumerate(self.steps):
            lines.append(f"  step {i}: {step}")
        for b in self.blocked:
            lines.append(f"  blocked: {b}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()

    def to_dict(self) -> Dict[str, object]:
        return {
            "schedule": list(self.schedule),
            "steps": list(self.steps),
            "blocked": list(self.blocked),
            "minimized": self.minimized,
        }


@dataclass
class MCReport:
    """Everything one model-checking run concluded."""

    collective: str
    nranks: int
    nbytes: int
    root: int
    mode: str  # "dpor" | "naive"
    plan: Optional[str] = None  # fault-plan name, if any
    states: int = 0
    transitions: int = 0  # total executed steps, replays included
    executions: int = 0  # maximal interleavings examined
    terminals: int = 0  # distinct terminal outcomes
    complete: bool = True
    violations: List[Violation] = field(default_factory=list)
    witness: Optional[DeadlockWitness] = None
    outcomes: Dict[str, int] = field(default_factory=dict)
    payload_digest: Optional[Tuple[str, ...]] = None
    wire: Optional[Dict[str, int]] = None
    injected: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def deadlock_error(self) -> Optional[DeadlockError]:
        """The witness as a raisable, witness-carrying DeadlockError."""
        if self.witness is None:
            return None
        return DeadlockError(list(self.witness.blocked), witness=self.witness)

    def summary_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "plan": self.plan,
            "states": self.states,
            "transitions": self.transitions,
            "executions": self.executions,
            "terminals": self.terminals,
            "complete": self.complete,
            "ok": self.ok,
            "violations": [str(v) for v in self.violations],
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "collective": self.collective,
            "nranks": self.nranks,
            "nbytes": self.nbytes,
            "root": self.root,
            **self.summary_dict(),
            "outcomes": dict(sorted(self.outcomes.items())),
            "payload_digest": (
                list(self.payload_digest) if self.payload_digest else None
            ),
            "wire": self.wire,
            "injected": dict(sorted(self.injected.items())),
            "witness": self.witness.to_dict() if self.witness else None,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def describe(self) -> str:
        plan = f", plan={self.plan}" if self.plan else ""
        lines = [
            f"{self.collective}: P={self.nranks}, nbytes={self.nbytes}, "
            f"root={self.root}, mode={self.mode}{plan}"
        ]
        lines.append(
            f"  {self.states} state(s), {self.executions} interleaving(s), "
            f"{self.transitions} transition(s)"
            + ("" if self.complete else " [budget exhausted, INCOMPLETE]")
        )
        for outcome, count in sorted(self.outcomes.items()):
            lines.append(f"  terminal {outcome}: x{count}")
        for v in self.violations:
            lines.append(f"  VIOLATION {v}")
        if self.witness is not None:
            lines.extend("  " + ln for ln in self.witness.describe().splitlines())
        lines.append(f"  verdict: {'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Exploration
# ---------------------------------------------------------------------------


class _Frame:
    """Per-depth DPOR bookkeeping for the state *before* choice i."""

    __slots__ = ("enabled", "backtrack", "done", "sleep", "sigs")

    def __init__(self, enabled: FrozenSet[int], sleep: Dict[int, _Sig]) -> None:
        self.enabled = enabled
        self.backtrack: Set[int] = set()
        self.done: Set[int] = set()
        self.sleep = sleep  # rank -> its explored transition's send sig
        self.sigs: Dict[int, _Sig] = {}


class _Explorer:
    def __init__(
        self,
        build: Callable[[Dict[int, Set[int]]], _Execution],
        nranks: int,
        mode: str,
        max_states: int,
    ) -> None:
        self.build = build
        self.nranks = nranks
        self.mode = mode
        self.max_states = max_states
        self.wildcards: Dict[int, Set[int]] = {}
        self.states = 0
        self.transitions = 0
        self.executions = 0
        self.complete = True
        self.stop = False
        self.terminals: Dict[Tuple[object, ...], Tuple[int, ...]] = {}
        self.outcomes: Dict[str, int] = {}
        self.deadlock: Optional[Tuple[Tuple[int, ...], List[str]]] = None
        self.error: Optional[Tuple[Tuple[int, ...], str]] = None
        self.injected = {"drop": 0, "dup": 0, "corrupt": 0}
        self.last_exec: Optional[_Execution] = None

    # -- shared plumbing -------------------------------------------------
    def _fresh(self) -> _Execution:
        return self.build(self.wildcards)

    def _replay(self, choices: Sequence[int]) -> Optional[_Execution]:
        """Re-execute a choice prefix; None when a choice is not enabled."""
        ex = self._fresh()
        for rank in choices:
            if rank not in ex.enabled_ranks():
                return None
            ex.step(rank)
            self.transitions += 1
        return ex

    def _dependent(self, a: _SendRecord, b: _SendRecord) -> bool:
        """Sends race iff a wildcard receive at their common destination
        could match either (per-src FIFO orders everything else)."""
        if a.dst != b.dst or a.src == b.src:
            return False
        patterns = self.wildcards.get(a.dst)
        if not patterns:
            return False
        for want in patterns:
            if want == ANY_TAG or (want == a.tag and want == b.tag):
                return True
        return False

    def _sig_independent(self, sig_a: _Sig, sig_b: _Sig) -> bool:
        # Non-send macro steps commute with everything (receive-post
        # timing is match-invariant here; see module docstring).
        if sig_a is None or sig_b is None:
            return True
        a = _SendRecord(0, sig_a[0], sig_a[1], sig_a[2], 0, (), 0, ())
        b = _SendRecord(0, sig_b[0], sig_b[1], sig_b[2], 0, (), 0, ())
        return not self._dependent(a, b)

    def _process_terminal(self, ex: _Execution, choices: Sequence[int]) -> None:
        status = ex.status()
        if status == "running":
            return  # branch cut by the sleep set or the budget
        self.executions += 1
        self.last_exec = ex
        for k, v in ex.injected.items():
            self.injected[k] += v
        if status == "error":
            self.outcomes["error"] = self.outcomes.get("error", 0) + 1
            if self.error is None:
                self.error = (tuple(choices), ex.error or "error")
            self.stop = True
            return
        if status == "deadlock":
            self.outcomes["deadlock"] = self.outcomes.get("deadlock", 0) + 1
            if self.deadlock is None:
                self.deadlock = (tuple(choices), ex.blocked_summary())
            self.stop = True
            return
        if status == "exhausted":
            src, dst, tag, attempts, cause = ex.exhausted  # type: ignore[misc]
            key: Tuple[object, ...] = ("exhausted", src, dst, tag)
            label = f"exhausted {src}->{dst} tag={tag}"
        else:
            key = ("done", ex.payload_signature(), ex.wire_signature())
            label = "done"
        self.outcomes[label] = self.outcomes.get(label, 0) + 1
        self.terminals.setdefault(key, tuple(choices))

    # -- DPOR ------------------------------------------------------------
    def run_dpor(self) -> None:
        frames: List[_Frame] = []
        choices: List[int] = []
        ex = self._fresh()
        self._extend(ex, frames, choices, {})
        while True:
            self._process_terminal(ex, choices)
            if self.stop:
                return
            self._detect_races(ex, frames)
            depth = None
            while frames:
                f = frames[-1]
                todo = sorted(f.backtrack - f.done - set(f.sleep))
                if todo:
                    depth = len(frames) - 1
                    break
                frames.pop()
                choices.pop()
            if depth is None:
                return
            if self.states >= self.max_states:
                self.complete = False
                return
            replayed = self._replay(choices[:depth])
            if replayed is None:  # pragma: no cover - replay is deterministic
                raise ConfigurationError("DPOR replay diverged")
            ex = replayed
            f = frames[depth]
            del choices[depth:]
            chosen = todo[0]
            t = ex.step(chosen)
            self.states += 1
            self.transitions += 1
            sig = _send_sig(t)
            explored = dict(f.sleep)
            explored.update(
                {r: s for r, s in f.sigs.items() if r in f.done and r != chosen}
            )
            f.done.add(chosen)
            f.sigs[chosen] = sig
            choices.append(chosen)
            sleep = {
                r: s
                for r, s in explored.items()
                if r != chosen and self._sig_independent(s, sig)
            }
            self._extend(ex, frames, choices, sleep)

    def _extend(
        self,
        ex: _Execution,
        frames: List[_Frame],
        choices: List[int],
        sleep: Dict[int, _Sig],
    ) -> None:
        """Grow one maximal branch, lowest enabled non-sleeping rank first."""
        while True:
            enabled = ex.enabled_ranks()
            if not enabled:
                return
            if self.states >= self.max_states:
                self.complete = False
                return
            candidates = [r for r in enabled if r not in sleep]
            if not candidates:
                return  # every continuation is a commuted re-exploration
            chosen = candidates[0]
            frame = _Frame(frozenset(enabled), dict(sleep))
            frame.backtrack.add(chosen)
            frames.append(frame)
            t = ex.step(chosen)
            self.states += 1
            self.transitions += 1
            sig = _send_sig(t)
            frame.done.add(chosen)
            frame.sigs[chosen] = sig
            choices.append(chosen)
            sleep = {
                r: s for r, s in sleep.items() if self._sig_independent(s, sig)
            }

    def _detect_races(self, ex: _Execution, frames: List[_Frame]) -> None:
        """Flanagan-Godefroid race pass: for each send, find the latest
        earlier dependent send not ordered by happens-before and add the
        later sender to the backtrack set where the earlier one fired."""
        trace = ex.trace
        for j in range(len(trace)):
            tj = trace[j]
            if tj.send is None:
                continue
            for i in range(j - 1, -1, -1):
                ti = trace[i]
                if ti.send is None or ti.rank == tj.rank:
                    continue
                if not self._dependent(ti.send, tj.send):
                    continue
                if tj.clock[ti.rank] >= ti.own:
                    break  # causally ordered: no race, nothing earlier either
                frame = frames[i]
                if tj.rank in frame.enabled:
                    frame.backtrack.add(tj.rank)
                else:
                    frame.backtrack |= set(frame.enabled)
                break

    # -- naive enumeration ----------------------------------------------
    def run_naive(self) -> None:
        """Full interleaving enumeration over canonical state fingerprints
        (the DPOR-free baseline the reduction is measured against)."""
        seen: Set[Tuple] = set()
        stack: List[Tuple[int, ...]] = [()]
        while stack and not self.stop:
            choices = stack.pop()
            ex = self._replay(choices)
            if ex is None:  # pragma: no cover - children are enabled by construction
                continue
            fp = ex.fingerprint()
            if fp in seen:
                continue
            if self.states >= self.max_states:
                self.complete = False
                return
            seen.add(fp)
            self.states += 1
            enabled = ex.enabled_ranks()
            if not enabled:
                self._process_terminal(ex, choices)
                continue
            for rank in reversed(enabled):
                stack.append(choices + (rank,))

    # -- witness minimization --------------------------------------------
    def minimize_deadlock(self) -> Optional[DeadlockWitness]:
        if self.deadlock is None:
            return None
        schedule = list(self.deadlock[0])
        changed = True
        while changed:
            changed = False
            for i in range(len(schedule) - 1, -1, -1):
                candidate = schedule[:i] + schedule[i + 1 :]
                ex = self._replay(candidate)
                if ex is not None and ex.status() == "deadlock":
                    schedule = candidate
                    changed = True
        ex = self._replay(schedule)
        steps: Tuple[str, ...] = ()
        blocked: Tuple[str, ...] = tuple(self.deadlock[1])
        if ex is not None:
            steps = tuple(t.detail for t in ex.trace)
            blocked = tuple(ex.blocked_summary())
        return DeadlockWitness(
            schedule=tuple(schedule),
            steps=steps,
            blocked=blocked,
            minimized=True,
        )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def check_program(
    nranks: int,
    make_factory: Callable[[], Callable[[RankContext], object]],
    make_buffers: Optional[Callable[[], List]] = None,
    name: str = "<program>",
    nbytes: int = 0,
    root: int = 0,
    mode: str = "dpor",
    max_states: int = DEFAULT_MAX_STATES,
    faults: Optional[FaultPlan] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> MCReport:
    """Model-check an arbitrary rank program.

    ``make_factory``/``make_buffers`` are *builders of builders*: every
    explored interleaving replays the program from its initial state, so
    fresh generators and fresh buffers are constructed per execution.
    """
    if mode not in ("dpor", "naive"):
        raise ConfigurationError(f"unknown exploration mode {mode!r}")
    if nranks < 1:
        raise ConfigurationError(f"model checking needs nranks >= 1, got {nranks}")

    def build(wildcards: Dict[int, Set[int]]) -> _Execution:
        return _Execution(
            nranks,
            make_factory(),
            buffers=make_buffers() if make_buffers is not None else None,
            faults=faults,
            max_attempts=max_attempts,
            wildcards=wildcards,
        )

    explorer = _Explorer(build, nranks, mode, max_states)
    if mode == "dpor":
        explorer.run_dpor()
    else:
        explorer.run_naive()
    report = MCReport(
        collective=name,
        nranks=nranks,
        nbytes=nbytes,
        root=root,
        mode=mode,
        plan=faults.name if faults is not None and not faults.is_zero else None,
        states=explorer.states,
        transitions=explorer.transitions,
        executions=explorer.executions,
        terminals=len(explorer.terminals),
        complete=explorer.complete,
        outcomes=dict(explorer.outcomes),
        injected=dict(explorer.injected),
    )
    if explorer.error is not None:
        report.violations.append(
            Violation(
                kind="modelcheck-error",
                detail=(
                    f"interleaving {list(explorer.error[0])} raised "
                    f"{explorer.error[1]}"
                ),
            )
        )
    if explorer.deadlock is not None:
        report.witness = explorer.minimize_deadlock()
        blocked = (
            report.witness.blocked if report.witness else explorer.deadlock[1]
        )
        report.violations.append(
            Violation(
                kind="deadlock",
                detail=(
                    f"reachable deadlock with {len(blocked)} blocked "
                    f"rank(s): {'; '.join(blocked)}"
                ),
            )
        )
    done_keys = [k for k in explorer.terminals if k[0] == "done"]
    exhausted_keys = [k for k in explorer.terminals if k[0] == "exhausted"]
    if len(done_keys) > 1:
        payloads = {k[1] for k in done_keys}
        wires = {k[2] for k in done_keys}
        first, second = (explorer.terminals[k] for k in done_keys[:2])
        what = []
        if len(payloads) > 1:
            what.append("final payloads")
        if len(wires) > 1:
            what.append("wire counters")
        report.violations.append(
            Violation(
                kind="nondeterminism",
                detail=(
                    f"{' and '.join(what) or 'terminal states'} differ across "
                    f"interleavings (e.g. schedules {list(first)} vs "
                    f"{list(second)})"
                ),
            )
        )
    if done_keys and exhausted_keys:
        report.violations.append(
            Violation(
                kind="fault-divergence",
                detail=(
                    "termination outcome depends on match order: some "
                    "interleavings deliver, others exhaust the retry budget"
                ),
            )
        )
    if exhausted_keys and (faults is None or not faults.lossy):
        report.violations.append(
            Violation(
                kind="exhaustion",
                detail="retry budget exhausted under a plan that loses nothing",
            )
        )
    if len(done_keys) == 1:
        key = done_keys[0]
        report.payload_digest = key[1]
        sent_msgs, sent_bytes, recv_msgs, recv_bytes = key[2]
        report.wire = {
            "messages": sum(sent_msgs),
            "bytes": sum(sent_bytes),
            "delivered_messages": sum(recv_msgs),
            "delivered_bytes": sum(recv_bytes),
        }
    return report


def _collective_buffers(name: str, nranks: int, nbytes: int) -> List[object]:
    from .chaos import _make_buffers

    return _make_buffers(name, nranks, nbytes)


def check_collective(
    name: str,
    nranks: int,
    nbytes: int = DEFAULT_NBYTES,
    root: int = 0,
    mode: str = "dpor",
    max_states: int = DEFAULT_MAX_STATES,
    faults: Optional[FaultPlan] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> MCReport:
    """Model-check one registry collective over real payload buffers."""
    try:
        spec = REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown collective {name!r}; known: {sorted(REGISTRY)}"
        ) from None
    if not spec.supports(nranks):
        raise ConfigurationError(
            f"collective {name!r} does not support P={nranks}"
            + (" (power-of-two only)" if spec.pof2_only else "")
        )
    return check_program(
        nranks,
        make_factory=lambda: spec.build(nranks, nbytes, root),
        make_buffers=lambda: _collective_buffers(name, nranks, nbytes),
        name=name,
        nbytes=nbytes,
        root=root,
        mode=mode,
        max_states=max_states,
        faults=faults,
        max_attempts=max_attempts,
    )


# ---------------------------------------------------------------------------
# Grid gate
# ---------------------------------------------------------------------------

#: Fault-free sweep: the full registry at every small P, plus the paper's
#: rings pushed to P=8.
DEFAULT_RANKS = (2, 3, 4, 5, 6)
RING_RANKS = (8,)
RING_COLLECTIVES = ("bcast_native", "bcast_opt")

#: Fault-mode cells: the ARQ abstraction under seeded loss on the
#: paper's broadcasts and the ring allgather.
FAULT_COLLECTIVES = ("bcast_native", "bcast_opt", "allgather_ring")
FAULT_RANKS = (4, 5)


def default_mc_plans(seed: int = 0) -> List[FaultPlan]:
    """Seeded fault plans for the bounded ARQ exploration."""
    return [
        FaultPlan.uniform(seed=seed, drop_p=0.3, name="drop30"),
        FaultPlan.uniform(seed=seed + 1, dup_p=0.35, name="dup35"),
        FaultPlan.uniform(seed=seed + 2, drop_p=0.15, corrupt_p=0.15, name="lossy"),
        FaultPlan.none(seed=seed + 3, name="window").with_rule(
            LinkRule(drop_p=1.0, op_lo=1, op_hi=3, label="window")
        ),
        FaultPlan.none(seed=seed + 4, name="crash").with_crash(1),
    ]


@dataclass(frozen=True)
class MCCheck:
    """Verdict for one (collective, P, plan) grid cell."""

    collective: str
    nranks: int
    plan: str  # "-" for fault-free
    mode: str
    states: int
    transitions: int
    executions: int
    terminals: int
    complete: bool
    status: str  # "ok" | "incomplete" | "fail"
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, object]:
        return {
            "collective": self.collective,
            "nranks": self.nranks,
            "plan": self.plan,
            "mode": self.mode,
            "states": self.states,
            "transitions": self.transitions,
            "executions": self.executions,
            "terminals": self.terminals,
            "complete": self.complete,
            "status": self.status,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class MCGridReport:
    """Every grid cell's verdict plus the run parameters."""

    checks: Tuple[MCCheck, ...]
    nbytes: int
    max_states: int
    seed: int

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> List[MCCheck]:
        return [c for c in self.checks if not c.ok]

    @property
    def total_states(self) -> int:
        return sum(c.states for c in self.checks)

    def to_dict(self) -> Dict[str, object]:
        return {
            "nbytes": self.nbytes,
            "max_states": self.max_states,
            "seed": self.seed,
            "total_states": self.total_states,
            "ok": self.ok,
            "checks": [c.to_dict() for c in self.checks],
        }

    def describe(self) -> str:
        lines = [
            f"model-checker gate: nbytes={self.nbytes}, "
            f"max_states={self.max_states}, seed={self.seed}"
        ]
        for c in self.failures:
            lines.append(
                f"  FAIL {c.collective} P={c.nranks} plan={c.plan}: {c.detail}"
            )
        lines.append(
            f"  {len(self.checks) - len(self.failures)}/{len(self.checks)} OK, "
            f"{self.total_states} state(s) explored"
        )
        lines.append(f"verdict: {'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _grid_cell(
    name: str,
    nranks: int,
    nbytes: int,
    max_states: int,
    faults: Optional[FaultPlan],
) -> MCCheck:
    try:
        report = check_collective(
            name, nranks, nbytes=nbytes, max_states=max_states, faults=faults
        )
    except ReproError as exc:
        return MCCheck(
            collective=name,
            nranks=nranks,
            plan=faults.name if faults else "-",
            mode="dpor",
            states=0,
            transitions=0,
            executions=0,
            terminals=0,
            complete=False,
            status="fail",
            detail=f"{type(exc).__name__}: {exc}",
        )
    if not report.ok:
        status, detail = "fail", "; ".join(str(v) for v in report.violations)
    elif not report.complete:
        status, detail = "incomplete", "state budget exhausted"
    else:
        status, detail = "ok", ""
    return MCCheck(
        collective=name,
        nranks=nranks,
        plan=faults.name if faults else "-",
        mode=report.mode,
        states=report.states,
        transitions=report.transitions,
        executions=report.executions,
        terminals=report.terminals,
        complete=report.complete,
        status=status,
        detail=detail,
    )


def mc_grid(
    ranks: Sequence[int] = DEFAULT_RANKS,
    nbytes: int = DEFAULT_NBYTES,
    max_states: int = DEFAULT_MAX_STATES,
    seed: int = 0,
    fault_points: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> MCGridReport:
    """The CI gate: full registry at small P, rings to P=8, fault cells."""
    checks: List[MCCheck] = []

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    for nranks in ranks:
        for name in sorted(REGISTRY):
            if not REGISTRY[name].supports(nranks):
                continue
            note(f"mc {name} P={nranks}")
            checks.append(_grid_cell(name, nranks, nbytes, max_states, None))
    for nranks in RING_RANKS:
        for name in RING_COLLECTIVES:
            note(f"mc {name} P={nranks}")
            checks.append(_grid_cell(name, nranks, nbytes, max_states, None))
    if fault_points:
        for plan in default_mc_plans(seed):
            for nranks in FAULT_RANKS:
                for name in FAULT_COLLECTIVES:
                    note(f"mc {name} P={nranks} plan={plan.name}")
                    checks.append(
                        _grid_cell(name, nranks, nbytes, max_states, plan)
                    )
    return MCGridReport(
        checks=tuple(checks), nbytes=nbytes, max_states=max_states, seed=seed
    )
