"""Exact symbolic abstract domain for parametric schedule proofs.

The concrete gates (`repro verify`, `repro mc`) check *sampled* process
counts. This module supplies the arithmetic core that lets
:mod:`repro.analysis.certify` reason about **all** P at once:

* :class:`Lin` — linear expressions ``c0 + c1*x1 + ... + cn*xn`` over
  named integer symbols with exact :class:`fractions.Fraction`
  coefficients (in practice integers; Fractions appear only inside the
  decision procedure).
* :class:`Env` — an assumption context: a conjunction of linear
  inequalities ``lin >= 0``, plus *divisibility declarations* (symbol u
  is a multiple of expression m) and *power-of-two declarations*.
  Entailment of ``lin >= 0`` is decided by refuting ``lin <= -1`` with
  Fourier–Motzkin elimination over the rationals — sound for integer
  symbols because every certificate expression has integer
  coefficients, so ``lin < 0`` implies ``lin <= -1``. The procedure is
  *incomplete* in the safe direction: it may fail to prove a true fact
  (the certificate obligation then fails loudly) but never proves a
  false one over the rationals, hence never over the integers.
* modular reasoning — ``Env.divisibility(lin, mod)`` decides
  ``lin ≡ 0 (mod m)`` by rewriting the expression against the declared
  multiple-of facts and bounding the residue in ``(0, m)`` /
  ``(-m, 0)``. Two power-of-two axioms are built in: for pof2 symbols
  p, q, provable ``p >= q`` gives ``q | p`` and provable ``p > q``
  gives ``2q | p``.
* :class:`Interval` / :class:`SymSet` — unions of closed affine
  intervals with provable membership / exclusion / cardinality.
* :class:`RingSet` — a :class:`SymSet` of chunk *offsets* interpreted
  modulo P, the shape every ring-schedule invariant takes. Canonical
  offsets live in ``[-(P-1), P-1]``, so wrap-around only has to examine
  shifts by ``k*P`` for ``k`` in a small fixed window; the canonical
  bound is itself a proof obligation checked at construction.

Everything is exact integer/rational arithmetic: no floats, no
numerics, no sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Lin",
    "Env",
    "Interval",
    "SymSet",
    "RingSet",
    "lin",
    "var",
    "const",
    "AbstractDomainError",
]

LinLike = Union["Lin", int]


class AbstractDomainError(ValueError):
    """Misuse of the abstract domain (not a failed proof obligation)."""


# ---------------------------------------------------------------------------
# Linear expressions
# ---------------------------------------------------------------------------


def _as_fraction(value: Union[int, Fraction]) -> Fraction:
    return value if isinstance(value, Fraction) else Fraction(value)


@dataclass(frozen=True)
class Lin:
    """``constant + sum(coeff * symbol)`` with exact coefficients.

    Immutable and hashable; symbols are plain strings. Construction
    normalizes away zero coefficients so structural equality is
    semantic equality.
    """

    coeffs: Tuple[Tuple[str, Fraction], ...]
    constant: Fraction

    @staticmethod
    def make(
        coeffs: Mapping[str, Union[int, Fraction]],
        constant: Union[int, Fraction] = 0,
    ) -> "Lin":
        items = tuple(
            sorted(
                (sym, _as_fraction(c))
                for sym, c in coeffs.items()
                if _as_fraction(c) != 0
            )
        )
        return Lin(items, _as_fraction(constant))

    @staticmethod
    def of(value: LinLike) -> "Lin":
        if isinstance(value, Lin):
            return value
        return Lin.make({}, value)

    def coeff(self, sym: str) -> Fraction:
        for name, c in self.coeffs:
            if name == sym:
                return c
        return Fraction(0)

    @property
    def symbols(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.coeffs)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def __add__(self, other: LinLike) -> "Lin":
        o = Lin.of(other)
        merged: Dict[str, Fraction] = dict(self.coeffs)
        for sym, c in o.coeffs:
            merged[sym] = merged.get(sym, Fraction(0)) + c
        return Lin.make(merged, self.constant + o.constant)

    def __radd__(self, other: LinLike) -> "Lin":
        return self.__add__(other)

    def __neg__(self) -> "Lin":
        return self.scale(-1)

    def __sub__(self, other: LinLike) -> "Lin":
        return self + (-Lin.of(other))

    def __rsub__(self, other: LinLike) -> "Lin":
        return Lin.of(other) - self

    def scale(self, factor: Union[int, Fraction]) -> "Lin":
        f = _as_fraction(factor)
        return Lin.make({sym: c * f for sym, c in self.coeffs}, self.constant * f)

    def __mul__(self, factor: int) -> "Lin":
        return self.scale(factor)

    def __rmul__(self, factor: int) -> "Lin":
        return self.scale(factor)

    def substitute(self, bindings: Mapping[str, LinLike]) -> "Lin":
        """Replace symbols by expressions (simultaneous substitution)."""
        out = Lin.make({}, self.constant)
        for sym, c in self.coeffs:
            if sym in bindings:
                out = out + Lin.of(bindings[sym]).scale(c)
            else:
                out = out + Lin.make({sym: c})
        return out

    def evaluate(self, values: Mapping[str, int]) -> Fraction:
        total = self.constant
        for sym, c in self.coeffs:
            if sym not in values:
                raise AbstractDomainError(f"unbound symbol {sym!r} in {self}")
            total += c * values[sym]
        return total

    def has_integer_coeffs(self) -> bool:
        return self.constant.denominator == 1 and all(
            c.denominator == 1 for _, c in self.coeffs
        )

    def __str__(self) -> str:
        parts: List[str] = []
        for sym, c in self.coeffs:
            if c == 1:
                parts.append(sym)
            elif c == -1:
                parts.append(f"-{sym}")
            else:
                parts.append(f"{c}*{sym}")
        if self.constant != 0 or not parts:
            parts.append(str(self.constant))
        text = " + ".join(parts)
        return text.replace("+ -", "- ")


def var(name: str) -> Lin:
    """The symbol *name* as a linear expression."""
    return Lin.make({name: 1})


def const(value: Union[int, Fraction]) -> Lin:
    return Lin.make({}, value)


def lin(
    constant: Union[int, Fraction] = 0, **coeffs: Union[int, Fraction]
) -> Lin:
    """Convenience builder: ``lin(3, P=1, s=-2)`` is ``3 + P - 2s``."""
    return Lin.make(coeffs, constant)


# ---------------------------------------------------------------------------
# Fourier–Motzkin feasibility
# ---------------------------------------------------------------------------

#: Safety valve: an eliminated system growing past this many inequalities
#: aborts the refutation (treated as "could not prove", never as a proof).
_FM_LIMIT = 4000


def _fm_feasible(constraints: Sequence[Lin]) -> bool:
    """Rational satisfiability of the conjunction ``lin >= 0 for all``.

    Returns False only when the system is genuinely infeasible over the
    rationals (hence over the integers). Returns True both for feasible
    systems and when the elimination exceeds the size limit.
    """
    system: List[Lin] = list(constraints)
    while True:
        for c in system:
            if c.is_constant and c.constant < 0:
                return False
        symbols = sorted({s for c in system for s in c.symbols})
        if not symbols:
            return True
        # Eliminate the symbol with the fewest upper*lower combinations.
        best_sym = None
        best_cost = None
        for sym in symbols:
            lowers = sum(1 for c in system if c.coeff(sym) > 0)
            uppers = sum(1 for c in system if c.coeff(sym) < 0)
            cost = lowers * uppers
            if best_cost is None or cost < best_cost:
                best_sym, best_cost = sym, cost
        assert best_sym is not None
        sym = best_sym
        lowers_l: List[Lin] = []
        uppers_l: List[Lin] = []
        rest: List[Lin] = []
        for c in system:
            a = c.coeff(sym)
            if a > 0:
                lowers_l.append(c)
            elif a < 0:
                uppers_l.append(c)
            else:
                rest.append(c)
        new_system = rest
        for lo in lowers_l:
            for up in uppers_l:
                # lo: a*x + r >= 0 (a>0)  =>  x >= -r/a
                # up: b*x + t >= 0 (b<0)  =>  x <= t/(-b)
                combined = lo.scale(-up.coeff(sym)) + up.scale(lo.coeff(sym))
                combined = Lin.make(dict(combined.coeffs), combined.constant)
                new_system.append(combined)
        if len(new_system) > _FM_LIMIT:
            return True  # give up: cannot refute
        system = new_system


# ---------------------------------------------------------------------------
# Assumption contexts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Env:
    """A conjunction of assumptions about integer symbols.

    * ``constraints`` — linear facts, each meaning ``lin >= 0``;
    * ``multiples`` — pairs ``(symbol, m)`` meaning the symbol's value
      is an integer multiple of the value of ``m``;
    * ``pof2`` — symbols whose value is a power of two (>= 1).

    Envs are immutable; ``assume``/``with_multiple``/``with_pof2``
    return extended copies, and ``split`` returns the two halves of a
    case split. All proof obligations in :mod:`repro.analysis.certify`
    are discharged by ``entails``/``entails_eq``/``divisibility``
    queries against an Env.
    """

    constraints: Tuple[Lin, ...] = ()
    multiples: Tuple[Tuple[str, Lin], ...] = ()
    pof2: Tuple[str, ...] = ()

    # -- construction ------------------------------------------------------

    def assume(self, *facts: LinLike) -> "Env":
        """Extend with ``fact >= 0`` for each fact."""
        new = tuple(Lin.of(f) for f in facts)
        for f in new:
            if not f.has_integer_coeffs():
                raise AbstractDomainError(
                    f"assumption {f} must have integer coefficients"
                )
        return Env(self.constraints + new, self.multiples, self.pof2)

    def assume_eq(self, a: LinLike, b: LinLike) -> "Env":
        d = Lin.of(a) - Lin.of(b)
        return self.assume(d, -d)

    def with_multiple(self, sym: str, modulus: LinLike) -> "Env":
        """Declare that *sym*'s value is a multiple of *modulus*."""
        return Env(
            self.constraints,
            self.multiples + ((sym, Lin.of(modulus)),),
            self.pof2,
        )

    def with_pof2(self, *syms: str) -> "Env":
        return Env(self.constraints, self.multiples, self.pof2 + syms)

    # -- linear entailment -------------------------------------------------

    def feasible(self) -> bool:
        """Rationally satisfiable? (False is definitive infeasibility.)"""
        return _fm_feasible(self._all_linear())

    def entails(self, fact: LinLike) -> bool:
        """Is ``fact >= 0`` provable for every integer model of self?

        Decided by refuting ``fact <= -1`` (integer strengthening of
        ``fact < 0``; requires integer coefficients).
        """
        f = Lin.of(fact)
        if not f.has_integer_coeffs():
            raise AbstractDomainError(
                f"entailment query {f} must have integer coefficients"
            )
        negation = -f - 1  # fact <= -1  <=>  -fact - 1 >= 0
        return not _fm_feasible(self._all_linear() + (negation,))

    def entails_eq(self, a: LinLike, b: LinLike = 0) -> bool:
        d = Lin.of(a) - Lin.of(b)
        return self.entails(d) and self.entails(-d)

    def entails_lt(self, a: LinLike, b: LinLike) -> bool:
        """``a < b`` i.e. ``b - a - 1 >= 0`` for integers."""
        return self.entails(Lin.of(b) - Lin.of(a) - 1)

    def split(self, fact: LinLike) -> Tuple["Env", "Env"]:
        """Case split: ``(self + fact>=0, self + fact<=-1)``."""
        f = Lin.of(fact)
        return self.assume(f), self.assume(-f - 1)

    def _all_linear(self) -> Tuple[Lin, ...]:
        # pof2 symbols are at least 1.
        extra = tuple(var(p) - 1 for p in self.pof2)
        return self.constraints + extra

    # -- divisibility ------------------------------------------------------

    def _modulus_divides(self, a: Lin, b: Lin) -> bool:
        """Provably ``value(a)`` divides ``value(b)`` (both positive).

        Rules, in order:
        1. syntactic integer multiple: ``b == k*a`` for integer k >= 1;
        2. constant a dividing all of b's coefficients and constant;
        3. power-of-two chain: a and b are single pof2-symbol terms (or
           pof2 constants) and ``a < 2b`` is provable — powers of two x
           below 2y satisfy x <= y, and for powers of two ordering is
           divisibility. (This built-in gap axiom is what turns the
           linear fact ``M >= m + 1`` about pof2 masks into ``2m | M``.)
        """
        if a == b:
            return True
        # Rule 1: b = k * a syntactically.
        ratio: Optional[Fraction] = None
        if a.coeffs:
            lead_sym, lead_c = a.coeffs[0]
            bc = b.coeff(lead_sym)
            if bc != 0 and lead_c != 0:
                ratio = bc / lead_c
        elif a.constant != 0:
            ratio = b.constant / a.constant
        if ratio is not None and ratio.denominator == 1 and ratio >= 1:
            if b == a.scale(ratio):
                return True
        # Rule 2: constant a divides every component of b.
        if a.is_constant and a.constant >= 1 and a.constant.denominator == 1:
            k = int(a.constant)
            if b.has_integer_coeffs():
                comps = [int(b.constant)] + [int(c) for _, c in b.coeffs]
                if all(c % k == 0 for c in comps):
                    return True
        # Rule 3: pof2 chain with the gap axiom (a < 2b => a <= b => a | b).
        if (
            self._is_pof2_term(a)
            and self._is_pof2_term(b)
            and self.entails(b.scale(2) - a - 1)
        ):
            return True
        return False

    def _is_pof2_term(self, e: Lin) -> bool:
        """Is *e* provably a power of two: ``2^k * p`` or ``2^k``?"""

        def is_pow2_int(f: Fraction) -> bool:
            if f.denominator != 1 or f <= 0:
                return False
            n = int(f)
            return n & (n - 1) == 0

        if e.is_constant:
            return is_pow2_int(e.constant)
        if len(e.coeffs) == 1 and e.constant == 0:
            sym, c = e.coeffs[0]
            return sym in self.pof2 and is_pow2_int(c)
        return False

    def residue(self, expr: LinLike, modulus: LinLike) -> Optional[Lin]:
        """Rewrite *expr* modulo *modulus* using the declared facts.

        Every term ``c*sym`` where some declared multiple-of fact (or
        the term itself) is divisible by *modulus* drops out; if any
        term cannot be resolved, returns None (unknown residue).
        """
        e = Lin.of(expr)
        m = Lin.of(modulus)
        if not e.has_integer_coeffs():
            return None
        out = const(e.constant)
        for sym, c in e.coeffs:
            term = Lin.make({sym: c})
            if self._modulus_divides(m, term):
                continue
            resolved = False
            for decl_sym, decl_mod in self.multiples:
                if decl_sym == sym and self._modulus_divides(m, decl_mod):
                    resolved = True
                    break
            if resolved:
                continue
            out = out + term
        return out

    def divisibility(self, expr: LinLike, modulus: LinLike) -> Optional[bool]:
        """Decide ``expr ≡ 0 (mod modulus)``; None when undecidable.

        True requires the residue to vanish (or be a syntactic multiple
        of the modulus); False requires the residue to be provably
        strictly between 0 and the modulus (or its negation). When the
        direct residue is inconclusive, a contrapositive rule applies:
        for any declared modulus d that provably divides *modulus*, a
        refuted ``expr ≡ 0 (mod d)`` refutes ``expr ≡ 0 (mod modulus)``
        (d | m and m | x would give d | x).
        """
        e = Lin.of(expr)
        m = Lin.of(modulus)
        direct = self._divisibility_direct(e, m)
        if direct is not None:
            return direct
        for d in self._divisor_candidates(e):
            if d == m:
                continue
            if self._modulus_divides(d, m) and self._divisibility_direct(e, d) is False:
                return False
        return None

    def _divisibility_direct(self, e: Lin, m: Lin) -> Optional[bool]:
        rho = self.residue(e, m)
        if rho is None:
            return None
        if rho == const(0) or self._modulus_divides(m, rho):
            return True
        if self._modulus_divides(m, -rho):
            return True
        # rho in (0, m) or rho in (-m, 0) => not divisible.
        if self.entails(rho - 1) and self.entails(m - rho - 1):
            return False
        if self.entails(-rho - 1) and self.entails(m + rho - 1):
            return False
        return None

    def _divisor_candidates(self, e: Lin) -> List[Lin]:
        """Moduli worth testing in the contrapositive divisibility rule:
        the declared multiple-of facts for symbols appearing in *e*,
        plus the constant 2 (parity)."""
        syms = set(e.symbols)
        out: List[Lin] = [const(2)]
        for decl_sym, decl_mod in self.multiples:
            if decl_sym in syms and decl_mod not in out:
                out.append(decl_mod)
        return out


# ---------------------------------------------------------------------------
# Affine interval sets
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """Closed interval ``[lo, hi]`` with affine endpoints.

    Empty when ``hi < lo`` — emptiness is context-dependent and decided
    against an :class:`Env`.
    """

    lo: Lin
    hi: Lin

    @staticmethod
    def make(lo: LinLike, hi: LinLike) -> "Interval":
        return Interval(Lin.of(lo), Lin.of(hi))

    def shift(self, delta: LinLike) -> "Interval":
        d = Lin.of(delta)
        return Interval(self.lo + d, self.hi + d)

    def contains(self, env: Env, x: LinLike) -> bool:
        """Provably ``lo <= x <= hi``."""
        p = Lin.of(x)
        return env.entails(p - self.lo) and env.entails(self.hi - p)

    def excludes(self, env: Env, x: LinLike) -> bool:
        """Provably ``x < lo`` or ``x > hi`` (or provably empty)."""
        p = Lin.of(x)
        if env.entails_lt(p, self.lo) or env.entails_lt(self.hi, p):
            return True
        return env.entails_lt(self.hi, self.lo)  # empty interval

    def length(self, env: Env) -> Optional[Lin]:
        """``hi - lo + 1`` if provably nonempty, 0 if provably empty."""
        size = self.hi - self.lo + 1
        if env.entails(size - 1):
            return size
        if env.entails(-size):
            return const(0)
        return None

    def disjoint(self, env: Env, other: "Interval") -> bool:
        return (
            env.entails_lt(self.hi, other.lo)
            or env.entails_lt(other.hi, self.lo)
            or env.entails_lt(self.hi, self.lo)
            or env.entails_lt(other.hi, other.lo)
        )

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


@dataclass(frozen=True)
class SymSet:
    """A finite union of affine intervals."""

    intervals: Tuple[Interval, ...] = ()

    @staticmethod
    def make(*intervals: Interval) -> "SymSet":
        return SymSet(tuple(intervals))

    def shift(self, delta: LinLike) -> "SymSet":
        return SymSet(tuple(iv.shift(delta) for iv in self.intervals))

    def union(self, other: "SymSet") -> "SymSet":
        return SymSet(self.intervals + other.intervals)

    def contains(self, env: Env, x: LinLike) -> bool:
        return any(iv.contains(env, x) for iv in self.intervals)

    def excludes(self, env: Env, x: LinLike) -> bool:
        return all(iv.excludes(env, x) for iv in self.intervals)

    def cardinality(self, env: Env) -> Optional[Lin]:
        """Exact element count: sum of lengths of pairwise-disjoint
        intervals. None unless every length and disjointness is
        provable."""
        lengths: List[Lin] = []
        live: List[Interval] = []
        for iv in self.intervals:
            n = iv.length(env)
            if n is None:
                return None
            if n != const(0):
                live.append(iv)
                lengths.append(n)
        for i, a in enumerate(live):
            for b in live[i + 1 :]:
                if not a.disjoint(env, b):
                    return None
        total = const(0)
        for n in lengths:
            total = total + n
        return total

    def __str__(self) -> str:
        if not self.intervals:
            return "{}"
        return " ∪ ".join(str(iv) for iv in self.intervals)


# ---------------------------------------------------------------------------
# Mod-P offset sets (ring invariants)
# ---------------------------------------------------------------------------

#: Shifts examined when testing membership modulo P. Canonical offsets
#: are confined to [-(P-1), P-1], so |x - y| <= 2(P-1) < 2P and shifts
#: beyond ±2 can never land inside another canonical interval; the
#: window is deliberately one wider on each side than necessary.
_WRAP_WINDOW = (-2, -1, 0, 1, 2)


@dataclass(frozen=True)
class RingSet:
    """A union of affine intervals of chunk *offsets* interpreted mod P.

    Offsets are rank-relative: offset d at rank r denotes chunk
    ``(r + d) mod P``. Canonical form requires every interval to sit
    inside ``[-(P-1), P-1]`` under the env — checked at construction so
    that modular membership/exclusion only needs the fixed
    ``_WRAP_WINDOW`` of ±kP shifts (completeness of exclusion would
    otherwise be unsound).
    """

    period: Lin
    points: SymSet
    env_checked: bool = field(default=False, compare=False)

    @staticmethod
    def make(env: Env, period: LinLike, *intervals: Interval) -> "RingSet":
        p = Lin.of(period)
        for iv in intervals:
            lo_ok = env.entails(iv.lo + p - 1)  # lo >= -(P-1)
            hi_ok = env.entails(p - 1 - iv.hi)  # hi <= P-1
            empty = env.entails_lt(iv.hi, iv.lo)
            if not ((lo_ok and hi_ok) or empty):
                raise AbstractDomainError(
                    f"interval {iv} not provably within ±({p} - 1); "
                    f"RingSet requires canonical offsets"
                )
        return RingSet(p, SymSet(tuple(intervals)), True)

    def contains(self, env: Env, offset: LinLike) -> bool:
        """Provably a member modulo P (offset canonical)."""
        x = Lin.of(offset)
        self._require_canonical(env, x)
        return any(
            self.points.contains(env, x + self.period.scale(k))
            for k in _WRAP_WINDOW
        )

    def excludes(self, env: Env, offset: LinLike) -> bool:
        """Provably NOT a member modulo P (offset canonical).

        Complete because both the set and the offset are canonical:
        every representative ``offset + kP`` outside the window lies
        outside ``[-(2P-2), 2P-2]`` and cannot meet any canonical
        interval.
        """
        x = Lin.of(offset)
        self._require_canonical(env, x)
        return all(
            self.points.excludes(env, x + self.period.scale(k))
            for k in _WRAP_WINDOW
        )

    def cardinality(self, env: Env) -> Optional[Lin]:
        """Element count modulo P: requires pairwise disjointness of
        all window-shifted representatives."""
        base = self.points.cardinality(env)
        if base is None:
            return None
        ivs = list(self.points.intervals)
        for i, a in enumerate(ivs):
            for b in ivs[i + 1 :] + [a]:
                for k in _WRAP_WINDOW:
                    if k == 0 and a is not b:
                        continue  # un-shifted pair handled by cardinality()
                    if k == 0:
                        continue
                    if not a.shift(self.period.scale(k)).disjoint(env, b):
                        return None
        return base

    def _require_canonical(self, env: Env, x: Lin) -> None:
        if not (
            env.entails(x + self.period - 1) and env.entails(self.period - 1 - x)
        ):
            raise AbstractDomainError(
                f"offset {x} not provably within ±({self.period} - 1)"
            )

    def __str__(self) -> str:
        return f"{self.points} (mod {self.period})"


def concrete_members(
    intervals: Iterable[Tuple[int, int]], period: int
) -> List[int]:
    """Concrete mod-*period* members of closed integer intervals.

    Helper for cross-validating a :class:`RingSet` instantiated at a
    concrete P against executable ownership sets.
    """
    members = set()
    for lo, hi in intervals:
        for x in range(lo, hi + 1):
            members.add(x % period)
    return sorted(members)
