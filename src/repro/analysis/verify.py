"""Static schedule verification: provenance, redundancy, deadlock, ordering.

The paper's entire claim is a *static* property of the broadcast
schedule: the tuned ring allgather ships strictly fewer messages because
it never re-sends a chunk the receiver already holds (56 vs 44 at P=8,
90 vs 75 at P=10, ``S - P`` saved in general, where ``S`` is the sum of
binomial-subtree extents). This module proves the properties behind
those counts — for any collective in the registry, at any P — without
running the timing simulation:

1. **Chunk provenance** (:func:`verify_provenance`): a forward data-flow
   pass over per-rank chunk-ownership sets. Every send must only ship
   chunks the sender already holds at that point of the recorded
   schedule, and every rank must terminate owning its expected final
   set (the full buffer, for broadcast/allgather).
2. **Redundancy detection**: a transfer whose chunk set is already
   wholly owned by the receiver is flagged. The native enclosed ring
   produces exactly ``S - P`` of these; the paper's tuned ring produces
   zero. Registry entries carry the expected count as an assertion.
3. **Rendezvous deadlock analysis** (:class:`RendezvousAnalyzer`): the
   program is re-run under *synchronous-send* semantics — stricter than
   the schedule executor's buffered sends — and, on a stall, the
   wait-for graph is reported with the blocked rank/op cycle.
4. **Match-order hazards** (:func:`find_match_hazards`): pairs of
   same-``(src, dst, tag)`` messages that were concurrently in flight
   with different chunk sets or sizes. MPI's non-overtaking rule is the
   only thing keeping their routing correct; the verifier surfaces that
   reliance (rings and pipelined chains depend on it by design, so
   hazards are warnings, not violations, unless ``strict``).

Entry points: :func:`verify_collective` (registry name), and
:func:`verify_program` for arbitrary rank programs. The ``repro
verify`` CLI subcommand wraps them with table/JSON output.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..collectives import (
    allgather_bruck,
    allgather_rdbl,
    allgather_ring,
    allgatherv_ring,
    allreduce_rabenseifner,
    allreduce_reduce_bcast,
    alltoall_bruck,
    alltoall_pairwise,
    barrier,
    bcast_binomial,
    bcast_chain,
    bcast_knomial,
    bcast_scatter_rdbl,
    bcast_scatter_ring_native,
    bcast_scatter_ring_opt,
    binomial_scatter,
    extract_schedule,
    gather,
    reduce,
    reduce_scatter_halving,
    reduce_scatter_ring,
    relative_rank,
    scan_linear,
    scan_recursive_doubling,
    subtree_chunks,
)
from ..collectives.schedule import RecordedSend, ScheduleResult, _describe_request
from ..errors import ConfigurationError, ReproError
from ..mpi.comm import Communicator
from ..mpi.context import RankContext
from ..mpi.matching import Envelope, MatchingEngine
from ..mpi.ops import ANY_SOURCE, ComputeOp, IrecvOp, IsendOp, RecvOp, SendOp, WaitOp
from ..mpi.request import Request, Status
from ..sim import Proc
from ..util import ChunkSet, chunk_count, is_power_of_two, scatter_size

__all__ = [
    "Violation",
    "RedundantTransfer",
    "HazardPair",
    "WaitForEdge",
    "RendezvousReport",
    "VerifyReport",
    "CollectiveSpec",
    "REGISTRY",
    "verifiable_collectives",
    "expected_redundant_native",
    "verify_provenance",
    "find_match_hazards",
    "RendezvousAnalyzer",
    "analyze_rendezvous",
    "verify_program",
    "verify_collective",
]


# ---------------------------------------------------------------------------
# Report records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Violation:
    """One verifier finding that makes the schedule incorrect."""

    kind: str  # "provenance" | "completeness" | "redundancy" | "deadlock" | "error"
    detail: str
    send_order: Optional[int] = None
    rank: Optional[int] = None

    def __str__(self) -> str:
        where = []
        if self.rank is not None:
            where.append(f"rank {self.rank}")
        if self.send_order is not None:
            where.append(f"send #{self.send_order}")
        prefix = f" ({', '.join(where)})" if where else ""
        return f"[{self.kind}]{prefix} {self.detail}"


@dataclass(frozen=True)
class RedundantTransfer:
    """A transfer whose entire chunk set the receiver already owned."""

    order: int
    src: int
    dst: int
    tag: int
    chunks: Tuple[int, ...]


@dataclass(frozen=True)
class HazardPair:
    """Two same-(src, dst, tag) messages concurrently in flight whose
    reordering would change chunk routing.

    ``verdict`` is filled by the model-checker feedback pass
    (``verify_collective(..., modelcheck=True)``): ``"benign"`` when
    exhaustive match-order exploration proved every interleaving
    equivalent, ``"confirmed"`` when some interleaving actually diverges
    (or the exploration could not finish), ``None`` when unchecked.
    """

    src: int
    dst: int
    tag: int
    first_order: int
    second_order: int
    detail: str
    verdict: Optional[str] = None


@dataclass(frozen=True)
class WaitForEdge:
    """``rank`` cannot proceed until ``waits_on`` acts (op says why)."""

    rank: int
    waits_on: int
    op: str


@dataclass
class RendezvousReport:
    """Outcome of the synchronous-send deadlock analysis."""

    deadlocked: bool
    cycle: List[WaitForEdge] = field(default_factory=list)
    blocked: List[str] = field(default_factory=list)

    def describe(self) -> str:
        if not self.deadlocked:
            return "rendezvous-safe"
        if self.cycle:
            chain = " -> ".join(
                f"rank {e.rank} [{e.op}] waits on rank {e.waits_on}"
                for e in self.cycle
            )
            return f"DEADLOCK cycle: {chain}"
        return f"DEADLOCK (no cycle; orphaned ops): {'; '.join(self.blocked)}"


@dataclass
class VerifyReport:
    """Everything the static verifier concluded about one schedule."""

    collective: str
    nranks: int
    nbytes: int
    root: int
    transfers: int = 0
    tracked: bool = False
    redundant: List[RedundantTransfer] = field(default_factory=list)
    expected_redundant: Optional[int] = None
    violations: List[Violation] = field(default_factory=list)
    hazards: List[HazardPair] = field(default_factory=list)
    rendezvous: Optional[RendezvousReport] = None
    modelcheck: Optional[dict] = None

    @property
    def redundant_count(self) -> int:
        return len(self.redundant)

    @property
    def ok(self) -> bool:
        return not self.violations

    def ok_strict(self) -> bool:
        """Like :attr:`ok` but match-order hazards also count as failures
        — unless the model checker proved them benign."""
        return self.ok and all(h.verdict == "benign" for h in self.hazards)

    def describe(self) -> str:
        lines = [
            f"{self.collective}: P={self.nranks}, nbytes={self.nbytes}, "
            f"root={self.root} — {self.transfers} transfer(s)"
        ]
        if self.tracked:
            expect = (
                "" if self.expected_redundant is None
                else f" (expected {self.expected_redundant})"
            )
            lines.append(f"  redundant transfers: {self.redundant_count}{expect}")
        else:
            lines.append("  chunk provenance: untracked for this collective")
        benign = sum(1 for h in self.hazards if h.verdict == "benign")
        confirmed = sum(1 for h in self.hazards if h.verdict == "confirmed")
        hazard_note = ""
        if benign or confirmed:
            hazard_note = f" ({benign} benign, {confirmed} confirmed)"
        lines.append(f"  match-order hazards: {len(self.hazards)}{hazard_note}")
        if self.modelcheck is not None:
            mc = self.modelcheck
            lines.append(
                f"  model check: {mc['states']} state(s), "
                f"{mc['executions']} interleaving(s), "
                f"{'complete' if mc['complete'] else 'INCOMPLETE'}, "
                f"{'OK' if mc['ok'] else 'FAIL'}"
            )
        if self.rendezvous is not None:
            lines.append(f"  rendezvous: {self.rendezvous.describe()}")
        for v in self.violations:
            lines.append(f"  VIOLATION {v}")
        lines.append(f"  verdict: {'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "collective": self.collective,
            "nranks": self.nranks,
            "nbytes": self.nbytes,
            "root": self.root,
            "transfers": self.transfers,
            "tracked": self.tracked,
            "redundant_count": self.redundant_count if self.tracked else None,
            "expected_redundant": self.expected_redundant,
            "redundant": [
                {
                    "order": r.order,
                    "src": r.src,
                    "dst": r.dst,
                    "tag": r.tag,
                    "chunks": list(r.chunks),
                }
                for r in self.redundant
            ],
            "hazards": [
                {
                    "src": h.src,
                    "dst": h.dst,
                    "tag": h.tag,
                    "first_order": h.first_order,
                    "second_order": h.second_order,
                    "detail": h.detail,
                    "verdict": h.verdict,
                }
                for h in self.hazards
            ],
            "modelcheck": self.modelcheck,
            "rendezvous_deadlock": (
                None if self.rendezvous is None else self.rendezvous.deadlocked
            ),
            "rendezvous_cycle": (
                []
                if self.rendezvous is None
                else [
                    {"rank": e.rank, "waits_on": e.waits_on, "op": e.op}
                    for e in self.rendezvous.cycle
                ]
            ),
            "violations": [str(v) for v in self.violations],
            "ok": self.ok,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)


# ---------------------------------------------------------------------------
# Pass 1 + 2: chunk provenance and redundancy (forward data-flow)
# ---------------------------------------------------------------------------


def verify_provenance(
    schedule: ScheduleResult,
    initial_owned: List[ChunkSet],
    expected_final: Optional[List[ChunkSet]] = None,
) -> Tuple[List[Violation], List[RedundantTransfer], List[ChunkSet]]:
    """Forward data-flow pass over per-rank chunk-ownership sets.

    Walks the recorded sends in execution order. A send may only ship
    chunks its source already owns (ownership only ever grows, and the
    recorded order is a valid linearization of the buffered execution,
    so this is a sound proof for the schedule as run). The receiver
    gains the shipped chunks; a transfer whose whole chunk set the
    receiver already had is flagged redundant. Sends without chunk
    metadata are ignored by the ownership pass.

    Returns ``(violations, redundant_transfers, final_ownership)``.
    """
    if len(initial_owned) != schedule.nranks:
        raise ConfigurationError(
            f"initial_owned has {len(initial_owned)} entries for "
            f"{schedule.nranks} ranks"
        )
    owned = [cs.copy() for cs in initial_owned]
    violations: List[Violation] = []
    redundant: List[RedundantTransfer] = []
    for s in schedule.sends:
        if not s.chunks:
            continue
        src_owned = owned[s.src]
        missing = [c for c in s.chunks if c not in src_owned]
        if missing:
            violations.append(
                Violation(
                    kind="provenance",
                    detail=(
                        f"rank {s.src} sends chunks {missing} to rank {s.dst} "
                        f"(tag {s.tag}) before owning them; owned: "
                        f"{sorted(src_owned)}"
                    ),
                    send_order=s.order,
                    rank=s.src,
                )
            )
        dst_owned = owned[s.dst]
        if s.nbytes > 0 and all(c in dst_owned for c in s.chunks):
            # Zero-byte messages (empty trailing chunks kept circulating
            # to preserve ring structure) waste no bandwidth and are not
            # counted as redundant.
            redundant.append(
                RedundantTransfer(s.order, s.src, s.dst, s.tag, s.chunks)
            )
        for c in s.chunks:
            dst_owned.add(c)
    if expected_final is not None:
        for rank, expect in enumerate(expected_final):
            missing_chunks = [c for c in expect if c not in owned[rank]]
            if missing_chunks:
                violations.append(
                    Violation(
                        kind="completeness",
                        detail=(
                            f"rank {rank} terminates missing chunks "
                            f"{missing_chunks}"
                        ),
                        rank=rank,
                    )
                )
    return violations, redundant, owned


# ---------------------------------------------------------------------------
# Pass 3: match-order hazards
# ---------------------------------------------------------------------------


def find_match_hazards(schedule: ScheduleResult) -> List[HazardPair]:
    """Same-(src, dst, tag) message pairs concurrently in flight with
    different payloads.

    Two sends overlap when the second was issued before the first's
    receive matched (on the executor's shared logical clock). Without
    clock data every same-key pair is conservatively treated as
    overlapping. MPI's non-overtaking rule fixes their match order; the
    hazard records that reordering them would change chunk routing.
    """
    groups: Dict[Tuple[int, int, int], List[RecordedSend]] = {}
    for s in schedule.sends:
        groups.setdefault((s.src, s.dst, s.tag), []).append(s)
    hazards: List[HazardPair] = []
    for (src, dst, tag), sends in groups.items():
        for i, a in enumerate(sends):
            a_matched = schedule.match_clock.get(a.order)
            for b in sends[i + 1 :]:
                b_issued = schedule.issue_clock.get(b.order, -1)
                if a_matched is not None and b_issued >= a_matched:
                    break  # non-overtaking: later sends overlap even less
                if a.chunks != b.chunks or a.nbytes != b.nbytes:
                    hazards.append(
                        HazardPair(
                            src=src,
                            dst=dst,
                            tag=tag,
                            first_order=a.order,
                            second_order=b.order,
                            detail=(
                                f"sends #{a.order} (chunks {a.chunks}, "
                                f"{a.nbytes} B) and #{b.order} (chunks "
                                f"{b.chunks}, {b.nbytes} B) rely on "
                                f"non-overtaking matching"
                            ),
                        )
                    )
    return hazards


# ---------------------------------------------------------------------------
# Pass 4: rendezvous-mode deadlock analysis
# ---------------------------------------------------------------------------

_BLOCKED = object()


class _RdvSend:
    __slots__ = ("req",)

    def __init__(self, req: Request) -> None:
        self.req = req


class _RdvRecv:
    __slots__ = ("req",)

    def __init__(self, req: Request) -> None:
        self.req = req


class _RdvWait:
    __slots__ = ("requests", "remaining")

    def __init__(self, requests: List[Request], remaining: int) -> None:
        self.requests = requests
        self.remaining = remaining


class RendezvousAnalyzer:
    """Zero-time executor with *synchronous-send* semantics.

    Unlike :class:`~repro.collectives.schedule.ScheduleExecutor` (whose
    sends are buffered and never block), every send here blocks until
    the matching receive is posted — MPI's ``MPI_Ssend`` / rendezvous
    protocol. Programs that are only correct thanks to eager buffering
    deadlock under this model; the analyzer reports the wait-for cycle
    instead of hanging.
    """

    def __init__(
        self,
        nranks: int,
        program_factory: Callable[[RankContext], object],
        comm: Optional[Communicator] = None,
    ) -> None:
        self.comm = comm if comm is not None else Communicator.world(nranks)
        self.matching = [MatchingEngine(r) for r in range(nranks)]
        self.procs: List[Proc] = []
        self._parked: List[object] = [None] * self.comm.size
        self._ready: "deque[Tuple[int, object]]" = deque()
        self._seq = 0
        for local in range(self.comm.size):
            glob = self.comm.to_global(local)
            ctx = RankContext(glob, self.comm)
            self.procs.append(Proc(f"rank{local}", program_factory(ctx)))

    # -- driving ---------------------------------------------------------
    def run(self) -> RendezvousReport:
        for idx in range(len(self.procs)):
            self._ready.append((idx, None))
        while self._ready:
            idx, value = self._ready.popleft()
            self._advance(idx, value)
        if all(p.finished for p in self.procs):
            return RendezvousReport(deadlocked=False)
        return self._diagnose()

    def _advance(self, idx: int, value: object) -> None:
        proc = self.procs[idx]
        while True:
            outcome = proc.advance(value)
            if outcome.done:
                return
            result = self._execute(idx, outcome.value)
            if result is _BLOCKED:
                return
            value = result

    def _wakeup(self, idx: int, value: object) -> None:
        self._parked[idx] = None
        self._ready.append((idx, value))

    # -- op execution ------------------------------------------------------
    def _execute(self, idx: int, op: object) -> object:
        glob = self.comm.to_global(idx)
        if isinstance(op, (SendOp, IsendOp)):
            req = Request(
                "send",
                owner=glob,
                peer=op.dst,
                tag=op.tag,
                nbytes=op.nbytes,
                chunks=op.chunks,
            )
            self._announce(req)
            if isinstance(op, IsendOp):
                return req
            if req.complete:
                return None
            self._parked[idx] = _RdvSend(req)
            req.on_complete(lambda _r, i=idx: self._wakeup(i, None))
            return _BLOCKED
        if isinstance(op, (RecvOp, IrecvOp)):
            req = Request(
                "recv", owner=glob, peer=op.src, tag=op.tag, nbytes=op.nbytes
            )
            env = self.matching[glob].post_recv(req)
            if env is not None:
                self._complete_pair(req, env)
            if isinstance(op, IrecvOp):
                return req
            if req.complete:
                return req.status
            self._parked[idx] = _RdvRecv(req)
            req.on_complete(lambda r, i=idx: self._wakeup(i, r.status))
            return _BLOCKED
        if isinstance(op, WaitOp):
            requests = op.requests
            remaining = sum(1 for r in requests if not r.complete)
            if remaining == 0:
                return [r.status for r in requests]
            state = _RdvWait(requests, remaining)
            self._parked[idx] = state

            def one_done(
                _req: Request, i: int = idx, state: _RdvWait = state
            ) -> None:
                state.remaining -= 1
                if state.remaining == 0:
                    self._wakeup(i, [r.status for r in state.requests])

            for r in requests:
                if not r.complete:
                    r.on_complete(one_done)
            return _BLOCKED
        if isinstance(op, ComputeOp):
            return None
        raise ConfigurationError(f"rendezvous analyzer got unknown op {op!r}")

    # -- rendezvous transfer ------------------------------------------------
    def _announce(self, req: Request) -> None:
        """Deliver the envelope; the send completes only when matched."""
        self._seq += 1
        env = Envelope(req.owner, req.tag, req.nbytes, req, self._seq)
        recv_req = self.matching[req.peer].arrive(env)
        if recv_req is not None:
            self._complete_pair(recv_req, env)

    def _complete_pair(self, recv_req: Request, env: Envelope) -> None:
        send_req = env.send_req
        recv_req.finish(Status(env.src, env.tag, env.nbytes, send_req.chunks))
        send_req.finish()

    # -- diagnosis ----------------------------------------------------------
    def _edges(self) -> Dict[int, List[WaitForEdge]]:
        """Wait-for edges of every blocked rank (global rank keyed)."""
        unfinished = {
            self.comm.to_global(i)
            for i, p in enumerate(self.procs)
            if not p.finished
        }
        edges: Dict[int, List[WaitForEdge]] = {}

        def add(rank: int, req: Request) -> None:
            op = _describe_request(req)
            targets = (
                sorted(unfinished - {rank})
                if req.kind == "recv" and req.peer == ANY_SOURCE
                else [req.peer]
            )
            for peer in targets:
                edges.setdefault(rank, []).append(WaitForEdge(rank, peer, op))

        for idx, proc in enumerate(self.procs):
            if proc.finished:
                continue
            glob = self.comm.to_global(idx)
            parked = self._parked[idx]
            if isinstance(parked, (_RdvSend, _RdvRecv)):
                add(glob, parked.req)
            elif isinstance(parked, _RdvWait):
                for r in parked.requests:
                    if not r.complete:
                        add(glob, r)
        return edges

    def _diagnose(self) -> RendezvousReport:
        edges = self._edges()
        blocked = [
            f"rank {rank}: {', '.join(e.op for e in rank_edges)}"
            for rank, rank_edges in sorted(edges.items())
        ]
        cycle = _find_cycle(edges)
        return RendezvousReport(deadlocked=True, cycle=cycle, blocked=blocked)


def _find_cycle(edges: Dict[int, List[WaitForEdge]]) -> List[WaitForEdge]:
    """First wait-for cycle via iterative DFS; [] when none exists."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {rank: WHITE for rank in edges}
    for start in sorted(edges):
        if color[start] != WHITE:
            continue
        path: List[WaitForEdge] = []
        stack: List[Tuple[int, int]] = [(start, 0)]
        color[start] = GRAY
        while stack:
            node, i = stack[-1]
            outgoing = edges.get(node, [])
            if i >= len(outgoing):
                color[node] = BLACK
                stack.pop()
                if path:
                    path.pop()
                continue
            stack[-1] = (node, i + 1)
            edge = outgoing[i]
            nxt = edge.waits_on
            if color.get(nxt, BLACK) == GRAY:
                # Found a back edge: slice the cycle out of the path.
                path.append(edge)
                for j, e in enumerate(path):
                    if e.rank == nxt:
                        return path[j:]
                return path  # pragma: no cover - defensive
            if color.get(nxt, BLACK) == WHITE:
                color[nxt] = GRAY
                path.append(edge)
                stack.append((nxt, 0))
    return []


def analyze_rendezvous(
    nranks: int,
    program_factory: Callable[[RankContext], object],
    comm: Optional[Communicator] = None,
) -> RendezvousReport:
    """One-call helper: run the synchronous-send analysis."""
    return RendezvousAnalyzer(nranks, program_factory, comm=comm).run()


# ---------------------------------------------------------------------------
# Collective registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CollectiveSpec:
    """How to build and judge one collective for verification.

    ``build(nranks, nbytes, root)`` returns a program factory for the
    executors. ``initial_owned``/``expected_final`` (per *global* rank,
    relative chunk ids) enable the provenance pass; ``None`` marks the
    collective untracked (no chunk metadata on its sends), in which case
    only deadlock and hazard analysis run. ``expected_redundant`` turns
    the redundancy count into an assertion.
    """

    name: str
    build: Callable[[int, int, int], Callable[[RankContext], object]]
    initial_owned: Optional[Callable[[int, int, int], List[ChunkSet]]] = None
    expected_final: Optional[Callable[[int, int, int], List[ChunkSet]]] = None
    expected_redundant: Optional[Callable[[int, int], Optional[int]]] = None
    pof2_only: bool = False
    description: str = ""

    @property
    def tracked(self) -> bool:
        return self.initial_owned is not None

    def supports(self, nranks: int) -> bool:
        return nranks >= 1 and (not self.pof2_only or is_power_of_two(nranks))


def _uniform_chunks(nranks: int, nbytes: int) -> bool:
    """True when every one of the P scatter chunks carries bytes.

    The paper's transfer arithmetic assumes this (its message sizes are
    far above P); with empty trailing chunks MPICH skips transfers, so
    the closed-form counts stop applying.
    """
    return nranks >= 1 and chunk_count(nbytes, nranks, nranks - 1) > 0


def expected_redundant_native(nranks: int, nbytes: int = 1 << 20) -> Optional[int]:
    """``S - P``: redundant transfers of the enclosed (native) ring.

    ``S = sum(subtree_chunks(r))`` over relative ranks. Every non-leaf
    subtree root of extent ``e`` receives ``e - 1`` chunks it already
    holds from the scatter — exactly the sends the tuned ring drops
    (12 at P=8: 56 -> 44; 15 at P=10: 90 -> 75). Returns ``None``
    (assertion waived) when empty trailing chunks break the arithmetic.
    """
    if nranks < 2:
        return 0
    if not _uniform_chunks(nranks, nbytes):
        return None
    return sum(subtree_chunks(r, nranks) for r in range(nranks)) - nranks


BuildFn = Callable[[int, int, int], Callable[[RankContext], object]]


def _wrap(algo: Callable[..., Any], *extra: Any, **kw: Any) -> BuildFn:
    """Adapt ``algo(ctx, *args)`` into a ``build(nranks, nbytes, root)``."""

    def build(nranks: int, nbytes: int, root: int) -> Callable[[RankContext], object]:
        args = [a(nranks, nbytes, root) if callable(a) else a for a in extra]

        def factory(ctx: RankContext) -> object:
            def program() -> Generator[Any, Any, Any]:
                return (yield from algo(ctx, *args, **kw))

            return program()

        return factory

    return build


def _bcast_build(algo: Callable[..., Any]) -> BuildFn:
    return _wrap(algo, lambda n, b, r: b, lambda n, b, r: r)


def _block_build(algo: Callable[..., Any]) -> BuildFn:
    """Collectives taking a per-rank block size instead of a total."""
    return _wrap(algo, lambda n, b, r: scatter_size(b, n))


def _empty_scatter_chunks(nranks: int, nbytes: int) -> List[int]:
    """Chunk ids that carry zero bytes at this (nbytes, P).

    The algorithms skip zero-byte subtree transfers (MPICH behaviour),
    so data-flow treats empty chunks as universally pre-owned: there is
    nothing to deliver.
    """
    return [i for i in range(nranks) if chunk_count(nbytes, nranks, i) == 0]


def _bcast_initial(nranks: int, nbytes: int, root: int) -> List[ChunkSet]:
    """Broadcast start: the root owns everything, everyone else only the
    empty (zero-byte) chunks."""
    empty = _empty_scatter_chunks(nranks, nbytes)
    return [
        ChunkSet.full(nranks) if g == root else ChunkSet(nranks, empty)
        for g in range(nranks)
    ]


def _bcast_final(nranks: int, nbytes: int, root: int) -> List[ChunkSet]:
    return [ChunkSet.full(nranks) for _ in range(nranks)]


def _subtree_sets(nranks: int, root: int) -> List[ChunkSet]:
    """Relative rank r's binomial-subtree run ``[r, r + extent)``."""
    final = []
    for g in range(nranks):
        rel = relative_rank(g, root, nranks)
        final.append(ChunkSet.interval(nranks, rel, subtree_chunks(rel, nranks)))
    return final


def _scatter_final(nranks: int, nbytes: int, root: int) -> List[ChunkSet]:
    """Scatter end state: the subtree run, plus the zero-byte chunks
    everyone owns by construction."""
    empty = ChunkSet(nranks, _empty_scatter_chunks(nranks, nbytes))
    final = _subtree_sets(nranks, root)
    for cs in final:
        cs.union_update(empty)
    return final


def _gather_final(nranks: int, nbytes: int, root: int) -> List[ChunkSet]:
    """Gather end state: blocks are uniform (block_bytes * P total), so
    no chunk is ever empty — each rank accumulates exactly its run."""
    if scatter_size(nbytes, nranks) == 0:
        return [ChunkSet.full(nranks) for _ in range(nranks)]
    return _subtree_sets(nranks, root)


def _block_initial(nranks: int, nbytes: int, root: int) -> List[ChunkSet]:
    """Allgather start: global rank g owns physical block g (the root is
    meaningless for allgathers; blocks are rank-indexed). When the
    derived block size is zero there is no data at all — everything is
    vacuously owned."""
    if scatter_size(nbytes, nranks) == 0:
        return [ChunkSet.full(nranks) for _ in range(nranks)]
    return [ChunkSet(nranks, [g]) for g in range(nranks)]


def _gather_initial(nranks: int, nbytes: int, root: int) -> List[ChunkSet]:
    """Gather start: relative rank r contributes block r."""
    if scatter_size(nbytes, nranks) == 0:
        return [ChunkSet.full(nranks) for _ in range(nranks)]
    return [
        ChunkSet(nranks, [relative_rank(g, root, nranks)]) for g in range(nranks)
    ]


def _allgatherv_counts(nranks: int, nbytes: int, root: int) -> List[int]:
    base = max(1, scatter_size(nbytes, nranks))
    return [(i % 3 + 1) * base for i in range(nranks)]


def _allgatherv_initial(nranks: int, nbytes: int, root: int) -> List[ChunkSet]:
    """Allgatherv start: counts are clamped to >= 1 byte per rank (see
    :func:`_allgatherv_counts`), so block g always carries data — no
    vacuous-ownership fallback."""
    return [ChunkSet(nranks, [g]) for g in range(nranks)]


def _zero(_nranks: int, _nbytes: int) -> int:
    return 0


REGISTRY: Dict[str, CollectiveSpec] = {}


def _register(spec: CollectiveSpec) -> None:
    REGISTRY[spec.name] = spec


_register(
    CollectiveSpec(
        name="bcast_native",
        build=_bcast_build(bcast_scatter_ring_native),
        initial_owned=_bcast_initial,
        expected_final=_bcast_final,
        expected_redundant=expected_redundant_native,
        description="binomial scatter + enclosed ring (MPI_Bcast_native)",
    )
)
_register(
    CollectiveSpec(
        name="bcast_opt",
        build=_bcast_build(bcast_scatter_ring_opt),
        initial_owned=_bcast_initial,
        expected_final=_bcast_final,
        expected_redundant=_zero,
        description="binomial scatter + tuned ring (MPI_Bcast_opt, the paper)",
    )
)
_register(
    CollectiveSpec(
        name="bcast_rdbl",
        build=_bcast_build(bcast_scatter_rdbl),
        initial_owned=_bcast_initial,
        expected_final=_bcast_final,
        pof2_only=True,
        description="binomial scatter + recursive-doubling allgather",
    )
)
_register(
    CollectiveSpec(
        name="bcast_binomial",
        build=_bcast_build(bcast_binomial),
        description="short-message binomial tree (full-buffer, untracked)",
    )
)
_register(
    CollectiveSpec(
        name="bcast_knomial4",
        build=_wrap(bcast_knomial, lambda n, b, r: b, lambda n, b, r: r, radix=4),
        description="radix-4 k-nomial tree (untracked)",
    )
)
_register(
    CollectiveSpec(
        name="bcast_chain",
        build=_wrap(
            bcast_chain, lambda n, b, r: b, lambda n, b, r: r, segment_bytes=65536
        ),
        description="pipelined chain, 64 KiB segments (untracked)",
    )
)
_register(
    CollectiveSpec(
        name="scatter",
        build=_bcast_build(binomial_scatter),
        initial_owned=_bcast_initial,
        expected_final=_scatter_final,
        expected_redundant=_zero,
        description="binomial-tree scatter (phase one of the broadcasts)",
    )
)
_register(
    CollectiveSpec(
        name="gather",
        build=_wrap(gather, lambda n, b, r: scatter_size(b, n), lambda n, b, r: r),
        initial_owned=_gather_initial,
        expected_final=_gather_final,
        expected_redundant=_zero,
        description="binomial-tree gather (scatter's mirror)",
    )
)
_register(
    CollectiveSpec(
        name="allgather_ring",
        build=_block_build(allgather_ring),
        initial_owned=_block_initial,
        expected_final=_bcast_final,
        expected_redundant=_zero,
        description="ring allgather (bandwidth-optimal, any P)",
    )
)
_register(
    CollectiveSpec(
        name="allgather_rdbl",
        build=_block_build(allgather_rdbl),
        initial_owned=_block_initial,
        expected_final=_bcast_final,
        expected_redundant=_zero,
        pof2_only=True,
        description="recursive-doubling allgather",
    )
)
_register(
    CollectiveSpec(
        name="allgather_bruck",
        build=_block_build(allgather_bruck),
        initial_owned=_block_initial,
        expected_final=_bcast_final,
        expected_redundant=_zero,
        description="Bruck (dissemination) allgather",
    )
)
_register(
    CollectiveSpec(
        name="allgatherv_ring",
        build=_wrap(allgatherv_ring, _allgatherv_counts),
        initial_owned=_allgatherv_initial,
        expected_final=_bcast_final,
        expected_redundant=_zero,
        description="ring allgatherv with uneven per-rank counts",
    )
)
_register(
    CollectiveSpec(
        name="reduce",
        build=_wrap(reduce, lambda n, b, r: b, lambda n, b, r: r),
        description="binomial-tree reduce (data combined, untracked)",
    )
)
_register(
    CollectiveSpec(
        name="reduce_scatter_halving",
        build=_wrap(reduce_scatter_halving, lambda n, b, r: b),
        pof2_only=True,
        description="recursive-halving reduce-scatter (untracked)",
    )
)
_register(
    CollectiveSpec(
        name="reduce_scatter_ring",
        build=_wrap(reduce_scatter_ring, lambda n, b, r: b),
        description="ring reduce-scatter (untracked)",
    )
)
_register(
    CollectiveSpec(
        name="allreduce_reduce_bcast",
        build=_wrap(allreduce_reduce_bcast, lambda n, b, r: b),
        description="binomial reduce + tuned broadcast (untracked)",
    )
)
_register(
    CollectiveSpec(
        name="allreduce_rabenseifner",
        build=_wrap(allreduce_rabenseifner, lambda n, b, r: b),
        pof2_only=True,
        description="Rabenseifner allreduce (untracked)",
    )
)
_register(
    CollectiveSpec(
        name="scan_linear",
        build=_wrap(scan_linear, lambda n, b, r: b),
        description="linear (chain) prefix scan (untracked)",
    )
)
_register(
    CollectiveSpec(
        name="scan_rd",
        build=_wrap(scan_recursive_doubling, lambda n, b, r: b),
        description="recursive-doubling prefix scan (untracked)",
    )
)
_register(
    CollectiveSpec(
        name="alltoall_pairwise",
        build=_block_build(alltoall_pairwise),
        description="pairwise-exchange alltoall (untracked)",
    )
)
_register(
    CollectiveSpec(
        name="alltoall_bruck",
        build=_block_build(alltoall_bruck),
        description="Bruck alltoall (untracked)",
    )
)
_register(
    CollectiveSpec(
        name="barrier",
        build=_wrap(barrier),
        description="dissemination barrier (untracked)",
    )
)


def verifiable_collectives(nranks: Optional[int] = None) -> List[str]:
    """Registry names, optionally filtered to those supporting *nranks*."""
    names = sorted(REGISTRY)
    if nranks is None:
        return names
    return [n for n in names if REGISTRY[n].supports(nranks)]


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def verify_program(
    nranks: int,
    program_factory: Callable[[RankContext], object],
    initial_owned: Optional[List[ChunkSet]] = None,
    expected_final: Optional[List[ChunkSet]] = None,
    expected_redundant: Optional[int] = None,
    rendezvous_factory: Optional[Callable[[RankContext], object]] = None,
    name: str = "<program>",
    nbytes: int = 0,
    root: int = 0,
) -> VerifyReport:
    """Statically verify an arbitrary rank program.

    Runs the buffered schedule extraction, then the provenance /
    redundancy / hazard passes (when ``initial_owned`` is given) and the
    rendezvous deadlock analysis (when ``rendezvous_factory`` is given —
    generators are single-use, so a *fresh* factory is required).
    """
    report = VerifyReport(
        collective=name,
        nranks=nranks,
        nbytes=nbytes,
        root=root,
        tracked=initial_owned is not None,
        expected_redundant=expected_redundant,
    )
    try:
        schedule = extract_schedule(nranks, program_factory)
    except ReproError as exc:
        report.violations.append(
            Violation(kind="error", detail=f"{type(exc).__name__}: {exc}")
        )
        return report
    report.transfers = schedule.transfers
    if initial_owned is not None:
        violations, redundant, _ = verify_provenance(
            schedule, initial_owned, expected_final
        )
        report.violations.extend(violations)
        report.redundant = redundant
        if expected_redundant is not None and len(redundant) != expected_redundant:
            report.violations.append(
                Violation(
                    kind="redundancy",
                    detail=(
                        f"measured {len(redundant)} redundant transfer(s), "
                        f"expected exactly {expected_redundant}"
                    ),
                )
            )
    report.hazards = find_match_hazards(schedule)
    if rendezvous_factory is not None:
        try:
            report.rendezvous = analyze_rendezvous(nranks, rendezvous_factory)
        except ReproError as exc:
            report.rendezvous = RendezvousReport(
                deadlocked=True, blocked=[f"{type(exc).__name__}: {exc}"]
            )
        if report.rendezvous.deadlocked:
            report.violations.append(
                Violation(
                    kind="deadlock",
                    detail=f"rendezvous analysis: {report.rendezvous.describe()}",
                )
            )
    _stabilize(report)
    return report


def _stabilize(report: VerifyReport) -> None:
    """Sort hazards and violations by stable keys so ``--json`` output is
    byte-identical across runs regardless of discovery order."""
    report.hazards.sort(
        key=lambda h: (h.src, h.dst, h.tag, h.first_order, h.second_order)
    )
    report.violations.sort(
        key=lambda v: (
            v.kind,
            v.rank if v.rank is not None else -1,
            v.send_order if v.send_order is not None else -1,
            v.detail,
        )
    )


def verify_collective(
    name: str,
    nranks: int,
    nbytes: int = 65536,
    root: int = 0,
    rendezvous: bool = True,
    modelcheck: bool = False,
    mc_max_states: int = 20000,
) -> VerifyReport:
    """Run the full verification pass for one registry collective.

    With ``modelcheck=True``, the exhaustive match-order explorer
    (:mod:`repro.analysis.modelcheck`) runs as a confirmation pass:
    hazard pairs from pass 3 are downgraded to ``verdict="benign"`` when
    every interleaving provably terminates with identical payloads and
    wire counters, or upgraded to ``verdict="confirmed"`` when a real
    divergence (or an unfinished exploration) leaves them standing; any
    model-checker violation is appended to the report's violations.
    """
    try:
        spec = REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown collective {name!r}; known: {sorted(REGISTRY)}"
        ) from None
    if not spec.supports(nranks):
        raise ConfigurationError(
            f"collective {name!r} does not support P={nranks}"
            + (" (power-of-two only)" if spec.pof2_only else "")
        )
    report = verify_program(
        nranks,
        spec.build(nranks, nbytes, root),
        initial_owned=(
            spec.initial_owned(nranks, nbytes, root) if spec.initial_owned else None
        ),
        expected_final=(
            spec.expected_final(nranks, nbytes, root) if spec.expected_final else None
        ),
        expected_redundant=(
            spec.expected_redundant(nranks, nbytes)
            if spec.expected_redundant is not None
            else None
        ),
        rendezvous_factory=(
            spec.build(nranks, nbytes, root) if rendezvous else None
        ),
        name=name,
        nbytes=nbytes,
        root=root,
    )
    if modelcheck:
        _apply_modelcheck(report, name, nranks, nbytes, root, mc_max_states)
    return report


def _apply_modelcheck(
    report: VerifyReport,
    name: str,
    nranks: int,
    nbytes: int,
    root: int,
    mc_max_states: int,
) -> None:
    # Imported lazily: modelcheck imports this module at top level.
    from .modelcheck import check_collective

    mc = check_collective(
        name, nranks, nbytes=nbytes, root=root, max_states=mc_max_states
    )
    report.modelcheck = mc.summary_dict()
    verdict = "benign" if (mc.ok and mc.complete) else "confirmed"
    report.hazards = [replace(h, verdict=verdict) for h in report.hazards]
    for v in mc.violations:
        report.violations.append(
            Violation(kind="modelcheck", detail=f"[{v.kind}] {v.detail}")
        )
    _stabilize(report)
