"""Symbolic all-P closed forms for the paper's transfer arithmetic.

Everything here is exact integer mathematics over the *structure* of the
binomial scatter tree — no schedule is ever executed. The central object
is the subtree-extent multiset of a P-rank binomial scatter: relative
rank 0 owns all ``P`` chunks, and the child splits recurse, so the sum
of extents ``S(P)`` obeys the integer recurrence

    S(1) = 1
    S(P) = P + sum over child offsets m in {h, h/2, ..., 1}, m < P,
               of S(min(m, P - m)),        h = largest power of two < P
               (h = P/2 when P is itself a power of two)

because the child subtree at offset ``m`` spans ``min(m, P - m)``
consecutive relative ranks and is structurally a binomial scatter tree
of that size. The paper's Section IV savings claim is the telescoped
identity

    transfers(native) - transfers(tuned) = S(P) - P

(each subtree root of extent ``e`` receives ``e - 1`` chunks it already
holds; summing ``e - 1`` over all ranks gives ``S - P``), with the
published instances S(8)-8 = 12 (56 -> 44) and S(10)-10 = 15 (90 -> 75).

:func:`prove_savings` checks the identity three independent ways —
recurrence, direct extent enumeration, per-rank redundancy sum — and
:mod:`repro.analysis.costmodel`'s differential gate pins the result
against schedules actually extracted from the algorithm generators.

Byte totals generalise the counts to arbitrary message sizes: the ring
ships every chunk ``P - 1`` hops (``(P-1) * nbytes`` wire bytes) and the
tuned ring drops, for each subtree root ``r`` of extent ``e > 1``, the
bytes of chunks ``[r+1, r+e)`` — including short/empty trailing chunks,
so the byte forms hold even where the transfer *counts* need the
uniform-chunk caveat.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..collectives import subtree_chunks
from ..collectives.scatter import span_bytes
from ..errors import CollectiveError
from ..util import next_power_of_two

__all__ = [
    "subtree_sum",
    "subtree_extents",
    "savings",
    "ring_transfers_native",
    "ring_transfers_tuned",
    "ring_bytes_native",
    "ring_bytes_saved",
    "ring_bytes_tuned",
    "scatter_bytes",
    "bcast_bytes",
    "SavingsProof",
    "prove_savings",
    "prove_savings_range",
    "PAPER_CASES",
]

#: The published instances: P -> (savings, native ring, tuned ring).
PAPER_CASES: Dict[int, Tuple[int, int, int]] = {8: (12, 56, 44), 10: (15, 90, 75)}


def _check_p(nprocs: int) -> None:
    if nprocs < 1:
        raise CollectiveError(f"need nprocs >= 1, got {nprocs}")


def _child_offsets(nprocs: int) -> List[int]:
    """Binomial child offsets ``h, h/2, ..., 1`` below *nprocs*."""
    offsets = []
    m = next_power_of_two(nprocs) // 2
    while m >= 1:
        if m < nprocs:
            offsets.append(m)
        m //= 2
    return offsets


@lru_cache(maxsize=None)
def subtree_sum(nprocs: int) -> int:
    """``S(P)``, the sum of binomial-subtree extents, via the recurrence."""
    _check_p(nprocs)
    if nprocs == 1:
        return 1
    return nprocs + sum(
        subtree_sum(min(m, nprocs - m)) for m in _child_offsets(nprocs)
    )


def subtree_extents(nprocs: int) -> List[int]:
    """Per-relative-rank extents derived purely from the tree recursion.

    Independent of :func:`repro.collectives.subtree_chunks` (which reads
    branch masks off the rank's bit pattern); :func:`prove_savings`
    cross-checks the two derivations element-wise.
    """
    _check_p(nprocs)
    extents = [0] * nprocs

    def fill(base: int, size: int) -> None:
        extents[base] = size
        for m in _child_offsets(size):
            fill(base + m, min(m, size - m))

    fill(0, nprocs)
    return extents


def savings(nprocs: int) -> int:
    """Transfers the tuned ring eliminates: ``S(P) - P``."""
    _check_p(nprocs)
    return subtree_sum(nprocs) - nprocs


def ring_transfers_native(nprocs: int) -> int:
    """Enclosed-ring transfer count: ``P * (P - 1)``."""
    _check_p(nprocs)
    return nprocs * (nprocs - 1)


def ring_transfers_tuned(nprocs: int) -> int:
    """Tuned-ring transfer count: ``P * (P - 1) - (S - P)``."""
    return ring_transfers_native(nprocs) - savings(nprocs)


def ring_bytes_native(nprocs: int, nbytes: int) -> int:
    """Enclosed-ring wire bytes: every chunk travels ``P - 1`` hops."""
    _check_p(nprocs)
    return (nprocs - 1) * nbytes


def ring_bytes_saved(nprocs: int, nbytes: int) -> int:
    """Wire bytes the tuned ring never ships.

    Subtree root ``r`` of extent ``e`` already owns ``[r, r + e)``; the
    ring would redeliver chunks ``[r + 1, r + e)`` to it (chunk ``r`` is
    the one it contributes, never received), so the saved bytes are the
    spans of those chunk runs summed over all ranks.
    """
    _check_p(nprocs)
    total = 0
    for rel, extent in enumerate(subtree_extents(nprocs)):
        if extent > 1:
            total += span_bytes(nbytes, nprocs, rel + 1, extent - 1)
    return total


def ring_bytes_tuned(nprocs: int, nbytes: int) -> int:
    """Tuned-ring wire bytes: native minus the redundant spans."""
    return ring_bytes_native(nprocs, nbytes) - ring_bytes_saved(nprocs, nbytes)


def scatter_bytes(nprocs: int, nbytes: int) -> int:
    """Binomial-scatter wire bytes: each non-root subtree root receives
    its whole span exactly once."""
    _check_p(nprocs)
    if nprocs == 1:
        return 0
    extents = subtree_extents(nprocs)
    return sum(
        span_bytes(nbytes, nprocs, rel, extents[rel]) for rel in range(1, nprocs)
    )


def bcast_bytes(nprocs: int, nbytes: int, tuned: bool) -> int:
    """Total wire bytes of the scatter-ring broadcast (both phases)."""
    _check_p(nprocs)
    if nprocs == 1:
        return 0
    ring = ring_bytes_tuned if tuned else ring_bytes_native
    return scatter_bytes(nprocs, nbytes) + ring(nprocs, nbytes)


@dataclass(frozen=True)
class SavingsProof:
    """One P's savings identity, derived three independent ways."""

    nprocs: int
    subtree_sum: int  # S via the recurrence
    subtree_sum_direct: int  # S via subtree_chunks enumeration
    savings: int  # S - P
    redundancy_sum: int  # sum over ranks of (extent - 1)
    native_transfers: int
    tuned_transfers: int

    @property
    def ok(self) -> bool:
        return (
            self.subtree_sum == self.subtree_sum_direct
            and self.savings == self.redundancy_sum
            and self.native_transfers - self.tuned_transfers == self.savings
        )

    def describe(self) -> str:
        return (
            f"P={self.nprocs}: S={self.subtree_sum} "
            f"(direct {self.subtree_sum_direct}), savings S-P={self.savings} "
            f"(= sum of extent-1: {self.redundancy_sum}), ring transfers "
            f"{self.native_transfers} -> {self.tuned_transfers} "
            f"[{'OK' if self.ok else 'FAIL'}]"
        )


def prove_savings(nprocs: int) -> SavingsProof:
    """Prove ``transfers(native) - transfers(tuned) = S - P`` for one P.

    Derivations cross-checked: (1) the integer recurrence ``S(P)``,
    (2) direct enumeration via :func:`repro.collectives.subtree_chunks`,
    (3) the telescoped per-rank redundancy sum ``sum_r (extent_r - 1)``
    using the recurrence-built extents.
    """
    _check_p(nprocs)
    extents = subtree_extents(nprocs)
    direct = sum(subtree_chunks(r, nprocs) for r in range(nprocs))
    if extents != [subtree_chunks(r, nprocs) for r in range(nprocs)]:
        # Element-wise disagreement: surface it as a failing proof.
        direct = -1
    return SavingsProof(
        nprocs=nprocs,
        subtree_sum=subtree_sum(nprocs),
        subtree_sum_direct=direct,
        savings=savings(nprocs),
        redundancy_sum=sum(e - 1 for e in extents),
        native_transfers=ring_transfers_native(nprocs),
        tuned_transfers=ring_transfers_tuned(nprocs),
    )


def prove_savings_range(
    lo: int = 2,
    hi: int = 64,
    pins: Optional[Dict[int, int]] = None,
) -> List[str]:
    """Prove the savings identity for every P in ``[lo, hi]``.

    ``pins`` maps P to a required savings value (defaults to the paper's
    P=8 -> 12 and P=10 -> 15). Returns a list of failure descriptions —
    empty means every proof held.
    """
    if pins is None:
        pins = {p: case[0] for p, case in PAPER_CASES.items()}
    failures = []
    for nprocs in range(lo, hi + 1):
        proof = prove_savings(nprocs)
        if not proof.ok:
            failures.append(proof.describe())
        pinned = pins.get(nprocs)
        if pinned is not None and proof.savings != pinned:
            failures.append(
                f"P={nprocs}: savings {proof.savings} != pinned {pinned}"
            )
    return failures
