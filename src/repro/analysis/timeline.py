"""Timeline analysis of simulation traces.

Turns the runtime's event trace into message spans (launch -> delivery),
per-phase summaries (scatter vs ring vs ...), per-rank activity and an
ASCII timeline — the tooling used to *see* why the tuned ring wins:
its final steps carry visibly fewer concurrent transfers.

A trace must have been recorded with :class:`repro.sim.Trace` (pass
``trace=Trace()`` to the Job or to ``simulate_bcast``); the default
``NullTrace`` records nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..sim import Trace

__all__ = [
    "TAG_NAMES",
    "MessageSpan",
    "message_spans",
    "phase_summary",
    "rank_activity",
    "concurrency_profile",
    "busiest_rank",
    "ascii_timeline",
]

# Collective phase tags (kept in sync with the collectives modules).
TAG_NAMES = {
    0: "pt2pt",
    1: "scatter",
    2: "ring",
    3: "rdbl",
    4: "binomial",
    5: "allgather",
    6: "barrier",
    7: "gather",
    8: "reduce",
    9: "alltoall",
    10: "knomial",
    11: "chain",
}


@dataclass(frozen=True)
class MessageSpan:
    """One transfer's life: launch at the sender to delivery at the
    receiver (both in simulated seconds)."""

    src: int
    dst: int
    tag: int
    nbytes: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def phase(self) -> str:
        return TAG_NAMES.get(self.tag, f"tag{self.tag}")


def message_spans(trace: Trace) -> List[MessageSpan]:
    """Pair ``send_launch`` with ``recv_complete`` records in FIFO order
    per (src, dst, tag) channel."""
    launches: Dict[tuple, list] = {}
    for rec in trace.by_kind("send_launch"):
        launches.setdefault((rec.src, rec.dst, rec.tag), []).append(rec)
    spans: List[MessageSpan] = []
    for rec in trace.by_kind("recv_complete"):
        key = (rec.src, rec.dst, rec.tag)
        queue = launches.get(key)
        if not queue:
            raise ConfigurationError(
                f"trace has a delivery without a launch: {rec!r}"
            )
        launch = queue.pop(0)
        spans.append(
            MessageSpan(
                src=rec.src,
                dst=rec.dst,
                tag=rec.tag,
                nbytes=rec.nbytes,
                start=launch.time,
                end=rec.time,
            )
        )
    spans.sort(key=lambda s: (s.start, s.src, s.dst))
    return spans


def phase_summary(trace: Trace) -> Dict[str, dict]:
    """Per-phase message count, bytes, time window and span."""
    out: Dict[str, dict] = {}
    for span in message_spans(trace):
        entry = out.setdefault(
            span.phase,
            {"messages": 0, "bytes": 0, "start": span.start, "end": span.end},
        )
        entry["messages"] += 1
        entry["bytes"] += span.nbytes
        entry["start"] = min(entry["start"], span.start)
        entry["end"] = max(entry["end"], span.end)
    for entry in out.values():
        entry["duration"] = entry["end"] - entry["start"]
    return out


def rank_activity(trace: Trace, nranks: int) -> List[List[MessageSpan]]:
    """Spans touching each rank (as sender or receiver), time-ordered."""
    if nranks < 1:
        raise ConfigurationError(f"nranks must be >= 1, got {nranks}")
    per_rank: List[List[MessageSpan]] = [[] for _ in range(nranks)]
    for span in message_spans(trace):
        if span.src < nranks:
            per_rank[span.src].append(span)
        if span.dst < nranks and span.dst != span.src:
            per_rank[span.dst].append(span)
    return per_rank


def concurrency_profile(
    trace: Trace, buckets: int = 50, tag: Optional[int] = None
) -> Tuple[List[float], List[int]]:
    """In-flight transfer count over time: ``(times, counts)`` sampled at
    ``buckets`` uniform points.

    This is the quantity the tuned ring actually reduces — same steps,
    fewer concurrent transfers in the late ring phase — so plotting it
    for native vs tuned makes the optimisation visible directly.
    """
    if buckets < 1:
        raise ConfigurationError(f"buckets must be >= 1, got {buckets}")
    spans = message_spans(trace)
    if tag is not None:
        spans = [s for s in spans if s.tag == tag]
    if not spans:
        return [], []
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    step = (t1 - t0) / buckets or 1e-12
    times = [t0 + (i + 0.5) * step for i in range(buckets)]
    counts = [
        sum(1 for s in spans if s.start <= t < s.end) for t in times
    ]
    return times, counts


def busiest_rank(trace: Trace, nranks: int) -> int:
    """Rank with the largest total span involvement (ties: lowest rank)."""
    activity = rank_activity(trace, nranks)
    busy = [sum(s.duration for s in spans) for spans in activity]
    return busy.index(max(busy))


def ascii_timeline(
    trace: Trace,
    nranks: int,
    width: int = 72,
    tag: Optional[int] = None,
) -> str:
    """Character timeline: one row per rank, ``#`` where the rank has at
    least one in-flight transfer (optionally filtered to one phase tag)."""
    if width < 8:
        raise ConfigurationError("timeline width too small")
    spans = message_spans(trace)
    if tag is not None:
        spans = [s for s in spans if s.tag == tag]
    if not spans:
        return "(no transfers)"
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    horizon = max(t1 - t0, 1e-12)
    rows = []
    for rank in range(nranks):
        cells = [" "] * width
        for s in spans:
            if rank not in (s.src, s.dst):
                continue
            a = int((s.start - t0) / horizon * (width - 1))
            b = int((s.end - t0) / horizon * (width - 1))
            for c in range(a, b + 1):
                cells[c] = "#"
        rows.append(f"r{rank:<4d}|{''.join(cells)}|")
    header = f"t0={t0 * 1e6:.2f}us                span={horizon * 1e6:.2f}us"
    return "\n".join([header] + rows)
