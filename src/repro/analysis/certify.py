"""Inductive certificate checker: parametric all-P schedule proofs.

This module turns the certificate declarations on the collective
generators (:mod:`repro.collectives.certificates`) into machine-checked
proof obligations over the exact symbolic domain of
:mod:`repro.analysis.abstract`, and cross-validates every certificate
against the concrete provenance verifier so the abstract semantics can
never silently diverge from the executable one.

A certificate for a ring-based schedule is checked in four layers:

1. **Invariant induction** — base case (post-scatter ownership), one
   symbolic ring step (the received offset is provably new for the
   tuned ring / provably redundant in the enclosed ring's endgame, and
   the ownership interval extends by exactly one element), and the
   postcondition (cardinality exactly P: full dissemination). All
   obligations are entailments in symbolic ``P, e, s`` discharged with
   exact integer/rational arithmetic — a pass holds for every P >= 2.
2. **Role lemma** — the paper's tuned-ring role table
   (``tuned_ring_role``) is *derived*: using the divisibility layer
   (rank = odd-multiple-of-lowbit decomposition, power-of-two mask
   chain), the checker proves that send-only endpoints are exactly the
   ranks with scatter extent >= 2 (role step = own extent) and
   receive-only endpoints exactly the extent-1 ranks (role step =
   right neighbour's extent) — including the mask-clamping and the
   ring-wrap rank.
3. **Pairing / deadlock-freedom** — each rank's skipped sends line up
   exactly with its right neighbour's skipped receives, so every posted
   receive has a matching same-step send on the ring edge: the step
   pattern is a perfect per-step matching and the sendrecv loop cannot
   deadlock.
4. **Counting** — per-role transfer counts are summed into the paper's
   theorems: the enclosed ring moves ``P*(P-1)`` messages of which
   exactly ``S-P`` are redundant; the tuned ring moves
   ``P*(P-1)-(S-P)`` with zero redundancy; savings are exactly ``S-P``
   (12 at P=8, 15 at P=10).

Obligations that rest on a structural induction or a finite-universe
counting rule (rather than a single entailment) are labelled
``structural`` and are exactly the ones the concrete cross-validation
backs bit-for-bit at every ``P`` in the configured range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..collectives.certificates import (
    CERTIFICATES,
    UNCERTIFIED,
    RingPhase,
    ScatterPhase,
)
from ..collectives.relative import relative_rank, subtree_chunks, tuned_ring_role
from ..collectives.schedule import cached_schedule
from ..errors import ConfigurationError
from ..util import chunk_count, scatter_size
from .abstract import Env, Interval, Lin, RingSet, const, var
from .symbolic import (
    PAPER_CASES,
    ring_transfers_native,
    ring_transfers_tuned,
    savings,
    subtree_sum,
)
from .verify import REGISTRY, verify_provenance

__all__ = [
    "Obligation",
    "CertificateReport",
    "ProveReport",
    "prove_collective",
    "prove_all",
    "crossvalidate_certificate",
    "crossvalidate_roles",
    "predicted_role",
    "predicted_ring_ownership",
    "predicted_redundant_exact",
    "DEFAULT_XVAL_RANGE",
]

#: Cross-validation range required by the certificate contract: every
#: certified collective is compared bit-for-bit against the concrete
#: provenance verifier at each P in this inclusive range.
DEFAULT_XVAL_RANGE = (2, 64)


# ---------------------------------------------------------------------------
# Obligation ledger
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Obligation:
    """One checked proof step.

    ``status`` is ``proved`` (discharged by the symbolic engine),
    ``structural`` (an induction/counting rule whose side conditions
    were discharged symbolically and whose conclusion is concretely
    cross-validated), or ``failed``.
    """

    oid: str
    statement: str
    method: str
    status: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status != "failed"

    def to_dict(self) -> Dict[str, str]:
        return {
            "id": self.oid,
            "statement": self.statement,
            "method": self.method,
            "status": self.status,
            "detail": self.detail,
        }


class _Prover:
    """Accumulates obligations; every check records an entry, pass or
    fail — no silent skips."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self.obligations: List[Obligation] = []

    def _record(
        self, oid: str, statement: str, method: str, ok: bool, detail: str = ""
    ) -> bool:
        self.obligations.append(
            Obligation(
                oid=f"{self.prefix}.{oid}",
                statement=statement,
                method=method,
                status="proved" if ok else "failed",
                detail=detail,
            )
        )
        return ok

    def entails(self, oid: str, statement: str, env: Env, fact: Lin) -> bool:
        ok = env.entails(fact)
        return self._record(oid, statement, "linear-arithmetic", ok)

    def entails_eq(self, oid: str, statement: str, env: Env, a: Lin, b: Lin) -> bool:
        ok = env.entails_eq(a, b)
        return self._record(oid, statement, "linear-arithmetic", ok)

    def member(
        self, oid: str, statement: str, env: Env, s: RingSet, offset: Lin
    ) -> bool:
        ok = s.contains(env, offset)
        return self._record(oid, statement, "interval-membership", ok)

    def excluded(
        self, oid: str, statement: str, env: Env, s: RingSet, offset: Lin
    ) -> bool:
        ok = s.excludes(env, offset)
        return self._record(oid, statement, "interval-membership", ok)

    def cardinality(
        self, oid: str, statement: str, env: Env, s: RingSet, expected: Lin
    ) -> bool:
        got = s.cardinality(env)
        ok = got is not None and env.entails_eq(got, expected)
        detail = "" if got is not None else "cardinality not provable"
        return self._record(oid, statement, "interval-cardinality", ok, detail)

    def divisibility(
        self,
        oid: str,
        statement: str,
        env: Env,
        expr: Lin,
        modulus: Lin,
        expect: bool,
    ) -> bool:
        got = env.divisibility(expr, modulus)
        ok = got is expect
        detail = "" if got is not None else "divisibility undecidable"
        return self._record(oid, statement, "divisibility", ok, detail)

    def structural(self, oid: str, statement: str, detail: str) -> bool:
        self.obligations.append(
            Obligation(
                oid=f"{self.prefix}.{oid}",
                statement=statement,
                method="structural-induction",
                status="structural",
                detail=detail,
            )
        )
        return True

    def check(self, oid: str, statement: str, method: str, ok: bool, detail: str = "") -> bool:
        return self._record(oid, statement, method, ok, detail)


# ---------------------------------------------------------------------------
# Symbolic layer 1: ring invariant induction
# ---------------------------------------------------------------------------


def _ring_invariant(env: Env, P: Lin, s_expr: Lin, cap: Lin, e: Lin) -> RingSet:
    """own(s) = [-min(s, cap), e-1] mod P; caller's env must pin which
    branch of the min applies."""
    return RingSet.make(env, P, Interval.make(-s_expr, e - 1))


def _prove_ring_invariant(pr: _Prover, tuned: bool, seeded: bool) -> None:
    """Base + step + postcondition for one ring family.

    Two rank families cover every rank (their union is exhaustive by
    the role lemma's extent dichotomy): extent e == 1 ranks receive at
    all P-1 steps; extent e >= 2 ranks (only present when seeded by a
    scatter) receive at steps 1..P-e and are saturated after.
    """
    P, e, s = var("P"), var("e"), var("s")
    G = Env().assume(P - 2)

    families: List[Tuple[str, Env, Lin]] = [("e1", G.assume(e - 1, 1 - e), e)]
    if seeded:
        families.append(("ewide", G.assume(e - 2, P - e), e))

    for fam, fenv, ext in families:
        cap = P - ext  # receiving steps: 1..P-e (== P-1 when e == 1)

        # Base case: own(0) = [0, e-1], the post-scatter run.
        base_env = fenv
        base = RingSet.make(base_env, P, Interval.make(const(0), ext - 1))
        pr.cardinality(
            f"ring.{fam}.base",
            f"base ownership [0, e-1] has exactly e chunks (family {fam})",
            base_env,
            base,
            ext,
        )

        # Receiving step: 1 <= s <= P-e.
        renv = fenv.assume(s - 1, cap - s)
        own_prev = _ring_invariant(renv, P, s - 1, cap, ext)
        own_now = _ring_invariant(renv, P, s, cap, ext)
        pr.excluded(
            f"ring.{fam}.step.new",
            "received offset -s is not yet owned: own(s-1) excludes -s "
            f"for 1 <= s <= P-e (family {fam})",
            renv,
            own_prev,
            -s,
        )
        pr.member(
            f"ring.{fam}.step.gain",
            f"own(s) contains the received offset -s (family {fam})",
            renv,
            own_now,
            -s,
        )
        # own(s) = own(s-1) ∪ {-s} exactly: superset + cardinality + 1.
        pr.entails(
            f"ring.{fam}.step.mono",
            f"own(s-1) ⊆ own(s): interval only extends downward (family {fam})",
            renv,
            (-(s - 1)) - (-s),
        )
        got_prev = own_prev.cardinality(renv)
        got_now = own_now.cardinality(renv)
        pr.check(
            f"ring.{fam}.step.count",
            "|own(s)| = |own(s-1)| + 1: the step adds exactly one chunk "
            f"(family {fam})",
            "interval-cardinality",
            got_prev is not None
            and got_now is not None
            and renv.entails_eq(got_now, got_prev + 1),
        )

        # Sent offset is owned (provenance): sends split at the wrap.
        send_ranges = [
            ("early", fenv.assume(s - 1, cap + 1 - s), s - 1),
            ("late", fenv.assume(s - cap - 2, P - 1 - s), const(0) - 0),
        ]
        for tag_, senv, prev_lo in send_ranges:
            prev_cap_expr = prev_lo if tag_ == "early" else cap
            own_before = _ring_invariant(senv, P, prev_cap_expr, cap, ext)
            pr.member(
                f"ring.{fam}.send.{tag_}",
                "sent offset -(s-1) is owned at issue time "
                f"({tag_} steps, family {fam})",
                senv,
                own_before,
                -(s - 1),
            )

        # Saturated steps: P-e+1 <= s <= P-1 (empty range when e == 1).
        satenv = fenv.assume(s - cap - 1, P - 1 - s)
        own_sat = _ring_invariant(satenv, P, cap, cap, ext)
        pr.cardinality(
            f"ring.{fam}.saturated.full",
            "after P-e receives the rank owns all P chunks "
            f"(family {fam})",
            satenv,
            own_sat,
            P,
        )
        if not tuned:
            pr.member(
                f"ring.{fam}.saturated.redundant",
                "enclosed ring: the offset -s received at a saturated "
                f"step is provably already owned (family {fam})",
                satenv,
                own_sat,
                -s,
            )

        # Postcondition: own(P-1) covers all P chunks.
        post_env = fenv.assume(s - 1, P - 1 - s).assume_eq(s, P - 1)
        own_final = _ring_invariant(post_env, P, cap, cap, ext)
        pr.cardinality(
            f"ring.{fam}.post",
            f"postcondition: own(P-1) = all P chunks (family {fam})",
            post_env,
            own_final,
            P,
        )

    pr.structural(
        "ring.families.exhaustive",
        "every rank falls in exactly one family (e == 1 or 2 <= e <= P): "
        "extent dichotomy from the role lemma",
        "backed bit-for-bit by cross-validation over the full P range",
    )


# ---------------------------------------------------------------------------
# Symbolic layer 2: the tuned-ring role lemma
# ---------------------------------------------------------------------------


def _prove_role_lemma(pr: _Prover) -> None:
    """Derive ``tuned_ring_role`` from the binomial-scatter structure.

    Rank decomposition (relative coordinates, P >= 2):

    * root:  rel = 0                          -> flag 0, step = P = extent
    * wrap:  rel = P-1                        -> flag 1, step = P = extent(0)
    * even:  rel = u + m, u ≡ 0 (mod 2m), pof2 m >= 2, rel <= P-2
                                              -> flag 0, step = extent(rel)
    * odd:   rel+1 = w + n, w ≡ 0 (mod 2n), pof2 n >= 2, rel+1 <= P-1
                                              -> flag 1, step = extent(rel+1)

    The scan in ``tuned_ring_role`` walks masks downward from
    ``next_power_of_two(P)`` and fires flag 1 when the *right
    neighbour* is divisible first, else flag 0 when the rank itself is;
    each proof below pins where the scan first fires.
    """
    P, m, u, M, n, w = (var(x) for x in ("P", "m", "u", "M", "n", "w"))

    # --- even family: rel = u + m --------------------------------------
    even = (
        Env()
        .with_pof2("m", "M")
        .with_multiple("u", 2 * m)
        .assume(P - 2, u, m - 2, P - 2 - u - m)
    )
    rel = u + m
    pr.divisibility(
        "role.even.fires",
        "even rank u+m (lowbit m): rel ≡ 0 (mod m), so flag 0 fires at mask m",
        even,
        rel,
        m,
        True,
    )
    pr.divisibility(
        "role.even.right_quiet",
        "right neighbour u+m+1 ≢ 0 (mod m): flag 1 does not pre-empt at mask m",
        even,
        rel + 1,
        m,
        False,
    )
    above = even.assume(M - m - 1)
    pr.divisibility(
        "role.even.no_higher_self",
        "no pof2 mask M > m divides u+m: the scan cannot fire flag 0 earlier",
        above,
        rel,
        M,
        False,
    )
    pr.divisibility(
        "role.even.no_higher_right",
        "no pof2 mask M > m divides u+m+1: the scan cannot fire flag 1 earlier",
        above,
        rel + 1,
        M,
        False,
    )
    # step = (m if rel+m <= P else P-rel) agrees with extent = min(m, P-rel).
    fits, clamped = even.split(P - rel - m)
    pr.entails(
        "role.even.step_fits",
        "unclamped branch: step m is exactly min(m, P-rel) when rel+m <= P",
        fits,
        (P - rel) - m,
    )
    pr.entails(
        "role.even.step_clamped",
        "clamped branch: step P-rel is exactly min(m, P-rel) when rel+m > P",
        clamped,
        m - (P - rel) - 1,
    )
    pr.entails(
        "role.even.extent_wide.fits",
        "even ranks have extent >= 2 (unclamped branch: m >= 2)",
        fits,
        m - 2,
    )
    pr.entails(
        "role.even.extent_wide.clamped",
        "even ranks have extent >= 2 (clamped branch: P-rel >= 2)",
        clamped,
        (P - rel) - 2,
    )

    # --- odd family: rel + 1 = w + n -----------------------------------
    odd = (
        Env()
        .with_pof2("n", "M")
        .with_multiple("w", 2 * n)
        .assume(P - 2, w, n - 2, P - 1 - w - n, w + n - 2)  # 2 <= rel+1 <= P-1
    )
    q = w + n  # rel + 1
    pr.divisibility(
        "role.odd.fires",
        "odd rank's right neighbour w+n (lowbit n): flag 1 fires at mask n",
        odd,
        q,
        n,
        True,
    )
    above_o = odd.assume(M - n - 1)
    pr.divisibility(
        "role.odd.no_higher_right",
        "no pof2 mask M > n divides w+n: flag 1 cannot fire earlier",
        above_o,
        q,
        M,
        False,
    )
    pr.divisibility(
        "role.odd.no_higher_self",
        "no pof2 mask M > n divides w+n-1: flag 0 cannot fire earlier",
        above_o,
        q - 1,
        M,
        False,
    )
    pr.divisibility(
        "role.odd.rank_odd",
        "rel = w+n-1 is odd: lowbit 1, so the rank's extent is 1",
        odd,
        q - 1,
        const(2),
        False,
    )
    fits_o, clamped_o = odd.split(P - q - n)
    pr.entails(
        "role.odd.step_fits",
        "step n equals extent(rel+1) = min(n, P-(rel+1)) (unclamped)",
        fits_o,
        (P - q) - n,
    )
    pr.entails(
        "role.odd.step_clamped",
        "step P-(rel+1) equals extent(rel+1) (clamped)",
        clamped_o,
        n - (P - q) - 1,
    )

    # --- root and ring-wrap rank ---------------------------------------
    top = Env().with_pof2("M").assume(P - 2, M - P, 2 * P - 2 - M)
    M0 = var("M")
    pr.divisibility(
        "role.root.fires",
        "root (rel 0): right neighbour 1 ≢ 0 (mod M0 >= P >= 2), and "
        "0 ≡ 0 trivially: flag 0 fires at the top mask",
        top,
        const(1),
        M0,
        False,
    )
    fits_r, clamped_r = top.split(P - M0)
    pr.entails(
        "role.root.step_fits",
        "root step = M0 = P when the top mask fits (P a power of two)",
        fits_r,
        P - M0,
    )
    pr.entails(
        "role.root.step_clamped",
        "root step clamps to P - 0 = P when M0 > P",
        clamped_r,
        M0 - P - 1,
    )
    pr.structural(
        "role.wrap",
        "rank P-1: its right neighbour is rank 0 and 0 ≡ 0 (mod M0), so "
        "flag 1 fires at the very first mask with step min(M0, P-0) = P "
        "= extent(0); the rank's own extent is min(lowbit, 1) = 1",
        "0 mod anything vanishes; step clamp mirrors role.root.step_*",
    )

    pr.structural(
        "role.exhaustive",
        "every rank 1 <= rel <= P-2 decomposes uniquely as an odd "
        "multiple of its lowest set bit (binary decomposition), so the "
        "four families cover all ranks",
        "backed concretely: tuned_ring_role is re-derived rank-by-rank "
        "over the full cross-validation range",
    )


def _prove_pairing(pr: _Prover) -> None:
    """Deadlock-freedom: skipped sends and skipped receives pair up.

    A flag-0 rank of extent e skips receives exactly at steps
    ``s > P-e``; its *left* neighbour is an extent-1 rank (adjacency:
    two neighbours cannot both have extent >= 2) whose flag-1 step is
    the right neighbour's extent e — it skips sends exactly at
    ``s > P-e``. Every other edge runs full duplex at every step. With
    posting unconditional on entering a step, the per-step communication
    graph is a perfect matching on active edges: no posted operation
    ever waits on an operation that is never posted.
    """
    P, e, s = var("P"), var("e"), var("s")
    G = Env().assume(P - 2, e - 2, P - e)
    # The skip windows coincide: s > P - e on both sides of the edge.
    pr.entails_eq(
        "pair.window",
        "receiver skip window (s > P-e for extent-e flag 0) equals the "
        "left neighbour's send skip window (flag 1 with step e)",
        G.assume(s - (P - e) - 1, P - 1 - s),
        (P - e) - (P - e),
        const(0),
    )
    pr.entails(
        "pair.window.nonempty",
        "the shared skip window has exactly e-1 >= 1 steps",
        G,
        ((P - 1) - (P - e)) - 1,
    )
    pr.entails_eq(
        "pair.window.size",
        "skipped steps per endpoint pair: (P-1) - (P-e) = e-1",
        G,
        (P - 1) - (P - e),
        e - 1,
    )
    pr.structural(
        "pair.adjacency",
        "no two ring neighbours both have extent >= 2: an extent >= 2 "
        "rank is even (or the root), so its successor is odd (or the "
        "wrap rank) with extent 1 — proved in role.odd.rank_odd / "
        "role.wrap",
        "the flag-1 left neighbour of every flag-0 rank therefore "
        "carries step = that rank's extent (role lemma), aligning the "
        "skip windows edge by edge",
    )
    pr.structural(
        "pair.matching",
        "per-step perfect matching: at every step s each posted send "
        "(rank active as sender) has its receiver active, and vice "
        "versa; sendrecv posts both halves on entering the step, so the "
        "dependency graph per step is acyclic — the ring cannot deadlock",
        "backed by the rendezvous analyzer pass of `repro verify` at "
        "sampled P and by cross-validated role activity windows",
    )


# ---------------------------------------------------------------------------
# Symbolic layer 3: scatter certificate
# ---------------------------------------------------------------------------


def _prove_scatter(pr: _Prover) -> None:
    """Binomial scatter: every relative rank ends with exactly its
    subtree run ``[rel, rel + extent)``.

    Induction over the split sequence: a holder of span
    ``[rel, rel + span)`` with ``span = min(2c, P-rel)`` hands
    ``[rel+c, rel+c+extent(rel+c))`` to the child at offset c and keeps
    ``[rel, rel+c)`` — the split identity ``span = c + child_extent``
    makes the hand-off exact (no chunk lost, none duplicated), and the
    divisibility layer pins ``lowbit(rel+c) = c`` so the child's
    declared extent equals ``subtree_chunks(rel+c)``.
    """
    P, c, r = var("P"), var("c"), var("r")
    # Holder r splitting at pof2 mask c: r ≡ 0 (mod 2c), child r+c < P.
    env = (
        Env()
        .with_pof2("c", "M")
        .with_multiple("r", 2 * c)
        .assume(P - 2, r, c - 1, P - 1 - r - c)
    )
    child = r + c
    # Split identity: min(2c, P-r) = c + min(c, P-r-c), by case split.
    wide, narrow = env.split(P - r - 2 * c)
    pr.entails_eq(
        "scatter.split.wide",
        "span 2c splits into c + c when the full doubled span fits",
        wide,
        2 * c,
        c + c,
    )
    pr.entails_eq(
        "scatter.split.narrow",
        "span P-r splits into c + (P-r-c) when clamped by the tail",
        narrow,
        P - r,
        c + (P - r - c),
    )
    pr.entails(
        "scatter.split.child_nonempty",
        "the child span min(c, P-r-c) is nonempty: c >= 1 and r+c <= P-1",
        env,
        P - 1 - r - c + 1 - 1,
    )
    # Child lowbit: r ≡ 0 (mod 2c) makes r+c an odd multiple of c.
    pr.divisibility(
        "scatter.child.lowbit_divides",
        "child rank r+c ≡ 0 (mod c)",
        env,
        child,
        c,
        True,
    )
    pr.divisibility(
        "scatter.child.lowbit_exact",
        "child rank r+c ≢ 0 (mod 2c): its lowest set bit is exactly c",
        env,
        child,
        2 * c,
        False,
    )
    above = env.assume(var("M") - c - 1)
    pr.divisibility(
        "scatter.child.no_higher",
        "no pof2 M > c divides r+c: the child's parent link (subtract "
        "lowbit) points back at r",
        above,
        child,
        var("M"),
        False,
    )
    pr.structural(
        "scatter.induction",
        "induction over the split sequence: the root holds [0, P) (base),"
        " every split conserves the span exactly (scatter.split.*), and "
        "each child's retained run is [child, child+extent) with extent "
        "= subtree_chunks(child) (scatter.child.*); hence the "
        "postcondition: rank rel owns exactly [rel, rel+extent(rel))",
        "backed bit-for-bit by cross-validated post-scatter ownership",
    )
    pr.structural(
        "scatter.count",
        "each of the P-1 non-root ranks receives exactly one message "
        "(its subtree run), so the scatter issues exactly P-1 transfers "
        "when every chunk carries bytes",
        "cardinality of the non-root rank set; concrete counts "
        "cross-validated, with the uniform-chunk precondition recorded",
    )


# ---------------------------------------------------------------------------
# Symbolic layer 4: counting — the paper's theorems as corollaries
# ---------------------------------------------------------------------------


def _prove_counts(pr: _Prover, tuned: bool, seeded: bool) -> Dict[str, Any]:
    """Transfer-count chain; returns the corollary table."""
    P, e, f = var("P"), var("e"), var("f")
    G = Env().assume(P - 2)

    corollaries: Dict[str, Any] = {}
    if not tuned:
        pr.entails_eq(
            "count.per_rank",
            "enclosed ring: every rank sends at all P-1 steps",
            G,
            P - 1,
            P - 1,
        )
        pr.structural(
            "count.total_native",
            "P identical per-rank counts sum to P*(P-1) ring transfers",
            "rank-independent per-rank count multiplied by |ranks| = P; "
            "cross-validated exactly at every P in range",
        )
        corollaries["ring_transfers"] = "P*(P-1)"
        if seeded:
            pr.entails_eq(
                "count.redundant_per_rank",
                "enclosed ring: an extent-e rank receives exactly "
                "(P-1)-(P-e) = e-1 already-owned chunks",
                G.assume(e - 1, P - e),
                (P - 1) - (P - e),
                e - 1,
            )
            pr.structural(
                "count.redundant_total",
                "sum of (extent-1) over all ranks = S - P redundant "
                "transfers (definition of S)",
                "S = sum of extents; the sum telescopes against the rank "
                "count P; cross-validated exactly, including the "
                "non-uniform-chunk sizes where the closed form is waived",
            )
            corollaries["redundant"] = "S - P"
    else:
        pr.entails_eq(
            "count.flag0_sends",
            "send-only endpoints send at every step: P-1 sends",
            G.assume(e - 2, P - e),
            P - 1,
            P - 1,
        )
        pr.entails_eq(
            "count.flag1_sends",
            "receive-only endpoints skip f-1 sends: (P-1)-(f-1) issued",
            G.assume(f - 1, P - f),
            (P - 1) - (f - 1),
            P - f,
        )
        pr.structural(
            "count.skip_bijection",
            "skipped sends sum to S - P: each flag-1 rank skips "
            "extent(right)-1 sends; the right neighbours of flag-1 ranks "
            "cover every rank of extent >= 2 exactly once (adjacency), "
            "and extent-1 ranks contribute 0 — so the sum equals "
            "sum(extent-1) over all ranks = S - P",
            "role lemma + pair.adjacency; cross-validated exactly",
        )
        pr.structural(
            "count.total_tuned",
            "tuned ring transfers = P*(P-1) - (S-P)",
            "enclosed total minus the skipped-send sum; cross-validated "
            "exactly at every P in range",
        )
        corollaries["ring_transfers"] = "P*(P-1) - (S - P)"
        corollaries["redundant"] = "0"
        corollaries["savings"] = "S - P"

    # Pin the paper's numbers and the closed forms in analysis/symbolic.
    # Only meaningful for scatter-seeded rings: plain allgather rings
    # have nothing redundant to save.
    if not seeded:
        return corollaries
    lo, hi = DEFAULT_XVAL_RANGE
    for Pn, (save, native_n, tuned_n) in sorted(PAPER_CASES.items()):
        S = subtree_sum(Pn)
        pr.check(
            f"count.paper_P{Pn}",
            f"paper corollary at P={Pn}: S={S}, savings S-P={save}, "
            f"ring {native_n}->{tuned_n}",
            "exact-evaluation",
            savings(Pn) == save == S - Pn
            and ring_transfers_native(Pn) == native_n == Pn * (Pn - 1)
            and ring_transfers_tuned(Pn) == tuned_n == Pn * (Pn - 1) - save,
        )
        corollaries[f"savings_P{Pn}"] = save
    closed_ok = all(
        ring_transfers_native(Pn) == Pn * (Pn - 1)
        and ring_transfers_tuned(Pn)
        == Pn * (Pn - 1) - (subtree_sum(Pn) - Pn)
        and savings(Pn) == subtree_sum(Pn) - Pn
        and subtree_sum(Pn) == sum(subtree_chunks(x, Pn) for x in range(Pn))
        for Pn in range(lo, hi + 1)
    )
    pr.check(
        "count.symbolic_consistency",
        "certificate count polynomials agree with analysis/symbolic "
        f"closed forms and the extent recurrence for P in [{lo}, {hi}]",
        "exact-evaluation",
        closed_ok,
    )
    return corollaries


# ---------------------------------------------------------------------------
# Concrete predictions (the certificate, instantiated at one P)
# ---------------------------------------------------------------------------


def predicted_role(rel: int, nranks: int) -> Tuple[str, int, int, int]:
    """``(kind, extent, recv_steps, send_steps)`` for the tuned ring,
    from the proven role lemma (not from ``tuned_ring_role``)."""
    e = subtree_chunks(rel, nranks)
    if e >= 2:
        return ("flag0", e, nranks - e, nranks - 1)
    f = subtree_chunks((rel + 1) % nranks, nranks)
    return ("flag1", 1, nranks - 1, nranks - f)


def predicted_ring_ownership(
    rel: int, extent: int, received: int, nranks: int
) -> List[int]:
    """Chunks owned after *received* ring deliveries: the instantiated
    invariant ``[rel - min(received, P-e), rel + e - 1] mod P``."""
    lo = rel - min(received, nranks - extent)
    hi = rel + extent - 1
    return sorted({x % nranks for x in range(lo, hi + 1)})


def predicted_redundant_exact(nranks: int, nbytes: int) -> int:
    """Exact enclosed-ring redundancy at any size: per rank, the
    nonempty chunks among ``[rel+1, rel+extent)`` (already owned from
    the scatter, redelivered by the ring)."""
    total = 0
    for rel in range(nranks):
        e = subtree_chunks(rel, nranks)
        for c in range(rel + 1, rel + e):
            if chunk_count(nbytes, nranks, c % nranks) > 0:
                total += 1
    return total


def _empty_chunks(nranks: int, nbytes: int) -> List[int]:
    return [i for i in range(nranks) if chunk_count(nbytes, nranks, i) == 0]


def _predicted_scatter_sends(
    rel: int, nranks: int, nbytes: int
) -> List[Tuple[int, ...]]:
    """Chunk tuples this rank forwards, in issue (largest-mask) order,
    zero-byte spans skipped — mirrors the certified split sequence."""
    if rel == 0:
        mask = 1
        while mask < nranks:
            mask <<= 1
    else:
        mask = rel & (-rel)
    out: List[Tuple[int, ...]] = []
    c = mask >> 1
    while c > 0:
        child = rel + c
        if child < nranks:
            ext = min(c, nranks - child)
            span = tuple(range(child, child + ext))
            if any(chunk_count(nbytes, nranks, x) > 0 for x in span):
                out.append(span)
        c >>= 1
    return out


# ---------------------------------------------------------------------------
# Cross-validation against the concrete verifier
# ---------------------------------------------------------------------------


def crossvalidate_roles(lo: int = 2, hi: int = 64) -> List[str]:
    """Re-derive ``tuned_ring_role`` from the role lemma at every rank
    and P; any disagreement is a proof-layer bug."""
    failures: List[str] = []
    for P in range(lo, hi + 1):
        for rel in range(P):
            kind, extent, _recv, send_steps = predicted_role(rel, P)
            step, flag = tuned_ring_role(rel, P)
            want_flag = 1 if kind == "flag1" else 0
            want_step = extent if kind == "flag0" else (P - send_steps)
            if flag != want_flag or step != want_step:
                failures.append(
                    f"P={P} rel={rel}: tuned_ring_role -> (step={step}, "
                    f"flag={flag}), role lemma -> (step={want_step}, "
                    f"flag={want_flag})"
                )
    return failures


def crossvalidate_certificate(
    name: str,
    nranks: int,
    nbytes: int = 65536,
    root: int = 0,
) -> List[str]:
    """Compare the certificate's predictions bit-for-bit against the
    executed schedule and the concrete provenance verifier at one P.

    Checks, per rank and per step: delivered chunk ids, the full
    ownership set after every delivery, send activity windows, phase
    transfer counts, redundancy count, and the final ownership sets.
    Returns a list of mismatch descriptions (empty = validated).
    """
    cert = CERTIFICATES.get(name)
    if cert is None:
        raise ConfigurationError(f"no certificate declared for {name!r}")
    spec = REGISTRY[name]
    if not spec.supports(nranks):
        return []
    failures: List[str] = []

    schedule = cached_schedule(
        ("registry", name, nranks, nbytes, root, None),
        nranks,
        spec.build(nranks, nbytes, root),
    )
    assert spec.initial_owned is not None and spec.expected_final is not None
    initial = spec.initial_owned(nranks, nbytes, root)
    expected_final = spec.expected_final(nranks, nbytes, root)
    violations, redundant, final_owned = verify_provenance(
        schedule, initial, expected_final
    )
    for v in violations:
        failures.append(f"concrete verifier violation: {v.detail}")

    ring_phase: Optional[RingPhase] = None
    scatter_phase: Optional[ScatterPhase] = None
    for ph in cert.phases:
        if isinstance(ph, RingPhase):
            ring_phase = ph
        elif isinstance(ph, ScatterPhase):
            scatter_phase = ph

    def to_rel(g: int) -> int:
        return relative_rank(g, root, nranks) if cert.relative_chunks else g

    empties = _empty_chunks(nranks, nbytes) if cert.relative_chunks else []
    if not cert.relative_chunks and name == "allgather_ring":
        if scatter_size(nbytes, nranks) == 0:
            # Degenerate zero-block case: everything vacuously owned.
            return failures

    # Per-receiver inbound queues per phase (per-channel FIFO order is
    # the receiver's completion order: one sender per ring edge).
    ring_in: Dict[int, List[Any]] = {g: [] for g in range(nranks)}
    ring_out: Dict[int, List[Any]] = {g: [] for g in range(nranks)}
    scatter_in: Dict[int, List[Any]] = {g: [] for g in range(nranks)}
    scatter_out: Dict[int, List[Any]] = {g: [] for g in range(nranks)}
    for send in schedule.sends:
        if ring_phase is not None and send.tag == ring_phase.tag:
            ring_in[send.dst].append(send)
            ring_out[send.src].append(send)
        elif scatter_phase is not None and send.tag == scatter_phase.tag:
            scatter_in[send.dst].append(send)
            scatter_out[send.src].append(send)

    expected_ring_sends = 0
    for g in range(nranks):
        rel = to_rel(g)
        if ring_phase is None:
            extent = subtree_chunks(rel, nranks)
        elif ring_phase.seeded:
            extent = subtree_chunks(rel, nranks)
        else:
            extent = 1

        # --- scatter phase -------------------------------------------
        if scatter_phase is not None:
            inbound = scatter_in[g]
            if rel == 0:
                if inbound:
                    failures.append(f"rank {g}: root received a scatter message")
            elif len(inbound) > 1:
                failures.append(
                    f"rank {g}: {len(inbound)} scatter messages, certified 1"
                )
            else:
                span = set(range(rel, rel + extent))
                got = set(inbound[0].chunks) if inbound else set()
                want = {c for c in span if chunk_count(nbytes, nranks, c) > 0}
                # The recorded message carries the whole span (possibly
                # including trailing empty ids) or is skipped when the
                # span carries no bytes at all.
                if inbound and got != span:
                    failures.append(
                        f"rank {g}: scatter delivered chunks {sorted(got)}, "
                        f"certified span {sorted(span)}"
                    )
                if not inbound and want:
                    failures.append(
                        f"rank {g}: scatter message missing for nonempty "
                        f"span {sorted(span)}"
                    )
            outs = [s.chunks for s in scatter_out[g]]
            want_outs = [
                tuple(c % nranks for c in span)
                for span in _predicted_scatter_sends(rel, nranks, nbytes)
            ]
            if [tuple(o) for o in outs] != want_outs:
                failures.append(
                    f"rank {g}: scatter forwarded {outs}, certified "
                    f"{want_outs}"
                )

        # --- ring phase ----------------------------------------------
        if ring_phase is not None:
            if ring_phase.tuned:
                kind, extent, recv_steps, send_steps = predicted_role(rel, nranks)
            else:
                kind = "native"
                recv_steps = nranks - 1
                send_steps = nranks - 1
            expected_ring_sends += send_steps

            inbound = ring_in[g]
            if len(inbound) != recv_steps:
                failures.append(
                    f"rank {g}: {len(inbound)} ring deliveries, certified "
                    f"{recv_steps}"
                )
            base = set(predicted_ring_ownership(rel, extent, 0, nranks))
            owned = set(base) | set(empties) if cert.relative_chunks else set(base)
            if rel == 0 and cert.relative_chunks and scatter_phase is not None:
                owned = set(range(nranks))  # broadcast root owns all
            for k, send in enumerate(inbound, start=1):
                want_chunk = (rel - k) % nranks
                if send.chunks != (want_chunk,):
                    failures.append(
                        f"rank {g}: ring delivery {k} carried {send.chunks}, "
                        f"certified chunk {want_chunk}"
                    )
                owned.add(want_chunk)
                predicted = set(
                    predicted_ring_ownership(rel, extent, k, nranks)
                )
                if cert.relative_chunks:
                    predicted |= set(empties)
                if rel == 0 and cert.relative_chunks and scatter_phase is not None:
                    predicted = set(range(nranks))
                if owned != predicted:
                    failures.append(
                        f"rank {g}: ownership after ring delivery {k} is "
                        f"{sorted(owned)}, certified {sorted(predicted)}"
                    )
            for k, send in enumerate(ring_out[g], start=1):
                want_chunk = (rel - k + 1) % nranks
                if send.chunks != (want_chunk,):
                    failures.append(
                        f"rank {g}: ring send {k} carried {send.chunks}, "
                        f"certified chunk {want_chunk}"
                    )
            if len(ring_out[g]) != send_steps:
                failures.append(
                    f"rank {g}: {len(ring_out[g])} ring sends, certified "
                    f"{send_steps}"
                )

        # --- final ownership -----------------------------------------
        want_final = expected_final[g]
        if set(final_owned[g]) != set(want_final) and name != "scatter":
            failures.append(
                f"rank {g}: final ownership {sorted(final_owned[g])} != "
                f"expected {sorted(want_final)}"
            )

    # --- global counts ---------------------------------------------------
    if ring_phase is not None:
        got_ring = sum(len(v) for v in ring_in.values())
        S = subtree_sum(nranks)
        if ring_phase.tuned:
            want_ring = nranks * (nranks - 1) - (S - nranks)
        else:
            want_ring = nranks * (nranks - 1)
        if nranks == 1:
            want_ring = 0
        if got_ring != want_ring:
            failures.append(
                f"ring transfers {got_ring}, certified {want_ring}"
            )
        if expected_ring_sends != want_ring and nranks > 1:
            failures.append(
                f"role-table ring sends {expected_ring_sends}, closed form "
                f"{want_ring}"
            )
    if ring_phase is not None and ring_phase.seeded:
        want_red = predicted_redundant_exact(nranks, nbytes)
        if ring_phase.tuned:
            want_red = 0
        if len(redundant) != want_red:
            failures.append(
                f"redundant transfers {len(redundant)}, certified {want_red}"
            )
    elif ring_phase is not None or name == "scatter":
        if len(redundant) != 0:
            failures.append(
                f"redundant transfers {len(redundant)}, certified 0"
            )
    if scatter_phase is not None:
        got_scatter = sum(len(v) for v in scatter_in.values())
        uniform = nranks >= 1 and chunk_count(nbytes, nranks, nranks - 1) > 0
        if uniform and got_scatter != nranks - 1:
            failures.append(
                f"scatter transfers {got_scatter}, certified {nranks - 1}"
            )
    return failures


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


@dataclass
class CertificateReport:
    """Outcome of checking one collective's certificate."""

    collective: str
    description: str
    obligations: List[Obligation]
    corollaries: Dict[str, Any]
    crossval_range: Tuple[int, int]
    crossval_points: int
    crossval_failures: List[str]
    crossval_skipped: bool = False

    @property
    def failed_obligations(self) -> List[Obligation]:
        return [o for o in self.obligations if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.failed_obligations and not self.crossval_failures

    def to_dict(self) -> Dict[str, Any]:
        return {
            "collective": self.collective,
            "description": self.description,
            "ok": self.ok,
            "obligations": [o.to_dict() for o in self.obligations],
            "proved": sum(1 for o in self.obligations if o.status == "proved"),
            "structural": sum(
                1 for o in self.obligations if o.status == "structural"
            ),
            "failed": len(self.failed_obligations),
            "corollaries": self.corollaries,
            "crossval": {
                "range": list(self.crossval_range),
                "points": self.crossval_points,
                "failures": self.crossval_failures,
                "skipped": self.crossval_skipped,
            },
        }


@dataclass
class ProveReport:
    """Outcome of ``repro prove`` across the registry."""

    reports: List[CertificateReport] = field(default_factory=list)
    waived: Dict[str, str] = field(default_factory=dict)
    uncovered: List[str] = field(default_factory=list)
    stale_waivers: List[str] = field(default_factory=list)
    role_failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            all(r.ok for r in self.reports)
            and not self.uncovered
            and not self.stale_waivers
            and not self.role_failures
        )

    def ok_strict(self) -> bool:
        return self.ok and not any(r.crossval_skipped for r in self.reports)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "certified": [r.to_dict() for r in self.reports],
            "waived": dict(sorted(self.waived.items())),
            "uncovered": sorted(self.uncovered),
            "stale_waivers": sorted(self.stale_waivers),
            "role_crossval_failures": self.role_failures,
        }

    def describe(self) -> str:
        lines: List[str] = []
        for r in self.reports:
            proved = sum(1 for o in r.obligations if o.status == "proved")
            structural = sum(
                1 for o in r.obligations if o.status == "structural"
            )
            status = "ok" if r.ok else "FAILED"
            xval = (
                "crossval skipped"
                if r.crossval_skipped
                else (
                    f"crossval P in [{r.crossval_range[0]}, "
                    f"{r.crossval_range[1]}] at {r.crossval_points} points"
                )
            )
            lines.append(
                f"{r.collective}: {status} — {proved} proved, "
                f"{structural} structural, "
                f"{len(r.failed_obligations)} failed; {xval}"
            )
            for o in r.failed_obligations:
                lines.append(f"  FAILED {o.oid}: {o.statement}")
            for fdesc in r.crossval_failures[:10]:
                lines.append(f"  XVAL {fdesc}")
            if len(r.crossval_failures) > 10:
                lines.append(
                    f"  ... {len(r.crossval_failures) - 10} more "
                    f"cross-validation failures"
                )
            if r.corollaries:
                coro = ", ".join(
                    f"{k}={v}" for k, v in sorted(r.corollaries.items())
                )
                lines.append(f"  corollaries: {coro}")
        for name, reason in sorted(self.waived.items()):
            lines.append(f"{name}: uncertified — {reason}")
        for name in sorted(self.uncovered):
            lines.append(
                f"{name}: NOT COVERED — no certificate and no waiver "
                f"(add one to collectives/certificates.py)"
            )
        for name in sorted(self.stale_waivers):
            lines.append(
                f"{name}: STALE WAIVER — waived but not in the registry"
            )
        for fdesc in self.role_failures[:10]:
            lines.append(f"role lemma XVAL: {fdesc}")
        certified = sum(1 for r in self.reports if r.ok)
        lines.append(
            f"prove: {certified}/{len(self.reports)} certificates ok, "
            f"{len(self.waived)} waived, {len(self.uncovered)} uncovered"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def prove_collective(
    name: str,
    xval_lo: int = DEFAULT_XVAL_RANGE[0],
    xval_hi: int = DEFAULT_XVAL_RANGE[1],
    nbytes: int = 65536,
    skip_crossval: bool = False,
) -> CertificateReport:
    """Check one collective's certificate symbolically, then
    cross-validate it against concrete provenance at every P in range.
    """
    cert = CERTIFICATES.get(name)
    if cert is None:
        raise ConfigurationError(
            f"no certificate declared for {name!r}; certified: "
            f"{', '.join(sorted(CERTIFICATES))}"
        )
    if name not in REGISTRY:
        raise ConfigurationError(f"unknown collective {name!r}")
    if xval_lo < 2 or xval_hi < xval_lo:
        raise ConfigurationError(
            f"bad cross-validation range [{xval_lo}, {xval_hi}]"
        )

    pr = _Prover(name)
    corollaries: Dict[str, Any] = {}
    has_ring = False
    for phase in cert.phases:
        if isinstance(phase, ScatterPhase):
            _prove_scatter(pr)
        elif isinstance(phase, RingPhase):
            has_ring = True
            _prove_ring_invariant(pr, phase.tuned, phase.seeded)
            if phase.tuned:
                _prove_role_lemma(pr)
                _prove_pairing(pr)
            corollaries.update(_prove_counts(pr, phase.tuned, phase.seeded))
    if not has_ring:
        # Scatter-only certificate still pins its count corollary.
        corollaries["transfers"] = "P - 1"
    if len(cert.phases) > 1:
        pr.structural(
            "compose.chain",
            "phase chaining: the ring base case is exactly the scatter "
            "postcondition (ownership [rel, rel+extent))",
            "same invariant expression on both sides; cross-validated "
            "through the combined schedule",
        )

    points = 0
    xval_failures: List[str] = []
    if not skip_crossval:
        for P in range(xval_lo, xval_hi + 1):
            xval_failures.extend(crossvalidate_certificate(name, P, nbytes))
            points += 1
    return CertificateReport(
        collective=name,
        description=cert.description,
        obligations=pr.obligations,
        corollaries=corollaries,
        crossval_range=(xval_lo, xval_hi),
        crossval_points=points,
        crossval_failures=xval_failures,
        crossval_skipped=skip_crossval,
    )


def prove_all(
    xval_lo: int = DEFAULT_XVAL_RANGE[0],
    xval_hi: int = DEFAULT_XVAL_RANGE[1],
    nbytes: int = 65536,
    skip_crossval: bool = False,
) -> ProveReport:
    """Prove every certified collective and enforce the completeness
    rule: each registry entry is certified or explicitly waived."""
    report = ProveReport()
    for name in sorted(REGISTRY):
        if name in CERTIFICATES:
            report.reports.append(
                prove_collective(
                    name,
                    xval_lo=xval_lo,
                    xval_hi=xval_hi,
                    nbytes=nbytes,
                    skip_crossval=skip_crossval,
                )
            )
        elif name in UNCERTIFIED:
            report.waived[name] = UNCERTIFIED[name]
        else:
            report.uncovered.append(name)
    for name in UNCERTIFIED:
        if name not in REGISTRY:
            report.stale_waivers.append(name)
        elif name in CERTIFICATES:
            report.stale_waivers.append(name)
    if not skip_crossval:
        report.role_failures = crossvalidate_roles(xval_lo, xval_hi)
    return report
