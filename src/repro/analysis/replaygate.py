"""Replay differential gate: the vectorized engine must match the DES.

The replay engine (:mod:`repro.sim.replay`) promises *bitwise* equality
with the coroutine discrete-event runtime on every static schedule —
not "close", not "within tolerance": the same floats. That promise is
what lets ``REPRO_ENGINE=auto`` silently substitute replay for the DES
in sweeps, figures and the disk cache. This gate enforces it across the
full registry:

(a) **makespan** — ``ReplayResult.time`` equals ``JobResult.time``
    exactly (``==`` on floats, no tolerance);
(b) **per-rank finish times** — the full ``rank_finish_times`` vector
    matches element-for-element;
(c) **wire accounting** — every transport counter (message/byte totals,
    intra/inter split, per-rank sent/received message and byte maps)
    is identical;
(d) **flow bookkeeping** — both engines complete the same number of
    payload flows (zero-byte tokens included).

Each cell extracts the collective's schedule once
(:func:`~repro.collectives.schedule.cached_schedule` memoises it per
process, sharing work with the cost gate), compiles it, and runs both
engines on fresh machines so no fluid-solver state leaks between them.
The grid spans eager and rendezvous sizes so both transport protocols
are exercised.

Schedules the replay compiler rejects (wildcard receives, never-matched
blocking receives) report ``unsupported`` — an accepted fallback, not a
failure, because the dispatch layer routes exactly those runs back to
the DES.

Surfaced as ``python -m repro replay --grid`` (``--strict``/``--json``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..collectives.schedule import cached_schedule
from ..errors import ReplayUnsupportedError, ReproError
from ..machine import Machine, MachineSpec, hornet
from ..mpi import Job
from ..mpi.counters import TrafficCounters
from ..sim.replay import ReplayEngine, compile_schedule
from .verify import REGISTRY

__all__ = [
    "ReplayCheck",
    "ReplayReport",
    "run_replay_point",
    "replay_gate",
    "DEFAULT_RANKS",
    "DEFAULT_SIZES",
]

#: Grid defaults: non-trivial, non-power-of-two and power-of-two rank
#: counts; one size per transport protocol (512 B is eager and 256 KiB
#: rendezvous on every preset with a nonzero eager threshold).
DEFAULT_RANKS = (2, 5, 8, 13, 16)
DEFAULT_SIZES = (512, 262144)


@dataclass(frozen=True)
class ReplayCheck:
    """Verdict for one (collective, P, nbytes) grid cell."""

    collective: str
    nranks: int
    nbytes: int
    status: str  # "ok" | "unsupported" | "fail"
    detail: str = ""
    sends: int = 0

    @property
    def ok(self) -> bool:
        return self.status != "fail"

    def to_dict(self) -> Dict[str, object]:
        return {
            "collective": self.collective,
            "nranks": self.nranks,
            "nbytes": self.nbytes,
            "status": self.status,
            "detail": self.detail,
            "sends": self.sends,
        }


@dataclass(frozen=True)
class ReplayReport:
    """Every grid cell's verdict plus the run parameters."""

    checks: Tuple[ReplayCheck, ...]
    machine: str

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> List[ReplayCheck]:
        return [c for c in self.checks if not c.ok]

    def to_dict(self) -> Dict[str, object]:
        return {
            "machine": self.machine,
            "ok": self.ok,
            "checks": [c.to_dict() for c in self.checks],
        }

    def describe(self) -> str:
        lines = [
            f"replay differential gate on {self.machine} — "
            f"{len(self.checks)} cell(s)"
        ]
        unsupported = sum(1 for c in self.checks if c.status == "unsupported")
        for c in self.failures:
            lines.append(
                f"  FAIL {c.collective} P={c.nranks} nbytes={c.nbytes}: {c.detail}"
            )
        lines.append(
            f"  {len(self.checks) - len(self.failures)}/{len(self.checks)} "
            f"bitwise-equal ({unsupported} unsupported fallback(s))"
        )
        lines.append(f"verdict: {'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _counters_dict(c: TrafficCounters) -> Dict[str, object]:
    """Every wire counter the gate compares, bitwise."""
    return {
        "messages": c.messages,
        "bytes": c.bytes,
        "intra_messages": c.intra_messages,
        "inter_messages": c.inter_messages,
        "intra_bytes": c.intra_bytes,
        "inter_bytes": c.inter_bytes,
        "sent_by_rank": dict(c.sent_by_rank),
        "received_by_rank": dict(c.received_by_rank),
        "bytes_sent_by_rank": dict(c.bytes_sent_by_rank),
        "bytes_received_by_rank": dict(c.bytes_received_by_rank),
    }


def _first_diff(des_map: Dict[str, object], rep_map: Dict[str, object]) -> str:
    """Name the first counter key whose values diverge (for the detail)."""
    for key in des_map:
        if des_map[key] != rep_map[key]:
            return f"{key}: des={des_map[key]!r} replay={rep_map[key]!r}"
    return "counters diverge"


def run_replay_point(
    name: str,
    nranks: int,
    nbytes: int,
    spec: Optional[MachineSpec] = None,
    root: int = 0,
) -> ReplayCheck:
    """Judge one (collective, P, nbytes) cell: DES vs replay, bitwise."""
    spec = spec if spec is not None else hornet()
    collective = REGISTRY[name]
    try:
        schedule = cached_schedule(
            ("registry", name, nranks, nbytes, root, None),
            nranks,
            collective.build(nranks, nbytes, root),
        )
        compiled = compile_schedule(schedule)
    except ReplayUnsupportedError as exc:
        return ReplayCheck(name, nranks, nbytes, "unsupported", detail=str(exc))
    except ReproError as exc:
        return ReplayCheck(
            name,
            nranks,
            nbytes,
            "fail",
            detail=f"extraction raised {type(exc).__name__}: {exc}",
        )
    des = Job(
        Machine(spec, nranks),
        collective.build(nranks, nbytes, root),
        working_set=nbytes,
    ).run()
    rep = ReplayEngine(Machine(spec, nranks), compiled, working_set=nbytes).run()

    if rep.time != des.time:
        detail = f"makespan: des={des.time!r} replay={rep.time!r}"
    elif list(rep.rank_finish_times) != list(des.rank_finish_times):
        detail = "per-rank finish times diverge"
    elif _counters_dict(rep.counters) != _counters_dict(des.counters):
        detail = _first_diff(
            _counters_dict(des.counters), _counters_dict(rep.counters)
        )
    elif rep.flows_completed != des.flows_completed:
        detail = (
            f"flows: des={des.flows_completed} replay={rep.flows_completed}"
        )
    else:
        return ReplayCheck(
            name, nranks, nbytes, "ok", sends=compiled.n_sends
        )
    return ReplayCheck(
        name, nranks, nbytes, "fail", detail=detail, sends=compiled.n_sends
    )


def replay_gate(
    spec: Optional[MachineSpec] = None,
    collectives: Optional[Sequence[str]] = None,
    ranks: Sequence[int] = DEFAULT_RANKS,
    sizes: Sequence[int] = DEFAULT_SIZES,
    progress: Optional[Callable[[str], None]] = None,
) -> ReplayReport:
    """Run the full grid: registry collectives x ranks x sizes."""
    spec = spec if spec is not None else hornet()
    names = list(collectives) if collectives is not None else sorted(REGISTRY)
    checks: List[ReplayCheck] = []
    for name in names:
        registered = REGISTRY[name]
        for nranks in ranks:
            if not registered.supports(nranks):
                continue
            for nbytes in sizes:
                if progress is not None:
                    progress(f"replay {name} P={nranks} nbytes={nbytes}")
                checks.append(run_replay_point(name, nranks, nbytes, spec=spec))
    return ReplayReport(checks=tuple(checks), machine=spec.name)
