"""Real-thread backend: run rank programs on OS threads with real bytes.

The paper implements both broadcast designs "on the user-application
level"; this backend plays the same role for us. The *identical*
generator programs that run on the DES run here on one Python thread per
rank, moving actual numpy buffers through a lock-protected matching
engine. It is a **correctness oracle**, not a performance vehicle —
Python threading (GIL, scheduler noise) would swamp a 2-54 % bandwidth
effect, which is exactly why the timing reproduction lives on the DES
(see DESIGN.md's substitution table).

Semantics: sends are buffered (never block), receives block on a
condition variable, ``compute`` optionally sleeps. A watchdog timeout
turns receive cycles into :class:`~repro.errors.DeadlockError` instead
of a hang.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional

from ..errors import DeadlockError, SimulationError, TruncationError
from ..mpi.comm import Communicator
from ..mpi.context import RankContext
from ..mpi.matching import Envelope, MatchingEngine
from ..mpi.ops import ComputeOp, IrecvOp, IsendOp, RecvOp, SendOp, WaitOp
from ..mpi.request import Request, Status
from ..sim.process import ensure_generator, step_coroutine

__all__ = ["ThreadBackend", "run_threaded"]


class _ThreadRequest(Request):
    """Request with a completion event for cross-thread waits."""

    __slots__ = ("event",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.event = threading.Event()

    def finish(self, status: Optional[Status] = None) -> None:
        super().finish(status)
        self.event.set()


class ThreadBackend:
    """One thread per rank; buffered sends; blocking receives."""

    def __init__(
        self,
        nranks: int,
        program_factory: Callable[[RankContext], object],
        comm: Optional[Communicator] = None,
        buffers: Optional[List] = None,
        timeout: float = 30.0,
        compute_scale: float = 0.0,
    ):
        self.comm = comm if comm is not None else Communicator.world(nranks)
        self.timeout = timeout
        self.compute_scale = compute_scale
        self.matching = [MatchingEngine(r) for r in range(nranks)]
        self.locks = [threading.Lock() for _ in range(nranks)]
        self.contexts: List[RankContext] = []
        self.programs = []
        for local in range(self.comm.size):
            glob = self.comm.to_global(local)
            buf = buffers[local] if buffers is not None else None
            ctx = RankContext(glob, self.comm, buffer=buf)
            self.contexts.append(ctx)
            self.programs.append(
                ensure_generator(program_factory(ctx), what=f"rank {local} program")
            )
        self.results: List = [None] * self.comm.size
        self.errors: List = [None] * self.comm.size
        self.message_count = 0
        self._count_lock = threading.Lock()

    # -- public -----------------------------------------------------------
    def run(self) -> List:
        """Run all ranks to completion; returns per-rank results."""
        threads = [
            threading.Thread(
                target=self._rank_main, args=(local,), name=f"repro-rank{local}",
                daemon=True,
            )
            for local in range(self.comm.size)
        ]
        start = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            remaining = self.timeout - (time.monotonic() - start)
            t.join(max(remaining, 0.0))
        alive = [t.name for t in threads if t.is_alive()]
        if alive:
            raise DeadlockError(
                [f"{name} still blocked after {self.timeout}s" for name in alive]
            )
        failures = [e for e in self.errors if e is not None]
        if failures:
            raise failures[0]
        return list(self.results)

    # -- per-rank loop ------------------------------------------------------
    def _rank_main(self, local: int) -> None:
        gen = self.programs[local]
        try:
            outcome = step_coroutine(gen)
            while not outcome.done:
                value = self._execute(local, outcome.value)
                outcome = step_coroutine(gen, value)
            self.results[local] = outcome.value
        except BaseException as exc:  # noqa: BLE001 - surfaced to run()
            self.errors[local] = exc

    def _execute(self, local: int, op):
        glob = self.comm.to_global(local)
        if isinstance(op, (SendOp, IsendOp)):
            req = _ThreadRequest(
                "send",
                owner=glob,
                peer=op.dst,
                tag=op.tag,
                nbytes=op.nbytes,
                buffer=op.buffer,
                disp=op.disp,
                chunks=op.chunks,
            )
            self._deliver(req)
            return req if isinstance(op, IsendOp) else None
        if isinstance(op, (RecvOp, IrecvOp)):
            req = _ThreadRequest(
                "recv",
                owner=glob,
                peer=op.src,
                tag=op.tag,
                nbytes=op.nbytes,
                buffer=op.buffer,
                disp=op.disp,
            )
            with self.locks[glob]:
                env = self.matching[glob].post_recv(req)
            if env is not None:
                self._complete_recv(req, env)
            if isinstance(op, IrecvOp):
                return req
            self._await(req)
            return req.status
        if isinstance(op, WaitOp):
            for r in op.requests:
                self._await(r)
            return [r.status for r in op.requests]
        if isinstance(op, ComputeOp):
            if self.compute_scale > 0:
                time.sleep(op.seconds * self.compute_scale)
            return None
        raise SimulationError(f"threads backend got unknown op {op!r}")

    def _await(self, req: "_ThreadRequest") -> None:
        if not req.event.wait(self.timeout):
            raise DeadlockError([f"request never completed: {req!r}"])

    # -- message plumbing ---------------------------------------------------------
    def _deliver(self, send_req: "_ThreadRequest") -> None:
        payload = None
        if send_req.buffer is not None:
            payload = send_req.buffer.read(send_req.disp, send_req.nbytes)
        with self._count_lock:
            self.message_count += 1
            seq = self.message_count
        env = Envelope(
            send_req.owner, send_req.tag, send_req.nbytes, (send_req, payload), seq
        )
        send_req.finish()  # buffered semantics
        dst = send_req.peer
        with self.locks[dst]:
            recv_req = self.matching[dst].arrive(env)
        if recv_req is not None:
            self._complete_recv(recv_req, env)

    def _complete_recv(self, recv_req: "_ThreadRequest", env: Envelope) -> None:
        send_req, payload = env.send_req
        if env.nbytes > recv_req.nbytes:
            raise TruncationError(
                f"message of {env.nbytes} bytes truncates receive of "
                f"{recv_req.nbytes} bytes on rank {recv_req.owner}"
            )
        if recv_req.buffer is not None and payload is not None:
            recv_req.buffer.write(recv_req.disp, payload)
        recv_req.finish(Status(env.src, env.tag, env.nbytes, send_req.chunks))


def run_threaded(
    nranks: int,
    program_factory: Callable[[RankContext], object],
    buffers: Optional[List] = None,
    timeout: float = 30.0,
) -> List:
    """One-call helper mirroring :func:`extract_schedule` for threads."""
    return ThreadBackend(
        nranks, program_factory, buffers=buffers, timeout=timeout
    ).run()
