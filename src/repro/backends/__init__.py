"""Alternative executors for the same rank programs."""

from .threads import ThreadBackend, run_threaded

__all__ = ["ThreadBackend", "run_threaded"]
