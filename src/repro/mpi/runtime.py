"""The Job runtime: drive one generator program per rank on the DES.

A :class:`Job` wires together the engine, the fluid-flow network, the
machine and the transport, instantiates one
:class:`~repro.mpi.context.RankContext` + program generator per rank,
and runs everything to completion. The result records the simulated
makespan (max rank finish time), per-rank return values, traffic
counters and the trace.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import DeadlockError, SimulationError
from ..machine import Machine
from ..sim import Engine, FlowNetwork, NullTrace, Proc, RngStreams, Trace
from ..sim.faults import FaultPlan
from .comm import Communicator
from .context import RankContext
from .counters import TrafficCounters
from .ops import ComputeOp, IrecvOp, IsendOp, RecvOp, SendOp, WaitOp
from .reliable import ReliableConfig, ReliableTransport
from .request import Request
from .transport import Transport

__all__ = ["Job", "JobResult"]

_BLOCKED = object()


class JobResult:
    """Outcome of one simulated run."""

    def __init__(
        self,
        time: float,
        rank_results: List,
        rank_finish_times: List[float],
        counters: TrafficCounters,
        trace: Trace,
        flows_completed: int,
        solver_stats=None,
    ):
        self.time = time
        self.rank_results = rank_results
        self.rank_finish_times = rank_finish_times
        self.counters = counters
        self.trace = trace
        self.flows_completed = flows_completed
        self.solver_stats = solver_stats

    def bandwidth(self, nbytes: int) -> float:
        """Broadcast processing rate in bytes/s, the paper's metric."""
        if self.time <= 0:
            raise SimulationError("job finished in zero simulated time")
        return nbytes / self.time

    def __repr__(self) -> str:
        return (
            f"<JobResult t={self.time:.6g}s ranks={len(self.rank_results)} "
            f"msgs={self.counters.messages}>"
        )


class _Continuation:
    """Resume hook for a blocked rank; fires exactly once."""

    __slots__ = ("job", "idx", "fired")

    def __init__(self, job: "Job", idx: int):
        self.job = job
        self.idx = idx
        self.fired = False

    def resume(self, value) -> None:
        if self.fired:
            raise SimulationError(
                f"rank {self.idx} resumed twice from the same blocking point"
            )
        self.fired = True
        self.job._resume(self.idx, value)


class Job:
    """One program per rank, run to completion on the simulated machine."""

    def __init__(
        self,
        machine: Machine,
        program_factory: Callable[[RankContext], object],
        comm: Optional[Communicator] = None,
        buffers: Optional[List] = None,
        trace: Optional[Trace] = None,
        working_set: int = 0,
        rng: Optional[RngStreams] = None,
        faults: Optional[FaultPlan] = None,
        reliable=None,
    ):
        """``faults`` attaches a :class:`~repro.sim.faults.FaultPlan` to
        the transport; ``reliable`` opts into the ARQ layer — pass
        ``True`` for :class:`~repro.mpi.reliable.ReliableConfig` defaults
        or a config instance for tuned timeouts/budgets."""
        self.machine = machine
        self.comm = comm if comm is not None else Communicator.world(machine.nranks)
        self.engine = Engine()
        self.flownet = FlowNetwork(self.engine)
        self.counters = TrafficCounters()
        self.trace = trace if trace is not None else NullTrace()
        if reliable:
            config = reliable if isinstance(reliable, ReliableConfig) else None
            self.transport = ReliableTransport(
                self.engine,
                self.flownet,
                machine,
                self.trace,
                self.counters,
                rng=rng,
                faults=faults,
                config=config,
            )
        else:
            self.transport = Transport(
                self.engine,
                self.flownet,
                machine,
                self.trace,
                self.counters,
                rng=rng,
                faults=faults,
            )
        if working_set:
            machine.set_working_set(working_set)

        self.contexts: List[RankContext] = []
        self.procs: List[Proc] = []
        for local in range(self.comm.size):
            glob = self.comm.to_global(local)
            buf = buffers[local] if buffers is not None else None
            ctx = RankContext(glob, self.comm, buffer=buf)
            self.contexts.append(ctx)
            gen = program_factory(ctx)
            self.procs.append(Proc(f"rank{local}", gen))
        self._finish_times: List[Optional[float]] = [None] * self.comm.size
        self._ran = False

    # -- execution -----------------------------------------------------------
    def run(self) -> JobResult:
        """Run all rank programs to completion; raises on deadlock."""
        if self._ran:
            raise SimulationError("Job.run() may only be called once")
        self._ran = True
        for idx in range(len(self.procs)):
            # Kick every program at t=0 (FIFO order: rank 0 first).
            self.engine.schedule(0.0, self._resume, idx, None)
        self.engine.run()
        unfinished = [p for p in self.procs if not p.finished]
        if unfinished:
            blocked = [repr(p) for p in unfinished]
            blocked.extend(self.transport.blocked_summary())
            blocked.extend(
                f"injected {line}" for line in self.transport.fault_summary()
            )
            raise DeadlockError(blocked)
        makespan = max(t for t in self._finish_times)
        return JobResult(
            time=makespan,
            rank_results=[p.result for p in self.procs],
            rank_finish_times=list(self._finish_times),
            counters=self.counters,
            trace=self.trace,
            flows_completed=self.flownet.completed_count,
            solver_stats=self.flownet.stats(),
        )

    # -- program driving ----------------------------------------------------
    def _resume(self, idx: int, value) -> None:
        proc = self.procs[idx]
        while True:
            outcome = proc.advance(value)
            if outcome.done:
                self._finish_times[idx] = self.engine.now
                return
            result = self._execute(idx, outcome.value)
            if result is _BLOCKED:
                return
            value = result

    def _execute(self, idx: int, op):
        """Run one yielded operation; immediate result or _BLOCKED."""
        glob = self.comm.to_global(idx)
        proc = self.procs[idx]

        if isinstance(op, IsendOp):
            req = self._make_send(glob, op)
            self.transport.post_send(req)
            return req
        if isinstance(op, IrecvOp):
            req = self._make_recv(glob, op)
            self.transport.post_recv(req)
            return req
        if isinstance(op, SendOp):
            req = self._make_send(glob, op)
            self.transport.post_send(req)
            if req.complete:
                return None
            proc.blocked_on = f"send to {op.dst} tag={op.tag}"
            cont = _Continuation(self, idx)
            req.on_complete(lambda r: cont.resume(None))
            return _BLOCKED
        if isinstance(op, RecvOp):
            req = self._make_recv(glob, op)
            self.transport.post_recv(req)
            if req.complete:
                return req.status
            proc.blocked_on = f"recv from {op.src} tag={op.tag}"
            cont = _Continuation(self, idx)
            req.on_complete(lambda r: cont.resume(r.status))
            return _BLOCKED
        if isinstance(op, WaitOp):
            requests = op.requests
            for r in requests:
                if not isinstance(r, Request):
                    raise SimulationError(
                        f"WaitOp expects Request objects, got {type(r).__name__}"
                    )
            remaining = sum(1 for r in requests if not r.complete)
            if remaining == 0:
                return [r.status for r in requests]
            proc.blocked_on = f"waitall({len(requests)} reqs, {remaining} pending)"
            cont = _Continuation(self, idx)
            state = {"remaining": remaining}

            def one_done(_req, state=state, cont=cont, requests=requests):
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    cont.resume([r.status for r in requests])

            for r in requests:
                if not r.complete:
                    r.on_complete(one_done)
            return _BLOCKED
        if isinstance(op, ComputeOp):
            proc.blocked_on = f"compute({op.seconds}s)"
            cont = _Continuation(self, idx)
            self.engine.schedule(op.seconds, cont.resume, None)
            return _BLOCKED
        raise SimulationError(
            f"rank {idx} yielded an unknown operation: {op!r} "
            "(programs must yield repro.mpi op descriptors)"
        )

    # -- request construction ------------------------------------------------
    @staticmethod
    def _make_send(owner: int, op: SendOp) -> Request:
        return Request(
            "send",
            owner=owner,
            peer=op.dst,
            tag=op.tag,
            nbytes=op.nbytes,
            buffer=op.buffer,
            disp=op.disp,
            chunks=op.chunks,
        )

    @staticmethod
    def _make_recv(owner: int, op: RecvOp) -> Request:
        return Request(
            "recv",
            owner=owner,
            peer=op.src,
            tag=op.tag,
            nbytes=op.nbytes,
            buffer=op.buffer,
            disp=op.disp,
        )
