"""Message buffers: real (numpy-backed) and phantom (size-only).

Tests and examples run collectives over :class:`RealBuffer`, which moves
actual bytes so data correctness is observable. Large benchmark sweeps
use :class:`PhantomBuffer`, which keeps only sizes — at 32 MiB x 256
ranks, allocating real buffers would dominate the run without changing
any simulated timing. Chunk-ownership tracking lives in the algorithms,
not here, so the key invariants are checked in both modes.

Both types present the same tiny interface: ``nbytes``, ``read(disp,
count)`` and ``write(disp, payload)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import MpiError, TruncationError

__all__ = ["RealBuffer", "PhantomBuffer", "make_buffer"]


class _BufferBase:
    """Shared slicing validation."""

    nbytes: int

    def _check_span(self, disp: int, count: int) -> None:
        if count < 0:
            raise MpiError(f"negative byte count {count}")
        if disp < 0 or disp + count > self.nbytes:
            raise MpiError(
                f"span [{disp}, {disp + count}) outside buffer of {self.nbytes} bytes"
            )


class RealBuffer(_BufferBase):
    """A numpy ``uint8`` buffer that actually stores message bytes."""

    phantom = False

    def __init__(self, nbytes: int, fill: Optional[int] = None):
        if nbytes < 0:
            raise MpiError(f"buffer size must be >= 0, got {nbytes}")
        self.nbytes = nbytes
        self.array = np.zeros(nbytes, dtype=np.uint8)
        if fill is not None:
            self.array[:] = fill

    @classmethod
    def from_array(cls, array: np.ndarray) -> "RealBuffer":
        """Wrap an existing array (viewed as bytes, no copy)."""
        buf = cls.__new__(cls)
        flat = np.ascontiguousarray(array).view(np.uint8).reshape(-1)
        buf.array = flat
        buf.nbytes = flat.size
        return buf

    def read(self, disp: int, count: int) -> np.ndarray:
        """A *copy* of ``[disp, disp+count)`` — the payload a send carries.

        Copying at send time gives MPI's semantics: later writes to the
        source buffer cannot corrupt an in-flight message.
        """
        self._check_span(disp, count)
        return self.array[disp : disp + count].copy()

    def write(self, disp: int, payload: np.ndarray) -> int:
        """Deposit an incoming payload; returns the byte count written."""
        count = int(payload.size)
        if disp < 0 or disp + count > self.nbytes:
            raise TruncationError(
                f"payload of {count} bytes does not fit at disp {disp} "
                f"in buffer of {self.nbytes} bytes"
            )
        self.array[disp : disp + count] = payload
        return count

    def __repr__(self) -> str:
        return f"<RealBuffer {self.nbytes}B>"


class PhantomBuffer(_BufferBase):
    """A buffer that tracks only its size; reads return byte counts."""

    phantom = True

    def __init__(self, nbytes: int):
        if nbytes < 0:
            raise MpiError(f"buffer size must be >= 0, got {nbytes}")
        self.nbytes = nbytes

    def read(self, disp: int, count: int) -> int:
        self._check_span(disp, count)
        return count

    def write(self, disp: int, payload) -> int:
        count = int(payload) if not hasattr(payload, "size") else int(payload.size)
        if disp < 0 or disp + count > self.nbytes:
            raise TruncationError(
                f"payload of {count} bytes does not fit at disp {disp} "
                f"in phantom buffer of {self.nbytes} bytes"
            )
        return count

    def __repr__(self) -> str:
        return f"<PhantomBuffer {self.nbytes}B>"


def make_buffer(nbytes: int, real: bool, fill: Optional[int] = None):
    """Factory used by the broadcast drivers."""
    if real:
        return RealBuffer(nbytes, fill=fill)
    return PhantomBuffer(nbytes)
