"""RankContext: the API collective algorithms are written against.

Mirrors the calls in the paper's Listing 1 — ``MPI_Send``, ``MPI_Recv``,
``MPI_Sendrecv`` plus the nonblocking variants MPICH builds them from.
Every method is a *generator*: algorithms compose with ``yield from``
and the same code runs unchanged on the DES runtime, the schedule
counter and the threads backend.

All ranks taken and returned by context methods are **communicator
local**; translation to global transport ranks happens here.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import MpiError
from .comm import Communicator
from .ops import (
    ANY_SOURCE,
    ANY_TAG,
    ComputeOp,
    IrecvOp,
    IsendOp,
    RecvOp,
    SendOp,
    WaitOp,
)
from .request import Request, Status

__all__ = ["RankContext"]


class RankContext:
    """One rank's view of a communicator plus its communication verbs."""

    def __init__(self, global_rank: int, comm: Communicator, buffer=None):
        if global_rank not in comm:
            raise MpiError(
                f"global rank {global_rank} is not in communicator {comm.name}"
            )
        self.global_rank = global_rank
        self.comm = comm
        self.buffer = buffer

    # -- identity --------------------------------------------------------
    @property
    def rank(self) -> int:
        """Local rank within the bound communicator."""
        return self.comm.to_local(self.global_rank)

    @property
    def size(self) -> int:
        return self.comm.size

    def sub(self, comm: Communicator, buffer=None) -> "RankContext":
        """This rank's context on a sub-communicator (same buffer unless
        overridden)."""
        return RankContext(
            self.global_rank, comm, self.buffer if buffer is None else buffer
        )

    def attach_buffer(self, buffer) -> None:
        self.buffer = buffer

    # -- rank translation ----------------------------------------------------
    def _global_dst(self, local: int) -> int:
        return self.comm.to_global(local)

    def _global_src(self, local: int) -> int:
        if local == ANY_SOURCE:
            return ANY_SOURCE
        return self.comm.to_global(local)

    def _localize(self, status: Optional[Status]) -> Optional[Status]:
        if status is None:
            return None
        return Status(
            self.comm.to_local(status.source), status.tag, status.nbytes, status.chunks
        )

    # -- blocking verbs --------------------------------------------------------
    def send(self, dst: int, nbytes: int, disp: int = 0, tag: int = 0, chunks: Tuple[int, ...] = ()):
        """Blocking send from ``buffer[disp:disp+nbytes]`` to local *dst*."""
        yield SendOp(
            dst=self._global_dst(dst),
            nbytes=nbytes,
            tag=tag,
            buffer=self.buffer,
            disp=disp,
            chunks=chunks,
        )

    def recv(self, src: int, nbytes: int, disp: int = 0, tag: int = ANY_TAG):
        """Blocking receive into ``buffer[disp:]``; returns a local Status."""
        status = yield RecvOp(
            src=self._global_src(src),
            nbytes=nbytes,
            tag=tag,
            buffer=self.buffer,
            disp=disp,
        )
        return self._localize(status)

    def sendrecv(
        self,
        dst: int,
        send_nbytes: int,
        src: int,
        recv_nbytes: int,
        send_disp: int = 0,
        recv_disp: int = 0,
        send_tag: int = 0,
        recv_tag: int = ANY_TAG,
        chunks: Tuple[int, ...] = (),
    ):
        """``MPI_Sendrecv``: concurrent send and receive, as MPICH builds
        it — isend + irecv + waitall. Returns the receive's Status."""
        send_req = yield IsendOp(
            dst=self._global_dst(dst),
            nbytes=send_nbytes,
            tag=send_tag,
            buffer=self.buffer,
            disp=send_disp,
            chunks=chunks,
        )
        recv_req = yield IrecvOp(
            src=self._global_src(src),
            nbytes=recv_nbytes,
            tag=recv_tag,
            buffer=self.buffer,
            disp=recv_disp,
        )
        statuses = yield WaitOp(requests=(send_req, recv_req))
        return self._localize(statuses[1])

    # -- nonblocking verbs -------------------------------------------------------
    def isend(self, dst: int, nbytes: int, disp: int = 0, tag: int = 0, chunks: Tuple[int, ...] = ()):
        """Nonblocking send; returns a Request."""
        req = yield IsendOp(
            dst=self._global_dst(dst),
            nbytes=nbytes,
            tag=tag,
            buffer=self.buffer,
            disp=disp,
            chunks=chunks,
        )
        return req

    def irecv(self, src: int, nbytes: int, disp: int = 0, tag: int = ANY_TAG):
        """Nonblocking receive; returns a Request."""
        req = yield IrecvOp(
            src=self._global_src(src),
            nbytes=nbytes,
            tag=tag,
            buffer=self.buffer,
            disp=disp,
        )
        return req

    def wait(self, request: Request):
        """Wait for one request; returns its (localised) Status."""
        statuses = yield WaitOp(requests=(request,))
        return self._localize(statuses[0])

    def waitall(self, requests):
        """Wait for all requests; returns localised statuses in order."""
        statuses = yield WaitOp(requests=tuple(requests))
        return [self._localize(s) for s in statuses]

    # -- typed verbs ------------------------------------------------------------
    def send_typed(
        self,
        dst: int,
        count: int,
        datatype,
        disp: int = 0,
        tag: int = 0,
        pack_bw: Optional[float] = None,
    ):
        """Send ``count`` elements of ``datatype`` (see
        :mod:`repro.mpi.datatypes`). Non-contiguous types are packed
        first, charged as compute at ``pack_bw`` bytes/s when given."""
        nbytes = datatype.payload_bytes(count)
        if datatype.needs_pack() and pack_bw:
            yield from self.compute(nbytes / pack_bw)
        yield from self.send(dst, nbytes, disp=disp, tag=tag)

    def recv_typed(
        self,
        src: int,
        count: int,
        datatype,
        disp: int = 0,
        tag: int = ANY_TAG,
        pack_bw: Optional[float] = None,
    ):
        """Receive ``count`` elements of ``datatype``; unpacking a
        non-contiguous type is charged after delivery."""
        nbytes = datatype.payload_bytes(count)
        status = yield from self.recv(src, nbytes, disp=disp, tag=tag)
        if datatype.needs_pack() and pack_bw:
            yield from self.compute(nbytes / pack_bw)
        return status

    # -- other -----------------------------------------------------------------
    def compute(self, seconds: float):
        """Occupy this rank with ``seconds`` of simulated computation."""
        yield ComputeOp(seconds=seconds)

    def __repr__(self) -> str:
        return (
            f"<RankContext local={self.rank}/{self.size} "
            f"global={self.global_rank} comm={self.comm.name}>"
        )
