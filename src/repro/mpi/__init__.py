"""Simulated MPI runtime: pt2pt transport, matching, communicators, jobs."""

from .ops import (
    ANY_SOURCE,
    ANY_TAG,
    SendOp,
    RecvOp,
    IsendOp,
    IrecvOp,
    WaitOp,
    ComputeOp,
)
from .request import Request, Status
from .datatypes import (
    Datatype,
    BYTE,
    CHAR,
    INT,
    LONG,
    FLOAT,
    DOUBLE,
    contiguous,
    vector,
    type_size,
)
from .buffers import RealBuffer, PhantomBuffer, make_buffer
from .matching import Envelope, MatchingEngine
from .counters import TrafficCounters
from .comm import Communicator
from .context import RankContext
from .transport import Transport
from .reliable import ACK_TAG, ReliableConfig, ReliableTransport
from .runtime import Job, JobResult

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "SendOp",
    "RecvOp",
    "IsendOp",
    "IrecvOp",
    "WaitOp",
    "ComputeOp",
    "Request",
    "Status",
    "Datatype",
    "BYTE",
    "CHAR",
    "INT",
    "LONG",
    "FLOAT",
    "DOUBLE",
    "contiguous",
    "vector",
    "type_size",
    "RealBuffer",
    "PhantomBuffer",
    "make_buffer",
    "Envelope",
    "MatchingEngine",
    "TrafficCounters",
    "Communicator",
    "RankContext",
    "Transport",
    "ACK_TAG",
    "ReliableConfig",
    "ReliableTransport",
    "Job",
    "JobResult",
]
