"""Communicators: ordered groups of transport ranks.

A :class:`Communicator` maps local ranks (what collective algorithms
see) to global transport ranks (what the machine routes between). In the
simulator, sub-communicators are constructed statically by the driver —
splitting requires no communication — which is exactly what the
SMP-aware broadcast needs: one leader communicator plus one local
communicator per node.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..errors import MpiError

__all__ = ["Communicator"]


class Communicator:
    """An ordered set of global ranks; position defines the local rank."""

    def __init__(self, members: Sequence[int], name: str = "comm"):
        members = list(members)
        if not members:
            raise MpiError("communicator needs at least one member")
        if len(set(members)) != len(members):
            raise MpiError(f"duplicate ranks in communicator: {members}")
        if any(m < 0 for m in members):
            raise MpiError(f"negative global rank in communicator: {members}")
        self.members: List[int] = members
        self.name = name
        self._local_of: Dict[int, int] = {g: l for l, g in enumerate(members)}

    # -- constructors ------------------------------------------------------
    @classmethod
    def world(cls, nranks: int) -> "Communicator":
        """MPI_COMM_WORLD over ``nranks`` transport ranks."""
        if nranks < 1:
            raise MpiError(f"world communicator needs nranks >= 1, got {nranks}")
        return cls(range(nranks), name="world")

    def dup(self, name: str = None) -> "Communicator":
        """A distinct communicator with identical membership."""
        return Communicator(self.members, name or f"{self.name}.dup")

    def split(self, color_of: Callable[[int], int], name: str = None) -> Dict[int, "Communicator"]:
        """Partition by ``color_of(local_rank)``; key order preserved.

        Returns ``{color: Communicator}``; within each part, members keep
        their relative order (the MPI ``key = rank`` convention).
        """
        parts: Dict[int, List[int]] = {}
        for local, glob in enumerate(self.members):
            color = color_of(local)
            parts.setdefault(color, []).append(glob)
        base = name or f"{self.name}.split"
        return {
            color: Communicator(globs, name=f"{base}[{color}]")
            for color, globs in parts.items()
        }

    def subset(self, locals_: Sequence[int], name: str = None) -> "Communicator":
        """Communicator over the given local ranks (in the given order)."""
        return Communicator(
            [self.to_global(l) for l in locals_], name or f"{self.name}.subset"
        )

    # -- queries ------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.members)

    def to_global(self, local: int) -> int:
        if not 0 <= local < self.size:
            raise MpiError(
                f"local rank {local} outside [0, {self.size}) in {self.name}"
            )
        return self.members[local]

    def to_local(self, global_rank: int) -> int:
        try:
            return self._local_of[global_rank]
        except KeyError:
            raise MpiError(
                f"global rank {global_rank} is not a member of {self.name}"
            ) from None

    def __contains__(self, global_rank: int) -> bool:
        return global_rank in self._local_of

    def __repr__(self) -> str:
        head = ", ".join(map(str, self.members[:8]))
        more = ", ..." if self.size > 8 else ""
        return f"<Communicator {self.name} size={self.size} [{head}{more}]>"
