"""Receiver-side message matching: posted receives and unexpected messages.

Implements MPI's matching semantics per receiving rank:

* a receive matches the earliest-*arrived* unexpected message whose
  (source, tag) satisfies its (possibly wildcard) pattern;
* an arriving message matches the earliest-*posted* pending receive it
  satisfies;
* messages between one (sender, receiver) pair with equal tags are
  matched in send order (non-overtaking) — guaranteed here because
  envelopes arrive in send order (constant per-pair latency) and both
  queues are FIFO.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import MatchingError
from .ops import ANY_SOURCE, ANY_TAG
from .request import Request

__all__ = ["Envelope", "MatchingEngine"]


class Envelope:
    """An arrived-but-unmatched message announcement."""

    __slots__ = ("src", "tag", "nbytes", "send_req", "payload_ready", "seq")

    def __init__(self, src: int, tag: int, nbytes: int, send_req, seq: int):
        self.src = src
        self.tag = tag
        self.nbytes = nbytes
        self.send_req = send_req
        self.seq = seq

    def __repr__(self) -> str:
        return f"<Envelope src={self.src} tag={self.tag} nbytes={self.nbytes}>"


def _matches(want_src: int, want_tag: int, src: int, tag: int) -> bool:
    return (want_src == ANY_SOURCE or want_src == src) and (
        want_tag == ANY_TAG or want_tag == tag
    )


class MatchingEngine:
    """Matching state for one receiving rank."""

    def __init__(self, rank: int):
        self.rank = rank
        self.posted: List[Request] = []  # pending receives, post order
        self.unexpected: List[Envelope] = []  # arrived envelopes, arrival order

    # -- events --------------------------------------------------------
    def post_recv(self, req: Request) -> Optional[Envelope]:
        """Register a receive; returns the envelope it matches, if any."""
        if req.kind != "recv":
            raise MatchingError(f"post_recv got a {req.kind} request")
        if req.owner != self.rank:
            raise MatchingError(
                f"recv owned by rank {req.owner} posted on engine of rank {self.rank}"
            )
        for i, env in enumerate(self.unexpected):
            if _matches(req.peer, req.tag, env.src, env.tag):
                del self.unexpected[i]
                return env
        self.posted.append(req)
        return None

    def arrive(self, env: Envelope) -> Optional[Request]:
        """Process an arriving envelope; returns the receive it matches."""
        for i, req in enumerate(self.posted):
            if _matches(req.peer, req.tag, env.src, env.tag):
                del self.posted[i]
                return req
        self.unexpected.append(env)
        return None

    def cancel_recv(self, req: Request) -> bool:
        """Remove a pending receive; True when it was still queued."""
        try:
            self.posted.remove(req)
            return True
        except ValueError:
            return False

    # -- introspection ---------------------------------------------------
    @property
    def pending_recvs(self) -> int:
        return len(self.posted)

    @property
    def pending_unexpected(self) -> int:
        return len(self.unexpected)

    def describe_blockage(self) -> str:
        """Human-readable dump used in deadlock reports."""
        parts = []
        for req in self.posted[:4]:
            parts.append(f"recv(src={req.peer}, tag={req.tag})")
        for env in self.unexpected[:4]:
            parts.append(f"unexpected(src={env.src}, tag={env.tag})")
        inner = ", ".join(parts) if parts else "idle"
        return f"rank {self.rank}: {inner}"
