"""The point-to-point transport: protocols, flows, delivery.

Maps each send/receive request pair onto the machine's fluid-flow model
with MPICH-style protocol selection:

Eager (``nbytes <= spec.eager_threshold``)
    The payload flow starts as soon as the sender launches the message —
    *whether or not a receive is posted* — and the send completes when
    the flow drains (serialised injection, the LogGP gap; an eager send
    never waits for the receiver to post, but back-to-back sends cannot
    outrun the sender's own injection capacity). The envelope reaches
    the receiver after the path latency; the receive completes when both
    the envelope has matched and the payload flow has drained.

Rendezvous (larger messages)
    The sender launches a ready-to-send envelope and blocks. When the
    envelope matches a posted receive, a clear-to-send travels back
    (``rendezvous_rtt x latency``) and only then does the payload flow
    start. Send and receive both complete when the flow drains. This is
    what synchronises ring steps for the paper's large-message regime.

Transfers are counted (:class:`~repro.mpi.counters.TrafficCounters`) at
launch time, once per message, tagged intra- or inter-node.

Fault injection (:mod:`repro.sim.faults`) hooks in at launch: when a
:class:`~repro.sim.faults.FaultPlan` is attached, every send consults
``plan.decide(src, dst, tag, op_index)``. Dropped messages never produce
an envelope (an eager sender completes obliviously; a rendezvous sender
blocks until the run deadlocks — diagnosable via :meth:`fault_summary`),
corrupted payloads are bit-flipped in flight, and latency effects (rank
slowdown, spikes, per-rule surcharges) stretch the envelope delay.
Duplicates need receiver-side suppression and are only injected by the
reliability layer (:class:`repro.mpi.reliable.ReliableTransport`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import TruncationError
from ..machine import Machine
from ..sim import Engine, FlowNetwork, RngStreams, Trace
from ..sim.faults import FaultDecision, FaultPlan, InjectedFault
from .counters import TrafficCounters
from .matching import Envelope, MatchingEngine
from .request import Request, Status

__all__ = ["Transport"]

#: Keep at most this many injected-fault audit records per run.
_FAULT_LOG_CAP = 512


class _Delivery:
    """Join point between an envelope/flow and its matching receive."""

    __slots__ = ("send_req", "payload", "flow_done", "recv_req", "rendezvous")

    def __init__(self, send_req: Request, payload, rendezvous: bool):
        self.send_req = send_req
        self.payload = payload
        self.flow_done = False
        self.recv_req: Optional[Request] = None
        self.rendezvous = rendezvous


class Transport:
    """Protocol engine binding requests to machine flows."""

    def __init__(
        self,
        engine: Engine,
        flownet: FlowNetwork,
        machine: Machine,
        trace: Trace,
        counters: TrafficCounters,
        rng: Optional[RngStreams] = None,
        faults: Optional[FaultPlan] = None,
    ):
        self.engine = engine
        self.flownet = flownet
        self.machine = machine
        self.trace = trace
        self.counters = counters
        self.rng = rng if rng is not None else RngStreams(machine.spec.seed)
        self.faults = faults
        self.fault_log: List[InjectedFault] = []
        self._op_index: Dict[Tuple[int, int], int] = {}  # per-link xmit counter
        self.matching: List[MatchingEngine] = [
            MatchingEngine(r) for r in range(machine.nranks)
        ]
        self._seq = 0
        # Non-overtaking guarantee: envelopes on one (src, dst) channel
        # arrive in send order even when jitter or queueing delays vary
        # per message. Tracks the latest scheduled arrival per channel.
        self._env_clock = {}

    # -- public entry points -----------------------------------------------
    def post_send(self, req: Request) -> None:
        """Start a send request; completion is reported via callbacks."""
        req.seq = self._seq
        self._seq += 1
        self.trace.emit(
            self.engine.now,
            "send_post",
            src=req.owner,
            dst=req.peer,
            tag=req.tag,
            nbytes=req.nbytes,
        )
        overhead = self.machine.spec.send_overhead
        if overhead > 0:
            self.engine.schedule(overhead, self._launch_send, req)
        else:
            self._launch_send(req)

    def post_recv(self, req: Request) -> None:
        """Post a receive; matching may complete it now or much later."""
        self.trace.emit(
            self.engine.now,
            "recv_post",
            dst=req.owner,
            src=req.peer,
            tag=req.tag,
            nbytes=req.nbytes,
        )
        env = self.matching[req.owner].post_recv(req)
        if env is not None:
            self._matched(env, req)

    # -- fault injection ---------------------------------------------------
    def _decide_fault(self, src: int, dst: int, tag: int) -> FaultDecision:
        """Evaluate the fault plan for the next transmission on a link.

        Advances the per-link op-index even for clean decisions, so
        predicates stay addressable by "the k-th message on this link"
        regardless of what earlier rules did.
        """
        if self.faults is None:
            return FaultDecision.CLEAN
        op_index = self._op_index.get((src, dst), 0)
        self._op_index[(src, dst)] = op_index + 1
        return self.faults.decide(src, dst, tag, op_index, now=self.engine.now)

    def _log_fault(self, kind: str, src: int, dst: int, tag: int, cause: str) -> None:
        if len(self.fault_log) < _FAULT_LOG_CAP:
            self.fault_log.append(
                InjectedFault(
                    time=self.engine.now,
                    kind=kind,
                    src=src,
                    dst=dst,
                    tag=tag,
                    op_index=self._op_index.get((src, dst), 1) - 1,
                    cause=cause,
                )
            )

    def _corrupt_payload(self, payload):
        """Bit-flip an in-flight payload copy (real buffers only; phantom
        payloads are size-only, corruption there is flag-carried)."""
        if payload is not None and hasattr(payload, "size") and payload.size:
            payload = payload.copy()
            payload[0] ^= 0xFF
        return payload

    # -- send path -----------------------------------------------------------
    def _latency(self, plan) -> float:
        sigma = self.machine.spec.jitter_sigma
        if sigma > 0.0:
            return plan.latency * self.rng.jitter_factor("latency", sigma)
        return plan.latency

    def _queueing_delay(self, plan, nbytes: int) -> float:
        """Deterministic congestion surcharge (spec.queueing_kappa).

        Extra latency proportional to the message's serialisation time
        on its bottleneck resource times the flow count already queued
        on the path's most-loaded resource — the stand-in for the
        congestion-variance tails documented in docs/model.md.
        """
        kappa = self.machine.spec.queueing_kappa
        if kappa <= 0.0 or nbytes == 0 or not plan.resources:
            return 0.0
        load = max(res.load for res in plan.resources)
        if load == 0:
            return 0.0
        bottleneck = min(res.capacity for res in plan.resources)
        return kappa * load * nbytes / bottleneck

    def _launch_send(self, req: Request) -> None:
        plan = self.machine.transfer_plan(req.owner, req.peer)
        spec = self.machine.spec
        eager = req.nbytes <= spec.eager_threshold
        payload = None
        if req.buffer is not None:
            payload = req.buffer.read(req.disp, req.nbytes)
        self.counters.record(req.owner, req.peer, req.nbytes, plan.intra_node)
        decision = self._decide_fault(req.owner, req.peer, req.tag)
        if decision.drop:
            self.counters.drops_injected += 1
            cause = decision.cause or "drop"
            self._log_fault("drop", req.owner, req.peer, req.tag, cause)
            self.trace.emit(
                self.engine.now,
                "send_drop",
                src=req.owner,
                dst=req.peer,
                tag=req.tag,
                nbytes=req.nbytes,
                cause=cause,
            )
            if eager:
                # Fire-and-forget: an eager sender never learns the fabric
                # ate its message; the send itself completes as usual.
                req.finish()
            # A rendezvous sender blocks forever (no envelope, no CTS) —
            # exactly the deadlock fault_summary() makes diagnosable.
            return
        if decision.corrupt:
            self.counters.corrupt_injected += 1
            self._log_fault("corrupt", req.owner, req.peer, req.tag, "payload bit-flip")
            payload = self._corrupt_payload(payload)
        self.trace.emit(
            self.engine.now,
            "send_launch",
            src=req.owner,
            dst=req.peer,
            tag=req.tag,
            nbytes=req.nbytes,
            protocol="eager" if eager else "rendezvous",
            intra=plan.intra_node,
        )
        delivery = _Delivery(req, payload, rendezvous=not eager)
        env = Envelope(req.owner, req.tag, req.nbytes, delivery, req.seq)
        latency = self._latency(plan) + self._queueing_delay(plan, req.nbytes)
        if decision is not FaultDecision.CLEAN:
            latency = latency * decision.latency_factor + decision.extra_latency
        channel = (req.owner, req.peer)
        arrival = self.engine.now + latency
        floor = self._env_clock.get(channel)
        if floor is not None and arrival <= floor:
            arrival = floor * (1 + 1e-12) + 1e-15
        self._env_clock[channel] = arrival
        latency = arrival - self.engine.now
        if eager:
            # Payload flow starts now — with or without a posted receive —
            # and the envelope arrives after the path latency. The send
            # completes when the flow drains: the sender's injection is
            # serialised (LogGP-style gap), it just never waits for the
            # receiver to post.
            self.flownet.add_flow(
                req.nbytes,
                plan.resources,
                rate_cap=plan.rate_cap,
                on_complete=lambda flow, d=delivery: self._flow_done(d),
                meta=("msg", req.owner, req.peer, req.tag),
            )
            self.engine.schedule(latency, self._envelope_arrive, req.peer, env)
        else:
            # Rendezvous: only the envelope travels for now.
            self.engine.schedule(latency, self._envelope_arrive, req.peer, env)

    # -- receive path -----------------------------------------------------
    def _envelope_arrive(self, dst: int, env: Envelope) -> None:
        self.trace.emit(
            self.engine.now,
            "envelope",
            src=env.src,
            dst=dst,
            tag=env.tag,
            nbytes=env.nbytes,
        )
        recv_req = self.matching[dst].arrive(env)
        if recv_req is not None:
            self._matched(env, recv_req)

    def _matched(self, env: Envelope, recv_req: Request) -> None:
        delivery: _Delivery = env.send_req
        if env.nbytes > recv_req.nbytes:
            raise TruncationError(
                f"message of {env.nbytes} bytes from rank {env.src} truncates "
                f"receive of {recv_req.nbytes} bytes on rank {recv_req.owner}"
            )
        delivery.recv_req = recv_req
        self.trace.emit(
            self.engine.now,
            "match",
            src=env.src,
            dst=recv_req.owner,
            tag=env.tag,
            nbytes=env.nbytes,
        )
        if delivery.rendezvous:
            # Clear-to-send travels back, then the payload flow starts.
            plan = self.machine.transfer_plan(
                delivery.send_req.owner, delivery.send_req.peer
            )
            cts = self.machine.spec.rendezvous_rtt * self._latency(plan)
            self.engine.schedule(cts, self._start_rendezvous_flow, delivery, plan)
        elif delivery.flow_done:
            self._deliver(delivery)
        # else: eager flow still draining; _flow_done will deliver.

    def _start_rendezvous_flow(self, delivery: _Delivery, plan) -> None:
        self.flownet.add_flow(
            delivery.send_req.nbytes,
            plan.resources,
            rate_cap=plan.rate_cap,
            on_complete=lambda flow, d=delivery: self._flow_done(d),
            meta=(
                "msg",
                delivery.send_req.owner,
                delivery.send_req.peer,
                delivery.send_req.tag,
            ),
        )

    def _flow_done(self, delivery: _Delivery) -> None:
        delivery.flow_done = True
        delivery.send_req.finish()
        if delivery.recv_req is not None:
            self._deliver(delivery)

    def _deliver(self, delivery: _Delivery) -> None:
        overhead = self.machine.spec.recv_overhead
        if overhead > 0:
            self.engine.schedule(overhead, self._complete_recv, delivery)
        else:
            self._complete_recv(delivery)

    def _complete_recv(self, delivery: _Delivery) -> None:
        recv_req = delivery.recv_req
        send_req = delivery.send_req
        if recv_req.buffer is not None and delivery.payload is not None:
            recv_req.buffer.write(recv_req.disp, delivery.payload)
        status = Status(send_req.owner, send_req.tag, send_req.nbytes, send_req.chunks)
        self.trace.emit(
            self.engine.now,
            "recv_complete",
            src=send_req.owner,
            dst=recv_req.owner,
            tag=send_req.tag,
            nbytes=send_req.nbytes,
        )
        recv_req.finish(status)

    # -- diagnostics ------------------------------------------------------------
    def blocked_summary(self) -> List[str]:
        """Matching-engine dumps for ranks with pending state."""
        out = []
        for eng in self.matching:
            if eng.pending_recvs or eng.pending_unexpected:
                out.append(eng.describe_blockage())
        return out

    def fault_summary(self) -> List[str]:
        """Audit lines for every fault actually injected this run.

        Appended to deadlock reports so a chaos-run hang names the
        suppressed message instead of reading like a schedule bug.
        """
        out = [f.describe() for f in self.fault_log]
        if len(self.fault_log) >= _FAULT_LOG_CAP:
            out.append(f"... (fault log capped at {_FAULT_LOG_CAP} records)")
        return out
