"""Traffic accounting: the numbers the paper's argument is made of.

The tuned broadcast's whole point is *fewer message transfers and fewer
bytes on the wire for the same number of ring steps*. Counters record
every transfer the transport launches, split by communication level
(intra-node memory copies vs inter-node fabric messages), so experiments
can report exactly the quantities Section IV of the paper discusses
(e.g. 56 -> 44 transfers at P=8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["TrafficCounters"]


@dataclass
class TrafficCounters:
    """Mutable tally of transfers launched by a job."""

    messages: int = 0
    bytes: int = 0
    intra_messages: int = 0
    intra_bytes: int = 0
    inter_messages: int = 0
    inter_bytes: int = 0
    sent_by_rank: Dict[int, int] = field(default_factory=dict)
    received_by_rank: Dict[int, int] = field(default_factory=dict)
    bytes_sent_by_rank: Dict[int, int] = field(default_factory=dict)
    bytes_received_by_rank: Dict[int, int] = field(default_factory=dict)
    # -- chaos / reliability accounting (docs/robustness.md) -------------
    # Injected by a FaultPlan:
    drops_injected: int = 0
    dup_injected: int = 0
    corrupt_injected: int = 0
    # Spent by the reliability layer recovering from the above. None of
    # these feed ``messages``/``bytes``: with zero retransmissions the
    # wire counters stay bitwise-identical to a fault-free run.
    retrans_messages: int = 0
    retrans_bytes: int = 0
    ack_messages: int = 0
    ack_bytes: int = 0
    timeouts: int = 0
    dup_suppressed: int = 0
    corrupt_dropped: int = 0

    CHAOS_FIELDS = (
        "drops_injected",
        "dup_injected",
        "corrupt_injected",
        "retrans_messages",
        "retrans_bytes",
        "ack_messages",
        "ack_bytes",
        "timeouts",
        "dup_suppressed",
        "corrupt_dropped",
    )

    def record(self, src: int, dst: int, nbytes: int, intra: bool) -> None:
        """Count one launched transfer."""
        self.messages += 1
        self.bytes += nbytes
        if intra:
            self.intra_messages += 1
            self.intra_bytes += nbytes
        else:
            self.inter_messages += 1
            self.inter_bytes += nbytes
        self.sent_by_rank[src] = self.sent_by_rank.get(src, 0) + 1
        self.received_by_rank[dst] = self.received_by_rank.get(dst, 0) + 1
        self.bytes_sent_by_rank[src] = self.bytes_sent_by_rank.get(src, 0) + nbytes
        self.bytes_received_by_rank[dst] = (
            self.bytes_received_by_rank.get(dst, 0) + nbytes
        )

    def record_retransmission(self, nbytes: int) -> None:
        """Count one retransmitted payload (reliability layer only)."""
        self.retrans_messages += 1
        self.retrans_bytes += nbytes

    def record_ack(self, nbytes: int) -> None:
        """Count one ACK control packet (kept out of ``messages``)."""
        self.ack_messages += 1
        self.ack_bytes += nbytes

    @property
    def has_chaos(self) -> bool:
        """True when any fault was injected or recovery work was done."""
        return any(getattr(self, name) for name in self.CHAOS_FIELDS)

    def chaos_dict(self) -> dict:
        """Chaos/reliability tallies alone (all keys, zeros included)."""
        return {name: getattr(self, name) for name in self.CHAOS_FIELDS}

    def merge(self, other: "TrafficCounters") -> None:
        """Accumulate another tally (used when composing phases)."""
        self.messages += other.messages
        self.bytes += other.bytes
        self.intra_messages += other.intra_messages
        self.intra_bytes += other.intra_bytes
        self.inter_messages += other.inter_messages
        self.inter_bytes += other.inter_bytes
        for src, n in other.sent_by_rank.items():
            self.sent_by_rank[src] = self.sent_by_rank.get(src, 0) + n
        for dst, n in other.received_by_rank.items():
            self.received_by_rank[dst] = self.received_by_rank.get(dst, 0) + n
        for src, n in other.bytes_sent_by_rank.items():
            self.bytes_sent_by_rank[src] = self.bytes_sent_by_rank.get(src, 0) + n
        for dst, n in other.bytes_received_by_rank.items():
            self.bytes_received_by_rank[dst] = (
                self.bytes_received_by_rank.get(dst, 0) + n
            )
        for name in self.CHAOS_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> dict:
        """Flat summary for reports (chaos tallies only when present,
        so fault-free reports keep their original shape)."""
        out = {
            "messages": self.messages,
            "bytes": self.bytes,
            "intra_messages": self.intra_messages,
            "intra_bytes": self.intra_bytes,
            "inter_messages": self.inter_messages,
            "inter_bytes": self.inter_bytes,
        }
        if self.has_chaos:
            out.update(self.chaos_dict())
        return out

    def __repr__(self) -> str:
        return (
            f"<TrafficCounters msgs={self.messages} bytes={self.bytes} "
            f"(intra {self.intra_messages}/{self.intra_bytes}B, "
            f"inter {self.inter_messages}/{self.inter_bytes}B)>"
        )
