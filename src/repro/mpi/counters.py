"""Traffic accounting: the numbers the paper's argument is made of.

The tuned broadcast's whole point is *fewer message transfers and fewer
bytes on the wire for the same number of ring steps*. Counters record
every transfer the transport launches, split by communication level
(intra-node memory copies vs inter-node fabric messages), so experiments
can report exactly the quantities Section IV of the paper discusses
(e.g. 56 -> 44 transfers at P=8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["TrafficCounters"]


@dataclass
class TrafficCounters:
    """Mutable tally of transfers launched by a job."""

    messages: int = 0
    bytes: int = 0
    intra_messages: int = 0
    intra_bytes: int = 0
    inter_messages: int = 0
    inter_bytes: int = 0
    sent_by_rank: Dict[int, int] = field(default_factory=dict)
    received_by_rank: Dict[int, int] = field(default_factory=dict)
    bytes_sent_by_rank: Dict[int, int] = field(default_factory=dict)
    bytes_received_by_rank: Dict[int, int] = field(default_factory=dict)

    def record(self, src: int, dst: int, nbytes: int, intra: bool) -> None:
        """Count one launched transfer."""
        self.messages += 1
        self.bytes += nbytes
        if intra:
            self.intra_messages += 1
            self.intra_bytes += nbytes
        else:
            self.inter_messages += 1
            self.inter_bytes += nbytes
        self.sent_by_rank[src] = self.sent_by_rank.get(src, 0) + 1
        self.received_by_rank[dst] = self.received_by_rank.get(dst, 0) + 1
        self.bytes_sent_by_rank[src] = self.bytes_sent_by_rank.get(src, 0) + nbytes
        self.bytes_received_by_rank[dst] = (
            self.bytes_received_by_rank.get(dst, 0) + nbytes
        )

    def merge(self, other: "TrafficCounters") -> None:
        """Accumulate another tally (used when composing phases)."""
        self.messages += other.messages
        self.bytes += other.bytes
        self.intra_messages += other.intra_messages
        self.intra_bytes += other.intra_bytes
        self.inter_messages += other.inter_messages
        self.inter_bytes += other.inter_bytes
        for src, n in other.sent_by_rank.items():
            self.sent_by_rank[src] = self.sent_by_rank.get(src, 0) + n
        for dst, n in other.received_by_rank.items():
            self.received_by_rank[dst] = self.received_by_rank.get(dst, 0) + n
        for src, n in other.bytes_sent_by_rank.items():
            self.bytes_sent_by_rank[src] = self.bytes_sent_by_rank.get(src, 0) + n
        for dst, n in other.bytes_received_by_rank.items():
            self.bytes_received_by_rank[dst] = (
                self.bytes_received_by_rank.get(dst, 0) + n
            )

    def as_dict(self) -> dict:
        """Flat summary for reports."""
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "intra_messages": self.intra_messages,
            "intra_bytes": self.intra_bytes,
            "inter_messages": self.inter_messages,
            "inter_bytes": self.inter_bytes,
        }

    def __repr__(self) -> str:
        return (
            f"<TrafficCounters msgs={self.messages} bytes={self.bytes} "
            f"(intra {self.intra_messages}/{self.intra_bytes}B, "
            f"inter {self.inter_messages}/{self.inter_bytes}B)>"
        )
