"""MPI datatypes: elementary types and derived layouts.

The transport moves bytes; this layer gives those bytes MPI's type
vocabulary so applications can write ``send(dst, count=1024,
datatype=DOUBLE)`` instead of hand-multiplying sizes, and so packing
math (the part of derived datatypes that affects *how many bytes* move
and whether they are contiguous) is available for layout studies.

Implemented:

* elementary types (``BYTE``, ``CHAR``, ``INT``, ``FLOAT``, ``DOUBLE``,
  ``LONG``) with MPI's sizes;
* ``contiguous(n, base)`` — n repetitions;
* ``vector(count, blocklength, stride, base)`` — strided blocks, the
  classic row/column-slice type; carries both ``size`` (payload bytes)
  and ``extent`` (span in the buffer), and knows whether a pack step is
  needed (non-contiguous data must be packed before the wire, which the
  context charges as compute time at the rank's copy bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MpiError

__all__ = [
    "Datatype",
    "BYTE",
    "CHAR",
    "INT",
    "LONG",
    "FLOAT",
    "DOUBLE",
    "contiguous",
    "vector",
    "type_size",
]


@dataclass(frozen=True)
class Datatype:
    """An MPI datatype: payload size, buffer extent, contiguity."""

    name: str
    size: int  # bytes of actual data per element
    extent: int  # bytes of buffer span per element
    contiguous: bool = True

    def __post_init__(self):
        if self.size < 0 or self.extent < 0:
            raise MpiError(f"datatype {self.name!r} with negative size/extent")
        if self.extent < self.size and self.extent != 0:
            raise MpiError(
                f"datatype {self.name!r}: extent {self.extent} < size {self.size}"
            )

    def payload_bytes(self, count: int) -> int:
        """Wire bytes for *count* elements."""
        if count < 0:
            raise MpiError(f"negative element count {count}")
        return count * self.size

    def span_bytes(self, count: int) -> int:
        """Buffer span occupied by *count* elements."""
        if count < 0:
            raise MpiError(f"negative element count {count}")
        if count == 0:
            return 0
        # MPI extent semantics: the last element contributes only size.
        return (count - 1) * self.extent + self.size

    def needs_pack(self) -> bool:
        return not self.contiguous

    def __repr__(self) -> str:
        flag = "" if self.contiguous else ", non-contiguous"
        return f"<Datatype {self.name}: size={self.size}, extent={self.extent}{flag}>"


BYTE = Datatype("MPI_BYTE", 1, 1)
CHAR = Datatype("MPI_CHAR", 1, 1)
INT = Datatype("MPI_INT", 4, 4)
LONG = Datatype("MPI_LONG", 8, 8)
FLOAT = Datatype("MPI_FLOAT", 4, 4)
DOUBLE = Datatype("MPI_DOUBLE", 8, 8)


def contiguous(n: int, base: Datatype = BYTE, name: str = None) -> Datatype:
    """``MPI_Type_contiguous``: n repetitions of *base*."""
    if n < 1:
        raise MpiError(f"contiguous needs n >= 1, got {n}")
    return Datatype(
        name or f"contig({n},{base.name})",
        size=n * base.size,
        extent=n * base.extent,
        contiguous=base.contiguous,
    )


def vector(
    count: int, blocklength: int, stride: int, base: Datatype = BYTE, name: str = None
) -> Datatype:
    """``MPI_Type_vector``: *count* blocks of *blocklength* elements,
    block starts *stride* elements apart (stride >= blocklength)."""
    if count < 1 or blocklength < 1:
        raise MpiError("vector needs count >= 1 and blocklength >= 1")
    if stride < blocklength:
        raise MpiError(
            f"vector stride {stride} smaller than blocklength {blocklength}"
        )
    size = count * blocklength * base.size
    extent = ((count - 1) * stride + blocklength) * base.extent
    contig = base.contiguous and (stride == blocklength or count == 1)
    return Datatype(
        name or f"vector({count},{blocklength},{stride},{base.name})",
        size=size,
        extent=extent,
        contiguous=contig,
    )


def type_size(datatype: Datatype, count: int) -> int:
    """``MPI_Type_size`` x count — wire bytes for the message."""
    return datatype.payload_bytes(count)
