"""Operation descriptors yielded by rank programs.

Rank programs are generators; each ``yield`` hands one of these
descriptors to whichever executor is driving the program (DES runtime,
schedule counter or threads backend) and receives the operation's result
back at the yield expression:

===============  ==========================================
descriptor       yield result
===============  ==========================================
``SendOp``       ``None`` (returns when the send completes)
``RecvOp``       :class:`~repro.mpi.request.Status`
``IsendOp``      :class:`~repro.mpi.request.Request`
``IrecvOp``      :class:`~repro.mpi.request.Request`
``WaitOp``       list of ``Status`` (``None`` for sends)
``ComputeOp``    ``None`` (after the simulated delay)
===============  ==========================================

All ranks in descriptors are *global transport ranks*; the
:class:`~repro.mpi.context.RankContext` translates communicator-local
ranks before yielding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..errors import MpiError

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "SendOp",
    "RecvOp",
    "IsendOp",
    "IrecvOp",
    "WaitOp",
    "ComputeOp",
]

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(frozen=True)
class SendOp:
    """Blocking send of ``nbytes`` from ``buffer[disp:]`` to global ``dst``."""

    dst: int
    nbytes: int
    tag: int = 0
    buffer: object = None  # RealBuffer/PhantomBuffer or None (metadata-only)
    disp: int = 0
    chunks: Tuple[int, ...] = ()

    def __post_init__(self):
        if self.nbytes < 0:
            raise MpiError(f"send of negative size {self.nbytes}")
        if self.dst < 0:
            raise MpiError(f"send to invalid rank {self.dst}")
        if self.tag < 0:
            raise MpiError(f"send with invalid tag {self.tag} (tags must be >= 0)")


@dataclass(frozen=True)
class RecvOp:
    """Blocking receive of at most ``nbytes`` into ``buffer[disp:]``.

    ``src`` may be :data:`ANY_SOURCE` and ``tag`` :data:`ANY_TAG`.
    """

    src: int
    nbytes: int
    tag: int = 0
    buffer: object = None
    disp: int = 0

    def __post_init__(self):
        if self.nbytes < 0:
            raise MpiError(f"recv of negative size {self.nbytes}")
        if self.src < ANY_SOURCE:
            raise MpiError(f"recv from invalid rank {self.src}")
        if self.tag < ANY_TAG:
            raise MpiError(f"recv with invalid tag {self.tag}")


@dataclass(frozen=True)
class IsendOp(SendOp):
    """Nonblocking send; yields a Request immediately."""


@dataclass(frozen=True)
class IrecvOp(RecvOp):
    """Nonblocking receive; yields a Request immediately."""


@dataclass(frozen=True)
class WaitOp:
    """Block until every request in ``requests`` completes."""

    requests: tuple = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "requests", tuple(self.requests))


@dataclass(frozen=True)
class ComputeOp:
    """Occupy the rank for ``seconds`` of simulated computation."""

    seconds: float

    def __post_init__(self):
        if self.seconds < 0:
            raise MpiError(f"compute of negative duration {self.seconds}")
