"""Requests and statuses for the simulated point-to-point layer."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..errors import MpiError

__all__ = ["Status", "Request"]


class Status:
    """Completion record of a receive (mirrors ``MPI_Status``).

    ``chunks`` carries the scatter-chunk ids the sender attached to the
    message — simulator-only metadata that lets tests assert the tuned
    ring never redelivers an owned chunk.
    """

    __slots__ = ("source", "tag", "nbytes", "chunks")

    def __init__(self, source: int, tag: int, nbytes: int, chunks: Tuple[int, ...] = ()):
        self.source = source
        self.tag = tag
        self.nbytes = nbytes
        self.chunks = tuple(chunks)

    def __eq__(self, other):
        if not isinstance(other, Status):
            return NotImplemented
        return (self.source, self.tag, self.nbytes) == (
            other.source,
            other.tag,
            other.nbytes,
        )

    def __repr__(self) -> str:
        return f"Status(source={self.source}, tag={self.tag}, nbytes={self.nbytes})"


class Request:
    """Handle for an in-flight send or receive.

    The transport drives the request through ``pending -> complete``;
    executors register completion callbacks to resume blocked programs.
    """

    __slots__ = (
        "kind",
        "owner",
        "peer",
        "tag",
        "nbytes",
        "buffer",
        "disp",
        "chunks",
        "complete",
        "status",
        "_callbacks",
        "seq",
    )

    def __init__(
        self,
        kind: str,
        owner: int,
        peer: int,
        tag: int,
        nbytes: int,
        buffer=None,
        disp: int = 0,
        chunks: Tuple[int, ...] = (),
    ):
        if kind not in ("send", "recv"):
            raise MpiError(f"unknown request kind {kind!r}")
        self.kind = kind
        self.owner = owner
        self.peer = peer  # dst for sends; src (may be ANY_SOURCE) for recvs
        self.tag = tag
        self.nbytes = nbytes
        self.buffer = buffer
        self.disp = disp
        self.chunks = tuple(chunks)
        self.complete = False
        self.status: Optional[Status] = None
        self._callbacks: List[Callable] = []
        self.seq = -1  # assigned by the transport for FIFO matching

    def on_complete(self, callback: Callable) -> None:
        """Run ``callback(request)`` at completion (immediately if done)."""
        if self.complete:
            callback(self)
        else:
            self._callbacks.append(callback)

    def finish(self, status: Optional[Status] = None) -> None:
        """Mark complete and fire callbacks (transport-internal)."""
        if self.complete:
            raise MpiError(f"request completed twice: {self!r}")
        self.complete = True
        self.status = status
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:
        state = "complete" if self.complete else "pending"
        return (
            f"<Request {self.kind} owner={self.owner} peer={self.peer} "
            f"tag={self.tag} nbytes={self.nbytes} {state}>"
        )
