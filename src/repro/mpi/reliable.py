"""A reliable transport: sequence numbers, ACKs, timeout + retransmit.

:class:`ReliableTransport` is a drop-in :class:`~repro.mpi.transport.Transport`
replacement that survives the faults a :class:`~repro.sim.faults.FaultPlan`
injects. The protocol is a deliberately small stop-and-wait-per-message ARQ:

* every data packet carries a per-``(src, dst)`` **sequence number**;
* the receiving transport **positively ACKs** each packet it buffers;
  the *send request completes when its ACK arrives* — crucially at the
  transport level, independent of the receiving rank's program, so the
  tuned ring's half-duplex degraded steps (a rank in a send-only step
  whose peer is in a recv-only step) still terminate under loss;
* an unACKed packet is **retransmitted** after a timeout that grows by
  ``backoff``\\ :sup:`attempt` (so retries straddle blackout windows),
  up to ``max_retries`` retransmissions — then the sender declares the
  link dead with a typed :class:`~repro.errors.TransportExhaustedError`;
* the receiver delivers each channel **in order** (TCP-style reassembly
  of out-of-order arrivals) which preserves MPI's non-overtaking rule
  even when a retransmission overtakes a later packet, **suppresses
  duplicates** (re-ACKing them, since a duplicate usually means the
  first ACK died), and **discards checksum-failed payloads** so a
  corruption becomes a loss the retry machinery already handles.

Modelling notes: reliable mode prices transfers analytically (path
latency + ``nbytes / bottleneck-bandwidth``) instead of through the
fluid-flow solver — retransmissions are not contention-priced, which is
fine for the chaos gate's correctness questions and keeps the ARQ state
machine independent of flow lifetimes. Rendezvous is not used: every
payload ships with its packet and the ACK provides the only
synchronisation. Wire accounting stays differential-friendly: first
transmissions hit the normal ``messages``/``bytes`` counters, while
retransmissions, duplicates and ACKs only touch the chaos fields — a
run with zero retransmissions reports counters bitwise-identical to a
fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError, TransportExhaustedError
from ..sim.faults import FaultDecision
from .matching import Envelope
from .request import Request
from .transport import Transport, _Delivery

__all__ = ["ReliableConfig", "ReliableTransport", "ACK_TAG"]

#: Tag reserved for ACK control packets (never visible to matching).
ACK_TAG = -101


@dataclass(frozen=True)
class ReliableConfig:
    """Tuning knobs of the ARQ protocol (see docs/robustness.md).

    The retransmit timeout for attempt *k* (0-based) is
    ``(min_timeout + margin * rtt_estimate) * backoff**k`` where the RTT
    estimate is two path latencies plus the payload serialisation time.
    """

    min_timeout: float = 20e-6
    timeout_margin: float = 4.0
    backoff: float = 2.0
    max_retries: int = 6
    ack_nbytes: int = 64
    checksum: bool = True

    def __post_init__(self):
        if self.min_timeout <= 0:
            raise ConfigurationError("min_timeout must be > 0")
        if self.timeout_margin < 1.0:
            raise ConfigurationError("timeout_margin must be >= 1")
        if self.backoff < 1.0:
            raise ConfigurationError("backoff must be >= 1")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.ack_nbytes < 0:
            raise ConfigurationError("ack_nbytes must be >= 0")


class _Packet:
    """One transmission on the wire (original, retransmission or dup)."""

    __slots__ = ("send_req", "payload", "seq", "corrupt")

    def __init__(self, send_req: Request, payload, seq: int, corrupt: bool):
        self.send_req = send_req
        self.payload = payload
        self.seq = seq
        self.corrupt = corrupt


class _PendingSend:
    """Sender-side ARQ state for one unacknowledged message."""

    __slots__ = ("req", "seq", "attempts", "timer", "acked", "last_cause")

    def __init__(self, req: Request, seq: int):
        self.req = req
        self.seq = seq
        self.attempts = 0  # transmissions so far (1 = original only)
        self.timer = None
        self.acked = False
        self.last_cause = ""


class ReliableTransport(Transport):
    """ARQ layer over the fault-injecting transport (module docstring)."""

    def __init__(self, *args, config: Optional[ReliableConfig] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.config = config if config is not None else ReliableConfig()
        self._send_seq: Dict[Tuple[int, int], int] = {}  # next seq to assign
        self._pending: Dict[Tuple[int, int, int], _PendingSend] = {}
        self._next_seq: Dict[Tuple[int, int], int] = {}  # next seq to deliver
        self._ooo: Dict[Tuple[int, int], Dict[int, _Packet]] = {}

    # -- timing ---------------------------------------------------------
    def _xfer_seconds(self, plan, nbytes: int) -> float:
        """Analytic serialisation time on the path's bottleneck."""
        if nbytes == 0:
            return 0.0
        caps = [res.capacity for res in plan.resources]
        if plan.rate_cap:
            caps.append(plan.rate_cap)
        return nbytes / min(caps) if caps else 0.0

    def _timeout_seconds(self, plan, nbytes: int, attempts: int) -> float:
        cfg = self.config
        rtt = 2.0 * plan.latency + self._xfer_seconds(plan, nbytes)
        base = cfg.min_timeout + cfg.timeout_margin * rtt
        return base * cfg.backoff ** max(attempts - 1, 0)

    # -- send path ------------------------------------------------------
    def _launch_send(self, req: Request) -> None:
        plan = self.machine.transfer_plan(req.owner, req.peer)
        self.counters.record(req.owner, req.peer, req.nbytes, plan.intra_node)
        channel = (req.owner, req.peer)
        seq = self._send_seq.get(channel, 0)
        self._send_seq[channel] = seq + 1
        state = _PendingSend(req, seq)
        self._pending[(req.owner, req.peer, seq)] = state
        self._transmit(state, plan)

    def _transmit(self, state: _PendingSend, plan=None) -> None:
        """Put one copy of the message on the wire and arm the timer."""
        req = state.req
        if plan is None:
            plan = self.machine.transfer_plan(req.owner, req.peer)
        state.attempts += 1
        decision = self._decide_fault(req.owner, req.peer, req.tag)
        payload = None
        if req.buffer is not None:
            payload = req.buffer.read(req.disp, req.nbytes)
        corrupt = bool(decision.corrupt)
        if corrupt:
            self.counters.corrupt_injected += 1
            self._log_fault("corrupt", req.owner, req.peer, req.tag, "payload bit-flip")
            if not self.config.checksum:
                payload = self._corrupt_payload(payload)
        self.trace.emit(
            self.engine.now,
            "send_launch",
            src=req.owner,
            dst=req.peer,
            tag=req.tag,
            nbytes=req.nbytes,
            protocol="reliable",
            seq=state.seq,
            attempt=state.attempts,
            intra=plan.intra_node,
        )
        latency = self._latency(plan) + self._queueing_delay(plan, req.nbytes)
        if decision is not FaultDecision.CLEAN:
            latency = latency * decision.latency_factor + decision.extra_latency
        duration = latency + self._xfer_seconds(plan, req.nbytes)
        if decision.drop:
            cause = decision.cause or "drop"
            state.last_cause = cause
            self.counters.drops_injected += 1
            self._log_fault("drop", req.owner, req.peer, req.tag, cause)
            self.trace.emit(
                self.engine.now,
                "send_drop",
                src=req.owner,
                dst=req.peer,
                tag=req.tag,
                nbytes=req.nbytes,
                seq=state.seq,
                cause=cause,
            )
        else:
            packet = _Packet(req, payload, state.seq, corrupt)
            self.engine.schedule(duration, self._packet_arrive, packet)
            if decision.duplicate:
                # The fabric delivers a second copy a little later; the
                # receiver's dedup machinery must absorb it.
                self.counters.dup_injected += 1
                self._log_fault(
                    "duplicate", req.owner, req.peer, req.tag, "fabric duplicate"
                )
                twin = _Packet(req, payload, state.seq, corrupt)
                self.engine.schedule(duration * 1.5, self._packet_arrive, twin)
        timeout = self._timeout_seconds(plan, req.nbytes, state.attempts)
        state.timer = self.engine.schedule(timeout, self._on_timeout, state)

    def _on_timeout(self, state: _PendingSend) -> None:
        if state.acked:  # late timer that lost a cancellation race
            return
        req = state.req
        self.counters.timeouts += 1
        if state.attempts > self.config.max_retries:
            raise TransportExhaustedError(
                req.owner,
                req.peer,
                req.tag,
                attempts=state.attempts,
                nbytes=req.nbytes,
                cause=state.last_cause,
            )
        self.counters.record_retransmission(req.nbytes)
        self.trace.emit(
            self.engine.now,
            "retransmit",
            src=req.owner,
            dst=req.peer,
            tag=req.tag,
            nbytes=req.nbytes,
            seq=state.seq,
            attempt=state.attempts + 1,
        )
        self._transmit(state)

    # -- receive path ---------------------------------------------------
    def _packet_arrive(self, packet: _Packet) -> None:
        req = packet.send_req
        src, dst = req.owner, req.peer
        if packet.corrupt and self.config.checksum:
            # Checksum failure: discard silently — no ACK, so the
            # sender's timer turns the corruption into a retransmission.
            self.counters.corrupt_dropped += 1
            self.trace.emit(
                self.engine.now,
                "corrupt_drop",
                src=src,
                dst=dst,
                tag=req.tag,
                seq=packet.seq,
            )
            return
        channel = (src, dst)
        expected = self._next_seq.get(channel, 0)
        if packet.seq < expected:
            # Already delivered: a duplicate or a retransmission whose
            # ACK was lost. Suppress, but re-ACK so the sender stops.
            self.counters.dup_suppressed += 1
            self.trace.emit(
                self.engine.now,
                "dup_suppress",
                src=src,
                dst=dst,
                tag=req.tag,
                seq=packet.seq,
            )
            self._send_ack(src, dst, packet.seq)
            return
        held = self._ooo.setdefault(channel, {})
        if packet.seq in held:
            self.counters.dup_suppressed += 1
            self._send_ack(src, dst, packet.seq)
            return
        held[packet.seq] = packet
        self._send_ack(src, dst, packet.seq)
        # In-order reassembly: drain every consecutively-numbered packet
        # so deliveries on a channel always happen in send order.
        while expected in held:
            self._deliver_packet(held.pop(expected))
            expected += 1
        self._next_seq[channel] = expected

    def _deliver_packet(self, packet: _Packet) -> None:
        req = packet.send_req
        delivery = _Delivery(req, packet.payload, rendezvous=False)
        delivery.flow_done = True  # payload travelled with the packet
        env = Envelope(req.owner, req.tag, req.nbytes, delivery, packet.seq)
        self._envelope_arrive(req.peer, env)

    # -- ACK path -------------------------------------------------------
    def _send_ack(self, src: int, dst: int, seq: int) -> None:
        """ACK travels the reverse link and is itself fault-prone."""
        self.counters.record_ack(self.config.ack_nbytes)
        decision = self._decide_fault(dst, src, ACK_TAG)
        if decision.drop or decision.corrupt:
            # A mangled control packet is a lost control packet.
            self.counters.drops_injected += 1
            self._log_fault(
                "drop", dst, src, ACK_TAG, decision.cause or "ack corrupted"
            )
            return
        plan = self.machine.transfer_plan(dst, src)
        latency = self._latency(plan)
        if decision is not FaultDecision.CLEAN:
            latency = latency * decision.latency_factor + decision.extra_latency
        duration = latency + self._xfer_seconds(plan, self.config.ack_nbytes)
        self.engine.schedule(duration, self._ack_arrive, src, dst, seq)

    def _ack_arrive(self, src: int, dst: int, seq: int) -> None:
        state = self._pending.pop((src, dst, seq), None)
        if state is None or state.acked:
            return  # duplicate ACK for an already-completed send
        state.acked = True
        if state.timer is not None:
            state.timer.cancel()
        self.trace.emit(
            self.engine.now,
            "ack",
            src=src,
            dst=dst,
            tag=state.req.tag,
            seq=seq,
            attempts=state.attempts,
        )
        state.req.finish()
