"""Command-line interface: ``python -m repro <command> ...``.

Three commands cover the common workflows without writing a script:

* ``compare`` — native vs tuned broadcast at one point;
* ``sweep``   — a bandwidth-vs-size table (one Figure-6/8-style panel);
* ``traffic`` — Section IV transfer-count arithmetic for a grid of P.

Examples::

    python -m repro compare --nranks 64 --nbytes 1MiB
    python -m repro sweep --nranks 129 --sizes 12KiB,64KiB,512KiB,1MiB
    python -m repro traffic --procs 8,10,16,64
"""

from __future__ import annotations

import argparse
import sys

from .core import (
    Sweep,
    compare_bcast,
    measure_traffic,
    ring_transfers_native,
    ring_transfers_tuned,
    transfers_saved,
)
from .machine import hornet, ideal, laki
from .util import Table

_PRESETS = {"hornet": hornet, "laki": laki, "ideal": ideal}


def _spec(args):
    factory = _PRESETS[args.machine]
    return factory(nodes=args.nodes) if args.nodes else factory()


def _add_machine_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--machine",
        choices=sorted(_PRESETS),
        default="hornet",
        help="machine preset (default: hornet)",
    )
    p.add_argument("--nodes", type=int, default=0, help="override node count")
    p.add_argument(
        "--placement",
        choices=["blocked", "round_robin"],
        default="blocked",
        help="rank placement policy",
    )


def cmd_compare(args) -> int:
    cmp = compare_bcast(
        _spec(args), nranks=args.nranks, nbytes=args.nbytes, placement=args.placement
    )
    print(cmp.describe())
    return 0


def cmd_sweep(args) -> int:
    sizes = args.sizes.split(",")
    sweep = Sweep(
        _spec(args),
        sizes=sizes,
        ranks=[args.nranks],
        algorithms=["scatter_ring_native", "scatter_ring_opt"],
        placement=args.placement,
    )
    print(
        sweep.to_table(
            args.nranks,
            "scatter_ring_native",
            "scatter_ring_opt",
            title=f"np={args.nranks} on {args.machine}",
        )
    )
    return 0


def cmd_traffic(args) -> int:
    procs = [int(p) for p in args.procs.split(",")]
    table = Table(
        ["P", "native", "tuned", "saved", "measured tuned"],
        title="Ring-allgather transfers (closed form vs schedule)",
    )
    for P in procs:
        measured = measure_traffic("scatter_ring_opt", P, 1024 * P).ring_transfers
        table.add_row(
            P,
            ring_transfers_native(P),
            ring_transfers_tuned(P),
            transfers_saved(P),
            measured,
        )
    print(table)
    return 0


def cmd_validate(args) -> int:
    from .collectives import ALGORITHMS

    spec = _spec(args)
    table = Table(
        ["algorithm", "time (us)", "messages", "data"],
        formats=[None, ".1f", None, None],
        title=f"validated broadcasts: np={args.nranks}, {args.nbytes}, root={args.root}",
    )
    from .core import simulate_bcast
    from .util import is_power_of_two as _pof2

    failures = 0
    for name in sorted(ALGORITHMS):
        if name == "scatter_rdbl" and not _pof2(args.nranks):
            table.add_row(name, None, None, "skipped (needs pof2)")
            continue
        try:
            rec = simulate_bcast(
                spec,
                args.nranks,
                args.nbytes,
                algorithm=name,
                root=args.root,
                placement=args.placement,
                validate=True,
            )
            table.add_row(name, rec.time * 1e6, rec.messages, "OK")
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures += 1
            table.add_row(name, None, None, f"FAILED: {exc}")
    print(table)
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bandwidth-saving MPI broadcast reproduction (Zhou et al., ICPP 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compare", help="native vs tuned broadcast at one point")
    _add_machine_args(p)
    p.add_argument("--nranks", type=int, default=64)
    p.add_argument("--nbytes", default="1MiB")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("sweep", help="bandwidth table over message sizes")
    _add_machine_args(p)
    p.add_argument("--nranks", type=int, default=64)
    p.add_argument(
        "--sizes", default="512KiB,1MiB,2MiB,4MiB", help="comma-separated sizes"
    )
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("traffic", help="transfer-count table for process counts")
    p.add_argument("--procs", default="8,10,16,64", help="comma-separated P values")
    p.set_defaults(func=cmd_traffic)

    p = sub.add_parser(
        "validate", help="data-checked run of every broadcast algorithm"
    )
    _add_machine_args(p)
    p.add_argument("--nranks", type=int, default=16)
    p.add_argument("--nbytes", default="64KiB")
    p.add_argument("--root", type=int, default=0)
    p.set_defaults(func=cmd_validate)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
