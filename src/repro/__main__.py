"""Command-line interface: ``python -m repro <command> ...``.

Commands cover the common workflows without writing a script:

* ``compare`` — native vs tuned broadcast at one point;
* ``sweep``   — a bandwidth-vs-size table (one Figure-6/8-style panel);
* ``figure``  — run one of the paper's figure grids end to end;
* ``traffic`` — Section IV transfer-count arithmetic for a grid of P;
* ``validate``— data-checked run of every broadcast algorithm;
* ``verify``  — static schedule verification: chunk provenance,
  redundancy counts (``S - P``), rendezvous deadlock, match hazards,
  plus a cost-model consistency pass (``--no-cost`` to skip);
* ``cost``    — static α-β/LogGP cost table per collective; ``--grid``
  runs the full sim-differential gate (``--strict`` for nonzero exit);
* ``chaos``   — fault-injection differential gate: collectives run on
  the reliable (ARQ) transport under seeded fault plans and must
  deliver bit-identical payloads or fail with a typed dead-link error;
  ``--grid`` covers the whole registry (``--strict`` for nonzero exit);
* ``replay``  — vectorized-replay differential gate: the schedule
  replay engine must reproduce the DES bitwise (makespan, per-rank
  finish times, every wire counter); single point by default,
  ``--grid`` covers the registry (``--strict`` for nonzero exit);
* ``serve``   — start the persistent simulation service: a warm worker
  pool plus the sharded result cache behind a local TCP socket, so
  repeated sweeps skip process start-up and share hot solver memos
  (``--status`` pings a running server, ``--stop`` shuts one down);
* ``audit``   — re-execute a stored run artifact and diff it bitwise
  against the recorded results (``--artifact`` on ``sweep``/``verify``/
  ``cost``/``chaos``/``replay``/``mc``/``prove`` records one);
* ``service-chaos`` — fault-injection gate for the simulation service
  itself: kill pool workers mid-batch, sever the client socket
  mid-stream, truncate cache shards, plant stale state files — every
  scenario must end in bitwise-identical results or a typed error;
* ``bench-report`` — print every ``BENCH_*.json`` performance
  trajectory file as one table;
* ``trace``   — simulate one collective with tracing and report the
  critical path (``--critical-path``) or export a Chrome trace
  (``--chrome out.json``);
* ``prove``   — parametric certificate checker: discharges each
  registry schedule's inductive ownership invariant symbolically in P
  (exact rational arithmetic, valid for **all** P >= 2), derives the
  paper's transfer-count theorems as corollaries, and cross-validates
  every certificate against concrete provenance at P in [2, 64];
  uncertified collectives must carry an explicit waiver;
* ``lint``    — AST determinism lint over the simulation core;
* ``cache``   — inspect, clear, or checksum-verify (``--fsck``) the
  persistent sweep-result cache.

Every analysis subcommand (``verify``/``cost``/``chaos``/``replay``/
``mc``/``prove``/``lint``) follows one exit-code convention: **0** all
checks passed, **1** at least one violation/failed obligation (for the
differential gates, only under ``--strict``), **2** configuration or
usage error (unknown collective, malformed ``--nranks``/``--nbytes``,
missing file). Set ``REPRO_GATE_TIMES=path.json`` to append each
subcommand's wall time to a ``BENCH_``-style JSON that ``bench-report``
renders alongside the performance trajectories.

``sweep`` and ``figure`` accept ``--jobs N`` to fan points out over N
worker processes (``0`` = one per CPU) and use the on-disk result cache
by default (``--no-cache`` bypasses it, ``--cache-dir`` relocates it).
With a ``repro serve`` instance running, ``--serve`` (or
``REPRO_SERVE=auto``) submits the points to its warm pool instead;
``--serve HOST:PORT`` names a server explicitly and fails if it is
unreachable, while auto-discovery falls back to the in-process path.
The verify/cost/chaos/replay grid gates take the same flag and run
server-side when it is given.

Examples::

    python -m repro compare --nranks 64 --nbytes 1MiB
    python -m repro sweep --nranks 129 --sizes 12KiB,64KiB,512KiB,1MiB --jobs 4
    python -m repro figure --id fig6b --jobs 0
    python -m repro serve --jobs 0          # then: sweep/figure --serve
    python -m repro serve --status
    python -m repro figure --id fig6b --serve
    python -m repro traffic --procs 8,10,16,64
    python -m repro verify --collective bcast_native --nranks 8
    python -m repro verify --nranks 2,5,8,10,16 --json
    python -m repro cost --nranks 8 --nbytes 1MiB
    python -m repro cost --grid --strict
    python -m repro chaos --grid --strict
    python -m repro chaos --collective bcast_opt --nranks 8 --seed 7
    python -m repro replay --grid --strict
    python -m repro replay --collective bcast_opt --nranks 129 --nbytes 12KiB
    python -m repro bench-report
    python -m repro compare --fault-drop 0.1 --chaos-stats
    python -m repro trace --collective bcast_opt --nranks 8 --critical-path
    python -m repro prove --all --strict
    python -m repro prove --collective bcast_opt --json
    python -m repro lint
    python -m repro cache --clear
    python -m repro cache --fsck --repair
    python -m repro sweep --nranks 8 --sizes 64KiB --artifact
    python -m repro audit sweep-0123abcd4567
    python -m repro service-chaos --seed 0
"""

from __future__ import annotations

import argparse
import sys

from .errors import ServiceUnavailableError

from .core import (
    DiskCache,
    Sweep,
    compare_bcast,
    measure_traffic,
    ring_transfers_native,
    ring_transfers_tuned,
    transfers_saved,
)
from .machine import hornet, ideal, laki
from .util import Table

_PRESETS = {"hornet": hornet, "laki": laki, "ideal": ideal}


def _spec(args):
    factory = _PRESETS[args.machine]
    return factory(nodes=args.nodes) if args.nodes else factory()


def _parse_ranks(text: str) -> list:
    """Parse a ``2,5,8``-style rank list; usage errors exit 2."""
    from .errors import ConfigurationError

    try:
        ranks = [int(p) for p in text.split(",") if p.strip()]
    except ValueError:
        raise ConfigurationError(f"cannot parse process-count list: {text!r}")
    if not ranks or any(r < 1 for r in ranks):
        raise ConfigurationError(f"process counts must be >= 1: {text!r}")
    return ranks


def _add_machine_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--machine",
        choices=sorted(_PRESETS),
        default="hornet",
        help="machine preset (default: hornet)",
    )
    p.add_argument("--nodes", type=int, default=0, help="override node count")
    p.add_argument(
        "--placement",
        choices=["blocked", "round_robin"],
        default="blocked",
        help="rank placement policy",
    )


def _solver_stats_table(records) -> Table:
    """Fluid-solver telemetry rows for a set of RunRecords."""
    table = Table(
        ["algorithm", "P", "solves", "rounds", "components", "max comp", "solve ms"],
        formats=[None, None, None, None, None, None, ".2f"],
        title=f"solver telemetry (mode: {records[0].solver_mode or 'n/a'})",
    )
    for rec in records:
        table.add_row(
            rec.algorithm,
            rec.nranks,
            rec.solver_solves,
            rec.solver_rounds,
            rec.solver_components,
            rec.solver_max_component,
            rec.solver_time_s * 1e3,
        )
    return table


def _chaos_stats_table(records) -> Table:
    """Reliable-transport telemetry rows for a set of RunRecords."""
    table = Table(
        ["algorithm", "P", "drops", "retrans", "retrans B", "ACKs",
         "ACK B", "timeouts"],
        title="chaos telemetry (injected faults / ARQ recovery traffic)",
    )
    for rec in records:
        table.add_row(
            rec.algorithm,
            rec.nranks,
            rec.drops_injected,
            rec.retrans_messages,
            rec.retrans_bytes,
            rec.ack_messages,
            rec.ack_bytes,
            rec.timeouts,
        )
    return table


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--fault-drop",
        type=float,
        default=0.0,
        metavar="P",
        help="per-message drop probability (enables the reliable transport)",
    )
    p.add_argument(
        "--fault-dup",
        type=float,
        default=0.0,
        metavar="P",
        help="per-message duplication probability",
    )
    p.add_argument(
        "--fault-corrupt",
        type=float,
        default=0.0,
        metavar="P",
        help="per-message corruption probability",
    )
    p.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="fault-plan seed (default: 0)",
    )


def _faults(args):
    from .sim import FaultPlan

    if not (args.fault_drop or args.fault_dup or args.fault_corrupt):
        return None
    return FaultPlan.uniform(
        seed=args.fault_seed,
        drop_p=args.fault_drop,
        dup_p=args.fault_dup,
        corrupt_p=args.fault_corrupt,
        name="cli",
    )


def cmd_compare(args) -> int:
    cmp = compare_bcast(
        _spec(args),
        nranks=args.nranks,
        nbytes=args.nbytes,
        placement=args.placement,
        faults=_faults(args),
    )
    print(cmp.describe())
    if args.solver_stats:
        print(_solver_stats_table([cmp.native, cmp.opt]))
    if args.chaos_stats:
        print(_chaos_stats_table([cmp.native, cmp.opt]))
    return 0


def _add_exec_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (1=serial, 0=all CPUs)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent on-disk result cache",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    _add_serve_arg(p)


def _add_serve_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--serve",
        nargs="?",
        const="auto",
        default=None,
        metavar="ADDR",
        help=(
            "submit to a running simulation server (`repro serve`); bare "
            "--serve auto-discovers one and falls back in-process, an "
            "explicit HOST:PORT or state-file path fails if unreachable "
            "(default: follow $REPRO_SERVE)"
        ),
    )


def _exec_cache(args):
    return None if args.no_cache else DiskCache(args.cache_dir)


def _add_artifact_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--artifact",
        nargs="?",
        const="auto",
        default=None,
        metavar="DIR",
        help=(
            "persist a replayable run artifact (bare --artifact uses "
            "$REPRO_ARTIFACTS or <cache-dir>/artifacts; `repro audit` "
            "re-executes and diffs it bitwise)"
        ),
    )


def _persist_artifact(args, kind: str, config: dict, records) -> None:
    """Freeze one completed run into the artifact store when asked.

    Enabled by ``--artifact [DIR]`` or a non-empty ``REPRO_ARTIFACTS``
    environment variable; a no-op otherwise, so the default CLI paths
    stay write-free.
    """
    import os

    dest = getattr(args, "artifact", None)
    if dest is None and not os.environ.get("REPRO_ARTIFACTS", "").strip():
        return
    from .artifacts import ArtifactStore, RunArtifact

    store = ArtifactStore(None if dest in (None, "auto") else dest)
    path = store.save(RunArtifact.create(kind, config, records))
    print(f"artifact: {path}")


def cmd_sweep(args) -> int:
    sizes = args.sizes.split(",")
    sweep = Sweep(
        _spec(args),
        sizes=sizes,
        ranks=[args.nranks],
        algorithms=["scatter_ring_native", "scatter_ring_opt"],
        placement=args.placement,
        faults=_faults(args),
    )
    cache = _exec_cache(args)
    records = sweep.run(jobs=args.jobs, cache=cache, serve=args.serve)
    print(
        sweep.to_table(
            args.nranks,
            "scatter_ring_native",
            "scatter_ring_opt",
            title=f"np={args.nranks} on {args.machine}",
        )
    )
    if args.solver_stats:
        print(_solver_stats_table(records))
    if args.chaos_stats:
        print(_chaos_stats_table(records))
    if cache is not None:
        print(cache.stats().describe())
    import dataclasses

    from .service import protocol as _sproto

    _persist_artifact(
        args,
        "sweep",
        {
            "spec": _sproto.encode_spec(sweep.spec),
            "points": _sproto.encode_points(sweep.points()),
            "root": sweep.root,
            "placement": sweep.placement,
            "faults": _sproto.encode_faults(sweep.faults),
            "reliable": _sproto.encode_reliable(sweep.reliable),
        },
        [dataclasses.asdict(rec) for rec in records],
    )
    return 0


def cmd_figure(args) -> int:
    from .bench import (
        fig6,
        fig7,
        fig8,
        render_bandwidth_table,
        render_plot,
        render_speedup_table,
    )

    factories = {
        "fig6a": lambda: fig6("a"),
        "fig6b": lambda: fig6("b"),
        "fig6c": lambda: fig6("c"),
        "fig7": fig7,
        "fig8": fig8,
    }
    exp = factories[args.id]()
    cache = _exec_cache(args)
    exp.run(jobs=args.jobs, cache=cache, serve=args.serve)
    if args.id == "fig7":
        print(render_speedup_table(exp))
    else:
        nranks = exp.ranks_axis[0]
        print(render_bandwidth_table(exp, nranks))
        print(render_plot(exp, nranks))
    if cache is not None:
        print(cache.stats().describe())
    return 0


def cmd_cache(args) -> int:
    cache = DiskCache(args.cache_dir)
    if args.fsck or args.repair:
        report = cache.fsck(repair=args.repair)
        print(report.describe())
        return 0 if report.ok or args.repair else 1
    if args.clear:
        removed = cache.invalidate()
        print(f"cleared {removed} cached record(s) from {cache.dir}")
    elif args.migrate:
        moved = cache.migrate()
        print(f"migrated {moved} legacy record(s) into {cache.shard_dir}")
    else:
        shards = (
            len(list(cache.shard_dir.glob("*.jsonl")))
            if cache.shard_dir.is_dir()
            else 0
        )
        legacy = " + a legacy file (run --migrate)" if cache.file.exists() else ""
        print(
            f"{cache.dir}: {len(cache)} record(s) in {shards} shard(s){legacy}"
        )
    return 0


def cmd_serve(args) -> int:
    import os
    import signal

    from .errors import ServiceError
    from .service import ServiceClient, SimulationServer
    from .service.protocol import (
        locate_live_server,
        read_state,
        state_file_path,
    )

    if args.status or args.stop:
        state = state_file_path(args.state_file)
        had_file = read_state(state) is not None
        located = locate_live_server(state)
        if located is None:
            if had_file:
                print(
                    f"removed stale state file at {state} "
                    f"(the advertised server process is gone)",
                    file=sys.stderr,
                )
            else:
                print(f"no server state file at {state}", file=sys.stderr)
            return 1
        client = ServiceClient(*located)
        if args.stop:
            if client.shutdown_server():
                print(f"server at {client.address} shutting down")
                return 0
            print(f"no server answered at {client.address}", file=sys.stderr)
            return 1
        try:
            pong = client.ping(timeout=2.0)
            stats = client.stats()
        except (OSError, ServiceError) as exc:
            print(
                f"no server answered at {client.address}: {exc}", file=sys.stderr
            )
            return 1
        print(
            f"server at {client.address}: pid {pong['pid']}, "
            f"{pong['workers']} worker(s)"
        )
        print(
            f"  uptime {stats['uptime_s']:.0f}s, {stats['jobs']} job(s), "
            f"{stats['points']} point(s) served"
        )
        if stats.get("cache"):
            c = stats["cache"]
            print(
                f"  cache: {c['entries']} entries, {c['hits']} hit(s), "
                f"{c['stores']} store(s)"
            )
        return 0

    server = SimulationServer(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache=_exec_cache(args),
        state_file=args.state_file,
    )

    def _shutdown(signum, frame):  # noqa: ARG001 - signal handler signature
        server.request_shutdown()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    print(
        f"simulation server listening on {server.address} "
        f"(pid {os.getpid()}, {server.jobs} worker(s))",
        flush=True,
    )
    server.serve_forever()
    print("server stopped")
    return 0


def _gate_via_service(args, gate: str, params: dict, spec=None, strict=None):
    """Run a grid gate on the simulation service when ``--serve`` asks.

    Returns the exit code when the gate ran server-side, ``None`` when
    the request should proceed locally (no ``--serve``, or
    auto-discovery found no server).
    """
    if getattr(args, "serve", None) is None:
        return None
    import json as _json

    from .service import protocol as _sproto
    from .service.client import connect_or_none

    client = connect_or_none(args.serve)
    if client is None:
        return None
    if spec is not None:
        params = {**params, "spec": _sproto.encode_spec(spec)}
    with client:
        reply = client.gate(gate, params)
    if getattr(args, "json", False):
        print(_json.dumps(reply.get("report"), indent=2))
    else:
        print(reply.get("text", ""))
    ok = bool(reply.get("ok"))
    if strict is None:
        strict = True
    return (1 if not ok else 0) if strict else 0


def cmd_traffic(args) -> int:
    procs = _parse_ranks(args.procs)
    table = Table(
        ["P", "native", "tuned", "saved", "measured tuned"],
        title="Ring-allgather transfers (closed form vs schedule)",
    )
    for P in procs:
        measured = measure_traffic("scatter_ring_opt", P, 1024 * P).ring_transfers
        table.add_row(
            P,
            ring_transfers_native(P),
            ring_transfers_tuned(P),
            transfers_saved(P),
            measured,
        )
    print(table)
    return 0


def cmd_validate(args) -> int:
    from .collectives import ALGORITHMS

    spec = _spec(args)
    table = Table(
        ["algorithm", "time (us)", "messages", "data"],
        formats=[None, ".1f", None, None],
        title=f"validated broadcasts: np={args.nranks}, {args.nbytes}, root={args.root}",
    )
    from .core import simulate_bcast
    from .util import is_power_of_two as _pof2

    failures = 0
    for name in sorted(ALGORITHMS):
        if name == "scatter_rdbl" and not _pof2(args.nranks):
            table.add_row(name, None, None, "skipped (needs pof2)")
            continue
        try:
            rec = simulate_bcast(
                spec,
                args.nranks,
                args.nbytes,
                algorithm=name,
                root=args.root,
                placement=args.placement,
                validate=True,
            )
            table.add_row(name, rec.time * 1e6, rec.messages, "OK")
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures += 1
            table.add_row(name, None, None, f"FAILED: {exc}")
    print(table)
    return 1 if failures else 0


def cmd_verify(args) -> int:
    import json as _json

    from .analysis.verify import verifiable_collectives, verify_collective
    from .errors import ConfigurationError
    from .util import parse_size

    nbytes = parse_size(args.nbytes)
    ranks = _parse_ranks(args.nranks)
    if args.collective == "all" and not args.mc:
        # Route the whole-registry grid to a simulation server when asked.
        # The cost-model consistency pass always runs locally afterwards
        # via the normal path, so a routed verify covers schedules only.
        # (--mc always runs locally: the service protocol predates it.)
        code = _gate_via_service(
            args,
            "verify",
            {
                "ranks": ranks,
                "nbytes": nbytes,
                "root": args.root,
                "strict": args.strict,
                "rendezvous": not args.no_rendezvous,
            },
        )
        if code is not None:
            return code
    reports = []
    for nranks in ranks:
        if args.collective == "all":
            names = verifiable_collectives(nranks)
        else:
            names = [args.collective]
        for name in names:
            try:
                reports.append(
                    verify_collective(
                        name,
                        nranks,
                        nbytes=nbytes,
                        root=args.root,
                        rendezvous=not args.no_rendezvous,
                        modelcheck=args.mc,
                        mc_max_states=args.mc_max_states,
                    )
                )
            except ConfigurationError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
    failed = sum(
        0 if (r.ok_strict() if args.strict else r.ok) else 1 for r in reports
    )
    cost_failures = []
    if not args.no_cost:
        # Extra pass: the static cost model must reproduce the verifier's
        # transfer counts from its own independent schedule extraction.
        from .analysis.costmodel import analyze_collective
        from .machine import ideal as _ideal

        for r in reports:
            try:
                cost = analyze_collective(
                    r.collective, r.nranks, r.nbytes, root=r.root, spec=_ideal()
                )
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                cost_failures.append(
                    f"{r.collective} P={r.nranks}: cost model raised "
                    f"{type(exc).__name__}: {exc}"
                )
                continue
            if cost.transfers != r.transfers:
                cost_failures.append(
                    f"{r.collective} P={r.nranks}: cost model counted "
                    f"{cost.transfers} transfer(s), verifier {r.transfers}"
                )
            elif cost.transfers > 0 and cost.t_bound <= 0:
                cost_failures.append(
                    f"{r.collective} P={r.nranks}: {cost.transfers} "
                    f"transfer(s) but a zero time bound"
                )
    if not args.mc:
        # Freeze the run for `repro audit` (--mc reports carry extra
        # model-checker state the audit runner does not reproduce).
        _persist_artifact(
            args,
            "verify",
            {
                "collective": args.collective,
                "ranks": ranks,
                "nbytes": nbytes,
                "root": args.root,
                "rendezvous": not args.no_rendezvous,
            },
            [r.to_dict() for r in reports],
        )
    if args.json:
        print(_json.dumps([r.to_dict() for r in reports], indent=2))
        for line in cost_failures:
            print(f"cost pass: {line}", file=sys.stderr)
        return 1 if failed or cost_failures else 0
    table = Table(
        ["collective", "P", "transfers", "redundant", "expected", "hazards",
         "rendezvous", "verdict"],
        title=f"static schedule verification (nbytes={nbytes}, root={args.root})",
    )
    for r in reports:
        ok = r.ok_strict() if args.strict else r.ok
        table.add_row(
            r.collective,
            r.nranks,
            r.transfers,
            r.redundant_count if r.tracked else "-",
            r.expected_redundant if r.expected_redundant is not None else "-",
            len(r.hazards),
            "-" if r.rendezvous is None
            else ("DEADLOCK" if r.rendezvous.deadlocked else "safe"),
            "OK" if ok else "FAIL",
        )
    print(table)
    for r in reports:
        ok = r.ok_strict() if args.strict else r.ok
        if not ok:
            print()
            print(r.describe())
    if not args.no_cost:
        if cost_failures:
            print("\ncost-model consistency pass:")
            for line in cost_failures:
                print(f"  FAIL {line}")
        else:
            print(f"\ncost-model consistency pass: {len(reports)} report(s) OK")
    print(f"\n{len(reports) - failed}/{len(reports)} schedule(s) verified")
    return 1 if failed or cost_failures else 0


def cmd_mc(args) -> int:
    import json as _json

    from .analysis.modelcheck import check_collective, mc_grid
    from .errors import ConfigurationError
    from .sim.faults import FaultPlan
    from .util import parse_size

    nbytes = parse_size(args.nbytes)
    if args.grid:
        report = mc_grid(
            nbytes=nbytes, max_states=args.max_states, seed=args.seed
        )
        _persist_artifact(
            args,
            "mc",
            {
                "nbytes": nbytes,
                "max_states": args.max_states,
                "seed": args.seed,
            },
            report.to_dict(),
        )
        if args.json:
            print(_json.dumps(report.to_dict(), indent=2))
        else:
            table = Table(
                ["collective", "P", "plan", "mode", "states", "execs",
                 "terminals", "status"],
                title=(
                    f"match-order model checking (nbytes={nbytes}, "
                    f"max_states={args.max_states}, seed={args.seed})"
                ),
            )
            for c in report.checks:
                table.add_row(
                    c.collective, c.nranks, c.plan, c.mode, c.states,
                    c.executions, c.terminals, c.status.upper(),
                )
            print(table)
            for c in report.failures:
                if c.status == "fail":
                    print(
                        f"  FAIL {c.collective} P={c.nranks} "
                        f"plan={c.plan}: {c.detail}"
                    )
            print(report.describe().splitlines()[-1])
        failed = any(c.status == "fail" for c in report.checks)
        incomplete = any(c.status == "incomplete" for c in report.checks)
        return 1 if failed or (args.strict and incomplete) else 0
    faults = None
    if args.drop_p or args.dup_p or args.corrupt_p:
        faults = FaultPlan.uniform(
            seed=args.seed,
            drop_p=args.drop_p,
            dup_p=args.dup_p,
            corrupt_p=args.corrupt_p,
            name="cli",
        )
    reports = []
    for nranks in _parse_ranks(args.nranks):
        try:
            reports.append(
                check_collective(
                    args.collective,
                    nranks,
                    nbytes=nbytes,
                    root=args.root,
                    mode="naive" if args.naive else "dpor",
                    max_states=args.max_states,
                    faults=faults,
                    max_attempts=args.max_attempts,
                )
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.json:
        print(_json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        for r in reports:
            print(r.describe())
    failed = any(not r.ok for r in reports)
    incomplete = any(not r.complete for r in reports)
    return 1 if failed or (args.strict and incomplete) else 0


def cmd_cost(args) -> int:
    import json as _json

    from .analysis.costmodel import analyze_collective, differential_gate
    from .analysis.verify import verifiable_collectives
    from .errors import ConfigurationError
    from .util import parse_size

    # The gate's band guarantees are calibrated against the contention-free
    # ideal preset (the spec the bound provably tracks); the per-collective
    # table defaults to hornet like every other simulation command.
    if args.machine is None:
        args.machine = "ideal" if args.grid else "hornet"
    spec = _spec(args)
    if args.grid:
        code = _gate_via_service(
            args,
            "cost",
            {"placement": args.placement, "band": args.band},
            spec=spec,
            strict=args.strict,
        )
        if code is not None:
            return code
        report = differential_gate(
            spec=spec,
            placement=args.placement,
            band=args.band,
            progress=None if args.json else print,
        )
        from .service import protocol as _sproto

        _persist_artifact(
            args,
            "cost",
            {
                "spec": _sproto.encode_spec(spec),
                "placement": args.placement,
                "band": args.band,
            },
            report.to_dict(),
        )
        if args.json:
            print(_json.dumps(report.to_dict(), indent=2))
        else:
            print(report.describe())
        return (1 if not report.ok else 0) if args.strict else 0

    nbytes = parse_size(args.nbytes)
    if args.collective == "all":
        names = verifiable_collectives(args.nranks)
    else:
        names = [args.collective]
    reports = []
    for name in names:
        try:
            reports.append(
                analyze_collective(
                    name,
                    args.nranks,
                    nbytes,
                    root=args.root,
                    spec=spec,
                    placement=args.placement,
                )
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.json:
        print(_json.dumps([r.to_dict() for r in reports], indent=2))
        return 0
    table = Table(
        ["collective", "transfers", "bytes", "rounds", "t_chain us",
         "t_link us", "t_bound us", "busiest link"],
        formats=[None, None, None, None, ".2f", ".2f", ".2f", None],
        title=(
            f"static cost model: P={args.nranks}, nbytes={nbytes}, "
            f"root={args.root} on {spec.name} ({args.placement})"
        ),
    )
    for r in reports:
        busiest = r.busiest_link
        table.add_row(
            r.collective,
            r.transfers,
            r.total_bytes,
            r.rounds,
            r.t_chain * 1e6,
            r.t_link * 1e6,
            r.t_bound * 1e6,
            busiest.name if busiest is not None else "-",
        )
    print(table)
    return 0


def cmd_chaos(args) -> int:
    import json as _json

    from .analysis.chaos import DEFAULT_RANKS, chaos_gate
    from .analysis.verify import REGISTRY
    from .util import parse_size

    # Like ``cost --grid``, the gate's reference-equality guarantees are
    # calibrated against the contention-free ideal preset.
    if args.machine is None:
        args.machine = "ideal"
    spec = _spec(args)
    if args.grid:
        code = _gate_via_service(
            args,
            "chaos",
            {"seed": args.seed, "nbytes": parse_size(args.nbytes)},
            spec=spec,
            strict=args.strict,
        )
        if code is not None:
            return code
        collectives = None
        ranks = DEFAULT_RANKS
    else:
        if args.collective not in REGISTRY:
            print(
                f"error: unknown collective {args.collective!r}; "
                f"known: {sorted(REGISTRY)}",
                file=sys.stderr,
            )
            return 2
        collectives = [args.collective]
        ranks = [args.nranks]
    report = chaos_gate(
        seed=args.seed,
        spec=spec,
        collectives=collectives,
        ranks=ranks,
        nbytes=parse_size(args.nbytes),
        progress=None,
    )
    from .service import protocol as _sproto

    _persist_artifact(
        args,
        "chaos",
        {
            "spec": _sproto.encode_spec(spec),
            "seed": args.seed,
            "collectives": collectives,
            "ranks": list(ranks),
            "nbytes": parse_size(args.nbytes),
        },
        report.to_dict(),
    )
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
        return (1 if not report.ok else 0) if args.strict else 0
    table = Table(
        ["collective", "P", "plan", "status", "drops", "retrans",
         "timeouts", "ACKs"],
        title=(
            f"chaos differential gate: seed={report.seed}, "
            f"nbytes={report.nbytes} on {report.machine}"
        ),
    )
    for c in report.checks:
        table.add_row(
            c.collective, c.nranks, c.plan, c.status.upper(),
            c.drops, c.retrans, c.timeouts, c.acks,
        )
    print(table)
    for c in report.failures:
        print(f"  FAIL {c.collective} P={c.nranks} plan={c.plan}: {c.detail}")
    print(report.describe().splitlines()[-1])
    return (1 if not report.ok else 0) if args.strict else 0


def cmd_replay(args) -> int:
    import json as _json

    from .analysis.replaygate import (
        DEFAULT_RANKS,
        DEFAULT_SIZES,
        replay_gate,
        run_replay_point,
    )
    from .analysis.verify import REGISTRY
    from .util import parse_size

    spec = _spec(args)
    if args.grid:
        code = _gate_via_service(args, "replay", {}, spec=spec, strict=args.strict)
        if code is not None:
            return code
        report = replay_gate(
            spec=spec, ranks=DEFAULT_RANKS, sizes=DEFAULT_SIZES, progress=None
        )
        from .service import protocol as _sproto

        _persist_artifact(
            args,
            "replay",
            {
                "spec": _sproto.encode_spec(spec),
                "ranks": list(DEFAULT_RANKS),
                "sizes": list(DEFAULT_SIZES),
            },
            report.to_dict(),
        )
    else:
        if args.collective not in REGISTRY:
            print(
                f"error: unknown collective {args.collective!r}; "
                f"known: {sorted(REGISTRY)}",
                file=sys.stderr,
            )
            return 2
        if not REGISTRY[args.collective].supports(args.nranks):
            print(
                f"error: {args.collective!r} does not support P={args.nranks}",
                file=sys.stderr,
            )
            return 2
        from .analysis.replaygate import ReplayReport

        check = run_replay_point(
            args.collective, args.nranks, parse_size(args.nbytes), spec=spec
        )
        report = ReplayReport(checks=(check,), machine=spec.name)
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
        return (1 if not report.ok else 0) if args.strict else 0
    table = Table(
        ["collective", "P", "nbytes", "sends", "status"],
        title=f"replay differential gate (bitwise DES equality) on {report.machine}",
    )
    for c in report.checks:
        table.add_row(c.collective, c.nranks, c.nbytes, c.sends, c.status.upper())
    print(table)
    for c in report.failures:
        print(f"  FAIL {c.collective} P={c.nranks} nbytes={c.nbytes}: {c.detail}")
    print(report.describe().splitlines()[-1])
    return (1 if not report.ok else 0) if args.strict else 0


def cmd_audit(args) -> int:
    import json as _json

    from .artifacts import ArtifactStore, audit_artifact

    store = ArtifactStore(args.dir)
    if args.artifact:
        refs = [args.artifact]
    else:
        paths = store.list()
        if not paths:
            print(f"no artifacts under {store.dir}", file=sys.stderr)
            return 2
        refs = [p.stem for p in paths]
    results = []
    for ref in refs:
        if not args.json:
            print(f"auditing {ref} ...", flush=True)
        results.append(audit_artifact(ref, store=store))
    if args.json:
        print(_json.dumps([r.to_dict() for r in results], indent=2))
    else:
        for r in results:
            print(r.describe())
        failed = sum(1 for r in results if not r.ok)
        print(
            f"{len(results) - failed}/{len(results)} artifact(s) reproduced"
        )
    return 1 if any(not r.ok for r in results) else 0


def cmd_service_chaos(args) -> int:
    import json as _json

    from .service.chaos import service_chaos_gate

    report = service_chaos_gate(
        seed=args.seed, progress=None if args.json else print
    )
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report.describe())
    return 0 if report.ok else 1


def cmd_bench_report(args) -> int:
    import json as _json
    from pathlib import Path

    root = Path(args.dir)
    paths = sorted(root.glob("BENCH_*.json"))
    if not paths:
        print(f"no BENCH_*.json files under {root}", file=sys.stderr)
        return 1
    failures = 0
    for path in paths:
        try:
            data = _json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            print(f"{path.name}: unreadable ({exc})", file=sys.stderr)
            failures += 1
            continue
        print(f"{path.name} — {data.get('date', '?')}")
        print(f"  {data.get('benchmark', '?')}")
        gates = data.get("gates")
        if isinstance(gates, dict) and gates:
            # Analysis-gate wall-time ledger (REPRO_GATE_TIMES): one row
            # per subcommand so gate cost regressions are visible next
            # to the simulator performance trajectories.
            table = Table(["gate", "wall s", "exit"])
            for gate in sorted(gates):
                entry = gates[gate]
                if isinstance(entry, dict):
                    table.add_row(
                        gate, entry.get("wall_s", "?"), entry.get("exit", "?")
                    )
                else:
                    table.add_row(gate, entry, "?")
            print(table)
            # Robustness gates are result-integrity checks: a nonzero
            # exit means stored results stopped reproducing (or the
            # service lost data under chaos), which must not scroll by
            # as just another table row.
            for gate in ("audit", "service-chaos", "cache"):
                entry = gates.get(gate)
                code = entry.get("exit") if isinstance(entry, dict) else None
                if isinstance(code, int) and code != 0:
                    print(
                        f"  WARNING: `repro {gate}` exited {code} — "
                        f"recorded results did not reproduce bitwise"
                    )
                    failures += 1
        metric_keys = [
            k for k in sorted(data)
            if k not in ("benchmark", "date", "notes", "gates")
        ]
        if metric_keys:
            table = Table(["metric", "value"])
            for key in metric_keys:
                table.add_row(key, data[key])
            print(table)
        cpu_count = data.get("cpu_count")
        # Only *parallel* speedups (jobs=N fan-out) are meaningless on a
        # 1-CPU host; algorithmic speedups (solver, replay, warm memos)
        # stay valid regardless of core count.
        speedup_keys = sorted(
            k
            for k in data
            if "speedup" in k and ("jobs" in k or "parallel" in k)
        )
        if isinstance(cpu_count, int) and cpu_count <= 1 and speedup_keys:
            print(
                f"  WARNING: recorded on a {cpu_count}-CPU host — parallel "
                f"speedup column(s) {', '.join(speedup_keys)} measure pool "
                f"overhead, not scaling"
            )
        notes = data.get("notes", "")
        if notes and args.notes:
            print(f"  notes: {notes}")
        print()
    return 1 if failures else 0


def cmd_trace(args) -> int:
    from .analysis import critical_path, phase_summary, write_chrome_trace
    from .analysis.verify import REGISTRY
    from .errors import ReproError
    from .machine import Machine
    from .mpi.runtime import Job
    from .sim import Trace
    from .util import parse_size

    nbytes = parse_size(args.nbytes)
    spec = _spec(args)
    collective = REGISTRY.get(args.collective)
    if collective is None:
        print(
            f"error: unknown collective {args.collective!r}; "
            f"known: {sorted(REGISTRY)}",
            file=sys.stderr,
        )
        return 2
    if not collective.supports(args.nranks):
        print(
            f"error: {args.collective!r} does not support P={args.nranks}",
            file=sys.stderr,
        )
        return 2
    try:
        machine = Machine(spec, args.nranks, args.placement)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trace = Trace()
    job = Job(
        machine,
        collective.build(args.nranks, nbytes, args.root),
        trace=trace,
        working_set=nbytes,
    )
    result = job.run()
    print(
        f"{args.collective}: P={args.nranks}, nbytes={nbytes} on {spec.name} "
        f"— makespan {result.time * 1e6:.2f}us, "
        f"{result.counters.messages} message(s)"
    )
    for phase, entry in sorted(phase_summary(trace).items()):
        print(
            f"  {phase}: {entry['messages']} msg(s), {entry['bytes']} B, "
            f"{entry['duration'] * 1e6:.2f}us"
        )
    if args.critical_path:
        print(f"critical path: {critical_path(trace).describe()}")
    if args.chrome:
        write_chrome_trace(trace, args.chrome)
        print(f"chrome trace written to {args.chrome}")
    return 0


def cmd_lint(args) -> int:
    from .analysis.lint import main as lint_main

    return lint_main(args.paths)


def cmd_prove(args) -> int:
    import json as _json

    from .analysis.certify import prove_all, prove_collective
    from .errors import ConfigurationError
    from .util import parse_size

    if args.all:
        args.collective = "all"
    nbytes = parse_size(args.nbytes)
    try:
        lo_s, _, hi_s = args.xval.partition(":")
        lo, hi = int(lo_s), int(hi_s)
    except ValueError:
        print(
            f"error: --xval expects LO:HI, got {args.xval!r}", file=sys.stderr
        )
        return 2
    if args.collective == "all":
        try:
            report = prove_all(
                xval_lo=lo,
                xval_hi=hi,
                nbytes=nbytes,
                skip_crossval=args.no_crossval,
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        _persist_artifact(
            args,
            "prove",
            {
                "xval_lo": lo,
                "xval_hi": hi,
                "nbytes": nbytes,
                "skip_crossval": args.no_crossval,
            },
            report.to_dict(),
        )
        if args.json:
            print(_json.dumps(report.to_dict(), indent=2))
        else:
            print(report.describe())
        ok = report.ok_strict() if args.strict else report.ok
        return 0 if ok else 1
    try:
        cert = prove_collective(
            args.collective,
            xval_lo=lo,
            xval_hi=hi,
            nbytes=nbytes,
            skip_crossval=args.no_crossval,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(cert.to_dict(), indent=2))
    else:
        for o in cert.obligations:
            mark = {"proved": "ok", "structural": "ok*"}.get(o.status, "FAIL")
            print(f"  [{mark:>4}] {o.oid}: {o.statement}")
        xval = (
            "skipped"
            if cert.crossval_skipped
            else f"{cert.crossval_points} point(s), "
            f"{len(cert.crossval_failures)} failure(s)"
        )
        for fdesc in cert.crossval_failures[:10]:
            print(f"  XVAL {fdesc}")
        print(
            f"{cert.collective}: {'ok' if cert.ok else 'FAILED'} — "
            f"{len(cert.obligations)} obligation(s), crossval {xval}"
        )
    ok = cert.ok and not (args.strict and cert.crossval_skipped)
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bandwidth-saving MPI broadcast reproduction (Zhou et al., ICPP 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compare", help="native vs tuned broadcast at one point")
    _add_machine_args(p)
    p.add_argument("--nranks", type=int, default=64)
    p.add_argument("--nbytes", default="1MiB")
    p.add_argument(
        "--solver-stats",
        action="store_true",
        help="print fluid-solver telemetry after the results",
    )
    _add_fault_args(p)
    p.add_argument(
        "--chaos-stats",
        action="store_true",
        help="print fault-injection/ARQ telemetry after the results",
    )
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("sweep", help="bandwidth table over message sizes")
    _add_machine_args(p)
    _add_exec_args(p)
    p.add_argument("--nranks", type=int, default=64)
    p.add_argument(
        "--sizes", default="512KiB,1MiB,2MiB,4MiB", help="comma-separated sizes"
    )
    p.add_argument(
        "--solver-stats",
        action="store_true",
        help="print fluid-solver telemetry after the results",
    )
    _add_fault_args(p)
    p.add_argument(
        "--chaos-stats",
        action="store_true",
        help="print fault-injection/ARQ telemetry after the results",
    )
    _add_artifact_arg(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("figure", help="reproduce one paper figure grid")
    _add_exec_args(p)
    p.add_argument(
        "--id",
        choices=["fig6a", "fig6b", "fig6c", "fig7", "fig8"],
        default="fig6a",
        help="which figure to reproduce (default: fig6a)",
    )
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser("cache", help="inspect or clear the sweep-result cache")
    p.add_argument("--cache-dir", default=None, help="cache directory override")
    p.add_argument("--clear", action="store_true", help="delete all cached records")
    p.add_argument(
        "--migrate",
        action="store_true",
        help="fold a legacy single-file cache into the sharded layout",
    )
    p.add_argument(
        "--fsck",
        action="store_true",
        help=(
            "verify per-line checksums and shard structure; exit 1 when "
            "corruption is found"
        ),
    )
    p.add_argument(
        "--repair",
        action="store_true",
        help="with --fsck: rewrite damaged shards, dropping corrupt lines",
    )
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "serve",
        help="run the persistent simulation service (warm pool + shared cache)",
    )
    p.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default: 0 = auto-assign, advertised in the state file)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes (default: 0 = one per CPU)",
    )
    p.add_argument(
        "--state-file",
        default=None,
        help="where to advertise host/port/pid (default: <cache-dir>/service.json)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without the shared on-disk result cache",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    p.add_argument(
        "--status",
        action="store_true",
        help="ping the advertised server and print its stats",
    )
    p.add_argument(
        "--stop",
        action="store_true",
        help="ask the advertised server to shut down",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("traffic", help="transfer-count table for process counts")
    p.add_argument("--procs", default="8,10,16,64", help="comma-separated P values")
    p.set_defaults(func=cmd_traffic)

    p = sub.add_parser(
        "verify",
        help="static schedule verification (provenance, redundancy, deadlock)",
    )
    p.add_argument(
        "--collective",
        default="all",
        help="registry name (e.g. bcast_native) or 'all' (default)",
    )
    p.add_argument(
        "--nranks", default="8", help="comma-separated process counts (default: 8)"
    )
    p.add_argument("--nbytes", default="64KiB", help="message size (default: 64KiB)")
    p.add_argument("--root", type=int, default=0, help="root rank (default: 0)")
    p.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="match-order hazards also fail the verdict",
    )
    p.add_argument(
        "--no-rendezvous",
        action="store_true",
        help="skip the synchronous-send deadlock analysis",
    )
    p.add_argument(
        "--no-cost",
        action="store_true",
        help="skip the cost-model consistency pass",
    )
    p.add_argument(
        "--mc",
        action="store_true",
        help=(
            "confirm hazard pairs by exhaustive match-order model checking "
            "(downgrades provably-benign hazards for --strict)"
        ),
    )
    p.add_argument(
        "--mc-max-states",
        type=int,
        default=20000,
        help="model-checker state budget per point (default: 20000)",
    )
    _add_serve_arg(p)
    _add_artifact_arg(p)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "mc",
        help="exhaustive match-order model checker with DPOR",
    )
    p.add_argument(
        "--collective",
        default="bcast_opt",
        help="registry name for single-point mode (default: bcast_opt)",
    )
    p.add_argument(
        "--nranks", default="4", help="comma-separated process counts (default: 4)"
    )
    p.add_argument("--nbytes", default="1KiB", help="payload size (default: 1KiB)")
    p.add_argument("--root", type=int, default=0, help="root rank (default: 0)")
    p.add_argument(
        "--grid",
        action="store_true",
        help="full registry x P in {2..6}, rings to P=8, seeded fault cells",
    )
    p.add_argument(
        "--max-states",
        type=int,
        default=20000,
        help="exploration budget per point (default: 20000)",
    )
    p.add_argument(
        "--naive",
        action="store_true",
        help="full enumeration instead of DPOR (reduction baseline)",
    )
    p.add_argument(
        "--drop-p", type=float, default=0.0, help="uniform drop probability"
    )
    p.add_argument(
        "--dup-p", type=float, default=0.0, help="uniform duplicate probability"
    )
    p.add_argument(
        "--corrupt-p", type=float, default=0.0, help="uniform corrupt probability"
    )
    p.add_argument(
        "--seed", type=int, default=0, help="fault-plan seed (default: 0)"
    )
    p.add_argument(
        "--max-attempts",
        type=int,
        default=4,
        help="abstract ARQ retry budget per send (default: 4)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="budget-truncated (incomplete) explorations also fail",
    )
    p.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    _add_artifact_arg(p)
    p.set_defaults(func=cmd_mc)

    p = sub.add_parser(
        "cost",
        help="static alpha-beta/LogGP cost model (table or differential gate)",
    )
    p.add_argument(
        "--machine",
        choices=sorted(_PRESETS),
        default=None,
        help="machine preset (default: hornet for the table, ideal for --grid)",
    )
    p.add_argument("--nodes", type=int, default=0, help="override node count")
    p.add_argument(
        "--placement",
        choices=["blocked", "round_robin"],
        default="blocked",
        help="rank placement policy",
    )
    p.add_argument(
        "--collective",
        default="all",
        help="registry name (e.g. bcast_native) or 'all' (default)",
    )
    p.add_argument("--nranks", type=int, default=8, help="process count (default: 8)")
    p.add_argument("--nbytes", default="1MiB", help="message size (default: 1MiB)")
    p.add_argument("--root", type=int, default=0, help="root rank (default: 0)")
    p.add_argument(
        "--grid",
        action="store_true",
        help="run the full static-vs-simulation differential gate",
    )
    p.add_argument(
        "--band",
        type=float,
        default=0.5,
        help="tightness band for --grid: t_bound >= band * makespan (default: 0.5)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="with --grid: exit nonzero when any gate check fails",
    )
    p.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    _add_serve_arg(p)
    _add_artifact_arg(p)
    p.set_defaults(func=cmd_cost)

    p = sub.add_parser(
        "chaos",
        help="fault-injection differential gate on the reliable transport",
    )
    p.add_argument(
        "--machine",
        choices=sorted(_PRESETS),
        default=None,
        help="machine preset (default: ideal)",
    )
    p.add_argument("--nodes", type=int, default=0, help="override node count")
    p.add_argument(
        "--seed", type=int, default=0, help="fault-plan seed (default: 0)"
    )
    p.add_argument(
        "--collective",
        default="bcast_opt",
        help="registry name for single-point mode (default: bcast_opt)",
    )
    p.add_argument("--nranks", type=int, default=8, help="process count (default: 8)")
    p.add_argument(
        "--nbytes", default="4KiB", help="message size (default: 4KiB)"
    )
    p.add_argument(
        "--grid",
        action="store_true",
        help="run every registry collective at the default rank grid",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when any chaos check fails",
    )
    p.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    _add_serve_arg(p)
    _add_artifact_arg(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "replay",
        help="vectorized-replay differential gate (bitwise DES equality)",
    )
    p.add_argument(
        "--machine",
        choices=sorted(_PRESETS),
        default="hornet",
        help="machine preset (default: hornet)",
    )
    p.add_argument("--nodes", type=int, default=0, help="override node count")
    p.add_argument(
        "--collective",
        default="bcast_opt",
        help="registry name for single-point mode (default: bcast_opt)",
    )
    p.add_argument("--nranks", type=int, default=8, help="process count (default: 8)")
    p.add_argument(
        "--nbytes", default="64KiB", help="message size (default: 64KiB)"
    )
    p.add_argument(
        "--grid",
        action="store_true",
        help="run every registry collective at the default rank/size grid",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when any replay check fails",
    )
    p.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    _add_serve_arg(p)
    _add_artifact_arg(p)
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser(
        "audit",
        help="re-execute a stored run artifact and diff it bitwise",
    )
    p.add_argument(
        "artifact",
        nargs="?",
        default=None,
        help=(
            "artifact path or name (e.g. sweep-0123abcd4567); omitted = "
            "audit every artifact in the store"
        ),
    )
    p.add_argument(
        "--dir",
        default=None,
        help=(
            "artifact store directory (default: $REPRO_ARTIFACTS or "
            "<cache-dir>/artifacts)"
        ),
    )
    p.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser(
        "service-chaos",
        help=(
            "fault-injection gate for the simulation service itself "
            "(worker kills, severed sockets, torn shards, stale state)"
        ),
    )
    p.add_argument(
        "--seed", type=int, default=0, help="scenario seed (default: 0)"
    )
    p.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    p.set_defaults(func=cmd_service_chaos)

    p = sub.add_parser(
        "bench-report",
        help="print every BENCH_*.json performance trajectory as tables",
    )
    p.add_argument(
        "--dir", default=".", help="directory holding BENCH_*.json (default: .)"
    )
    p.add_argument(
        "--notes", action="store_true", help="also print each file's notes field"
    )
    p.set_defaults(func=cmd_bench_report)

    p = sub.add_parser(
        "trace",
        help="simulate one collective with tracing (critical path, chrome export)",
    )
    _add_machine_args(p)
    p.add_argument(
        "--collective",
        default="bcast_opt",
        help="registry name to simulate (default: bcast_opt)",
    )
    p.add_argument("--nranks", type=int, default=8, help="process count (default: 8)")
    p.add_argument("--nbytes", default="1MiB", help="message size (default: 1MiB)")
    p.add_argument("--root", type=int, default=0, help="root rank (default: 0)")
    p.add_argument(
        "--critical-path",
        action="store_true",
        help="print the heaviest dependency chain in the trace",
    )
    p.add_argument(
        "--chrome",
        default=None,
        metavar="PATH",
        help="write a chrome://tracing JSON file to PATH",
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "lint", help="determinism lint over the simulation core (AST pass)"
    )
    p.add_argument(
        "paths", nargs="*", help="files/dirs to lint (default: sim, collectives, mpi)"
    )
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "prove",
        help="parametric certificate checker: symbolic all-P schedule proofs",
    )
    p.add_argument(
        "--collective",
        default="all",
        help="certificate to check, or 'all' for the whole registry "
        "(default: all)",
    )
    p.add_argument(
        "--all",
        action="store_true",
        help="check every registry collective (the default; certified "
        "entries are proved, the rest must carry waivers)",
    )
    p.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="also fail when cross-validation was skipped",
    )
    p.add_argument(
        "--xval",
        default="2:64",
        metavar="LO:HI",
        help="inclusive P range for concrete cross-validation "
        "(default: 2:64)",
    )
    p.add_argument(
        "--no-crossval",
        action="store_true",
        help="symbolic obligations only (fails under --strict)",
    )
    p.add_argument(
        "--nbytes",
        default="64KiB",
        help="message size for cross-validation points (default: 64KiB)",
    )
    _add_artifact_arg(p)
    p.set_defaults(func=cmd_prove)

    p = sub.add_parser(
        "validate", help="data-checked run of every broadcast algorithm"
    )
    _add_machine_args(p)
    p.add_argument("--nranks", type=int, default=16)
    p.add_argument("--nbytes", default="64KiB")
    p.add_argument("--root", type=int, default=0)
    p.set_defaults(func=cmd_validate)

    return parser


def _record_gate_time(path: str, command: str, wall: float, code: int) -> None:
    """Append one subcommand's wall time to a BENCH-style JSON ledger.

    Enabled by ``REPRO_GATE_TIMES=path``; ``repro bench-report`` renders
    the ledger next to the performance trajectories so analysis-gate
    cost regressions show up alongside simulator perf numbers.
    """
    import json as _json
    from pathlib import Path

    p = Path(path)
    try:
        data = _json.loads(p.read_text(encoding="utf-8"))
        if not isinstance(data, dict):
            data = {}
    except (OSError, ValueError):
        data = {}
    data.setdefault(
        "benchmark", "analysis gate wall times (repro <subcommand>)"
    )
    gates = data.setdefault("gates", {})
    if not isinstance(gates, dict):
        gates = data["gates"] = {}
    gates[command] = {"wall_s": round(wall, 3), "exit": code}
    try:
        p.write_text(
            _json.dumps(data, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    except OSError as exc:
        print(f"warning: cannot record gate time: {exc}", file=sys.stderr)


def main(argv=None) -> int:
    import os
    from time import perf_counter

    from .errors import ArtifactError, ConfigurationError

    args = build_parser().parse_args(argv)
    gate_log = os.environ.get("REPRO_GATE_TIMES")
    start = perf_counter() if gate_log else 0.0
    try:
        code = args.func(args)
    except ServiceUnavailableError as exc:
        # An explicitly requested server that is not there is a usage
        # error (exit 2), not a crash: print the actionable one-liner.
        print(f"error: {exc}", file=sys.stderr)
        code = 2
    except ArtifactError as exc:
        # A missing/unreadable artifact reference is a usage error too;
        # a *failed* audit (records no longer reproduce) exits 1.
        print(f"error: {exc}", file=sys.stderr)
        code = 2
    except ConfigurationError as exc:
        # Uniform CLI convention: configuration/usage errors exit 2
        # (violations exit 1, clean runs 0) across every subcommand.
        print(f"error: {exc}", file=sys.stderr)
        code = 2
    if gate_log:
        _record_gate_time(gate_log, args.command, perf_counter() - start, code)
    return code


if __name__ == "__main__":
    sys.exit(main())
