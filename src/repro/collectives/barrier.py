"""Dissemination barrier — MPICH's default ``MPI_Barrier``.

The paper's measurement loop synchronises "with a MPI barrier before
reaching the broadcast interface"; the bench harness and the repeated-
iteration driver use this implementation to do the same.

``ceil(log2 P)`` rounds; in round ``k`` every rank sends a zero-byte
token to ``(rank + 2^k) mod P`` and receives one from
``(rank - 2^k) mod P``. After the last round every rank has (transitively)
heard from every other rank.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util import ceil_log2

__all__ = ["BarrierResult", "barrier"]

BARRIER_TAG = 6


@dataclass
class BarrierResult:
    """Per-rank outcome of one barrier."""

    rounds: int


def barrier(ctx):
    """Dissemination barrier over the context's communicator."""
    size = ctx.size
    if size == 1:
        return BarrierResult(rounds=0)
    rank = ctx.rank
    rounds = ceil_log2(size)
    mask = 1
    while mask < size:
        dst = (rank + mask) % size
        src = (rank - mask + size) % size
        yield from ctx.sendrecv(
            dst=dst,
            send_nbytes=0,
            src=src,
            recv_nbytes=0,
            send_tag=BARRIER_TAG,
            recv_tag=BARRIER_TAG,
        )
        mask <<= 1
    return BarrierResult(rounds=rounds)
