"""Recursive-doubling allgather — MPICH's medium-message, power-of-two
broadcast phase (the path the paper's mmsg-npof2 case *cannot* take,
which is why npof2 falls back to the ring this library tunes).

At exchange step ``k`` (mask ``2**k``) relative rank ``r`` trades its
current aggregated block of ``2**k`` chunks with partner ``r xor 2**k``;
after ``log2 P`` steps every rank holds all ``P`` chunks. Requires a
power-of-two communicator (MPICH's non-pof2 handling falls back to other
algorithms, mirrored by our selector).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CollectiveError
from ..util import ChunkSet, is_power_of_two
from .relative import relative_rank
from .scatter import span_bytes, span_disp

__all__ = ["RdResult", "allgather_recursive_doubling"]

RD_TAG = 3


@dataclass
class RdResult:
    """Outcome of the recursive-doubling phase on one rank."""

    owned: ChunkSet
    steps: int
    sends: int
    recvs: int


def allgather_recursive_doubling(ctx, nbytes: int, root: int = 0):
    """Allgather the scattered chunks by recursive doubling.

    ``ctx.buffer`` must already hold this rank's scatter chunk at its
    absolute displacement (and, for non-leaf scatter ranks, the subtree
    surplus — which this algorithm, like MPICH, simply ignores: blocks
    are exchanged by position, so surplus bytes are overwritten with
    identical content).
    """
    size = ctx.size
    if not is_power_of_two(size):
        raise CollectiveError(
            f"recursive-doubling allgather needs a power-of-two size, got {size}"
        )
    rel = relative_rank(ctx.rank, root, size)
    owned = ChunkSet(size, [rel])
    sends = recvs = 0

    mask = 1
    while mask < size:
        partner_rel = rel ^ mask
        partner = (partner_rel + root) % size
        # Aggregated blocks: mine starts at rel with the low bits below
        # `mask` cleared; the partner's is the sibling block.
        my_start = rel & ~(mask - 1)
        partner_start = partner_rel & ~(mask - 1)
        send_bytes = span_bytes(nbytes, size, my_start, mask)
        recv_bytes = span_bytes(nbytes, size, partner_start, mask)
        yield from ctx.sendrecv(
            dst=partner,
            send_nbytes=send_bytes,
            src=partner,
            recv_nbytes=recv_bytes,
            send_disp=span_disp(nbytes, size, my_start),
            recv_disp=span_disp(nbytes, size, partner_start),
            send_tag=RD_TAG,
            recv_tag=RD_TAG,
            chunks=tuple(range(my_start, my_start + mask)),
        )
        sends += 1
        recvs += 1
        for c in range(partner_start, partner_start + mask):
            owned.add(c)
        mask <<= 1

    if not owned.is_full:
        raise CollectiveError(
            f"rank {ctx.rank}: recursive doubling finished missing chunks "
            f"{owned.missing()}"
        )  # pragma: no cover - structural impossibility
    return RdResult(owned=owned, steps=size.bit_length() - 1, sends=sends, recvs=recvs)
