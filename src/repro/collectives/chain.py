"""Pipelined chain (segmented) broadcast.

The classic bandwidth-optimal alternative to scatter-allgather schemes:
ranks form a chain in relative order and the message flows through it in
``segment_bytes`` pieces. Interior ranks pre-post the receive for the
next segment while forwarding the current one (double buffering), so in
steady state every link of the chain is busy — makespan approaches
``(P - 2 + nseg) * t_segment``.

Included as the extension/ablation point the paper's related work
gestures at: for very long messages on a chain-friendly placement it is
competitive with the ring designs, but it lacks their robustness to
placement and its pipeline depth must be tuned per message size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CollectiveError
from ..util.chunking import chunk_count, chunk_disp
from .relative import relative_rank

__all__ = ["ChainResult", "bcast_chain"]

CHAIN_TAG = 11


@dataclass
class ChainResult:
    """Per-rank outcome of a pipelined chain broadcast."""

    segments: int
    sends: int
    recvs: int


def _segments(nbytes: int, segment_bytes: int):
    """(disp, count) pieces covering the buffer."""
    if nbytes == 0:
        return []
    nseg = -(-nbytes // segment_bytes)
    return [
        (chunk_disp(nbytes, nseg, i), chunk_count(nbytes, nseg, i))
        for i in range(nseg)
    ]


def bcast_chain(ctx, nbytes: int, root: int = 0, segment_bytes: int = 65536):
    """Broadcast via a pipelined relative-rank chain."""
    if nbytes < 0:
        raise CollectiveError(f"negative broadcast size {nbytes}")
    if segment_bytes < 1:
        raise CollectiveError(f"segment_bytes must be >= 1, got {segment_bytes}")
    size = ctx.size
    rel = relative_rank(ctx.rank, root, size)
    segments = _segments(nbytes, segment_bytes)
    sends = recvs = 0

    if size == 1 or not segments:
        return ChainResult(len(segments), 0, 0)

    right = ((rel + 1) + root) % size if rel + 1 < size else None
    left = ((rel - 1) + root) % size if rel > 0 else None

    if left is None:
        # Root: stream every segment to the first link.
        for disp, count in segments:
            yield from ctx.send(right, count, disp=disp, tag=CHAIN_TAG)
            sends += 1
    elif right is None:
        # Chain tail: drain.
        for disp, count in segments:
            yield from ctx.recv(left, count, disp=disp, tag=CHAIN_TAG)
            recvs += 1
    else:
        # Interior: double-buffered receive + forward.
        pending = []
        disp0, count0 = segments[0]
        pending.append((yield from ctx.irecv(left, count0, disp=disp0, tag=CHAIN_TAG)))
        for i, (disp, count) in enumerate(segments):
            yield from ctx.wait(pending[i])
            recvs += 1
            if i + 1 < len(segments):
                ndisp, ncount = segments[i + 1]
                pending.append(
                    (yield from ctx.irecv(left, ncount, disp=ndisp, tag=CHAIN_TAG))
                )
            yield from ctx.send(right, count, disp=disp, tag=CHAIN_TAG)
            sends += 1

    return ChainResult(len(segments), sends, recvs)
