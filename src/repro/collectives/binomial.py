"""Binomial-tree broadcast — MPICH's short-message algorithm.

The whole ``nbytes`` buffer is relayed down the binomial tree: at branch
mask ``m`` every subtree root forwards the complete message to relative
rank ``rel + m``. ``ceil(log2 P)`` rounds, ``P - 1`` transfers of the
full message each — latency-optimal, bandwidth-hungry, which is exactly
why MPICH switches to scatter-allgather schemes past 12 KiB.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CollectiveError
from ..util import next_power_of_two
from .relative import relative_rank

__all__ = ["BinomialResult", "bcast_binomial"]

BCAST_TAG = 4


@dataclass
class BinomialResult:
    """Outcome of the binomial broadcast on one rank."""

    sends: int
    recvs: int
    rounds: int


def bcast_binomial(ctx, nbytes: int, root: int = 0):
    """Broadcast the full buffer along the binomial tree."""
    size = ctx.size
    if nbytes < 0:
        raise CollectiveError(f"negative broadcast size {nbytes}")
    rel = relative_rank(ctx.rank, root, size)
    rounds = (size - 1).bit_length()
    sends = recvs = 0

    mask = 1
    if rel != 0:
        while mask < size:
            if rel & mask:
                parent = ((rel - mask) + root) % size
                yield from ctx.recv(parent, nbytes, disp=0, tag=BCAST_TAG)
                recvs += 1
                break
            mask <<= 1
    else:
        mask = next_power_of_two(size)

    child_mask = mask >> 1
    while child_mask > 0:
        child_rel = rel + child_mask
        if child_rel < size:
            child = (child_rel + root) % size
            yield from ctx.send(child, nbytes, disp=0, tag=BCAST_TAG)
            sends += 1
        child_mask >>= 1

    return BinomialResult(sends=sends, recvs=recvs, rounds=rounds)
