"""K-nomial tree broadcast — the binomial tree's radix generalisation.

Modern MPICH exposes ``MPIR_Bcast_intra_tree`` with a configurable
branching factor: radix ``k`` trades tree depth (``ceil(log_k P)``
rounds) against root fan-out (``k - 1`` sequential child sends per
level). ``k = 2`` reproduces the classic binomial tree exactly — tested
against :mod:`repro.collectives.binomial` — and the radix ablation bench
shows where higher radices win (latency-bound small messages) and lose
(bandwidth-bound large ones).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CollectiveError
from .relative import relative_rank

__all__ = ["KnomialResult", "bcast_knomial"]

KNOMIAL_TAG = 10


@dataclass
class KnomialResult:
    """Per-rank outcome of a k-nomial broadcast."""

    radix: int
    sends: int
    recvs: int
    rounds: int


def knomial_rounds(size: int, radix: int) -> int:
    """Tree depth: ceil(log_radix(size))."""
    rounds, reach = 0, 1
    while reach < size:
        reach *= radix
        rounds += 1
    return rounds


def bcast_knomial(ctx, nbytes: int, root: int = 0, radix: int = 2):
    """Broadcast the full buffer down a radix-``k`` tree."""
    if nbytes < 0:
        raise CollectiveError(f"negative broadcast size {nbytes}")
    if radix < 2:
        raise CollectiveError(f"k-nomial radix must be >= 2, got {radix}")
    size = ctx.size
    rel = relative_rank(ctx.rank, root, size)
    sends = recvs = 0

    # Climb: find the branch level (lowest non-zero base-k digit of rel).
    mask = 1
    if rel != 0:
        while mask < size:
            digit = (rel // mask) % radix
            if digit != 0:
                parent_rel = rel - digit * mask
                parent = (parent_rel + root) % size
                yield from ctx.recv(parent, nbytes, disp=0, tag=KNOMIAL_TAG)
                recvs += 1
                break
            mask *= radix
    else:
        while mask < size:
            mask *= radix

    # Descend: children at every level strictly below the branch level,
    # farthest subtrees first (largest level, then largest digit).
    level = mask // radix
    while level >= 1:
        for j in range(radix - 1, 0, -1):
            child_rel = rel + j * level
            if child_rel < size:
                child = (child_rel + root) % size
                yield from ctx.send(child, nbytes, disp=0, tag=KNOMIAL_TAG)
                sends += 1
        level //= radix

    return KnomialResult(
        radix=radix, sends=sends, recvs=recvs, rounds=knomial_rounds(size, radix)
    )
