"""Schedule extraction: run algorithm programs without a clock.

The :class:`ScheduleExecutor` drives the same generator programs the DES
runtime runs, but with zero-cost buffered sends and no timing model. It
records every transfer (source, destination, bytes, chunk ids) so the
paper's transfer-count arithmetic — 56 vs 44 at P=8, 90 vs 75 at P=10,
``P*(P-1) - (S - P)`` in general — can be measured exactly, cheaply,
for any process count.

Blocking semantics: sends are buffered (they never block, like an eager
protocol with infinite buffering), receives block until a matching send
was issued. This preserves the data-flow dependencies that determine
*what* is transferred while ignoring *when* — which is all counting
needs. Programs that deadlock even under buffered sends (receive cycles)
are reported as :class:`~repro.errors.DeadlockError`.

A :class:`~repro.sim.faults.FaultPlan` may be attached (``faults=``):
drop decisions then statically suppress the matching sends — recorded
but never delivered — and a resulting deadlock report names the exact
injected event that ate the expected message instead of reading like a
schedule bug. The executor has no clock, so time-windowed faults
(blackouts, timed crashes) are evaluated at t=0.

Besides the transfer list, the executor records one *op log* per rank:
the exact ``(kind, arg)`` sequence of MPI operations the program
executed, with every receive annotated with the send order it matched
and every waitall with the rank-local op indices it covered. That log
is what :func:`repro.sim.replay.compile_schedule` turns into the
vectorized replay engine's program-counter streams; schedules that use
timing-dependent features (``ANY_SOURCE``) carry ``replay_blockers``
naming why they must run on the DES instead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import DeadlockError, SimulationError, TruncationError
from ..mpi.comm import Communicator
from ..mpi.context import RankContext
from ..mpi.matching import Envelope, MatchingEngine
from ..mpi.ops import ComputeOp, IrecvOp, IsendOp, RecvOp, SendOp, WaitOp
from ..mpi.request import Request, Status
from ..sim import Proc
from ..sim.replay import (
    OP_COMPUTE,
    OP_IRECV,
    OP_ISEND,
    OP_RECV,
    OP_SEND,
    OP_WAIT,
)

__all__ = [
    "RecordedSend",
    "ScheduleResult",
    "ScheduleExecutor",
    "extract_schedule",
    "cached_schedule",
    "clear_schedule_memo",
]

_BLOCKED = object()


@dataclass(frozen=True)
class RecordedSend:
    """One transfer in the extracted schedule (global ranks)."""

    order: int
    src: int
    dst: int
    nbytes: int
    tag: int
    chunks: Tuple[int, ...]


@dataclass
class ScheduleResult:
    """Everything the counting run observed.

    ``issue_clock`` and ``match_clock`` place each transfer on a single
    logical clock shared by send issues and receive completions:
    ``issue_clock[order]`` is when send *order* was issued and
    ``match_clock[order]`` when its receive matched (absent while the
    message is still unreceived at program end). The static verifier
    uses these to decide which same-``(src, dst, tag)`` messages were
    ever concurrently in flight.

    ``observed`` and ``dep_counts`` record the happens-before structure
    the cost model's round decomposition needs: ``observed[rank]`` lists
    the send orders whose payloads *rank*'s program had consumed (a
    blocking recv returned, or a waitall covering the irecv completed)
    in consumption order, and ``dep_counts[order]`` is how many of the
    sender's observed entries preceded the issue of send *order*. A
    send therefore causally depends on exactly
    ``observed[src][:dep_counts[order]]`` — program order inside a rank,
    message edges across ranks — which is a sound dependency set: an
    unwaited irecv never gates a send.
    """

    sends: List[RecordedSend]
    rank_results: List
    nranks: int
    placement: Optional[object] = None
    issue_clock: Dict[int, int] = field(default_factory=dict)
    match_clock: Dict[int, int] = field(default_factory=dict)
    observed: Dict[int, List[int]] = field(default_factory=dict)
    dep_counts: Dict[int, int] = field(default_factory=dict)
    # Per-rank executed-op streams (``[kind, arg]`` pairs, see
    # repro.sim.replay's OP_* opcodes) keyed by global rank in kick
    # order, plus the reasons — if any — the schedule cannot be replayed
    # without the DES (wildcard sources, foreign wait requests).
    op_log: Dict[int, List[List]] = field(default_factory=dict)
    replay_blockers: Tuple[str, ...] = ()

    @property
    def transfers(self) -> int:
        return len(self.sends)

    @property
    def total_bytes(self) -> int:
        return sum(s.nbytes for s in self.sends)

    def message_deps(self, order: int) -> Tuple[int, ...]:
        """Send orders that happened-before send *order* at its sender
        (messages the sender's program had consumed before issuing it)."""
        src = self.sends[order].src
        return tuple(self.observed.get(src, ())[: self.dep_counts.get(order, 0)])

    def transfers_by_level(self) -> Tuple[int, int]:
        """(intra_node, inter_node) transfer counts; needs a placement."""
        if self.placement is None:
            raise SimulationError("transfers_by_level needs a placement")
        intra = sum(
            1
            for s in self.sends
            if self.placement.node_of(s.src) == self.placement.node_of(s.dst)
        )
        return intra, len(self.sends) - intra

    def sends_from(self, rank: int) -> List[RecordedSend]:
        return [s for s in self.sends if s.src == rank]

    def sends_to(self, rank: int) -> List[RecordedSend]:
        return [s for s in self.sends if s.dst == rank]


def _describe_request(req: Request) -> str:
    """``recv(src=3, tag=2, nbytes=64)``-style rendering for reports."""
    if req.kind == "recv":
        src = "ANY_SOURCE" if req.peer < 0 else req.peer
        tag = "ANY_TAG" if req.tag < 0 else req.tag
        return f"recv(src={src}, tag={tag}, nbytes={req.nbytes})"
    return f"send(dst={req.peer}, tag={req.tag}, nbytes={req.nbytes})"


class _ParkedRecv:
    __slots__ = ("req",)

    def __init__(self, req):
        self.req = req


class _ParkedWait:
    __slots__ = ("requests", "remaining")

    def __init__(self, requests, remaining):
        self.requests = requests
        self.remaining = remaining


class ScheduleExecutor:
    """Deterministic zero-time executor for rank programs."""

    def __init__(
        self,
        nranks: int,
        program_factory: Callable[[RankContext], object],
        comm: Optional[Communicator] = None,
        buffers: Optional[List] = None,
        placement=None,
        faults=None,
    ):
        self.comm = comm if comm is not None else Communicator.world(nranks)
        self.placement = placement
        self.faults = faults
        self.suppressed: List[str] = []  # injected-drop audit lines
        self._op_index: Dict[Tuple[int, int], int] = {}
        self.sends: List[RecordedSend] = []
        self.issue_clock: Dict[int, int] = {}
        self.match_clock: Dict[int, int] = {}
        self._clock = 0
        self._env_order: Dict[int, int] = {}  # envelope seq -> send order
        self.observed: Dict[int, List[int]] = {}  # rank -> consumed send orders
        self.dep_counts: Dict[int, int] = {}  # send order -> observed prefix len
        self._recv_order: Dict[Request, int] = {}  # recv request -> send order
        self.op_log: Dict[int, List[List]] = {}  # rank -> [kind, arg] stream
        self._req_op: Dict[Request, int] = {}  # isend/irecv req -> op index
        self._recv_entry: Dict[Request, List] = {}  # recv req -> log entry
        self._blockers: List[str] = []  # reasons replay must fall back
        self.matching = [MatchingEngine(r) for r in range(nranks)]
        self.procs: List[Proc] = []
        self.contexts: List[RankContext] = []
        self._parked = [None] * self.comm.size
        self._ready = deque()
        self._wake = {}  # global rank -> local index, for wakeups
        for local in range(self.comm.size):
            glob = self.comm.to_global(local)
            buf = buffers[local] if buffers is not None else None
            ctx = RankContext(glob, self.comm, buffer=buf)
            self.contexts.append(ctx)
            self.procs.append(Proc(f"rank{local}", program_factory(ctx)))
            self._wake[glob] = local
            self.observed[glob] = []
            self.op_log[glob] = []

    # -- driving ---------------------------------------------------------
    def run(self) -> ScheduleResult:
        for idx in range(len(self.procs)):
            self._ready.append((idx, None))
        while self._ready:
            idx, value = self._ready.popleft()
            self._advance(idx, value)
        unfinished = [
            self._describe_blocked(idx)
            for idx, p in enumerate(self.procs)
            if not p.finished
        ]
        if unfinished:
            unfinished.extend(
                eng.describe_blockage()
                for eng in self.matching
                if eng.pending_unexpected
            )
            unfinished.extend(f"injected {line}" for line in self.suppressed)
            raise DeadlockError(unfinished)
        return ScheduleResult(
            sends=self.sends,
            rank_results=[p.result for p in self.procs],
            nranks=self.comm.size,
            placement=self.placement,
            issue_clock=self.issue_clock,
            match_clock=self.match_clock,
            observed=self.observed,
            dep_counts=self.dep_counts,
            op_log=self.op_log,
            replay_blockers=tuple(dict.fromkeys(self._blockers)),
        )

    def _describe_blocked(self, idx: int) -> str:
        """Name the rank and the exact op an unfinished program is parked on."""
        glob = self.comm.to_global(idx)
        parked = self._parked[idx]
        if isinstance(parked, _ParkedRecv):
            return f"rank {glob} blocked in {_describe_request(parked.req)}"
        if isinstance(parked, _ParkedWait):
            pending = [
                _describe_request(r) for r in parked.requests if not r.complete
            ]
            return (
                f"rank {glob} blocked in waitall on {parked.remaining} of "
                f"{len(parked.requests)} request(s): {', '.join(pending)}"
            )
        return f"rank {glob} never ran to completion ({self.procs[idx]!r})"

    def _advance(self, idx: int, value) -> None:
        proc = self.procs[idx]
        while True:
            outcome = proc.advance(value)
            if outcome.done:
                return
            result = self._execute(idx, outcome.value)
            if result is _BLOCKED:
                return
            value = result

    # -- op execution ------------------------------------------------------
    def _execute(self, idx: int, op):
        glob = self.comm.to_global(idx)
        log = self.op_log[glob]
        if isinstance(op, (SendOp, IsendOp)):
            req = Request(
                "send",
                owner=glob,
                peer=op.dst,
                tag=op.tag,
                nbytes=op.nbytes,
                buffer=op.buffer,
                disp=op.disp,
                chunks=op.chunks,
            )
            entry = [OP_ISEND if isinstance(op, IsendOp) else OP_SEND, -1]
            if isinstance(op, IsendOp):
                self._req_op[req] = len(log)
            log.append(entry)
            self._do_send(req)
            entry[1] = len(self.sends) - 1  # the order _do_send assigned
            return req if isinstance(op, IsendOp) else None
        if isinstance(op, (RecvOp, IrecvOp)):
            req = Request(
                "recv",
                owner=glob,
                peer=op.src,
                tag=op.tag,
                nbytes=op.nbytes,
                buffer=op.buffer,
                disp=op.disp,
            )
            if op.src < 0:
                self._blockers.append(
                    f"rank {glob} posts an ANY_SOURCE receive "
                    f"(match order is timing-dependent)"
                )
            entry = [OP_IRECV if isinstance(op, IrecvOp) else OP_RECV, -1]
            if isinstance(op, IrecvOp):
                self._req_op[req] = len(log)
            log.append(entry)
            self._recv_entry[req] = entry  # filled in when it matches
            env = self.matching[glob].post_recv(req)
            if env is not None:
                self._complete_recv(req, env)
            if isinstance(op, IrecvOp):
                return req
            if req.complete:
                self._observe(glob, req)
                return req.status

            def recv_done(r, i=idx, g=glob):
                self._observe(g, r)
                self._wakeup(i, r.status)

            self._parked[idx] = _ParkedRecv(req)
            req.on_complete(recv_done)
            return _BLOCKED
        if isinstance(op, WaitOp):
            requests = op.requests
            members = []
            for r in requests:
                member = self._req_op.get(r, -1)
                if member < 0:
                    self._blockers.append(
                        f"rank {glob} waits on a request not returned by "
                        f"its own isend/irecv"
                    )
                members.append(member)
            log.append([OP_WAIT, tuple(members)])
            remaining = sum(1 for r in requests if not r.complete)
            if remaining == 0:
                for r in requests:
                    self._observe(glob, r)
                return [r.status for r in requests]
            state = _ParkedWait(requests, remaining)
            self._parked[idx] = state

            def one_done(_req, i=idx, g=glob, state=state):
                state.remaining -= 1
                if state.remaining == 0:
                    for r in state.requests:
                        self._observe(g, r)
                    self._wakeup(i, [r.status for r in state.requests])

            for r in requests:
                if not r.complete:
                    r.on_complete(one_done)
            return _BLOCKED
        if isinstance(op, ComputeOp):
            log.append([OP_COMPUTE, float(op.seconds)])
            return None  # time is free here
        raise SimulationError(f"schedule executor got unknown op {op!r}")

    def _wakeup(self, idx: int, value) -> None:
        self._parked[idx] = None
        self._ready.append((idx, value))

    def _observe(self, rank: int, req: Request) -> None:
        """Record that *rank*'s program consumed the message behind a
        completed receive (idempotent; sends and unmatched recvs no-op)."""
        order = self._recv_order.pop(req, None)
        if order is not None:
            self.observed[rank].append(order)

    # -- transfer plumbing --------------------------------------------------
    def _do_send(self, req: Request) -> None:
        payload = None
        if req.buffer is not None:
            payload = req.buffer.read(req.disp, req.nbytes)
        self.sends.append(
            RecordedSend(
                order=len(self.sends),
                src=req.owner,
                dst=req.peer,
                nbytes=req.nbytes,
                tag=req.tag,
                chunks=req.chunks,
            )
        )
        order = len(self.sends) - 1
        self.dep_counts[order] = len(self.observed[req.owner])
        self.issue_clock[order] = self._clock
        self._clock += 1
        if self.faults is not None:
            op_index = self._op_index.get((req.owner, req.peer), 0)
            self._op_index[(req.owner, req.peer)] = op_index + 1
            decision = self.faults.decide(req.owner, req.peer, req.tag, op_index)
            if decision.drop:
                self.suppressed.append(
                    f"drop {req.owner}->{req.peer} tag={req.tag} "
                    f"op#{op_index} send order {order} "
                    f"({decision.cause or 'drop'})"
                )
                req.finish()  # the sender is still buffered, never blocks
                return
        env = Envelope(req.owner, req.tag, req.nbytes, (req, payload), len(self.sends))
        self._env_order[env.seq] = order
        req.finish()  # buffered: sends always complete immediately
        recv_req = self.matching[req.peer].arrive(env)
        if recv_req is not None:
            self._complete_recv(recv_req, env)

    def _complete_recv(self, recv_req: Request, env: Envelope) -> None:
        order = self._env_order[env.seq]
        self.match_clock[order] = self._clock
        self._recv_order[recv_req] = order
        entry = self._recv_entry.get(recv_req)
        if entry is not None:
            entry[1] = order  # annotate the op log with the matched send
        self._clock += 1
        send_req, payload = env.send_req
        if env.nbytes > recv_req.nbytes:
            raise TruncationError(
                f"message of {env.nbytes} bytes truncates receive of "
                f"{recv_req.nbytes} bytes on rank {recv_req.owner}"
            )
        if recv_req.buffer is not None and payload is not None:
            recv_req.buffer.write(recv_req.disp, payload)
        recv_req.finish(Status(env.src, env.tag, env.nbytes, send_req.chunks))


def extract_schedule(
    nranks: int,
    program_factory: Callable[[RankContext], object],
    comm: Optional[Communicator] = None,
    buffers: Optional[List] = None,
    placement=None,
    faults=None,
) -> ScheduleResult:
    """One-call helper: build, run and return the schedule."""
    return ScheduleExecutor(
        nranks,
        program_factory,
        comm=comm,
        buffers=buffers,
        placement=placement,
        faults=faults,
    ).run()


# Process-wide extraction memo. Schedule extraction is the dominant cost
# of every static-analysis pass (cost gate, replay gate, symbolic
# checks) and they all revisit the same (collective, P, nbytes, root)
# points; extracting once per process instead of once per pass keeps the
# combined CI gates close to the cost of the cheapest one. Entries are
# treated as immutable by every consumer.
_SCHEDULE_MEMO: dict = {}
_SCHEDULE_MEMO_CAP = 1024


def cached_schedule(
    key,
    nranks: int,
    program_factory: Callable[[RankContext], object],
    placement=None,
) -> ScheduleResult:
    """Memoised :func:`extract_schedule` under a caller-supplied key.

    *key* must capture every input that shapes the schedule — typically
    ``(collective, nranks, nbytes, root)``, plus the placement's node
    map when the program reads it. The caller owns the key discipline
    because only it knows what its factory closes over.
    """
    result = _SCHEDULE_MEMO.get(key)
    if result is None:
        result = extract_schedule(nranks, program_factory, placement=placement)
        if len(_SCHEDULE_MEMO) < _SCHEDULE_MEMO_CAP:
            _SCHEDULE_MEMO[key] = result
    return result


def clear_schedule_memo() -> int:
    """Drop every memoised schedule; returns how many were cached."""
    count = len(_SCHEDULE_MEMO)
    _SCHEDULE_MEMO.clear()
    return count
