"""Broadcast collectives: the paper's algorithms and their MPICH peers."""

from .relative import (
    relative_rank,
    absolute_rank,
    subtree_chunks,
    scatter_ownership_extent,
    tuned_ring_role,
)
from .scatter import ScatterResult, binomial_scatter, span_bytes, span_disp
from .allgather_ring import RingResult, ring_allgather_native, ring_allgather_tuned
from .allgather_rd import RdResult, allgather_recursive_doubling
from .allgather import (
    AllgatherResult,
    allgather_ring,
    allgather_rdbl,
    allgather_bruck,
    ALLGATHER_ALGORITHMS,
)
from .binomial import BinomialResult
from .bcast import (
    BcastResult,
    bcast_binomial,
    bcast_scatter_ring_native,
    bcast_scatter_ring_opt,
    bcast_scatter_rdbl,
    ALGORITHMS,
    get_algorithm,
)
from .smp import bcast_smp
from .barrier import BarrierResult, barrier
from .knomial import KnomialResult, bcast_knomial
from .chain import ChainResult, bcast_chain
from .scan import ScanResult, scan_linear, scan_recursive_doubling
from .reduce_scatter import (
    ReduceScatterResult,
    reduce_scatter_halving,
    reduce_scatter_ring,
)
from .allgatherv import AllgathervResult, allgatherv_ring, displacements
from .allreduce import (
    AllreduceResult,
    allreduce_reduce_bcast,
    allreduce_rabenseifner,
)
from .gather import GatherResult, gather, ReduceResult, reduce
from .alltoall import (
    AlltoallResult,
    alltoall_pairwise,
    alltoall_bruck,
    ALLTOALL_ALGORITHMS,
)
from .selector import (
    SHORT_MSG_SIZE,
    LONG_MSG_SIZE,
    MIN_PROCS,
    classify_message,
    choose_bcast_name,
    choose_bcast,
    is_ring_regime,
)
from .schedule import (
    RecordedSend,
    ScheduleResult,
    ScheduleExecutor,
    cached_schedule,
    clear_schedule_memo,
    extract_schedule,
)

__all__ = [
    "relative_rank",
    "absolute_rank",
    "subtree_chunks",
    "scatter_ownership_extent",
    "tuned_ring_role",
    "ScatterResult",
    "binomial_scatter",
    "span_bytes",
    "span_disp",
    "RingResult",
    "ring_allgather_native",
    "ring_allgather_tuned",
    "RdResult",
    "allgather_recursive_doubling",
    "AllgatherResult",
    "allgather_ring",
    "allgather_rdbl",
    "allgather_bruck",
    "ALLGATHER_ALGORITHMS",
    "BinomialResult",
    "BcastResult",
    "bcast_binomial",
    "bcast_scatter_ring_native",
    "bcast_scatter_ring_opt",
    "bcast_scatter_rdbl",
    "bcast_smp",
    "BarrierResult",
    "barrier",
    "KnomialResult",
    "bcast_knomial",
    "ChainResult",
    "bcast_chain",
    "ReduceScatterResult",
    "reduce_scatter_halving",
    "reduce_scatter_ring",
    "ScanResult",
    "scan_linear",
    "scan_recursive_doubling",
    "AllgathervResult",
    "allgatherv_ring",
    "displacements",
    "AllreduceResult",
    "allreduce_reduce_bcast",
    "allreduce_rabenseifner",
    "GatherResult",
    "gather",
    "ReduceResult",
    "reduce",
    "AlltoallResult",
    "alltoall_pairwise",
    "alltoall_bruck",
    "ALLTOALL_ALGORITHMS",
    "ALGORITHMS",
    "get_algorithm",
    "SHORT_MSG_SIZE",
    "LONG_MSG_SIZE",
    "MIN_PROCS",
    "classify_message",
    "choose_bcast_name",
    "choose_bcast",
    "is_ring_regime",
    "RecordedSend",
    "ScheduleResult",
    "ScheduleExecutor",
    "cached_schedule",
    "clear_schedule_memo",
    "extract_schedule",
]
