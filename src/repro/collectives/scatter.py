"""Binomial-tree scatter — phase one of the scatter-allgather broadcasts.

Faithful port of MPICH's ``MPIR_Scatter_for_bcast`` (Figures 1 and 2 of
the paper): the root owns all ``P`` chunks and walks a binomial tree;
at branch mask ``m`` a subtree root hands the upper half of its chunk
interval (``[rel+m, rel+extent)``) to relative rank ``rel+m``. After
``ceil(log2 P)`` levels every relative rank ``r`` owns exactly the chunk
interval ``[r, r + subtree_chunks(r))``.

The generator returns a :class:`ScatterResult` with the rank's final
chunk interval so callers (and tests) can verify ownership.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CollectiveError
from ..util import ChunkSet, next_power_of_two
from ..util.chunking import chunk_disp
from .relative import relative_rank, subtree_chunks

__all__ = ["ScatterResult", "binomial_scatter", "span_bytes", "span_disp"]

# Tag reserved for scatter-phase traffic (mirrors MPICH's distinct tags
# per collective phase so ring traffic can never match scatter receives).
SCATTER_TAG = 1


def span_disp(nbytes: int, size: int, first_chunk: int) -> int:
    """Byte displacement of a chunk span starting at *first_chunk*."""
    return chunk_disp(nbytes, size, first_chunk) if first_chunk < size else nbytes


def span_bytes(nbytes: int, size: int, first_chunk: int, n_chunks: int) -> int:
    """Total bytes of chunks ``[first_chunk, first_chunk + n_chunks)``."""
    if n_chunks < 0:
        raise CollectiveError(f"negative chunk span {n_chunks}")
    end = first_chunk + n_chunks
    if end > size:
        raise CollectiveError(
            f"chunk span [{first_chunk}, {end}) exceeds {size} chunks"
        )
    if n_chunks == 0:
        return 0
    start_disp = span_disp(nbytes, size, first_chunk)
    end_disp = nbytes if end == size else span_disp(nbytes, size, end)
    return end_disp - start_disp


@dataclass
class ScatterResult:
    """Ownership after the scatter, in relative-chunk terms."""

    first_chunk: int  # == the rank's relative rank
    n_chunks: int  # == subtree_chunks(relative rank)
    nbytes_owned: int
    owned: ChunkSet  # relative chunk ids
    sends: int = 0  # messages this rank forwarded to children
    recvs: int = 0  # 1 for every non-root rank that received bytes


def binomial_scatter(ctx, nbytes: int, root: int = 0):
    """Scatter the root's ``nbytes`` buffer along the binomial tree.

    ``ctx.buffer`` holds the full source data on the root; on other
    ranks it is (conceptually) empty and gets the rank's interval
    written at the correct displacement. Chunk indices are *relative*;
    byte displacements are absolute within the buffer (MPICH keeps the
    data at its final position throughout, so no reshuffling is needed
    after the allgather).
    """
    size = ctx.size
    if nbytes < 0:
        raise CollectiveError(f"negative broadcast size {nbytes}")
    rel = relative_rank(ctx.rank, root, size)

    if size == 1:
        return ScatterResult(0, 1, nbytes, ChunkSet.full(1))

    extent = subtree_chunks(rel, size)
    sends = recvs = 0

    # --- receive from parent (non-root only) ---------------------------
    mask = 1
    if rel != 0:
        while mask < size:
            if rel & mask:
                parent_rel = rel - mask
                parent = (parent_rel + root) % size
                recv_bytes = span_bytes(nbytes, size, rel, extent)
                disp = span_disp(nbytes, size, rel)
                if recv_bytes > 0:
                    yield from ctx.recv(
                        parent, recv_bytes, disp=disp, tag=SCATTER_TAG
                    )
                    recvs += 1
                break
            mask <<= 1
    else:
        mask = next_power_of_two(size)

    # --- forward to children -----------------------------------------------
    # Children are rel + m for each m below the branch mask, largest first.
    child_mask = mask >> 1
    while child_mask > 0:
        child_rel = rel + child_mask
        if child_rel < size:
            child_extent = min(child_mask, size - child_rel)
            send_bytes = span_bytes(nbytes, size, child_rel, child_extent)
            disp = span_disp(nbytes, size, child_rel)
            chunks = tuple(range(child_rel, child_rel + child_extent))
            if send_bytes > 0:
                child = (child_rel + root) % size
                yield from ctx.send(
                    child, send_bytes, disp=disp, tag=SCATTER_TAG, chunks=chunks
                )
                sends += 1
        child_mask >>= 1

    owned = ChunkSet.interval(size, rel, extent)
    return ScatterResult(
        first_chunk=rel,
        n_chunks=extent,
        nbytes_owned=span_bytes(nbytes, size, rel, extent),
        owned=owned,
        sends=sends,
        recvs=recvs,
    )
