"""MPI_Allreduce: where a broadcast optimisation compounds.

Two classic strategies:

* ``allreduce_reduce_bcast`` — binomial reduce to a root, then broadcast
  the result. The broadcast phase is pluggable, so the paper's tuned
  ring accelerates *allreduce* for free in the lmsg / mmsg-npof2 regime
  — the "future work" composition the bench
  ``benchmarks/test_extension_bcasts.py`` quantifies.
* ``allreduce_rabenseifner`` — recursive-halving reduce-scatter followed
  by an allgather. After reduce-scatter every rank owns *exactly* its
  own reduced chunk (no binomial-subtree surplus), so the enclosed ring
  is already minimal there — a nice structural contrast with the
  broadcast case that the tests pin down. Power-of-two only (MPICH's
  non-pof2 handling folds extra ranks first; out of scope).

Like :mod:`repro.collectives.gather`, reduction arithmetic is modelled
as per-combine compute time (``reduce_bw`` bytes/s), not operand values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CollectiveError
from ..util import ChunkSet, is_power_of_two
from .allgather_ring import ring_allgather_native
from .bcast import bcast_scatter_ring_opt
from .gather import reduce as binomial_reduce
from .scatter import span_bytes, span_disp

__all__ = ["AllreduceResult", "allreduce_reduce_bcast", "allreduce_rabenseifner"]

RS_TAG = 13


@dataclass
class AllreduceResult:
    """Per-rank outcome of an allreduce."""

    strategy: str
    sends: int
    recvs: int


def allreduce_reduce_bcast(
    ctx, nbytes: int, reduce_bw: float = 0.0, bcast=bcast_scatter_ring_opt
):
    """Reduce to rank 0, then broadcast with the given algorithm."""
    if nbytes < 0:
        raise CollectiveError(f"negative allreduce size {nbytes}")
    red = yield from binomial_reduce(ctx, nbytes, root=0, reduce_bw=reduce_bw)
    bc = yield from bcast(ctx, nbytes, 0)
    return AllreduceResult(
        strategy="reduce_bcast",
        sends=red.sends + bc.sends,
        recvs=red.recvs + bc.recvs,
    )


def allreduce_rabenseifner(ctx, nbytes: int, reduce_bw: float = 0.0):
    """Recursive-halving reduce-scatter + ring allgather (pof2 only).

    Reduce-scatter round ``k`` (mask halving from P/2): exchange the
    half of the *current window* the partner is responsible for, fold
    the received half into the accumulator. After ``log2 P`` rounds rank
    ``r`` holds the fully reduced chunk ``r``; the ring allgather then
    redistributes — at that point every rank owns exactly one chunk, so
    no enclosed-ring transfer is redundant.
    """
    if nbytes < 0:
        raise CollectiveError(f"negative allreduce size {nbytes}")
    if reduce_bw < 0:
        raise CollectiveError(f"negative reduce_bw {reduce_bw}")
    size = ctx.size
    if not is_power_of_two(size):
        raise CollectiveError(
            f"Rabenseifner allreduce needs a power-of-two size, got {size}"
        )
    rank = ctx.rank
    sends = recvs = 0

    if size == 1:
        return AllreduceResult("rabenseifner", 0, 0)

    # --- reduce-scatter by recursive halving -------------------------
    # Window of chunks this rank is still responsible for.
    win_start, win_len = 0, size
    mask = size >> 1
    while mask >= 1:
        partner = rank ^ mask
        # The window splits in two; I keep the half containing my chunk.
        keep_low = (rank & mask) == 0
        low = (win_start, win_len // 2)
        high = (win_start + win_len // 2, win_len // 2)
        mine, theirs = (low, high) if keep_low else (high, low)
        send_bytes = span_bytes(nbytes, size, theirs[0], theirs[1])
        recv_bytes = span_bytes(nbytes, size, mine[0], mine[1])
        yield from ctx.sendrecv(
            dst=partner,
            send_nbytes=send_bytes,
            src=partner,
            recv_nbytes=recv_bytes,
            send_disp=span_disp(nbytes, size, theirs[0]),
            recv_disp=span_disp(nbytes, size, mine[0]),
            send_tag=RS_TAG,
            recv_tag=RS_TAG,
            chunks=tuple(range(theirs[0], theirs[0] + theirs[1])),
        )
        sends += 1
        recvs += 1
        if reduce_bw > 0.0 and recv_bytes > 0:
            yield from ctx.compute(recv_bytes / reduce_bw)
        win_start, win_len = mine
        mask >>= 1

    if (win_start, win_len) != (rank, 1):
        raise CollectiveError(
            f"reduce-scatter left rank {rank} with window "
            f"[{win_start}, {win_start + win_len})"
        )  # pragma: no cover - structural impossibility

    # --- allgather the reduced chunks ---------------------------------
    # Every rank owns exactly chunk `rank`, so the enclosed ring is
    # already redundancy-free here (the tuned ring's skips only exist
    # when a binomial scatter leaves subtree surplus behind).
    ag = yield from ring_allgather_native(
        ctx, nbytes, root=0, owned=ChunkSet(size, [rank])
    )
    if ag.redundant_recvs != 0:
        raise CollectiveError(
            "Rabenseifner allgather redelivered a chunk"
        )  # pragma: no cover - structural impossibility
    sends += ag.sends
    recvs += ag.recvs
    return AllreduceResult("rabenseifner", sends, recvs)
