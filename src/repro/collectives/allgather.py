"""Standalone MPI_Allgather: the operation the paper's optimisation
tunes, exposed as a first-class collective.

In the broadcast context the allgather runs over *pre-scattered* chunks;
here we provide the general operation — every rank contributes its own
``block_bytes``-sized block and ends with all ``P`` blocks in rank
order — with the three classic algorithms MPICH chooses between:

* ``allgather_ring``   — P-1 neighbour steps, bandwidth-optimal;
* ``allgather_rdbl``   — log2 P exchange steps (power-of-two only);
* ``allgather_bruck``  — ceil(log2 P) steps for any P, at the cost of a
  local rotation (modelled as compute time).

Block ``i`` lives at displacement ``i * block_bytes``; contribution
blocks are in place before the call (rank ``r``'s block at its own
displacement), matching ``MPI_Allgather``'s in-place convention.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CollectiveError
from ..util import ChunkSet, is_power_of_two

__all__ = [
    "AllgatherResult",
    "allgather_ring",
    "allgather_rdbl",
    "allgather_bruck",
    "ALLGATHER_ALGORITHMS",
]

AG_TAG = 5


@dataclass
class AllgatherResult:
    """Per-rank outcome of a standalone allgather."""

    algorithm: str
    owned: ChunkSet
    steps: int
    sends: int
    recvs: int

    def assert_complete(self) -> None:
        if not self.owned.is_full:
            raise CollectiveError(
                f"incomplete allgather: missing blocks {self.owned.missing()}"
            )


def _check(block_bytes: int) -> None:
    if block_bytes < 0:
        raise CollectiveError(f"negative block size {block_bytes}")


def allgather_ring(ctx, block_bytes: int):
    """Ring allgather: forward the newest block to the right each step."""
    _check(block_bytes)
    size = ctx.size
    rank = ctx.rank
    owned = ChunkSet(size, [rank])
    if size == 1:
        return AllgatherResult("ring", owned, 0, 0, 0)
    left = (rank - 1 + size) % size
    right = (rank + 1) % size
    sends = recvs = 0
    for i in range(1, size):
        send_block = (rank - i + 1) % size
        recv_block = (rank - i) % size
        yield from ctx.sendrecv(
            dst=right,
            send_nbytes=block_bytes,
            src=left,
            recv_nbytes=block_bytes,
            send_disp=send_block * block_bytes,
            recv_disp=recv_block * block_bytes,
            send_tag=AG_TAG,
            recv_tag=AG_TAG,
            chunks=(send_block,),
        )
        sends += 1
        recvs += 1
        owned.add_strict(recv_block)
    return AllgatherResult("ring", owned, size - 1, sends, recvs)


def allgather_rdbl(ctx, block_bytes: int):
    """Recursive-doubling allgather (power-of-two communicators)."""
    _check(block_bytes)
    size = ctx.size
    if not is_power_of_two(size):
        raise CollectiveError(
            f"recursive-doubling allgather needs a power-of-two size, got {size}"
        )
    rank = ctx.rank
    owned = ChunkSet(size, [rank])
    sends = recvs = 0
    mask = 1
    while mask < size:
        partner = rank ^ mask
        my_start = rank & ~(mask - 1)
        their_start = partner & ~(mask - 1)
        yield from ctx.sendrecv(
            dst=partner,
            send_nbytes=mask * block_bytes,
            src=partner,
            recv_nbytes=mask * block_bytes,
            send_disp=my_start * block_bytes,
            recv_disp=their_start * block_bytes,
            send_tag=AG_TAG,
            recv_tag=AG_TAG,
            chunks=tuple(range(my_start, my_start + mask)),
        )
        sends += 1
        recvs += 1
        for b in range(their_start, their_start + mask):
            owned.add_strict(b)
        mask <<= 1
    return AllgatherResult("rdbl", owned, size.bit_length() - 1, sends, recvs)


def _spans(start: int, count: int, size: int):
    """Cover blocks ``[start, start+count) mod size`` with <= 2 runs."""
    start %= size
    first = min(count, size - start)
    spans = [(start, first)]
    if count > first:
        spans.append((0, count - first))
    return spans


def allgather_bruck(ctx, block_bytes: int):
    """Bruck (dissemination) allgather: ceil(log2 P) steps for any P.

    At step ``k`` every rank holds the contiguous-mod-P physical blocks
    ``[rank, rank + 2^k)`` and trades with partners ``2^k`` away: it
    sends that whole run to rank ``rank - 2^k`` and receives
    ``[rank + 2^k, rank + 2^k + count)`` from rank ``rank + 2^k``
    (``count`` clamps at the final step). Working directly in physical
    block coordinates avoids Bruck's closing rotation; a wrapped run
    costs a second message (<= 2 per step per direction).
    """
    _check(block_bytes)
    size = ctx.size
    rank = ctx.rank
    owned = ChunkSet(size, [rank])
    if size == 1:
        return AllgatherResult("bruck", owned, 0, 0, 0)
    sends = recvs = 0
    steps = 0
    mask = 1
    while mask < size:
        count = min(mask, size - mask)
        dst = (rank - mask + size) % size
        src = (rank + mask) % size
        requests = []
        for span_start, nblocks in _spans(rank, count, size):
            req = yield from ctx.isend(
                dst,
                nblocks * block_bytes,
                disp=span_start * block_bytes,
                tag=AG_TAG,
                chunks=tuple(range(span_start, span_start + nblocks)),
            )
            requests.append(req)
            sends += 1
        recv_blocks = []
        for span_start, nblocks in _spans(rank + mask, count, size):
            req = yield from ctx.irecv(
                src,
                nblocks * block_bytes,
                disp=span_start * block_bytes,
                tag=AG_TAG,
            )
            requests.append(req)
            recvs += 1
            recv_blocks.extend(range(span_start, span_start + nblocks))
        yield from ctx.waitall(requests)
        for b in recv_blocks:
            owned.add_strict(b)
        steps += 1
        mask <<= 1
    return AllgatherResult("bruck", owned, steps, sends, recvs)


ALLGATHER_ALGORITHMS = {
    "ring": allgather_ring,
    "rdbl": allgather_rdbl,
    "bruck": allgather_bruck,
}
