"""Relative-rank and binomial-subtree math shared by every algorithm.

All broadcast algorithms in MPICH operate on *relative ranks*:
``relative_rank = (rank - root + P) % P``, so the root is always
relative rank 0. The binomial scatter tree over relative ranks assigns
each rank a contiguous chunk interval; its extent (``subtree_chunks``)
is also exactly the ``step`` value the tuned ring's mask rule computes,
which is why both live here.
"""

from __future__ import annotations

from typing import Tuple

from ..errors import CollectiveError
from ..util import next_power_of_two

__all__ = [
    "relative_rank",
    "absolute_rank",
    "subtree_chunks",
    "scatter_ownership_extent",
    "tuned_ring_role",
]


def _check(size: int, root: int) -> None:
    if size < 1:
        raise CollectiveError(f"communicator size must be >= 1, got {size}")
    if not 0 <= root < size:
        raise CollectiveError(f"root {root} outside [0, {size})")


def relative_rank(rank: int, root: int, size: int) -> int:
    """``(rank - root) mod size``; the root maps to 0."""
    _check(size, root)
    if not 0 <= rank < size:
        raise CollectiveError(f"rank {rank} outside [0, {size})")
    return (rank - root + size) % size


def absolute_rank(rel: int, root: int, size: int) -> int:
    """Inverse of :func:`relative_rank`."""
    _check(size, root)
    if not 0 <= rel < size:
        raise CollectiveError(f"relative rank {rel} outside [0, {size})")
    return (rel + root) % size


def subtree_chunks(rel: int, size: int) -> int:
    """Chunks owned by relative rank *rel* after the binomial scatter.

    The scatter tree hands relative rank ``rel`` the contiguous chunk
    interval ``[rel, rel + subtree_chunks(rel, size))``. The root owns
    everything; a non-root rank's extent is its branch mask (the bit on
    which it received), clamped to the communicator size:

    * P=8:  extents are [8, 1, 2, 1, 4, 1, 2, 1]
    * P=10: extents are [10, 1, 2, 1, 4, 1, 2, 1, 2, 1]
    """
    if size < 1:
        raise CollectiveError(f"size must be >= 1, got {size}")
    if not 0 <= rel < size:
        raise CollectiveError(f"relative rank {rel} outside [0, {size})")
    if rel == 0:
        return size
    # The bit at which `rel` branches off the tree: its lowest set bit.
    mask = rel & -rel
    return min(mask, size - rel)


# A rank's scatter ownership is exactly its subtree extent.
scatter_ownership_extent = subtree_chunks


def tuned_ring_role(rel: int, size: int) -> Tuple[int, int]:
    """The ``(step, flag)`` pair from Listing 1 of the paper.

    Scanning masks downward from ``2**ceil(log2 P)``, the first rank
    condition that fires decides the role:

    * ``flag = 1`` (receive-only endpoint): the rank's *right neighbour*
      is a subtree root — once the neighbour's missing chunks are
      delivered, this rank stops sending. It stops for the final
      ``step - 1`` ring iterations.
    * ``flag = 0`` (send-only endpoint): the rank itself is a subtree
      root owning ``step`` chunks from the scatter — it already holds
      what the last ``step - 1`` iterations would deliver, so it stops
      receiving.

    ``step`` equals ``subtree_chunks`` of the relevant subtree root.
    """
    if size < 1:
        raise CollectiveError(f"size must be >= 1, got {size}")
    if not 0 <= rel < size:
        raise CollectiveError(f"relative rank {rel} outside [0, {size})")
    if size == 1:
        return (1, 0)
    mask = next_power_of_two(size)
    while mask > 1:
        right_rel = rel + 1 if rel + 1 < size else rel + 1 - size
        if right_rel % mask == 0:
            step = mask
            if right_rel + mask > size:
                step = size - right_rel
            return (step, 1)
        if rel % mask == 0:
            step = mask
            if rel + mask > size:
                step = size - rel
            return (step, 0)
        mask >>= 1
    raise CollectiveError(
        f"mask scan failed for rel={rel}, size={size}"
    )  # pragma: no cover - unreachable: mask=2 always fires for some rank
