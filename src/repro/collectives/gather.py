"""All-to-One collectives: MPI_Gather and MPI_Reduce.

The paper's introduction frames broadcast within the MPI collective
taxonomy (One-to-All, All-to-One, All-to-All); these are the All-to-One
members, implemented the way MPICH does for short/medium payloads — a
binomial tree rooted (in relative-rank space) at the root:

* ``gather``: leaves send their block up; inner nodes forward their
  accumulated subtree (own block + descendants) one parent hop at a
  time. Rank ``rel`` contributes block ``rel``; the root ends with all
  ``P`` blocks in relative order.
* ``reduce``: same tree, but each hop carries a full ``nbytes`` vector
  and the parent pays a modelled combine cost (``nbytes / reduce_bw``
  seconds per child) — the classic latency/compute trade of tree
  reductions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CollectiveError
from ..util import ChunkSet, next_power_of_two
from .relative import relative_rank, subtree_chunks
from .scatter import span_bytes, span_disp

__all__ = ["GatherResult", "gather", "ReduceResult", "reduce"]

GATHER_TAG = 7
REDUCE_TAG = 8


@dataclass
class GatherResult:
    """Per-rank outcome of a binomial gather."""

    gathered: ChunkSet  # blocks present at this rank at the end
    sends: int
    recvs: int


def gather(ctx, block_bytes: int, root: int = 0):
    """Binomial-tree gather of one ``block_bytes`` block per rank.

    The buffer layout is the full ``P * block_bytes`` gather buffer on
    every rank (only the root's content is meaningful afterwards, as in
    MPI); block ``rel`` lives at relative displacement ``rel *
    block_bytes``, so subtree payloads are contiguous (modulo the
    trailing clamp) exactly like the scatter's.
    """
    if block_bytes < 0:
        raise CollectiveError(f"negative block size {block_bytes}")
    size = ctx.size
    rel = relative_rank(ctx.rank, root, size)
    nbytes = block_bytes * size
    extent = subtree_chunks(rel, size)
    gathered = ChunkSet(size, [rel])
    sends = recvs = 0

    if size == 1:
        return GatherResult(gathered, 0, 0)

    # Children report in smallest-mask-first (mirror of scatter order):
    # child rel + m exists for each m below the branch mask.
    mask = 1
    branch = next_power_of_two(size) if rel == 0 else (rel & -rel)
    while mask < branch:
        child_rel = rel + mask
        if child_rel < size:
            child_extent = min(mask, size - child_rel)
            recv_bytes = span_bytes(nbytes, size, child_rel, child_extent)
            if recv_bytes > 0:
                child = (child_rel + root) % size
                yield from ctx.recv(
                    child,
                    recv_bytes,
                    disp=span_disp(nbytes, size, child_rel),
                    tag=GATHER_TAG,
                )
                recvs += 1
            for b in range(child_rel, child_rel + child_extent):
                gathered.add_strict(b)
        mask <<= 1

    # Then forward the whole accumulated subtree to the parent.
    if rel != 0:
        parent_rel = rel - branch
        parent = (parent_rel + root) % size
        send_bytes = span_bytes(nbytes, size, rel, extent)
        if send_bytes > 0:
            yield from ctx.send(
                parent,
                send_bytes,
                disp=span_disp(nbytes, size, rel),
                tag=GATHER_TAG,
                chunks=tuple(range(rel, rel + extent)),
            )
            sends += 1

    if rel == 0 and not gathered.is_full:
        raise CollectiveError(
            f"gather root missing blocks {gathered.missing()}"
        )  # pragma: no cover - structural impossibility
    return GatherResult(gathered, sends, recvs)


@dataclass
class ReduceResult:
    """Per-rank outcome of a binomial reduce."""

    contributions: int  # vectors combined at this rank (incl. its own)
    sends: int
    recvs: int


def reduce(ctx, nbytes: int, root: int = 0, reduce_bw: float = 0.0):
    """Binomial-tree reduce of one ``nbytes`` vector per rank.

    Every hop moves a full vector; a parent combines each received child
    vector into its accumulator, paying ``nbytes / reduce_bw`` seconds
    of compute per child when ``reduce_bw`` (bytes/s) is positive. The
    root's result conceptually holds the reduction of all ``P``
    contributions (we track contribution *counts*, not arithmetic — the
    simulator carries bytes, not operand values).
    """
    if nbytes < 0:
        raise CollectiveError(f"negative reduce size {nbytes}")
    if reduce_bw < 0:
        raise CollectiveError(f"negative reduce_bw {reduce_bw}")
    size = ctx.size
    rel = relative_rank(ctx.rank, root, size)
    contributions = 1
    sends = recvs = 0

    if size == 1:
        return ReduceResult(contributions, 0, 0)

    mask = 1
    branch = next_power_of_two(size) if rel == 0 else (rel & -rel)
    while mask < branch:
        child_rel = rel + mask
        if child_rel < size:
            child = (child_rel + root) % size
            yield from ctx.recv(child, nbytes, disp=0, tag=REDUCE_TAG)
            recvs += 1
            # The child already folded its whole subtree into one vector.
            contributions += min(mask, size - child_rel)
            if reduce_bw > 0.0 and nbytes > 0:
                yield from ctx.compute(nbytes / reduce_bw)
        mask <<= 1

    if rel != 0:
        parent = ((rel - branch) + root) % size
        yield from ctx.send(parent, nbytes, disp=0, tag=REDUCE_TAG)
        sends += 1

    if rel == 0 and contributions != size:
        raise CollectiveError(
            f"reduce root combined {contributions} of {size} contributions"
        )  # pragma: no cover - structural impossibility
    return ReduceResult(contributions, sends, recvs)
