"""MPI_Scan: inclusive prefix reduction.

Completes the collective taxonomy the paper's introduction cites. Two
algorithms:

* ``scan_linear`` — rank r waits for rank r-1's prefix, folds its own
  vector, forwards to r+1. P-1 sequential hops: trivially correct, the
  latency baseline.
* ``scan_recursive_doubling`` — the classic log-round prefix network:
  in round ``k`` rank r sends its *accumulated* value to ``r + 2^k`` and
  folds what arrives from ``r - 2^k`` into its prefix. ``ceil(log2 P)``
  rounds for any P.

As with reduce, arithmetic is modelled as combine time (``reduce_bw``),
not operand values; ``contributions`` counts how many ranks' vectors are
folded into the result (must equal ``rank + 1`` for an inclusive scan).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CollectiveError

__all__ = ["ScanResult", "scan_linear", "scan_recursive_doubling"]

SCAN_TAG = 15


@dataclass
class ScanResult:
    """Per-rank outcome of an inclusive scan."""

    algorithm: str
    contributions: int  # ranks folded into this rank's prefix
    sends: int
    recvs: int

    def assert_inclusive(self, rank: int) -> None:
        if self.contributions != rank + 1:
            raise CollectiveError(
                f"rank {rank} prefix folded {self.contributions} contributions, "
                f"expected {rank + 1}"
            )


def _check(nbytes: int, reduce_bw: float) -> None:
    if nbytes < 0:
        raise CollectiveError(f"negative scan size {nbytes}")
    if reduce_bw < 0:
        raise CollectiveError(f"negative reduce_bw {reduce_bw}")


def scan_linear(ctx, nbytes: int, reduce_bw: float = 0.0):
    """Chain scan: prefix flows rank 0 -> 1 -> ... -> P-1."""
    _check(nbytes, reduce_bw)
    size = ctx.size
    rank = ctx.rank
    sends = recvs = 0
    contributions = 1
    if rank > 0:
        yield from ctx.recv(rank - 1, nbytes, tag=SCAN_TAG)
        recvs += 1
        contributions += rank  # the full upstream prefix arrives folded
        if reduce_bw > 0.0 and nbytes > 0:
            yield from ctx.compute(nbytes / reduce_bw)
    if rank + 1 < size:
        yield from ctx.send(rank + 1, nbytes, tag=SCAN_TAG)
        sends += 1
    return ScanResult("linear", contributions, sends, recvs)


def scan_recursive_doubling(ctx, nbytes: int, reduce_bw: float = 0.0):
    """Log-round prefix network (Hillis-Steele over ranks)."""
    _check(nbytes, reduce_bw)
    size = ctx.size
    rank = ctx.rank
    sends = recvs = 0
    contributions = 1  # my own vector

    mask = 1
    while mask < size:
        dst = rank + mask
        src = rank - mask
        requests = []
        if dst < size:
            requests.append((yield from ctx.isend(dst, nbytes, tag=SCAN_TAG)))
            sends += 1
        if src >= 0:
            requests.append((yield from ctx.irecv(src, nbytes, tag=SCAN_TAG)))
            recvs += 1
        if requests:
            yield from ctx.waitall(requests)
        if src >= 0:
            # The sender's accumulator covered min(mask, src + 1) ranks.
            contributions += min(mask, src + 1)
            if reduce_bw > 0.0 and nbytes > 0:
                yield from ctx.compute(nbytes / reduce_bw)
        mask <<= 1

    result = ScanResult("recursive_doubling", contributions, sends, recvs)
    result.assert_inclusive(rank)
    return result
