"""Composed broadcast algorithms: the paper's two protagonists and the
other MPICH paths they are selected against.

``bcast_scatter_ring_native``  — MPI_Bcast_native: binomial scatter +
                                 enclosed ring allgather (Section III).
``bcast_scatter_ring_opt``     — MPI_Bcast_opt: binomial scatter + tuned
                                 non-enclosed ring allgather (Section IV,
                                 Listing 1). The paper's contribution.
``bcast_scatter_rdbl``         — binomial scatter + recursive-doubling
                                 allgather (MPICH's mmsg/pof2 path).
``bcast_binomial``             — short-message binomial tree (re-exported
                                 from :mod:`.binomial`).

Every algorithm is a generator taking ``(ctx, nbytes, root)`` and
returning a :class:`BcastResult`; the registry at the bottom is what the
high-level API and the benchmarks iterate over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import CollectiveError
from ..util import ChunkSet
from .allgather_rd import allgather_recursive_doubling
from .allgather_ring import ring_allgather_native, ring_allgather_tuned
from .binomial import bcast_binomial as _binomial
from .scatter import binomial_scatter

__all__ = [
    "BcastResult",
    "bcast_binomial",
    "bcast_scatter_ring_native",
    "bcast_scatter_ring_opt",
    "bcast_scatter_rdbl",
    "bcast_degraded",
    "ALGORITHMS",
    "get_algorithm",
]


@dataclass
class BcastResult:
    """Per-rank outcome of a complete broadcast."""

    algorithm: str
    owned: Optional[ChunkSet]  # None for algorithms without chunking
    sends: int
    recvs: int
    redundant_recvs: int

    def assert_complete(self) -> None:
        """Raise unless this rank ended holding the full message."""
        if self.owned is not None and not self.owned.is_full:
            raise CollectiveError(
                f"incomplete broadcast: missing chunks {self.owned.missing()}"
            )


def bcast_binomial(ctx, nbytes: int, root: int = 0):
    """Short-message binomial broadcast (full buffer down the tree)."""
    res = yield from _binomial(ctx, nbytes, root)
    return BcastResult(
        algorithm="binomial",
        owned=ChunkSet.full(ctx.size),
        sends=res.sends,
        recvs=res.recvs,
        redundant_recvs=0,
    )


def bcast_scatter_ring_native(ctx, nbytes: int, root: int = 0):
    """MPI_Bcast_native: scatter + enclosed ring (P x (P-1) transfers)."""
    scatter = yield from binomial_scatter(ctx, nbytes, root)
    if ctx.size == 1:
        return BcastResult("scatter_ring_native", scatter.owned, 0, 0, 0)
    ring = yield from ring_allgather_native(ctx, nbytes, root, owned=scatter.owned)
    return BcastResult(
        algorithm="scatter_ring_native",
        owned=ring.owned,
        sends=ring.sends + scatter.sends,
        recvs=ring.recvs + scatter.recvs,
        redundant_recvs=ring.redundant_recvs,
    )


def bcast_scatter_ring_opt(ctx, nbytes: int, root: int = 0):
    """MPI_Bcast_opt: scatter + tuned ring (the paper's contribution)."""
    scatter = yield from binomial_scatter(ctx, nbytes, root)
    if ctx.size == 1:
        return BcastResult("scatter_ring_opt", scatter.owned, 0, 0, 0)
    ring = yield from ring_allgather_tuned(ctx, nbytes, root, owned=scatter.owned)
    return BcastResult(
        algorithm="scatter_ring_opt",
        owned=ring.owned,
        sends=ring.sends + scatter.sends,
        recvs=ring.recvs + scatter.recvs,
        redundant_recvs=0,
    )


def bcast_scatter_rdbl(ctx, nbytes: int, root: int = 0):
    """Scatter + recursive-doubling allgather (mmsg, power-of-two only)."""
    scatter = yield from binomial_scatter(ctx, nbytes, root)
    if ctx.size == 1:
        return BcastResult("scatter_rdbl", scatter.owned, 0, 0, 0)
    rd = yield from allgather_recursive_doubling(ctx, nbytes, root)
    owned = rd.owned.copy()
    owned.union_update(scatter.owned)
    return BcastResult(
        algorithm="scatter_rdbl",
        owned=owned,
        sends=rd.sends + scatter.sends,
        recvs=rd.recvs + scatter.recvs,
        redundant_recvs=0,
    )


def bcast_knomial4(ctx, nbytes: int, root: int = 0):
    """Radix-4 k-nomial tree (extension; see :mod:`.knomial`)."""
    from .knomial import bcast_knomial

    res = yield from bcast_knomial(ctx, nbytes, root, radix=4)
    return BcastResult(
        algorithm="knomial4",
        owned=ChunkSet.full(ctx.size),
        sends=res.sends,
        recvs=res.recvs,
        redundant_recvs=0,
    )


def bcast_chain_pipelined(ctx, nbytes: int, root: int = 0):
    """Pipelined chain with 64 KiB segments (extension; see :mod:`.chain`)."""
    from .chain import bcast_chain

    res = yield from bcast_chain(ctx, nbytes, root, segment_bytes=65536)
    return BcastResult(
        algorithm="chain",
        owned=ChunkSet.full(ctx.size),
        sends=res.sends,
        recvs=res.recvs,
        redundant_recvs=0,
    )


def bcast_degraded(ctx, nbytes: int, root: int = 0, faults=None, tuned: bool = True):
    """Fault-aware broadcast: the MPICH3 selection, degraded by a
    :class:`~repro.sim.faults.FaultPlan`.

    Picks the tuned (or native) path exactly like the selector, except
    that a plan with any crashed rank steers the ring regime onto the
    binomial tree — the ring's circular dependency cannot route around a
    dead neighbour, the tree only loses the subtree below it (see the
    degradation matrix in docs/robustness.md).
    """
    from .selector import choose_bcast_name

    name = choose_bcast_name(nbytes, ctx.size, tuned=tuned, faults=faults)
    result = yield from get_algorithm(name)(ctx, nbytes, root)
    return result


ALGORITHMS = {
    "binomial": bcast_binomial,
    "scatter_ring_native": bcast_scatter_ring_native,
    "scatter_ring_opt": bcast_scatter_ring_opt,
    "scatter_rdbl": bcast_scatter_rdbl,
    "knomial4": bcast_knomial4,
    "chain": bcast_chain_pipelined,
}


def get_algorithm(name: str):
    """Look up a broadcast algorithm by registry name."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise CollectiveError(
            f"unknown broadcast algorithm {name!r}; known: {sorted(ALGORITHMS)}"
        ) from None
