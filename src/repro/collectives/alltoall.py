"""All-to-All personalised exchange: MPI_Alltoall.

Two classic algorithms, selected the way MPICH does by message size:

* ``alltoall_pairwise`` — P-1 rounds; in round ``k`` every rank
  exchanges one block with partner ``rank xor k`` (power-of-two P) or
  the shifted partner pair ``(rank + k, rank - k)`` (any P).
  Bandwidth-optimal: each block crosses the wire exactly once.
* ``alltoall_bruck`` — ceil(log2 P) rounds for small blocks; round ``k``
  ships *all* blocks whose destination-distance has bit ``k`` set to the
  rank ``2^k`` away. Each block travels popcount(distance) hops, trading
  bytes for latency.

``MPI_Alltoall`` uses *separate* send and receive matrices; our rank
context carries a single buffer, so both algorithms here run at the
byte-count/dependency level (an internal buffer-less context), which is
exactly what the timing and traffic studies need. Payload-level
validation for all-to-all would require a two-buffer context and is out
of scope (DESIGN.md §7).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CollectiveError
from ..mpi.context import RankContext
from ..util import is_power_of_two

__all__ = ["AlltoallResult", "alltoall_pairwise", "alltoall_bruck", "ALLTOALL_ALGORITHMS"]

A2A_TAG = 9


@dataclass
class AlltoallResult:
    """Per-rank outcome of an all-to-all exchange."""

    algorithm: str
    rounds: int
    sends: int
    recvs: int
    bytes_sent: int


def _check(block_bytes: int) -> None:
    if block_bytes < 0:
        raise CollectiveError(f"negative block size {block_bytes}")


def alltoall_pairwise(ctx, block_bytes: int):
    """Pairwise-exchange all-to-all: P-1 single-block rounds."""
    _check(block_bytes)
    size = ctx.size
    rank = ctx.rank
    if size == 1:
        return AlltoallResult("pairwise", 0, 0, 0, 0)
    ctx = RankContext(ctx.global_rank, ctx.comm, buffer=None)
    sends = recvs = bytes_sent = 0
    pof2 = is_power_of_two(size)
    for k in range(1, size):
        if pof2:
            dst = src = rank ^ k
        else:
            dst = (rank + k) % size
            src = (rank - k + size) % size
        yield from ctx.sendrecv(
            dst=dst,
            send_nbytes=block_bytes,
            src=src,
            recv_nbytes=block_bytes,
            send_tag=A2A_TAG,
            recv_tag=A2A_TAG,
            chunks=(dst,),
        )
        sends += 1
        recvs += 1
        bytes_sent += block_bytes
    return AlltoallResult("pairwise", size - 1, sends, recvs, bytes_sent)


def alltoall_bruck(ctx, block_bytes: int):
    """Bruck all-to-all: log rounds, blocks take popcount(distance) hops.

    Round ``k`` forwards every block whose remaining destination
    distance has bit ``k`` set to the rank ``2^k`` to the right, packed
    as one aggregate message (as MPICH does). Byte counts and
    dependencies are exact; per-destination payload identity is
    abstracted (see module docstring).
    """
    _check(block_bytes)
    size = ctx.size
    rank = ctx.rank
    if size == 1:
        return AlltoallResult("bruck", 0, 0, 0, 0)
    ctx = RankContext(ctx.global_rank, ctx.comm, buffer=None)
    sends = recvs = bytes_sent = 0
    rounds = 0
    mask = 1
    while mask < size:
        # Blocks for destinations whose distance-from-me has this bit.
        count = sum(1 for d in range(1, size) if d & mask)
        nbytes = count * block_bytes
        dst = (rank + mask) % size
        src = (rank - mask + size) % size
        yield from ctx.sendrecv(
            dst=dst,
            send_nbytes=nbytes,
            src=src,
            recv_nbytes=nbytes,
            send_tag=A2A_TAG,
            recv_tag=A2A_TAG,
        )
        sends += 1
        recvs += 1
        bytes_sent += nbytes
        rounds += 1
        mask <<= 1
    return AlltoallResult("bruck", rounds, sends, recvs, bytes_sent)


ALLTOALL_ALGORITHMS = {
    "pairwise": alltoall_pairwise,
    "bruck": alltoall_bruck,
}
