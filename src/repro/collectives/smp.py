"""Multi-core-aware (SMP) broadcast — MPICH3's three-phase scheme.

The paper (Section I) describes the mmsg-npof2 path as multi-core aware:

1. intra-node binomial broadcast on the *root's* node;
2. inter-node broadcast among one leader per node (scatter-ring-
   allgather — the phase the tuned ring accelerates);
3. intra-node binomial broadcast on every other node, rooted at its
   leader.

Sub-communicators are derived deterministically from the machine
placement, so every rank builds identical communicators without any
communication (see :mod:`repro.mpi.comm`).
"""

from __future__ import annotations

from ..errors import CollectiveError
from ..machine import Placement
from ..util import ChunkSet
from .bcast import BcastResult, bcast_scatter_ring_native
from .binomial import bcast_binomial

__all__ = ["bcast_smp"]


def bcast_smp(
    ctx,
    nbytes: int,
    root: int = 0,
    placement: Placement = None,
    inner=bcast_scatter_ring_native,
):
    """Three-phase SMP broadcast over the communicator bound to *ctx*.

    *placement* maps global transport ranks to nodes (usually
    ``machine.placement``). *inner* is the leader-phase broadcast —
    swap in :func:`~repro.collectives.bcast.bcast_scatter_ring_opt` to
    get the tuned variant end to end.
    """
    if placement is None:
        raise CollectiveError("bcast_smp needs the machine placement")
    comm = ctx.comm
    size = comm.size
    if not 0 <= root < size:
        raise CollectiveError(f"root {root} outside [0, {size})")

    # Group communicator members by node, preserving rank order.
    groups = {}
    for local in range(size):
        node = placement.node_of(comm.to_global(local))
        groups.setdefault(node, []).append(local)
    root_node = placement.node_of(comm.to_global(root))
    my_node = placement.node_of(ctx.global_rank)

    # One leader per node: the root itself on its node, else the lowest
    # member, so phase 2 can be rooted at the true data source.
    leaders = [
        root if node == root_node else members[0]
        for node, members in sorted(groups.items())
    ]
    my_members = groups[my_node]
    my_leader = root if my_node == root_node else my_members[0]
    i_am_leader = ctx.rank == my_leader

    node_comm = comm.subset(my_members, name=f"{comm.name}.node{my_node}")
    node_ctx = ctx.sub(node_comm)

    sends = recvs = redundant = 0

    # -- Phase 1: intra-node broadcast on the root's node ----------------
    if my_node == root_node and node_comm.size > 1:
        res = yield from bcast_binomial(
            node_ctx, nbytes, root=node_comm.to_local(comm.to_global(root))
        )
        sends += res.sends
        recvs += res.recvs

    # -- Phase 2: inter-node broadcast among leaders ------------------------
    if i_am_leader and len(leaders) > 1:
        leader_comm = comm.subset(leaders, name=f"{comm.name}.leaders")
        leader_ctx = ctx.sub(leader_comm)
        res = yield from inner(
            leader_ctx, nbytes, root=leaders.index(root)
        )
        sends += res.sends
        recvs += res.recvs
        redundant += getattr(res, "redundant_recvs", 0)

    # -- Phase 3: intra-node broadcast on the other nodes ---------------------
    if my_node != root_node and node_comm.size > 1:
        res = yield from bcast_binomial(
            node_ctx, nbytes, root=node_comm.to_local(comm.to_global(my_leader))
        )
        sends += res.sends
        recvs += res.recvs

    return BcastResult(
        algorithm="smp",
        owned=ChunkSet.full(size),
        sends=sends,
        recvs=recvs,
        redundant_recvs=redundant,
    )
