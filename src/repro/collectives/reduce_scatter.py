"""MPI_Reduce_scatter_block: reduce a vector, leave chunk r on rank r.

The building block of Rabenseifner's allreduce (and of ring allreduce in
ML frameworks). Two algorithms:

* ``reduce_scatter_halving`` — recursive halving, ``log2 P`` rounds of
  half-window exchanges (power-of-two only): bandwidth ~ n (P-1)/P per
  rank, the textbook optimum.
* ``reduce_scatter_ring`` — P-1 ring steps, each passing a one-chunk
  partial sum left-to-right so chunk ``r`` accumulates all P
  contributions by the time it reaches rank ``r`` (any P): the scheme
  ring-allreduce popularised.

Reduction arithmetic is modelled as combine time (``reduce_bw``); the
``contributions`` counter tracks how many ranks' values are folded into
this rank's final chunk (must be P).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CollectiveError
from ..util import is_power_of_two
from .scatter import span_bytes, span_disp

__all__ = ["ReduceScatterResult", "reduce_scatter_halving", "reduce_scatter_ring"]

RSC_TAG = 16


@dataclass
class ReduceScatterResult:
    """Per-rank outcome: rank r ends owning reduced chunk r."""

    algorithm: str
    chunk: int
    contributions: int
    sends: int
    recvs: int

    def assert_fully_reduced(self, size: int) -> None:
        if self.contributions != size:
            raise CollectiveError(
                f"chunk {self.chunk} folded {self.contributions} of {size} "
                "contributions"
            )


def _check(nbytes: int, reduce_bw: float) -> None:
    if nbytes < 0:
        raise CollectiveError(f"negative reduce_scatter size {nbytes}")
    if reduce_bw < 0:
        raise CollectiveError(f"negative reduce_bw {reduce_bw}")


def reduce_scatter_halving(ctx, nbytes: int, reduce_bw: float = 0.0):
    """Recursive halving (power-of-two communicators)."""
    _check(nbytes, reduce_bw)
    size = ctx.size
    if not is_power_of_two(size):
        raise CollectiveError(
            f"recursive halving needs a power-of-two size, got {size}"
        )
    rank = ctx.rank
    sends = recvs = 0
    if size == 1:
        return ReduceScatterResult("halving", 0, 1, 0, 0)

    win_start, win_len = 0, size
    # Each exchanged half carries partial sums of 2^round contributions;
    # my kept half ends up with all of them folded in.
    contributions = 1
    mask = size >> 1
    while mask >= 1:
        partner = rank ^ mask
        keep_low = (rank & mask) == 0
        low = (win_start, win_len // 2)
        high = (win_start + win_len // 2, win_len // 2)
        mine, theirs = (low, high) if keep_low else (high, low)
        send_bytes = span_bytes(nbytes, size, theirs[0], theirs[1])
        recv_bytes = span_bytes(nbytes, size, mine[0], mine[1])
        yield from ctx.sendrecv(
            dst=partner,
            send_nbytes=send_bytes,
            src=partner,
            recv_nbytes=recv_bytes,
            send_disp=span_disp(nbytes, size, theirs[0]),
            recv_disp=span_disp(nbytes, size, mine[0]),
            send_tag=RSC_TAG,
            recv_tag=RSC_TAG,
            chunks=tuple(range(theirs[0], theirs[0] + theirs[1])),
        )
        sends += 1
        recvs += 1
        contributions *= 2  # partner's half carried as many folds as mine
        if reduce_bw > 0.0 and recv_bytes > 0:
            yield from ctx.compute(recv_bytes / reduce_bw)
        win_start, win_len = mine
        mask >>= 1

    result = ReduceScatterResult("halving", rank, contributions, sends, recvs)
    result.assert_fully_reduced(size)
    return result


def reduce_scatter_ring(ctx, nbytes: int, reduce_bw: float = 0.0):
    """Ring reduce-scatter (any P): partial sums circulate right.

    At step ``s`` (1-based) rank ``r`` sends the partial sum of chunk
    ``(r - s + 1) mod P`` (accumulated over the ``s`` ranks it has
    visited) to ``r + 1`` and folds its own value into the arriving
    partial of chunk ``(r - s) mod P``. After P-1 steps chunk ``r`` sits
    fully reduced on rank ``r``.
    """
    _check(nbytes, reduce_bw)
    size = ctx.size
    rank = ctx.rank
    sends = recvs = 0
    if size == 1:
        return ReduceScatterResult("ring", 0, 1, 0, 0)

    left = (rank - 1 + size) % size
    right = (rank + 1) % size
    for step in range(1, size):
        send_chunk = (rank - step + 1) % size
        recv_chunk = (rank - step) % size
        send_bytes = span_bytes(nbytes, size, send_chunk, 1)
        recv_bytes = span_bytes(nbytes, size, recv_chunk, 1)
        yield from ctx.sendrecv(
            dst=right,
            send_nbytes=send_bytes,
            src=left,
            recv_nbytes=recv_bytes,
            send_disp=span_disp(nbytes, size, send_chunk),
            recv_disp=span_disp(nbytes, size, recv_chunk),
            send_tag=RSC_TAG,
            recv_tag=RSC_TAG,
            chunks=(send_chunk,),
        )
        sends += 1
        recvs += 1
        if reduce_bw > 0.0 and recv_bytes > 0:
            yield from ctx.compute(recv_bytes / reduce_bw)

    # The partial that just arrived (chunk rank, having visited all P-1
    # other ranks) plus my own contribution is fully reduced.
    result = ReduceScatterResult("ring", rank, size, sends, recvs)
    result.assert_fully_reduced(size)
    return result
