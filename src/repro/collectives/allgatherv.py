"""MPI_Allgatherv: ring allgather with per-rank block sizes.

The v-collectives are where MPICH's ring shines (recursive doubling
needs painful bookkeeping for unequal blocks), and the paper's inner
operation is *already* effectively an allgatherv — the broadcast chunks
are unequal whenever ``nbytes % P != 0``. This module exposes that
machinery directly: every rank contributes ``counts[rank]`` bytes at
displacement ``sum(counts[:rank])`` and the (P-1)-step ring circulates
each block once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import CollectiveError
from ..util import ChunkSet

__all__ = ["AllgathervResult", "allgatherv_ring", "displacements"]

AGV_TAG = 14


def displacements(counts: Sequence[int]) -> List[int]:
    """Prefix-sum byte offsets of each rank's block."""
    disps = []
    total = 0
    for i, c in enumerate(counts):
        if c < 0:
            raise CollectiveError(f"counts[{i}] is negative: {c}")
        disps.append(total)
        total += c
    return disps


@dataclass
class AllgathervResult:
    """Per-rank outcome of a ring allgatherv."""

    owned: ChunkSet
    steps: int
    sends: int
    recvs: int
    total_bytes: int


def allgatherv_ring(ctx, counts: Sequence[int]):
    """Ring allgatherv over per-rank byte counts.

    ``counts[i]`` is rank ``i``'s contribution; the buffer layout is the
    concatenation in rank order. At step ``s`` rank ``r`` forwards block
    ``(r - s + 1) mod P`` right and receives block ``(r - s) mod P``
    from the left — zero-byte blocks still take their ring slot, exactly
    like MPICH (and like the clamped chunks inside the broadcast).
    """
    size = ctx.size
    counts = list(counts)
    if len(counts) != size:
        raise CollectiveError(
            f"allgatherv needs {size} counts, got {len(counts)}"
        )
    disps = displacements(counts)
    total = sum(counts)
    rank = ctx.rank
    owned = ChunkSet(size, [rank])
    if size == 1:
        return AllgathervResult(owned, 0, 0, 0, total)

    left = (rank - 1 + size) % size
    right = (rank + 1) % size
    sends = recvs = 0
    for step in range(1, size):
        send_block = (rank - step + 1) % size
        recv_block = (rank - step) % size
        yield from ctx.sendrecv(
            dst=right,
            send_nbytes=counts[send_block],
            src=left,
            recv_nbytes=counts[recv_block],
            send_disp=disps[send_block],
            recv_disp=disps[recv_block],
            send_tag=AGV_TAG,
            recv_tag=AGV_TAG,
            chunks=(send_block,),
        )
        sends += 1
        recvs += 1
        owned.add_strict(recv_block)

    if not owned.is_full:
        raise CollectiveError(
            f"rank {rank}: allgatherv missing blocks {owned.missing()}"
        )  # pragma: no cover - structural impossibility
    return AllgathervResult(owned, size - 1, sends, recvs, total)
