"""Inductive schedule certificates declared by the collective generators.

Each certified collective declares the *shape* of its schedule — the
phases it runs, in rank-relative chunk coordinates — so that
:mod:`repro.analysis.certify` can generate and discharge the inductive
proof obligations (base case after scatter, preservation across one
ring/tree step, postcondition = full dissemination with an exact
transfer count) symbolically in P. A passing certificate is a proof for
all ``P >= 2``, not a sampled check.

The declarations here are deliberately *data*: this package must not
import :mod:`repro.analysis` (the analysis layer sits on top of the
collectives layer). The symbolic machinery that consumes these
declarations lives entirely in ``analysis/certify.py``; the invariants
being certified are:

* ring phases — relative rank r with post-scatter extent e owns, after
  ring step s, exactly the offset interval ``[-min(s, R), e-1] mod P``
  around itself, where R is its number of receiving steps (``P-e`` for
  the tuned ring's send-only endpoints, ``P-1`` otherwise);
* the binomial scatter — relative rank r ends owning exactly the chunk
  run ``[r, r + subtree_chunks(r))``.

Every registry collective that does **not** declare a certificate must
carry an explicit waiver in :data:`UNCERTIFIED` — ``repro prove``
enforces that rule, so new collectives cannot silently dodge the proof
layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

from .allgather import AG_TAG
from .allgather_ring import RING_TAG
from .allgatherv import AGV_TAG
from .scatter import SCATTER_TAG

__all__ = [
    "RingPhase",
    "ScatterPhase",
    "ScheduleCertificate",
    "CERTIFICATES",
    "UNCERTIFIED",
]


@dataclass(frozen=True)
class ScatterPhase:
    """A binomial-tree scatter: the root's chunk run is recursively
    halved down the tree; every relative rank ends with exactly its
    subtree run ``[rel, rel + subtree_chunks(rel))``."""

    tag: int


@dataclass(frozen=True)
class RingPhase:
    """A (P-1)-step neighbour ring in relative chunk coordinates.

    At step i, relative rank r forwards chunk ``(r - i + 1) mod P``
    right and receives chunk ``(r - i) mod P`` from the left.

    * ``tuned=False`` — the enclosed ring: full-duplex sendrecv at
      every step, ``P*(P-1)`` transfers, ``e-1`` of each rank's
      receives redundant when seeded by a scatter.
    * ``tuned=True`` — the paper's non-enclosed ring: roles from
      ``tuned_ring_role`` degrade to half-duplex for the last
      ``step-1`` iterations, eliminating exactly the ``S-P`` redundant
      transfers.
    * ``seeded=True`` — base ownership is the binomial-scatter run
      (extent ``subtree_chunks(rel)``); otherwise every rank starts
      with exactly its own block (extent 1, as in a plain allgather).
    """

    tag: int
    tuned: bool
    seeded: bool


PhaseDecl = Union[ScatterPhase, RingPhase]


@dataclass(frozen=True)
class ScheduleCertificate:
    """The per-collective proof-obligation declaration."""

    collective: str
    phases: Tuple[PhaseDecl, ...]
    #: Chunk/block ids are relative to a root (broadcast family) or
    #: global rank-indexed (allgather family, root ignored).
    relative_chunks: bool
    #: Closed-form transfer counts assume every chunk carries bytes
    #: (the paper's regime); ownership claims hold for every size.
    counts_need_uniform: bool
    description: str


CERTIFICATES: Dict[str, ScheduleCertificate] = {
    "scatter": ScheduleCertificate(
        collective="scatter",
        phases=(ScatterPhase(SCATTER_TAG),),
        relative_chunks=True,
        counts_need_uniform=True,
        description="binomial scatter: subtree-run tiling, P-1 transfers",
    ),
    "bcast_native": ScheduleCertificate(
        collective="bcast_native",
        phases=(ScatterPhase(SCATTER_TAG), RingPhase(RING_TAG, tuned=False, seeded=True)),
        relative_chunks=True,
        counts_need_uniform=True,
        description=(
            "scatter + enclosed ring: P*(P-1) ring transfers, exactly "
            "S-P of them redundant"
        ),
    ),
    "bcast_opt": ScheduleCertificate(
        collective="bcast_opt",
        phases=(ScatterPhase(SCATTER_TAG), RingPhase(RING_TAG, tuned=True, seeded=True)),
        relative_chunks=True,
        counts_need_uniform=True,
        description=(
            "scatter + tuned ring: P*(P-1) - (S-P) ring transfers, zero "
            "redundancy, deadlock-free pairing"
        ),
    ),
    "allgather_ring": ScheduleCertificate(
        collective="allgather_ring",
        phases=(RingPhase(AG_TAG, tuned=False, seeded=False),),
        relative_chunks=False,
        counts_need_uniform=False,
        description="pure ring allgather: P*(P-1) transfers, zero redundancy",
    ),
    "allgatherv_ring": ScheduleCertificate(
        collective="allgatherv_ring",
        phases=(RingPhase(AGV_TAG, tuned=False, seeded=False),),
        relative_chunks=False,
        counts_need_uniform=False,
        description="ring allgatherv: P*(P-1) transfers, zero redundancy",
    ),
}


#: Registry collectives with no parametric certificate, and why. Every
#: entry is surfaced by ``repro prove`` — an uncertified collective is
#: an explicit, reviewed decision, never a silent gap. The concrete
#: gates (verify/mc/chaos/replay) still cover all of them at sampled P.
UNCERTIFIED: Dict[str, str] = {
    "bcast_rdbl": (
        "recursive-doubling allgather phase: the XOR-partner exchange "
        "pattern needs a power-of-two block-doubling domain, not affine "
        "intervals mod P; pof2-only and concretely verified"
    ),
    "bcast_binomial": (
        "full-buffer tree: no chunk tracking (every message is the whole "
        "payload), so there is no ownership invariant to certify"
    ),
    "bcast_knomial4": (
        "full-buffer k-nomial tree: untracked payloads, no per-chunk "
        "ownership invariant"
    ),
    "bcast_chain": (
        "pipelined segment chain: untracked payloads; segment flow is "
        "time-indexed, not chunk-ownership-indexed"
    ),
    "gather": (
        "binomial gather: ownership concentrates instead of disseminating; "
        "the run-merging invariant is the scatter's mirror but the "
        "postcondition is per-subtree, not full dissemination — concretely "
        "verified at sampled P"
    ),
    "allgather_rdbl": (
        "recursive doubling: XOR-partner block doubling, pof2-only; "
        "outside the affine mod-P interval domain"
    ),
    "allgather_bruck": (
        "Bruck dissemination: ownership is a union of power-of-two-spaced "
        "strides, not a single affine interval; concretely verified"
    ),
    "reduce": "combining collective: data is reduced, ownership not conserved",
    "reduce_scatter_halving": (
        "combining collective with recursive halving: ownership not "
        "conserved"
    ),
    "reduce_scatter_ring": "combining collective: ownership not conserved",
    "allreduce_reduce_bcast": (
        "combining composition (reduce + bcast): ownership not conserved "
        "through the reduction"
    ),
    "allreduce_rabenseifner": (
        "combining composition (reduce-scatter + allgather): ownership not "
        "conserved through the reduction"
    ),
    "scan_linear": "combining collective (prefix sums): ownership not conserved",
    "scan_rd": "combining collective (prefix sums): ownership not conserved",
    "alltoall_pairwise": (
        "personalized exchange: every (src, dst) pair carries distinct "
        "data; the per-rank ownership lattice is a full P x P grid, out "
        "of scope for the interval domain"
    ),
    "alltoall_bruck": (
        "personalized exchange with log-phase aggregation: out of scope "
        "for the interval domain"
    ),
    "barrier": "no payload: nothing to certify beyond completion",
}
