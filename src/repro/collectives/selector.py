"""MPICH3 broadcast algorithm selection.

The thresholds come straight from the paper (Section V): 12288 bytes
switches short -> medium, 524288 bytes switches medium -> long; MPICH
additionally keeps the binomial tree whenever fewer than 8 processes
participate. The decision table is:

=========================  ==========================================
message / communicator      algorithm
=========================  ==========================================
short, or < 8 processes     binomial tree
medium and power-of-two     scatter + recursive-doubling allgather
medium and non-pof2         scatter + **ring** allgather  (mmsg-npof2)
long (any process count)    scatter + **ring** allgather  (lmsg)
=========================  ==========================================

The two bold rows are exactly the regime the paper tunes: with
``tuned=True`` the selector returns the non-enclosed (opt) ring variant
there and is otherwise identical.
"""

from __future__ import annotations

from ..errors import CollectiveError
from ..util import is_power_of_two

__all__ = [
    "SHORT_MSG_SIZE",
    "LONG_MSG_SIZE",
    "MIN_PROCS",
    "classify_message",
    "choose_bcast_name",
    "choose_bcast",
    "is_ring_regime",
]

SHORT_MSG_SIZE = 12288  # bytes: short/medium boundary (MPICH3 default)
LONG_MSG_SIZE = 524288  # bytes: medium/long boundary (MPICH3 default)
MIN_PROCS = 8  # below this MPICH always uses the binomial tree


def classify_message(nbytes: int) -> str:
    """The paper's size classes: ``"short" | "medium" | "long"``."""
    if nbytes < 0:
        raise CollectiveError(f"negative message size {nbytes}")
    if nbytes < SHORT_MSG_SIZE:
        return "short"
    if nbytes < LONG_MSG_SIZE:
        return "medium"
    return "long"


def choose_bcast_name(nbytes: int, size: int, tuned: bool = False, faults=None) -> str:
    """Registry name of the algorithm MPICH3 would pick.

    ``tuned=True`` swaps the ring rows for the paper's optimised ring.
    ``faults`` (a :class:`~repro.sim.faults.FaultPlan`) enables graceful
    degradation: both ring allgathers thread a dependency through every
    rank, so one crashed rank wedges the whole ring — whenever the plan
    marks any rank crashed, the ring rows fall back to the binomial
    tree, which only loses the subtree below the dead rank.
    """
    if size < 1:
        raise CollectiveError(f"communicator size must be >= 1, got {size}")
    cls = classify_message(nbytes)
    if cls == "short" or size < MIN_PROCS:
        name = "binomial"
    elif cls == "medium" and is_power_of_two(size):
        name = "scatter_rdbl"
    else:
        name = "scatter_ring_opt" if tuned else "scatter_ring_native"
    if (
        faults is not None
        and name.startswith("scatter_ring")
        and faults.crashed_ranks()
    ):
        return "binomial"
    return name


def is_ring_regime(nbytes: int, size: int) -> bool:
    """True in the lmsg / mmsg-npof2 regime the paper optimises."""
    return choose_bcast_name(nbytes, size).startswith("scatter_ring")


def choose_bcast(nbytes: int, size: int, tuned: bool = False, faults=None):
    """The selected algorithm as a callable ``(ctx, nbytes, root)``."""
    from .bcast import get_algorithm

    return get_algorithm(choose_bcast_name(nbytes, size, tuned, faults=faults))
