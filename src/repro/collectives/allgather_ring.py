"""Ring allgather phases: the native (enclosed) and tuned (non-enclosed)
variants that Sections III and IV of the paper contrast.

Both run the same (P-1)-step virtual ring: at step ``i`` a rank forwards
chunk ``(rel - i + 1) mod P`` to its right neighbour and receives chunk
``(rel - i) mod P`` from its left neighbour (chunks are relative; byte
displacements absolute, clamped for uneven division, zero-byte transfers
still issued — exactly as in MPICH and Listing 1).

*Native* (Figure 3): every rank issues ``MPI_Sendrecv`` at every step —
"each process pretends to only own the i-th data chunk" — P x (P-1)
transfers, many of them redelivering chunks the receiver already holds
from the binomial scatter.

*Tuned* (Figures 4/5): each rank derives ``(step, flag)`` from the
scatter structure (:func:`~repro.collectives.relative.tuned_ring_role`)
and degrades to half-duplex for the last ``step - 1`` iterations —
receive-only (``flag=1``) when its right neighbour already holds the
remaining chunks, send-only (``flag=0``) when it does. Same step count,
strictly fewer transfers; the receive path asserts (via
``ChunkSet.add_strict``) that no delivered chunk was already owned.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CollectiveError
from ..util import ChunkSet
from .relative import relative_rank, tuned_ring_role
from .scatter import span_bytes, span_disp

__all__ = ["RingResult", "ring_allgather_native", "ring_allgather_tuned"]

RING_TAG = 2


@dataclass
class RingResult:
    """Outcome of one allgather phase on one rank."""

    owned: ChunkSet  # relative chunk ids after the phase
    steps: int
    sends: int
    recvs: int
    redundant_recvs: int  # chunks delivered that were already owned


def _ring_step_chunks(rel: int, size: int, i: int):
    """(sent_chunk, received_chunk) at ring step ``i`` (1-based)."""
    sent = (rel - i + 1) % size
    received = (rel - i) % size
    return sent, received


def ring_allgather_native(ctx, nbytes: int, root: int = 0, owned: ChunkSet = None):
    """The enclosed ring: full-duplex sendrecv at every step.

    *owned* is the rank's post-scatter ownership (used to count the
    redundant deliveries the tuned variant eliminates); defaults to
    "own chunk only", the enclosed ring's pretence.
    """
    size = ctx.size
    rel = relative_rank(ctx.rank, root, size)
    if owned is None:
        owned = ChunkSet(size, [rel])
    else:
        owned = owned.copy()
    left = (ctx.rank - 1 + size) % size
    right = (ctx.rank + 1) % size

    sends = recvs = redundant = 0
    for i in range(1, size):
        send_chunk, recv_chunk = _ring_step_chunks(rel, size, i)
        send_bytes = span_bytes(nbytes, size, send_chunk, 1)
        recv_bytes = span_bytes(nbytes, size, recv_chunk, 1)
        yield from ctx.sendrecv(
            dst=right,
            send_nbytes=send_bytes,
            src=left,
            recv_nbytes=recv_bytes,
            send_disp=span_disp(nbytes, size, send_chunk),
            recv_disp=span_disp(nbytes, size, recv_chunk),
            send_tag=RING_TAG,
            recv_tag=RING_TAG,
            chunks=(send_chunk,),
        )
        sends += 1
        recvs += 1
        if not owned.add(recv_chunk):
            redundant += 1
            owned.add(recv_chunk)

    if not owned.is_full:
        raise CollectiveError(
            f"rank {ctx.rank}: enclosed ring finished missing chunks "
            f"{owned.missing()}"
        )  # pragma: no cover - structural impossibility
    return RingResult(
        owned=owned, steps=size - 1, sends=sends, recvs=recvs, redundant_recvs=redundant
    )


def ring_allgather_tuned(ctx, nbytes: int, root: int = 0, owned: ChunkSet = None):
    """The paper's non-enclosed ring (Listing 1's tuned allgather).

    *owned* must be the rank's true post-scatter ownership; with the
    default it is reconstructed from the scatter structure. Receiving a
    chunk that is already owned raises — that would mean the mask rule
    and the scatter disagree, i.e. a correctness bug.
    """
    size = ctx.size
    rel = relative_rank(ctx.rank, root, size)
    if owned is None:
        from .relative import subtree_chunks

        owned = ChunkSet.interval(size, rel, subtree_chunks(rel, size))
    else:
        owned = owned.copy()
    left = (ctx.rank - 1 + size) % size
    right = (ctx.rank + 1) % size
    step, flag = tuned_ring_role(rel, size)

    sends = recvs = 0
    for i in range(1, size):
        send_chunk, recv_chunk = _ring_step_chunks(rel, size, i)
        send_bytes = span_bytes(nbytes, size, send_chunk, 1)
        recv_bytes = span_bytes(nbytes, size, recv_chunk, 1)
        send_disp = span_disp(nbytes, size, send_chunk)
        recv_disp = span_disp(nbytes, size, recv_chunk)

        if step <= size - i:
            # Full-duplex phase: behave exactly like the enclosed ring.
            yield from ctx.sendrecv(
                dst=right,
                send_nbytes=send_bytes,
                src=left,
                recv_nbytes=recv_bytes,
                send_disp=send_disp,
                recv_disp=recv_disp,
                send_tag=RING_TAG,
                recv_tag=RING_TAG,
                chunks=(send_chunk,),
            )
            sends += 1
            recvs += 1
            owned.add_strict(recv_chunk)
        elif flag:
            # Receive-only endpoint: the right neighbour is complete.
            yield from ctx.recv(left, recv_bytes, disp=recv_disp, tag=RING_TAG)
            recvs += 1
            owned.add_strict(recv_chunk)
        else:
            # Send-only endpoint: everything still inbound is already owned.
            yield from ctx.send(
                right, send_bytes, disp=send_disp, tag=RING_TAG, chunks=(send_chunk,)
            )
            sends += 1

    if not owned.is_full:
        raise CollectiveError(
            f"rank {ctx.rank}: tuned ring finished missing chunks {owned.missing()}"
        )
    return RingResult(
        owned=owned, steps=size - 1, sends=sends, recvs=recvs, redundant_recvs=0
    )
