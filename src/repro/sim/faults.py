"""Fault injection: seeded, deterministic network/rank failure plans.

The simulator's guarantees so far (verifier, cost engine) assume a
perfectly lossless, fixed-latency fabric. Real Aries/InfiniBand networks
drop, duplicate, corrupt, delay and reorder messages, links black out,
and ranks slow down or die. A :class:`FaultPlan` describes such behaviour
as *data*: a set of declarative rules addressable by
``(src, dst, tag, op-index)`` plus time windows, evaluated at every
transport send/delivery through :meth:`FaultPlan.decide`.

Determinism is non-negotiable (the chaos differential gate compares runs
bit-for-bit): every probabilistic decision is a pure function of
``(seed, kind, rule-index, src, dst, tag, op_index)`` via SHA-256 — no
RNG state, no draw-order dependence. Two runs with the same plan make
identical decisions regardless of event interleaving, and a decision for
message *k* on one link never shifts when another link gains traffic.

The plan is consumed by:

* :class:`repro.mpi.transport.Transport` — drop/corrupt/delay injection
  on every launched message (duplicates need the reliability layer's
  suppression and are injected by
  :class:`repro.mpi.reliable.ReliableTransport` only);
* :class:`repro.collectives.schedule.ScheduleExecutor` — static
  suppression for diagnosable chaos-run deadlock reports;
* :func:`repro.collectives.selector.choose_bcast_name` — graceful
  degradation away from the tuned ring when a neighbour is crashed;
* :mod:`repro.analysis.chaos` — the chaos differential gate.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import ClassVar, Dict, List, Optional, Tuple

from ..errors import ConfigurationError

__all__ = [
    "LinkRule",
    "Blackout",
    "LatencySpike",
    "RankFault",
    "FaultDecision",
    "InjectedFault",
    "FaultPlan",
]


def _coin(seed: int, kind: str, rule: int, src: int, dst: int, tag: int, op: int) -> float:
    """Uniform in [0, 1), pure in its arguments (SHA-256 based)."""
    blob = f"{seed}:{kind}:{rule}:{src}:{dst}:{tag}:{op}".encode("ascii")
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def _match(want: Optional[int], got: int) -> bool:
    return want is None or want == got


@dataclass(frozen=True)
class LinkRule:
    """Per-link probabilistic faults, addressable by message coordinates.

    ``None`` fields are wildcards; ``op_lo``/``op_hi`` bound the per-link
    message index (``op_hi`` exclusive, ``None`` = unbounded), so a rule
    can target e.g. "the third message rank 2 sends to rank 3 with the
    ring tag".
    """

    src: Optional[int] = None
    dst: Optional[int] = None
    tag: Optional[int] = None
    op_lo: int = 0
    op_hi: Optional[int] = None
    drop_p: float = 0.0
    dup_p: float = 0.0
    corrupt_p: float = 0.0
    extra_latency: float = 0.0
    label: str = ""

    def __post_init__(self):
        for name in ("drop_p", "dup_p", "corrupt_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
        if self.extra_latency < 0:
            raise ConfigurationError("extra_latency must be >= 0")

    def matches(self, src: int, dst: int, tag: int, op_index: int) -> bool:
        return (
            _match(self.src, src)
            and _match(self.dst, dst)
            and _match(self.tag, tag)
            and op_index >= self.op_lo
            and (self.op_hi is None or op_index < self.op_hi)
        )

    def describe(self) -> str:
        where = (
            f"{'*' if self.src is None else self.src}->"
            f"{'*' if self.dst is None else self.dst}"
            f" tag={'*' if self.tag is None else self.tag}"
        )
        effects = []
        if self.drop_p:
            effects.append(f"drop {self.drop_p:g}")
        if self.dup_p:
            effects.append(f"dup {self.dup_p:g}")
        if self.corrupt_p:
            effects.append(f"corrupt {self.corrupt_p:g}")
        if self.extra_latency:
            effects.append(f"+{self.extra_latency * 1e6:g}us")
        name = f"{self.label}: " if self.label else ""
        return f"{name}{where} [{', '.join(effects) or 'no-op'}]"


@dataclass(frozen=True)
class Blackout:
    """A link (or the whole fabric) drops everything in ``[t0, t1)``."""

    t0: float
    t1: float
    src: Optional[int] = None
    dst: Optional[int] = None
    label: str = ""

    def __post_init__(self):
        if self.t1 <= self.t0 or self.t0 < 0:
            raise ConfigurationError(
                f"blackout window [{self.t0}, {self.t1}) is empty or negative"
            )

    def covers(self, src: int, dst: int, now: float) -> bool:
        return (
            _match(self.src, src)
            and _match(self.dst, dst)
            and self.t0 <= now < self.t1
        )


@dataclass(frozen=True)
class LatencySpike:
    """Transient extra latency on matching messages in ``[t0, t1)``."""

    t0: float
    t1: float
    extra_latency: float
    src: Optional[int] = None
    dst: Optional[int] = None
    label: str = ""

    def __post_init__(self):
        if self.t1 <= self.t0 or self.t0 < 0:
            raise ConfigurationError(
                f"spike window [{self.t0}, {self.t1}) is empty or negative"
            )
        if self.extra_latency < 0:
            raise ConfigurationError("extra_latency must be >= 0")

    def covers(self, src: int, dst: int, now: float) -> bool:
        return (
            _match(self.src, src)
            and _match(self.dst, dst)
            and self.t0 <= now < self.t1
        )


@dataclass(frozen=True)
class RankFault:
    """One rank slowed down or dead.

    ``slowdown`` multiplies the latency of every message the rank sends
    or receives (OS noise, thermal throttling). ``crashed`` kills the
    rank from ``crash_time`` onward: every message to or from it is
    dropped — its peers only find out through their retry budgets.
    """

    rank: int
    slowdown: float = 1.0
    crashed: bool = False
    crash_time: float = 0.0

    def __post_init__(self):
        if self.rank < 0:
            raise ConfigurationError(f"rank must be >= 0, got {self.rank}")
        if self.slowdown < 1.0:
            raise ConfigurationError(
                f"slowdown is a latency multiplier >= 1, got {self.slowdown}"
            )
        if self.crash_time < 0:
            raise ConfigurationError("crash_time must be >= 0")


@dataclass(frozen=True)
class FaultDecision:
    """What the plan does to one message transmission."""

    drop: bool = False
    duplicate: bool = False
    corrupt: bool = False
    extra_latency: float = 0.0
    latency_factor: float = 1.0
    cause: Optional[str] = None  # set when drop is True

    #: The no-fault fast path, shared to avoid per-message allocation.
    CLEAN: ClassVar["FaultDecision"]


FaultDecision.CLEAN = FaultDecision()


@dataclass(frozen=True)
class InjectedFault:
    """Audit-log record of one fault the transport actually injected."""

    time: float
    kind: str  # "drop" | "corrupt" | "duplicate"
    src: int
    dst: int
    tag: int
    op_index: int
    cause: str

    def describe(self) -> str:
        return (
            f"t={self.time * 1e6:.2f}us {self.kind} {self.src}->{self.dst} "
            f"tag={self.tag} op#{self.op_index} ({self.cause})"
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic description of everything that goes wrong.

    Plans are immutable values: hashable predicates plus a seed. They
    serialise (:meth:`to_dict` / :meth:`from_dict`), digest stably for
    cache keys (:meth:`digest`), and compose via the ``with_*`` helpers.
    """

    seed: int = 0
    link_rules: Tuple[LinkRule, ...] = ()
    blackouts: Tuple[Blackout, ...] = ()
    spikes: Tuple[LatencySpike, ...] = ()
    rank_faults: Tuple[RankFault, ...] = ()
    name: str = "plan"

    def __post_init__(self):
        if self.seed < 0:
            raise ConfigurationError(f"seed must be non-negative, got {self.seed}")

    # -- constructors ---------------------------------------------------
    @classmethod
    def none(cls, seed: int = 0, name: str = "zero") -> "FaultPlan":
        """The all-zero plan: injects nothing, digests stably."""
        return cls(seed=seed, name=name)

    @classmethod
    def uniform(
        cls,
        seed: int = 0,
        drop_p: float = 0.0,
        dup_p: float = 0.0,
        corrupt_p: float = 0.0,
        extra_latency: float = 0.0,
        name: str = "uniform",
    ) -> "FaultPlan":
        """One wildcard rule over every link (the usual chaos knob)."""
        if drop_p == dup_p == corrupt_p == extra_latency == 0.0:
            return cls(seed=seed, name=name)
        rule = LinkRule(
            drop_p=drop_p,
            dup_p=dup_p,
            corrupt_p=corrupt_p,
            extra_latency=extra_latency,
            label=name,
        )
        return cls(seed=seed, link_rules=(rule,), name=name)

    def with_rule(self, rule: LinkRule) -> "FaultPlan":
        return replace(self, link_rules=self.link_rules + (rule,))

    def with_blackout(self, blackout: Blackout) -> "FaultPlan":
        return replace(self, blackouts=self.blackouts + (blackout,))

    def with_spike(self, spike: LatencySpike) -> "FaultPlan":
        return replace(self, spikes=self.spikes + (spike,))

    def with_crash(self, rank: int, at: float = 0.0) -> "FaultPlan":
        fault = RankFault(rank=rank, crashed=True, crash_time=at)
        return replace(self, rank_faults=self.rank_faults + (fault,))

    def with_slowdown(self, rank: int, factor: float) -> "FaultPlan":
        fault = RankFault(rank=rank, slowdown=factor)
        return replace(self, rank_faults=self.rank_faults + (fault,))

    # -- queries --------------------------------------------------------
    @property
    def is_zero(self) -> bool:
        """True when the plan can never perturb a run."""
        return not (self.link_rules or self.blackouts or self.spikes or self.rank_faults)

    @property
    def lossy(self) -> bool:
        """True when the plan can make a message disappear (so a
        retry-budget exhaustion is a legitimate outcome)."""
        return (
            any(r.drop_p > 0 or r.corrupt_p > 0 for r in self.link_rules)
            or bool(self.blackouts)
            or any(f.crashed for f in self.rank_faults)
        )

    def crashed_ranks(self, before: Optional[float] = None) -> Tuple[int, ...]:
        """Ranks marked crashed (optionally only those dead by *before*)."""
        return tuple(
            sorted(
                f.rank
                for f in self.rank_faults
                if f.crashed and (before is None or f.crash_time <= before)
            )
        )

    def decide(
        self, src: int, dst: int, tag: int, op_index: int, now: float = 0.0
    ) -> FaultDecision:
        """Evaluate the plan for one message transmission.

        ``op_index`` is the per-``(src, dst)`` transmission counter kept
        by the caller (each retransmission gets a fresh index, so a
        retry is a fresh coin, not a deterministically repeated loss).
        """
        if self.is_zero:
            return FaultDecision.CLEAN
        for f in self.rank_faults:
            if f.crashed and now >= f.crash_time and f.rank in (src, dst):
                return FaultDecision(drop=True, cause=f"crash(rank {f.rank})")
        for b in self.blackouts:
            if b.covers(src, dst, now):
                label = b.label or "blackout"
                return FaultDecision(
                    drop=True,
                    cause=f"{label}[{b.t0 * 1e6:g},{b.t1 * 1e6:g})us",
                )
        drop = duplicate = corrupt = False
        cause = None
        extra = 0.0
        factor = 1.0
        for i, rule in enumerate(self.link_rules):
            if not rule.matches(src, dst, tag, op_index):
                continue
            extra += rule.extra_latency
            if rule.drop_p > 0 and not drop:
                if _coin(self.seed, "drop", i, src, dst, tag, op_index) < rule.drop_p:
                    drop = True
                    cause = rule.label or f"drop_p={rule.drop_p:g} (rule {i})"
            if rule.corrupt_p > 0 and not corrupt:
                corrupt = (
                    _coin(self.seed, "corrupt", i, src, dst, tag, op_index)
                    < rule.corrupt_p
                )
            if rule.dup_p > 0 and not duplicate:
                duplicate = (
                    _coin(self.seed, "dup", i, src, dst, tag, op_index) < rule.dup_p
                )
        for s in self.spikes:
            if s.covers(src, dst, now):
                extra += s.extra_latency
        for f in self.rank_faults:
            if f.slowdown > 1.0 and f.rank in (src, dst):
                factor *= f.slowdown
        if drop:
            return FaultDecision(drop=True, cause=cause)
        if not (duplicate or corrupt or extra or factor != 1.0):
            return FaultDecision.CLEAN
        return FaultDecision(
            duplicate=duplicate,
            corrupt=corrupt,
            extra_latency=extra,
            latency_factor=factor,
        )

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "name": self.name,
            "link_rules": [asdict(r) for r in self.link_rules],
            "blackouts": [asdict(b) for b in self.blackouts],
            "spikes": [asdict(s) for s in self.spikes],
            "rank_faults": [asdict(f) for f in self.rank_faults],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        return cls(
            seed=data.get("seed", 0),
            name=data.get("name", "plan"),
            link_rules=tuple(LinkRule(**r) for r in data.get("link_rules", ())),
            blackouts=tuple(Blackout(**b) for b in data.get("blackouts", ())),
            spikes=tuple(LatencySpike(**s) for s in data.get("spikes", ())),
            rank_faults=tuple(RankFault(**f) for f in data.get("rank_faults", ())),
        )

    def digest(self) -> str:
        """Stable content hash — folded into disk-cache keys so chaos
        runs never collide with clean-run entries."""
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        lines: List[str] = [f"fault plan {self.name!r} (seed {self.seed})"]
        for rule in self.link_rules:
            lines.append(f"  rule: {rule.describe()}")
        for b in self.blackouts:
            lines.append(
                f"  blackout: [{b.t0 * 1e6:g}, {b.t1 * 1e6:g})us "
                f"{'*' if b.src is None else b.src}->"
                f"{'*' if b.dst is None else b.dst}"
            )
        for s in self.spikes:
            lines.append(
                f"  spike: +{s.extra_latency * 1e6:g}us in "
                f"[{s.t0 * 1e6:g}, {s.t1 * 1e6:g})us"
            )
        for f in self.rank_faults:
            state = (
                f"crashed at t={f.crash_time * 1e6:g}us"
                if f.crashed
                else f"slowdown x{f.slowdown:g}"
            )
            lines.append(f"  rank {f.rank}: {state}")
        if self.is_zero:
            lines.append("  (no faults)")
        return "\n".join(lines)
