"""Discrete-event simulation kernel: engine, coroutines, fluid flows."""

from .engine import Engine, EventHandle
from .process import Proc, StepOutcome, step_coroutine, ensure_generator
from .resources import Resource
from .flows import Flow, FlowNetwork, SolverStats, solver_mode
from .trace import Trace, NullTrace, TraceRecord
from .random import RngStreams
from .faults import (
    Blackout,
    FaultDecision,
    FaultPlan,
    InjectedFault,
    LatencySpike,
    LinkRule,
    RankFault,
)

__all__ = [
    "Engine",
    "EventHandle",
    "Proc",
    "StepOutcome",
    "step_coroutine",
    "ensure_generator",
    "Resource",
    "Flow",
    "FlowNetwork",
    "SolverStats",
    "solver_mode",
    "Trace",
    "NullTrace",
    "TraceRecord",
    "RngStreams",
    "Blackout",
    "FaultDecision",
    "FaultPlan",
    "InjectedFault",
    "LatencySpike",
    "LinkRule",
    "RankFault",
]
