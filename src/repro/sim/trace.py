"""Structured event tracing for simulations.

A :class:`Trace` is an append-only log of timestamped records. The MPI
runtime emits records for message posts, matches, flow starts and
completions; tests and the analysis layer query them to validate
schedules (e.g. "the tuned ring issued exactly N transfers, none of them
carrying an already-owned chunk").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional

__all__ = ["TraceRecord", "Trace", "NullTrace"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: time, event kind and free-form fields."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.fields.items()))
        return f"TraceRecord(t={self.time:.9g}, {self.kind}, {inner})"


class Trace:
    """Append-only record log with simple query helpers."""

    enabled = True

    def __init__(self) -> None:
        self.records: list = []

    def emit(self, time: float, kind: str, **fields) -> None:
        self.records.append(TraceRecord(time, kind, fields))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def by_kind(self, kind: str) -> list:
        return [r for r in self.records if r.kind == kind]

    def where(self, kind: Optional[str] = None, **conditions) -> list:
        """Records matching *kind* (if given) and all field equalities."""
        out = []
        for rec in self.records:
            if kind is not None and rec.kind != kind:
                continue
            if all(rec.fields.get(k) == v for k, v in conditions.items()):
                out.append(rec)
        return out

    def kinds(self) -> dict:
        """Histogram of record kinds."""
        hist: dict = {}
        for rec in self.records:
            hist[rec.kind] = hist.get(rec.kind, 0) + 1
        return hist

    def last_time(self) -> float:
        return self.records[-1].time if self.records else 0.0


class NullTrace(Trace):
    """Trace sink that drops everything — used by large benchmark runs."""

    enabled = False

    def emit(self, time: float, kind: str, **fields) -> None:  # noqa: D102
        pass
