"""Discrete-event simulation engine: virtual clock plus an event heap.

The engine is deliberately tiny: the heap holds ``(time, seq, handle)``
tuples popped in time order with FIFO tie-breaking via the monotonically
increasing sequence number. Tuple entries keep heap comparisons in C
(plain float/int comparisons) instead of calling a Python ``__lt__`` per
sift step — the heap is the hottest structure in a sweep. Everything
else in the simulator (message matching, fluid flows, rank programs) is
layered on top of :meth:`Engine.schedule`.

Determinism is a hard requirement (DESIGN.md §5): the engine never reads
the wall clock and never iterates over unordered containers, so two runs
with identical inputs produce identical event orders and timestamps.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from ..errors import SimulationError

__all__ = ["Engine", "EventHandle"]


class EventHandle:
    """Cancellation token for a scheduled event."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_engine")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable,
        args: tuple,
        engine: Optional["Engine"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        engine = self._engine
        self._engine = None
        if engine is not None:
            engine._alive -= 1

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<EventHandle t={self.time:.9g} {name} {state}>"


class Engine:
    """Virtual-time event loop."""

    def __init__(self) -> None:
        self._heap: list = []  # (time, seq, EventHandle) triples
        self._now = 0.0
        self._seq = 0
        self._alive = 0  # not-cancelled events still in the heap
        self._running = False

    # -- clock ---------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling ------------------------------------------------------
    def schedule(self, delay: float, callback: Callable, *args) -> EventHandle:
        """Run ``callback(*args)`` *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable, *args) -> EventHandle:
        """Run ``callback(*args)`` at absolute simulated *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        handle = EventHandle(time, self._seq, callback, args, engine=self)
        heapq.heappush(self._heap, (time, self._seq, handle))
        self._seq += 1
        self._alive += 1
        return handle

    # -- execution -------------------------------------------------------
    def _retire(self, handle: EventHandle) -> None:
        """Account for a live handle leaving the heap to be fired."""
        self._alive -= 1
        handle._engine = None  # late cancel() must not decrement again

    def step(self) -> bool:
        """Fire the next pending event; False when the queue is empty."""
        while self._heap:
            time, _seq, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._retire(handle)
            self._now = time
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue (optionally stopping at time *until*).

        Returns the final simulated time. Re-entrant calls are rejected —
        callbacks must schedule follow-up events, not recurse into the
        loop.
        """
        if self._running:
            raise SimulationError("Engine.run() is not re-entrant")
        self._running = True
        heap = self._heap
        try:
            while heap:
                time, _seq, handle = heap[0]
                if handle.cancelled:
                    heapq.heappop(heap)
                    continue
                if until is not None and time > until:
                    self._now = until
                    break
                # fire
                heapq.heappop(heap)
                self._retire(handle)
                self._now = time
                handle.callback(*handle.args)
            return self._now
        finally:
            self._running = False

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1))."""
        return self._alive

    @property
    def empty(self) -> bool:
        return self._alive == 0
