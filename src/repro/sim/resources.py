"""Fluid capacity resources for the flow-level network model.

A :class:`Resource` is anything with a byte/s capacity that concurrent
transfers share: a rank's copy engine, a node's memory engine, a NIC
direction, a network link, or an aggregate core capacity. Flows claim a
*path* (a set of resources); the solver in :mod:`repro.sim.flows` splits
each resource's capacity among its active flows max-min fairly.
"""

from __future__ import annotations

from ..errors import SimulationError

__all__ = ["Resource"]


class Resource:
    """A capacity shared by the flows currently crossing it."""

    __slots__ = ("name", "capacity", "kind", "_flows", "_load")

    def __init__(self, name: str, capacity: float, kind: str = "generic"):
        if capacity <= 0:
            raise SimulationError(
                f"resource {name!r} needs positive capacity, got {capacity}"
            )
        self.name = name
        self.capacity = float(capacity)
        self.kind = kind
        # Active flows keyed by flow id with an attach multiplicity (a
        # path may list the same resource more than once, charging the
        # flow's rate against it repeatedly). Dict insertion order keeps
        # iteration deterministic; keyed lookup makes detach O(1).
        self._flows: dict = {}
        self._load = 0

    def attach(self, flow) -> None:
        entry = self._flows.get(flow.fid)
        if entry is None:
            self._flows[flow.fid] = [flow, 1]
        else:
            entry[1] += 1
        self._load += 1

    def detach(self, flow) -> None:
        entry = self._flows.get(flow.fid)
        if entry is None or entry[0] is not flow:
            raise SimulationError(
                f"flow {flow!r} not attached to resource {self.name!r}"
            )
        if entry[1] == 1:
            del self._flows[flow.fid]
        else:
            entry[1] -= 1
        self._load -= 1

    @property
    def flows(self) -> list:
        """Attached flows in flow-id insertion order, repeated per
        multiplicity (a snapshot list; do not mutate)."""
        return [
            flow for flow, count in self._flows.values() for _ in range(count)
        ]

    @property
    def load(self) -> int:
        """Number of flow attachments currently crossing this resource."""
        return self._load

    def utilization(self) -> float:
        """Fraction of capacity allocated to current flow rates."""
        if not self._flows:
            return 0.0
        return (
            sum(flow.rate * count for flow, count in self._flows.values())
            / self.capacity
        )

    def __repr__(self) -> str:
        return (
            f"<Resource {self.name} kind={self.kind} "
            f"cap={self.capacity:.4g}B/s flows={self.load}>"
        )
