"""Fluid capacity resources for the flow-level network model.

A :class:`Resource` is anything with a byte/s capacity that concurrent
transfers share: a rank's copy engine, a node's memory engine, a NIC
direction, a network link, or an aggregate core capacity. Flows claim a
*path* (a set of resources); the solver in :mod:`repro.sim.flows` splits
each resource's capacity among its active flows max-min fairly.
"""

from __future__ import annotations

from ..errors import SimulationError

__all__ = ["Resource"]


class Resource:
    """A capacity shared by the flows currently crossing it."""

    __slots__ = ("name", "capacity", "flows", "kind")

    def __init__(self, name: str, capacity: float, kind: str = "generic"):
        if capacity <= 0:
            raise SimulationError(
                f"resource {name!r} needs positive capacity, got {capacity}"
            )
        self.name = name
        self.capacity = float(capacity)
        self.kind = kind
        # Active flows are kept in a list ordered by flow id so the
        # max-min solve visits them deterministically.
        self.flows: list = []

    def attach(self, flow) -> None:
        self.flows.append(flow)

    def detach(self, flow) -> None:
        try:
            self.flows.remove(flow)
        except ValueError:
            raise SimulationError(
                f"flow {flow!r} not attached to resource {self.name!r}"
            ) from None

    @property
    def load(self) -> int:
        """Number of flows currently crossing this resource."""
        return len(self.flows)

    def utilization(self) -> float:
        """Fraction of capacity allocated to current flow rates."""
        return sum(f.rate for f in self.flows) / self.capacity

    def __repr__(self) -> str:
        return (
            f"<Resource {self.name} kind={self.kind} "
            f"cap={self.capacity:.4g}B/s flows={self.load}>"
        )
