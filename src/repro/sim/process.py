"""Generator-coroutine plumbing shared by every program executor.

Rank programs (and collective algorithms) are plain Python generators
that ``yield`` operation descriptors and receive each operation's result
back at the ``yield`` expression. Three executors drive the same
generators:

* the discrete-event runtime (:mod:`repro.mpi.runtime`),
* the schedule-extraction counter (:mod:`repro.collectives.schedule`),
* the real-thread backend (:mod:`repro.backends.threads`).

This module holds the one piece they all share: a tiny stepper that
advances a generator and reports either the next yielded operation or
the final return value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..errors import SimulationError

__all__ = ["StepOutcome", "step_coroutine", "ensure_generator"]

_SENTINEL = object()


@dataclass
class StepOutcome:
    """Result of advancing a coroutine one step."""

    done: bool
    value: Any  # yielded operation when not done, return value when done


def step_coroutine(gen: Generator, send_value: Any = _SENTINEL) -> StepOutcome:
    """Advance *gen*, sending *send_value* (or priming it on first step)."""
    try:
        if send_value is _SENTINEL:
            yielded = next(gen)
        else:
            yielded = gen.send(send_value)
    except StopIteration as stop:
        return StepOutcome(done=True, value=stop.value)
    return StepOutcome(done=False, value=yielded)


def throw_into(gen: Generator, exc: BaseException) -> StepOutcome:
    """Raise *exc* inside *gen* (used for failure injection)."""
    try:
        yielded = gen.throw(exc)
    except StopIteration as stop:
        return StepOutcome(done=True, value=stop.value)
    return StepOutcome(done=False, value=yielded)


def ensure_generator(obj: Any, what: str = "program") -> Generator:
    """Validate that a user-supplied program really is a generator.

    A very common mistake is writing a rank program as a normal function
    (forgetting ``yield from``); failing early with a clear message beats
    a cryptic attribute error deep inside the event loop.
    """
    if not isinstance(obj, Generator):
        raise SimulationError(
            f"{what} must be a generator (did you forget 'yield from'?), "
            f"got {type(obj).__name__}"
        )
    return obj


class Proc:
    """Bookkeeping wrapper tying a generator to an executor's state.

    Executors subclass-or-compose: the wrapper stores the generator, a
    human-readable name, blocked/finished flags and the final result.
    """

    __slots__ = ("name", "gen", "finished", "result", "blocked_on", "started")

    def __init__(self, name: str, gen: Generator):
        self.name = name
        self.gen = ensure_generator(gen, what=f"program {name!r}")
        self.finished = False
        self.result: Any = None
        self.blocked_on: Optional[str] = None
        self.started = False

    def advance(self, send_value: Any = _SENTINEL) -> StepOutcome:
        """Step the generator, recording completion state."""
        if self.finished:
            raise SimulationError(f"process {self.name} already finished")
        outcome = (
            step_coroutine(self.gen)
            if not self.started
            else step_coroutine(self.gen, send_value)
        )
        self.started = True
        if outcome.done:
            self.finished = True
            self.result = outcome.value
            self.blocked_on = None
        return outcome

    def __repr__(self) -> str:
        if self.finished:
            state = "finished"
        elif self.blocked_on:
            state = f"blocked on {self.blocked_on}"
        else:
            state = "runnable"
        return f"<Proc {self.name}: {state}>"
