"""Vectorized schedule replay: the numpy fast path around the coroutine DES.

Every shipped collective is *static*: :mod:`repro.collectives.schedule`
can extract the complete message pattern — who sends what to whom, in
which program order, gated by which completions — without a clock. For
such schedules the discrete-event runtime's generator coroutines,
per-message ``Request``/``_Delivery`` objects and matching engines are
pure overhead: the matching outcome is already known, only the *timing*
remains to be computed.

:class:`ReplayEngine` computes exactly that timing. The extracted
schedule is compiled once (:func:`compile_schedule`) into flat numpy
arrays — per-message ``(src, dst, nbytes, tag, dep_prefix)`` plus one
``(kind, arg)`` op stream per rank — and then executed as a
dependency-counted frontier over the *same* :class:`~repro.sim.engine.Engine`
the DES uses. Each rank is a program counter, not a coroutine: ready
ops are drained in batches until the rank blocks, and every send
released in one batch lands in a deferred same-timestamp resolve, so
the water-filling kernel sees whole frontiers at once.

Because the schedule is static, every flow's (src, dst) pair is known
before the clock starts, which buys the replay-private flow network an
exact shortcut over the DES's solver: component solves are *memoized*
by the multiset of pair ids they contain. The water-filling kernel is a
pure function of that multiset — remaining bytes never enter it, all
its reductions are exact (min, integer counts, equal-value sums) — so
a hit replays the exact floats the stock kernel computed for an
identical component earlier, and a miss runs the stock kernel
unchanged. Rates are therefore bitwise-identical by construction — the
same grouping independence the incremental/reference solver gate rests
on.

The transport protocol split is reproduced float-for-float from
:mod:`repro.mpi.transport`: eager messages (``nbytes <=
spec.eager_threshold``) start their payload flow at launch and complete
the receive when both the envelope has matched and the flow has drained;
rendezvous messages send only the envelope, wait for the matched
clear-to-send (``rendezvous_rtt x latency``) and then start the flow.
Send/receive overheads, the per-channel non-overtaking envelope clock
and the callback cascade order (sender resumed before the receiver's
delivery) are replicated exactly, which is what makes replay timestamps
*bitwise* equal to the DES — asserted across the registry by
``repro replay --grid`` (:mod:`repro.analysis.replaygate`).

What replay cannot express falls back to the DES: wildcard
``ANY_SOURCE`` receives (match order is timing-dependent), fault
injection, the ARQ reliability layer, stochastic latencies
(``jitter_sigma``/``queueing_kappa``) and traced or validating runs.
``REPRO_ENGINE=des|replay|auto`` overrides the dispatch.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import DeadlockError, ReplayUnsupportedError, SimulationError
from .engine import Engine
from .flows import _EPSILON_BYTES, SolverStats

_INF = float("inf")

__all__ = [
    "ENGINE_ENV",
    "ENGINE_MODES",
    "engine_mode",
    "SOLVE_MEMO_ENV",
    "solve_memo_mode",
    "shared_solve_memo",
    "clear_solve_memo",
    "solve_memo_entries",
    "OP_SEND",
    "OP_ISEND",
    "OP_RECV",
    "OP_IRECV",
    "OP_WAIT",
    "OP_COMPUTE",
    "ReplaySchedule",
    "ReplayResult",
    "ReplayEngine",
    "compile_schedule",
]

# Environment escape hatch selecting the execution engine.
ENGINE_ENV = "REPRO_ENGINE"
ENGINE_MODES = ("auto", "des", "replay")

# Op-stream opcodes recorded by the schedule executor (one
# ``(kind, arg)`` pair per executed MPI operation, per rank).
OP_SEND = 0  # arg: send order (blocking: gates the program on send_done)
OP_ISEND = 1  # arg: send order
OP_RECV = 2  # arg: matched send order (blocking receive)
OP_IRECV = 3  # arg: matched send order, or -1 if never matched
OP_WAIT = 4  # arg: index into the rank's wait-member table
OP_COMPUTE = 5  # arg: index into the rank's compute-seconds table


def engine_mode() -> str:
    """The engine selected by ``REPRO_ENGINE`` (default ``auto``)."""
    mode = os.environ.get(ENGINE_ENV, "").strip() or "auto"
    if mode not in ENGINE_MODES:
        raise SimulationError(
            f"unknown {ENGINE_ENV} mode {mode!r}; expected one of {ENGINE_MODES}"
        )
    return mode


# -- cross-run solve-memo store ---------------------------------------
#
# The water-filling kernel is a pure function of a component's path-class
# multiset, so its outputs can be reused not just within one replay but
# across every replay whose *structure* matches: same dense resource
# capacities, same (resource path, rate cap) definition per class id.
# That structural signature is computed once per engine; engines with
# equal signatures share one memo dict, so a long-running process (the
# simulation service's warm workers above all) pays the kernel cost for
# each contention pattern once, not once per job. Hits replay the exact
# floats (and round counts) the kernel produced, keeping results and
# telemetry bitwise-identical to a cold process — asserted by
# ``tests/sim/test_replay.py`` and the replay differential gate.

SOLVE_MEMO_ENV = "REPRO_REPLAY_MEMO"
_SOLVE_MEMO_MODES = ("shared", "private")
_SOLVE_MEMO_STORE: Dict[tuple, Dict] = {}
_SOLVE_MEMO_STORE_CAP = 64  # distinct structures; each memo caps itself


def solve_memo_mode() -> str:
    """``REPRO_REPLAY_MEMO``: ``shared`` (default) or ``private``."""
    mode = os.environ.get(SOLVE_MEMO_ENV, "").strip() or "shared"
    if mode not in _SOLVE_MEMO_MODES:
        raise SimulationError(
            f"unknown {SOLVE_MEMO_ENV} mode {mode!r}; "
            f"expected one of {_SOLVE_MEMO_MODES}"
        )
    return mode


def shared_solve_memo(signature: tuple) -> Dict:
    """The process-wide memo dict for one structural *signature*.

    Falls back to a private dict when the store is full (new structures
    then simply lose cross-run reuse) or when ``REPRO_REPLAY_MEMO=private``.
    """
    if solve_memo_mode() != "shared":
        return {}
    memo = _SOLVE_MEMO_STORE.get(signature)
    if memo is None:
        if len(_SOLVE_MEMO_STORE) >= _SOLVE_MEMO_STORE_CAP:
            return {}
        memo = _SOLVE_MEMO_STORE[signature] = {}
    return memo


def clear_solve_memo() -> int:
    """Drop every shared solve memo; returns how many structures held."""
    n = len(_SOLVE_MEMO_STORE)
    _SOLVE_MEMO_STORE.clear()
    return n


def solve_memo_entries() -> int:
    """Total memoised component solves across all shared structures."""
    return sum(len(m) for m in _SOLVE_MEMO_STORE.values())


class ReplaySchedule:
    """A static schedule compiled to flat arrays, ready to execute.

    Machine-independent: the same compiled schedule replays on any
    machine hosting ``nranks`` ranks (protocol split and latencies are
    resolved by the :class:`ReplayEngine` against a concrete machine).
    """

    __slots__ = (
        "nranks",
        "ranks",
        "send_src",
        "send_dst",
        "send_nbytes",
        "send_tag",
        "dep_prefix",
        "op_kinds",
        "op_args",
        "wait_members",
        "compute_seconds",
    )

    def __init__(
        self,
        nranks: int,
        ranks: List[int],
        send_src: np.ndarray,
        send_dst: np.ndarray,
        send_nbytes: np.ndarray,
        send_tag: np.ndarray,
        dep_prefix: np.ndarray,
        op_kinds: List[np.ndarray],
        op_args: List[np.ndarray],
        wait_members: List[List[Tuple[int, ...]]],
        compute_seconds: List[List[float]],
    ):
        self.nranks = nranks
        self.ranks = ranks  # global rank ids in kick (local) order
        self.send_src = send_src
        self.send_dst = send_dst
        self.send_nbytes = send_nbytes
        self.send_tag = send_tag
        self.dep_prefix = dep_prefix
        self.op_kinds = op_kinds
        self.op_args = op_args
        self.wait_members = wait_members
        self.compute_seconds = compute_seconds

    @property
    def n_sends(self) -> int:
        return len(self.send_src)

    def __repr__(self) -> str:
        ops = sum(len(k) for k in self.op_kinds)
        return (
            f"<ReplaySchedule ranks={self.nranks} sends={self.n_sends} ops={ops}>"
        )


def compile_schedule(result) -> ReplaySchedule:
    """Compile a :class:`~repro.collectives.schedule.ScheduleResult`.

    Raises :class:`~repro.errors.ReplayUnsupportedError` when the
    schedule is not statically replayable (wildcard sources, receives
    that never matched but gate progress, or a pre-op-log extraction).
    """
    blockers = list(getattr(result, "replay_blockers", ()) or ())
    op_log = getattr(result, "op_log", None)
    if not op_log and result.nranks and result.sends:
        blockers.append("schedule carries no per-rank op log")
    if blockers:
        raise ReplayUnsupportedError(
            "schedule is not replayable: " + "; ".join(sorted(set(blockers)))
        )
    op_log = op_log or {}

    n = len(result.sends)
    send_src = np.fromiter((s.src for s in result.sends), dtype=np.int64, count=n)
    send_dst = np.fromiter((s.dst for s in result.sends), dtype=np.int64, count=n)
    send_nbytes = np.fromiter(
        (s.nbytes for s in result.sends), dtype=np.int64, count=n
    )
    send_tag = np.fromiter((s.tag for s in result.sends), dtype=np.int64, count=n)
    dep_prefix = np.fromiter(
        (result.dep_counts.get(i, 0) for i in range(n)), dtype=np.int64, count=n
    )

    ranks: List[int] = []
    op_kinds: List[np.ndarray] = []
    op_args: List[np.ndarray] = []
    wait_members: List[List[Tuple[int, ...]]] = []
    compute_seconds: List[List[float]] = []
    for glob, entries in op_log.items():
        ranks.append(glob)
        count = len(entries)
        kinds = np.fromiter((e[0] for e in entries), dtype=np.int8, count=count)
        args = np.zeros(count, dtype=np.int64)
        waits: List[Tuple[int, ...]] = []
        computes: List[float] = []
        for j, entry in enumerate(entries):
            kind, arg = entry[0], entry[1]
            if kind == OP_WAIT:
                # Collapse duplicate members: the DES registers one
                # callback per list slot, but every duplicate fires in
                # the same finish() cascade, so the resume time is
                # unchanged while the waiter bookkeeping stays 1:1.
                members = tuple(dict.fromkeys(arg))
                for m in members:
                    if not 0 <= m < j:
                        raise ReplayUnsupportedError(
                            f"rank {glob}: wait references op {m} outside "
                            f"the preceding program prefix"
                        )
                    mk, ma = entries[m][0], entries[m][1]
                    if mk not in (OP_ISEND, OP_IRECV):
                        raise ReplayUnsupportedError(
                            f"rank {glob}: wait member op {m} is not an "
                            f"isend/irecv"
                        )
                    if mk == OP_IRECV and ma < 0:
                        raise ReplayUnsupportedError(
                            f"rank {glob}: waited receive (op {m}) never "
                            f"matched a send"
                        )
                args[j] = len(waits)
                waits.append(members)
            elif kind == OP_COMPUTE:
                args[j] = len(computes)
                computes.append(float(arg))
            else:
                if kind == OP_RECV and arg < 0:
                    raise ReplayUnsupportedError(
                        f"rank {glob}: blocking receive (op {j}) never "
                        f"matched a send"
                    )
                args[j] = arg
        op_kinds.append(kinds)
        op_args.append(args)
        wait_members.append(waits)
        compute_seconds.append(computes)

    if len(ranks) != result.nranks:
        raise ReplayUnsupportedError(
            f"op log covers {len(ranks)} ranks, schedule has {result.nranks}"
        )

    return ReplaySchedule(
        nranks=result.nranks,
        ranks=ranks,
        send_src=send_src,
        send_dst=send_dst,
        send_nbytes=send_nbytes,
        send_tag=send_tag,
        dep_prefix=dep_prefix,
        op_kinds=op_kinds,
        op_args=op_args,
        wait_members=wait_members,
        compute_seconds=compute_seconds,
    )


class ReplayResult:
    """Outcome of one replayed schedule (mirrors ``JobResult``)."""

    def __init__(
        self,
        time: float,
        rank_finish_times: List[float],
        counters,
        flows_completed: int,
        solver_stats=None,
    ):
        self.time = time
        self.rank_results: List = [None] * len(rank_finish_times)
        self.rank_finish_times = rank_finish_times
        self.counters = counters
        self.trace = None
        self.flows_completed = flows_completed
        self.solver_stats = solver_stats

    def __repr__(self) -> str:
        return (
            f"<ReplayResult t={self.time:.6g}s ranks={len(self.rank_finish_times)} "
            f"msgs={self.counters.messages}>"
        )


class _LeanFlowNet:
    """A replay-private fluid data plane, float-exact with the stock one.

    Semantically this is :class:`~repro.sim.flows.FlowNetwork` with the
    incremental solver: the same deferred same-timestamp re-solve, the
    same lazily-merged/lazily-split component tracking, the same
    water-filling kernel on misses, the same fid-ordered completion
    cascade. What changes is the *cost per event*: replay frontiers are
    typically a handful of flows, so per-flow state lives in plain
    Python dicts of floats (byte accrual and completion etas are scalar
    arithmetic, not small-array numpy calls) and there are no slot
    pools, Flow objects or resource attach/detach sets. Every float
    expression — ``rem - rate * elapsed``, ``rem / rate``, the kernel's
    level math — is copied operand-for-operand from ``flows.py``, so
    the produced timestamps are bitwise identical.

    On top of that sits the replay-only *solve memo*. Each flow maps to
    a static path class — the (resource-id tuple, rate cap) equivalence
    class of its transfer plan — and the kernel's output is a pure
    function of the multiset of path classes in the component: remaining
    bytes never enter it, same-class flows are interchangeable rows, and
    resource-column/flow-row order cancel out because every reduction is
    exact (min, integer counts, equal-value sums). Collective schedules
    cycle through recurring contention patterns, so most solves hit the
    memo and replay the exact floats the kernel produced earlier; misses
    run the verbatim kernel and record its outputs.
    """

    def __init__(
        self,
        engine: Engine,
        order_pid: List[int],
        nbytes: List[int],
        res_ids: List[np.ndarray],
        res_lists: List[List[int]],
        caps_array: np.ndarray,
        rate_caps: List[float],
        class_of_pid: List[int],
        on_done,
        memo: Optional[Dict] = None,
    ):
        self.engine = engine
        self._order_pid = order_pid
        self._nbytes = nbytes
        self._res_ids = res_ids
        self._res_lists = res_lists
        self._caps_array = caps_array
        self._rate_caps = rate_caps  # float; inf when the plan has none
        self._class_of_pid = class_of_pid
        self._on_done = on_done

        self.completed_count = 0
        self._next_fid = 0
        self._last_update = 0.0
        self._resolve_event = None
        self._completion_event = None

        # Active flows, keyed by fid (assignment order == DES fid order).
        self._rem: Dict[int, float] = {}
        self._rate: Dict[int, float] = {}
        self._forder: Dict[int, int] = {}

        # Component tracking, ported from FlowNetwork's incremental mode:
        # lazily merged on add, lazily split once removals rival size.
        self._comp_flows: Dict[int, Dict[int, int]] = {}  # c -> {fid: pid}
        self._flow_comp: Dict[int, int] = {}
        self._res_comp: Dict[int, int] = {}
        self._comp_res: Dict[int, set] = {}
        self._dirty_comps: set = set()
        self._split_comps: set = set()
        self._comp_removals: Dict[int, int] = {}
        self._next_comp = 0

        # (class multiset) -> (class -> rate, kernel rounds). Possibly a
        # process-wide dict shared with structurally-identical engines
        # (see shared_solve_memo); hits replay the stored rounds so the
        # telemetry, like the rates, is independent of memo history.
        self._memo: Dict[Tuple[int, ...], Tuple[Dict[int, float], int]] = (
            {} if memo is None else memo
        )
        self._stat_solves = 0
        self._stat_rounds = 0
        self._stat_components = 0
        self._stat_flows_solved = 0
        self._stat_max_component = 0
        self._stat_flows_advanced = 0
        self._stat_solve_time = 0.0

    def stats(self) -> SolverStats:
        return SolverStats(
            mode="replay",
            solves=self._stat_solves,
            rounds=self._stat_rounds,
            components_solved=self._stat_components,
            flows_solved=self._stat_flows_solved,
            max_component=self._stat_max_component,
            flows_advanced=self._stat_flows_advanced,
            solve_time_s=self._stat_solve_time,
        )

    # -- flow lifecycle ------------------------------------------------
    def add_flow(self, order: int) -> None:
        fid = self._next_fid
        self._next_fid += 1
        nbytes = self._nbytes[order]
        if nbytes <= _EPSILON_BYTES:
            self.engine.schedule(0.0, self._finish_zero, order)
            return
        pid = self._order_pid[order]
        if not self._res_lists[pid] and self._rate_caps[pid] == _INF:
            raise SimulationError("flow has no resources and no rate cap")
        self._advance()
        self._rem[fid] = float(nbytes)
        self._rate[fid] = 0.0
        self._forder[fid] = order
        self._comp_add(fid, pid)
        if self._resolve_event is None:
            self._resolve_event = self.engine.schedule(0.0, self._deferred_resolve)

    def _finish_zero(self, order: int) -> None:
        self.completed_count += 1
        self._on_done(order)

    def _advance(self) -> None:
        now = self.engine.now
        elapsed = now - self._last_update
        rem = self._rem
        if elapsed > 0.0 and rem:
            rate = self._rate
            for fid, r in rem.items():
                p = r - rate[fid] * elapsed
                rem[fid] = p if p > 0.0 else 0.0
            self._stat_flows_advanced += len(rem)
        self._last_update = now

    def _deferred_resolve(self) -> None:
        self._resolve_event = None
        self._resolve()

    def _resolve(self) -> None:
        self._solve_rates()
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        rem = self._rem
        if not rem:
            return
        rate = self._rate
        next_eta = _INF
        for fid, r in rem.items():
            rt = rate[fid]
            eta = r / rt if rt > 0.0 else _INF
            if r <= _EPSILON_BYTES:
                eta = 0.0
            if eta < next_eta:
                next_eta = eta
        if next_eta == _INF:
            raise SimulationError(
                f"{len(rem)} active flow(s) are stalled at zero rate"
            )
        self._completion_event = self.engine.schedule(
            next_eta, self._on_completion_event
        )

    def _on_completion_event(self) -> None:
        self._completion_event = None
        if self._resolve_event is not None:
            # The direct resolve below covers any deferred one.
            self._resolve_event.cancel()
            self._resolve_event = None
        self._advance()
        rem = self._rem
        finished = sorted(fid for fid, r in rem.items() if r <= _EPSILON_BYTES)
        if not finished:
            # Rates changed since the event was scheduled; just re-arm.
            self._resolve()
            return
        forder = self._forder
        rate = self._rate
        orders = []
        for fid in finished:
            orders.append(forder.pop(fid))
            del rem[fid]
            del rate[fid]
            self._comp_remove(fid)
        self._resolve()
        on_done = self._on_done
        for order in orders:  # fid order, exactly like _finish_flow
            self.completed_count += 1
            on_done(order)

    # -- component tracking (ported from FlowNetwork) ------------------
    def _comp_add(self, fid: int, pid: int) -> None:
        comp_flows = self._comp_flows
        res_comp = self._res_comp
        found: list = []
        for rid in self._res_lists[pid]:
            c = res_comp.get(rid)
            if c is not None and c not in found:
                found.append(c)
        if not found:
            target = self._next_comp
            self._next_comp += 1
            comp_flows[target] = {}
            self._comp_res[target] = set()
        else:
            target = found[0]
            for c in found[1:]:
                if len(comp_flows[c]) > len(comp_flows[target]):
                    target = c
            for c in found:
                if c == target:
                    continue
                moved = comp_flows.pop(c)
                comp_flows[target].update(moved)
                for f in moved:
                    self._flow_comp[f] = target
                res = self._comp_res.pop(c)
                self._comp_res[target] |= res
                for rid in res:
                    res_comp[rid] = target
                self._dirty_comps.discard(c)
                if c in self._split_comps:
                    self._split_comps.discard(c)
                    self._split_comps.add(target)
                self._comp_removals[target] = self._comp_removals.pop(
                    target, 0
                ) + self._comp_removals.pop(c, 0)
        for rid in self._res_lists[pid]:
            res_comp[rid] = target
            self._comp_res[target].add(rid)
        comp_flows[target][fid] = pid
        self._flow_comp[fid] = target
        self._dirty_comps.add(target)

    def _comp_remove(self, fid: int) -> None:
        c = self._flow_comp.pop(fid)
        flows = self._comp_flows[c]
        del flows[fid]
        if not flows:
            del self._comp_flows[c]
            for rid in self._comp_res.pop(c):
                if self._res_comp.get(rid) == c:
                    del self._res_comp[rid]
            self._dirty_comps.discard(c)
            self._split_comps.discard(c)
            self._comp_removals.pop(c, None)
            return
        self._dirty_comps.add(c)
        removed = self._comp_removals.get(c, 0) + 1
        # Repartition once removals rival the component's size (same
        # amortisation rule as the stock tracker).
        if removed >= max(4, len(flows)):
            self._split_comps.add(c)
            self._comp_removals.pop(c, None)
        else:
            self._comp_removals[c] = removed

    def _repartition_comp(self, c: int) -> None:
        flows = self._comp_flows.pop(c)
        for rid in self._comp_res.pop(c):
            if self._res_comp.get(rid) == c:
                del self._res_comp[rid]
        self._dirty_comps.discard(c)
        self._comp_removals.pop(c, None)

        # Union-find over resource ids, flows visited in fid order —
        # byte-for-byte the grouping FlowNetwork._partition computes.
        parent: dict = {}

        def find(x):
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        res_lists = self._res_lists
        ordered = sorted(flows)
        keys: list = []
        for fid in ordered:
            base = None
            for rid in res_lists[flows[fid]]:
                if rid not in parent:
                    parent[rid] = rid
                root = find(rid)
                if base is None:
                    base = root
                elif root != base:
                    parent[root] = base
            keys.append(base)

        groups: dict = {}
        grouped: list = []
        for fid, key in zip(ordered, keys):
            gkey = ("f", fid) if key is None else ("r", find(key))
            group = groups.get(gkey)
            if group is None:
                groups[gkey] = group = []
                grouped.append(group)
            group.append(fid)

        for group in grouped:
            nc = self._next_comp
            self._next_comp += 1
            self._comp_flows[nc] = {f: flows[f] for f in group}
            res: set = set()
            for f in group:
                res.update(res_lists[flows[f]])
            self._comp_res[nc] = res
            for rid in res:
                self._res_comp[rid] = nc
            for f in group:
                self._flow_comp[f] = nc
            self._dirty_comps.add(nc)

    # -- rate solving --------------------------------------------------
    def _solve_rates(self) -> None:
        if not self._dirty_comps and not self._split_comps:
            return
        start = perf_counter()  # det: allow — telemetry, not sim state
        if self._split_comps:
            for c in sorted(self._split_comps):
                if c in self._comp_flows:
                    self._repartition_comp(c)
            self._split_comps.clear()
        for c in sorted(self._dirty_comps):
            self._solve_component(self._comp_flows[c])
        self._dirty_comps.clear()
        self._stat_solves += 1
        self._stat_solve_time += perf_counter() - start  # det: allow

    def _solve_component(self, flows: Dict[int, int]) -> None:
        class_of = self._class_of_pid
        fids = sorted(flows)
        pids = [flows[f] for f in fids]
        classes = [class_of[p] for p in pids]
        key = tuple(sorted(classes))
        hit = self._memo.get(key)
        n = len(fids)
        rate = self._rate
        if hit is not None:
            stored, rounds = hit
            for f, cls in zip(fids, classes):
                rate[f] = stored[cls]
            self._stat_rounds += rounds
            self._stat_components += 1
            self._stat_flows_solved += n
            if n > self._stat_max_component:
                self._stat_max_component = n
            return
        rates, rounds = self._solve_kernel(pids)
        out: Dict[int, float] = {}
        for i, f in enumerate(fids):
            r = float(rates[i])
            rate[f] = r
            out[classes[i]] = r
        if len(self._memo) < (1 << 16):
            self._memo[key] = (out, rounds)
        self._stat_rounds += rounds
        self._stat_components += 1
        self._stat_flows_solved += n
        if n > self._stat_max_component:
            self._stat_max_component = n

    def _solve_kernel(self, pids: List[int]):
        """Progressive filling, expression-for-expression the stock
        :meth:`FlowNetwork._solve_component` (only slot plumbing is
        gone: inputs are pair ids, the output is the rates array)."""
        n = len(pids)
        id_arrays = [self._res_ids[p] for p in pids]
        lengths = np.fromiter((len(a) for a in id_arrays), dtype=np.int64, count=n)
        flat = id_arrays[0] if n == 1 else np.concatenate(id_arrays)
        pair_flow = np.repeat(np.arange(n), lengths)
        # Compact the component's resources to local ids 0..m-1.
        uniq, pair_res = np.unique(flat, return_inverse=True)
        m = int(uniq.shape[0])
        caps_local = self._caps_array[uniq]
        fixed_load = np.zeros(m)  # sum of already-fixed rates per resource
        pending = np.bincount(pair_res, minlength=m)
        rate_caps = np.fromiter(
            (self._rate_caps[p] for p in pids), dtype=float, count=n
        )
        fixed = np.zeros(n, dtype=bool)
        rates = np.zeros(n, dtype=float)
        pair_live = np.ones(pair_flow.shape[0], dtype=bool)
        rounds = 0

        while not fixed.all():
            rounds += 1
            pending_mask = pending > 0
            if pending_mask.any():
                levels = np.where(
                    pending_mask,
                    (caps_local - fixed_load) / np.maximum(pending, 1),
                    np.inf,
                )
                level_min = float(levels.min())
                if level_min < 0.0:
                    level_min = 0.0  # float dust: resource already over-filled
            else:
                levels = None
                level_min = np.inf
            cap_min = float(rate_caps[~fixed].min())
            level = level_min if level_min < cap_min else cap_min
            if not np.isfinite(level):
                raise SimulationError("flow without binding constraint")

            newly = np.zeros(n, dtype=bool)
            if levels is not None and level_min <= level:
                saturated = pending_mask & (levels <= level)
                if saturated.any():
                    hit = saturated[pair_res] & pair_live
                    if hit.any():
                        newly[pair_flow[hit]] = True
            newly |= rate_caps <= level
            newly &= ~fixed
            if not newly.any():
                # Numerical corner: nothing bound this round. Fix all
                # remaining flows at the current level to terminate.
                newly = ~fixed
            rates[newly] = level
            fixed |= newly
            dead = newly[pair_flow] & pair_live
            if dead.any():
                dead_res = pair_res[dead]
                pending -= np.bincount(dead_res, minlength=m)
                fixed_load += np.bincount(
                    dead_res, weights=np.full(dead_res.shape[0], level), minlength=m
                )
                pair_live &= ~dead

        return rates, rounds


class ReplayEngine:
    """Execute a compiled schedule against the fluid solver, sans DES.

    One program counter per rank, one state word per message; flow
    completion callbacks resume blocked ranks inline in exactly the
    cascade order the coroutine runtime produces, so timestamps (and the
    fid-ordered flow bookkeeping beneath them) are bitwise identical.
    Payload transfers run through :class:`_LeanFlowNet`, whose scalar
    data plane and solve memo are bitwise-neutral by construction.
    """

    def __init__(self, machine, schedule: ReplaySchedule, working_set: int = 0):
        spec = machine.spec
        if spec.jitter_sigma > 0.0 or spec.queueing_kappa > 0.0:
            raise ReplayUnsupportedError(
                "replay needs deterministic latencies "
                f"(jitter_sigma={spec.jitter_sigma}, "
                f"queueing_kappa={spec.queueing_kappa})"
            )
        if machine.nranks < schedule.nranks:
            raise SimulationError(
                f"machine hosts {machine.nranks} ranks, "
                f"schedule needs {schedule.nranks}"
            )
        self.machine = machine
        self.schedule = schedule
        self.engine = Engine()
        if working_set:
            machine.set_working_set(working_set)

        self._send_overhead = float(spec.send_overhead)
        self._recv_overhead = float(spec.recv_overhead)
        self._rtt = float(spec.rendezvous_rtt)

        n = schedule.n_sends
        # One TransferPlan per distinct (src, dst) pair; the per-channel
        # envelope clock is indexed the same way.
        pair_id: Dict[Tuple[int, int], int] = {}
        plan_idx = np.zeros(n, dtype=np.int64)
        plans: List = []
        for i in range(n):
            key = (int(schedule.send_src[i]), int(schedule.send_dst[i]))
            pid = pair_id.get(key)
            if pid is None:
                pid = len(plans)
                pair_id[key] = pid
                plans.append(machine.transfer_plan(key[0], key[1]))
            plan_idx[i] = pid
        self._plan_idx = plan_idx
        self._plan_idx_l: List[int] = plan_idx.tolist()
        self._latency: List[float] = [float(p.latency) for p in plans]
        self._plan_intra = np.fromiter(
            (p.intra_node for p in plans), dtype=bool, count=len(plans)
        )
        self._env_clock: List[Optional[float]] = [None] * len(plans)
        self._eager: List[bool] = (
            schedule.send_nbytes <= spec.eager_threshold
        ).tolist()
        # Python ints for add_flow: keeps the float conversion identical
        # to the DES transport's ``req.nbytes`` path.
        self._nbytes: List[int] = [int(b) for b in schedule.send_nbytes]

        # Dense resource ids in plan-discovery order (the analogue of
        # FlowNetwork._ids_for; global id values only name resources,
        # the kernel compacts per component).
        res_index: Dict = {}
        capacities: List[float] = []
        res_ids: List[np.ndarray] = []
        res_lists: List[List[int]] = []
        for p in plans:
            ids = []
            for r in p.resources:
                rid = res_index.get(r)
                if rid is None:
                    rid = len(capacities)
                    res_index[r] = rid
                    capacities.append(r.capacity)
                ids.append(rid)
            res_ids.append(np.asarray(ids, dtype=np.int64))
            res_lists.append(ids)
        rate_caps = [
            p.rate_cap if p.rate_cap is not None else _INF for p in plans
        ]
        # Path classes: pairs whose transfer plans traverse the same
        # resource objects under the same rate cap are interchangeable
        # rows in the water-filling kernel, so they share a memo id.
        class_index: Dict[Tuple, int] = {}
        class_of_pid: List[int] = []
        for pid in range(len(plans)):
            ckey = (tuple(res_lists[pid]), rate_caps[pid])
            cid = class_index.get(ckey)
            if cid is None:
                cid = len(class_index)
                class_index[ckey] = cid
            class_of_pid.append(cid)
        # Structural signature: engines agreeing on every dense resource
        # capacity and on each class id's (path, rate cap) definition
        # produce identical kernel outputs for identical multisets, so
        # they can share one cross-run solve memo (warm workers keep it
        # hot across jobs; see shared_solve_memo).
        memo_signature = (tuple(capacities), tuple(class_index))
        self.flownet = _LeanFlowNet(
            self.engine,
            self._plan_idx_l,
            self._nbytes,
            res_ids,
            res_lists,
            np.asarray(capacities, dtype=float),
            rate_caps,
            class_of_pid,
            self._flow_complete,
            memo=shared_solve_memo(memo_signature),
        )

        # Per-message protocol state (plain lists: scalar indexing on the
        # cascade hot path is markedly faster than numpy item access).
        self._env_arrived: List[bool] = [False] * n
        self._recv_posted: List[bool] = [False] * n
        self._matched: List[bool] = [False] * n
        self._flow_done: List[bool] = [False] * n
        self._send_done: List[bool] = [False] * n
        self._recv_done: List[bool] = [False] * n
        # Which rank (local index) is parked on this message, -1 if none.
        self._send_waiter: List[int] = [-1] * n
        self._recv_waiter: List[int] = [-1] * n

        # Per-rank execution state.
        nr = schedule.nranks
        self._op_kinds: List[List[int]] = [k.tolist() for k in schedule.op_kinds]
        self._op_args: List[List[int]] = [a.tolist() for a in schedule.op_args]
        self._pc = [0] * nr
        self._in_wait = [False] * nr
        self._wait_remaining = [0] * nr
        self._finish: List[Optional[float]] = [None] * nr
        self._ran = False

    # -- execution -----------------------------------------------------
    def run(self) -> ReplayResult:
        """Replay the whole schedule; returns the timing result."""
        if self._ran:
            raise SimulationError("ReplayEngine.run() may only be called once")
        self._ran = True
        for rank in range(self.schedule.nranks):
            # Kick every rank at t=0 (FIFO order: rank 0 first), exactly
            # like the DES Job.
            self.engine.schedule(0.0, self._run_rank, rank)
        self.engine.run()
        stuck = [r for r, t in enumerate(self._finish) if t is None]
        if stuck:
            raise DeadlockError(
                [
                    f"rank {self.schedule.ranks[r]} stalled at op "
                    f"{self._pc[r]}/{len(self._op_kinds[r])}"
                    for r in stuck
                ]
            )
        makespan = max(self._finish) if self._finish else 0.0
        return ReplayResult(
            time=makespan,
            rank_finish_times=list(self._finish),
            counters=self._build_counters(),
            flows_completed=self.flownet.completed_count,
            solver_stats=self.flownet.stats(),
        )

    def _run_rank(self, rank: int) -> None:
        """Drain ready ops for *rank* until it blocks or finishes."""
        kinds = self._op_kinds[rank]
        args = self._op_args[rank]
        pc = self._pc[rank]
        end = len(kinds)
        while pc < end:
            kind = kinds[pc]
            arg = args[pc]
            pc += 1
            if kind == OP_ISEND:
                self._post_send(arg)
            elif kind == OP_SEND:
                self._post_send(arg)
                if not self._send_done[arg]:
                    self._send_waiter[arg] = rank
                    self._in_wait[rank] = False
                    self._pc[rank] = pc
                    return
            elif kind == OP_IRECV:
                if arg >= 0:
                    self._post_recv(arg)
            elif kind == OP_RECV:
                self._post_recv(arg)
                if not self._recv_done[arg]:
                    self._recv_waiter[arg] = rank
                    self._in_wait[rank] = False
                    self._pc[rank] = pc
                    return
            elif kind == OP_WAIT:
                remaining = 0
                for m in self.schedule.wait_members[rank][arg]:
                    order = args[m]
                    if kinds[m] == OP_ISEND:
                        if not self._send_done[order]:
                            self._send_waiter[order] = rank
                            remaining += 1
                    elif not self._recv_done[order]:
                        self._recv_waiter[order] = rank
                        remaining += 1
                if remaining:
                    self._wait_remaining[rank] = remaining
                    self._in_wait[rank] = True
                    self._pc[rank] = pc
                    return
            else:  # OP_COMPUTE
                self._pc[rank] = pc
                seconds = self.schedule.compute_seconds[rank][arg]
                self.engine.schedule(seconds, self._run_rank, rank)
                return
        self._pc[rank] = pc
        self._finish[rank] = self.engine.now

    def _unblock(self, rank: int) -> None:
        """A message the rank was parked on completed; maybe resume."""
        if self._in_wait[rank]:
            self._wait_remaining[rank] -= 1
            if self._wait_remaining[rank] > 0:
                return
            self._in_wait[rank] = False
        self._run_rank(rank)

    # -- transport protocol (mirrors repro.mpi.transport exactly) ------
    def _post_send(self, order: int) -> None:
        if self._send_overhead > 0.0:
            self.engine.schedule(self._send_overhead, self._launch_send, order)
        else:
            self._launch_send(order)

    def _launch_send(self, order: int) -> None:
        pid = self._plan_idx_l[order]
        now = self.engine.now
        # Deterministic latency (jitter/queueing are gated off) plus the
        # per-channel non-overtaking envelope clock.
        arrival = now + self._latency[pid]
        floor = self._env_clock[pid]
        if floor is not None and arrival <= floor:
            arrival = floor * (1 + 1e-12) + 1e-15
        self._env_clock[pid] = arrival
        latency = arrival - now
        if self._eager[order]:
            # Payload flow starts at launch, envelope follows the wire.
            self.flownet.add_flow(order)
        # Rendezvous sends only the envelope for now.
        self.engine.schedule(latency, self._envelope_arrive, order)

    def _envelope_arrive(self, order: int) -> None:
        self._env_arrived[order] = True
        if self._recv_posted[order]:
            self._match(order)

    def _post_recv(self, order: int) -> None:
        self._recv_posted[order] = True
        if self._env_arrived[order]:
            self._match(order)

    def _match(self, order: int) -> None:
        self._matched[order] = True
        if not self._eager[order]:
            # Clear-to-send travels back, then the payload flow starts.
            cts = self._rtt * self._latency[self._plan_idx_l[order]]
            self.engine.schedule(cts, self.flownet.add_flow, order)
        elif self._flow_done[order]:
            self._deliver(order)
        # else: eager flow still draining; _flow_complete will deliver.

    def _flow_complete(self, order: int) -> None:
        self._flow_done[order] = True
        # Sender completes first, then delivery — the DES cascade order.
        self._send_done[order] = True
        waiter = self._send_waiter[order]
        if waiter >= 0:
            self._send_waiter[order] = -1
            self._unblock(waiter)
        if self._matched[order]:
            self._deliver(order)

    def _deliver(self, order: int) -> None:
        if self._recv_overhead > 0.0:
            self.engine.schedule(self._recv_overhead, self._complete_recv, order)
        else:
            self._complete_recv(order)

    def _complete_recv(self, order: int) -> None:
        self._recv_done[order] = True
        waiter = self._recv_waiter[order]
        if waiter >= 0:
            self._recv_waiter[order] = -1
            self._unblock(waiter)

    # -- wire accounting (vectorized; launch-equivalent totals) --------
    def _build_counters(self):
        from ..mpi.counters import TrafficCounters

        sched = self.schedule
        c = TrafficCounters()
        n = sched.n_sends
        if n == 0:
            return c
        nbytes = sched.send_nbytes
        intra = self._plan_intra[self._plan_idx]
        c.messages = n
        c.bytes = int(nbytes.sum())
        c.intra_messages = int(intra.sum())
        c.inter_messages = n - c.intra_messages
        c.intra_bytes = int(nbytes[intra].sum())
        c.inter_bytes = c.bytes - c.intra_bytes
        for ranks, count_dict, byte_dict in (
            (sched.send_src, c.sent_by_rank, c.bytes_sent_by_rank),
            (sched.send_dst, c.received_by_rank, c.bytes_received_by_rank),
        ):
            counts = np.bincount(ranks)
            sums = np.zeros(len(counts), dtype=np.int64)
            np.add.at(sums, ranks, nbytes)
            for r in np.flatnonzero(counts):
                count_dict[int(r)] = int(counts[r])
                byte_dict[int(r)] = int(sums[r])
        return c
