"""Seeded random streams for controlled non-determinism.

The simulator is deterministic by default. When experiments opt into
jitter (e.g. per-message latency noise, modelling OS interference), they
draw it from named :class:`RngStreams` substreams so that

* the same seed reproduces the same run bit-for-bit, and
* adding a new consumer of randomness does not perturb existing streams.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["RngStreams"]


class RngStreams:
    """A family of independent, named ``numpy`` Generator substreams."""

    def __init__(self, seed: int = 0):
        if seed < 0:
            raise ConfigurationError(f"seed must be non-negative, got {seed}")
        self.seed = int(seed)
        self._streams: dict = {}

    def stream(self, name: str) -> np.random.Generator:
        """The substream for *name* (created deterministically on demand)."""
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed from (seed, name) via SeedSequence spawn
            # keyed on a stable hash of the name.
            digest = np.frombuffer(
                name.encode("utf-8").ljust(8, b"\0")[:8], dtype=np.uint64
            )[0]
            seq = np.random.SeedSequence([self.seed, int(digest)])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def jitter_factor(self, name: str, relative_sigma: float) -> float:
        """Multiplicative log-normal jitter with E[x] ~= 1.

        ``relative_sigma = 0`` returns exactly 1.0 so the deterministic
        path stays float-identical.
        """
        if relative_sigma < 0:
            raise ConfigurationError("relative_sigma must be >= 0")
        if relative_sigma == 0.0:
            return 1.0
        draw = self.stream(name).normal(0.0, relative_sigma)
        return float(np.exp(draw - relative_sigma**2 / 2.0))
