"""Max-min fair fluid-flow network driving all transfer timing.

Each in-flight message is a :class:`Flow` with a byte count and a path of
:class:`~repro.sim.resources.Resource` objects. Whenever the active-flow
set changes the network

1. *advances* every flow's remaining bytes by ``rate x elapsed``,
2. *re-solves* max-min fair rates by progressive filling (water filling),
3. *reschedules* one engine event at the earliest flow completion.

Progressive filling: all unfixed flows grow at the same rate ``t`` until
either a resource saturates or a flow hits its individual rate cap; the
binding flows are fixed and the process repeats. This yields the unique
max-min fair allocation.

The solver is the simulator's hot loop (it runs twice per message), so
it is both vectorised and *incremental*:

* flow state (remaining bytes, current rate, rate cap) lives in
  persistent slot-indexed numpy vectors updated in place on
  ``add_flow``/``cancel_flow`` — advancing progress and finding the next
  completion ETA are single array operations, never Python loops;
* membership is tracked with O(1) index maps (fid -> slot), so removing
  a flow never scans the active set;
* flows are grouped into *contention components* — connected groups of
  the flow/resource sharing graph, maintained with a union-find over
  each path's resources — and a re-solve only runs progressive filling
  for the component(s) touched since the last solve.  Max-min fairness
  guarantees disjoint components keep their previous rates.

The water-filling kernel recomputes each resource's absolute saturation
level ``(capacity - fixed_rates) / pending`` fresh every round instead
of accumulating headroom deltas.  That makes the kernel's floating-point
path *independent of component grouping*: solving a disjoint union of
components in one call produces bitwise-identical rates to solving them
separately.  Component tracking is therefore a pure optimisation — it
can merge lazily and split opportunistically without ever changing a
simulated timestamp, and the incremental solver is bit-for-bit
equivalent to the from-scratch one (enforced by the differential tests
in ``tests/sim/test_solver_differential.py``).

Set ``REPRO_SOLVER=reference`` to force the from-scratch solver — every
re-solve repartitions all active flows and re-runs the kernel on every
component — as a differential-testing escape hatch. ``stats()`` exposes
solver telemetry (solve count, water-filling rounds, component sizes,
flows advanced, solver wall time); see ``docs/performance.md``.

This sharing behaviour is the load-bearing part of the reproduction: the
paper's tuned ring allgather removes transfers *without shortening the
ring*, so its advantage exists exactly insofar as concurrent transfers
compete for CPU copy engines, memory engines, NICs and core links — which
is what this model expresses.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Iterable, List, Optional

import numpy as np

from ..errors import SimulationError
from .engine import Engine, EventHandle
from .resources import Resource

__all__ = ["Flow", "FlowNetwork", "SolverStats", "solver_mode"]

# Residual byte counts below this are treated as complete; guards against
# floating-point dust keeping a flow alive forever.
_EPSILON_BYTES = 1e-6

# Environment escape hatch selecting the solver implementation.
SOLVER_ENV = "REPRO_SOLVER"
SOLVER_MODES = ("incremental", "reference")


def solver_mode() -> str:
    """The solver selected by ``REPRO_SOLVER`` (default ``incremental``)."""
    mode = os.environ.get(SOLVER_ENV, "").strip() or "incremental"
    if mode not in SOLVER_MODES:
        raise SimulationError(
            f"unknown {SOLVER_ENV} mode {mode!r}; expected one of {SOLVER_MODES}"
        )
    return mode


@dataclass(frozen=True)
class SolverStats:
    """Telemetry snapshot of one :class:`FlowNetwork`'s solver."""

    mode: str  # "incremental" or "reference"
    solves: int  # rate re-solves actually performed
    rounds: int  # water-filling rounds across all solves
    components_solved: int  # component kernel invocations
    flows_solved: int  # sum of component sizes over all solves
    max_component: int  # largest component ever solved
    flows_advanced: int  # flow-progress updates applied by _advance
    solve_time_s: float  # wall time spent inside the solver

    @property
    def rounds_per_solve(self) -> float:
        return self.rounds / self.solves if self.solves else 0.0

    @property
    def mean_component(self) -> float:
        return (
            self.flows_solved / self.components_solved
            if self.components_solved
            else 0.0
        )

    def describe(self) -> str:
        return (
            f"solver[{self.mode}]: {self.solves} solves "
            f"({self.rounds_per_solve:.2f} rounds/solve), "
            f"{self.components_solved} components "
            f"(mean {self.mean_component:.1f}, max {self.max_component} flows), "
            f"{self.flows_advanced} flow advances, "
            f"{self.solve_time_s * 1e3:.2f}ms solve time"
        )


class Flow:
    """One in-flight transfer across a path of resources.

    While active, ``remaining``/``rate`` are views into the owning
    network's slot vectors (so the solver can update thousands of flows
    with single array writes); once detached the last values are kept
    locally so completed/cancelled flows stay inspectable.
    """

    __slots__ = (
        "fid",
        "nbytes",
        "resources",
        "res_ids",
        "rate_cap",
        "on_complete",
        "meta",
        "start_time",
        "_net",
        "_slot",
        "_remaining",
        "_rate",
    )

    def __init__(
        self,
        fid: int,
        nbytes: float,
        resources: tuple,
        res_ids,
        rate_cap: Optional[float],
        on_complete: Optional[Callable],
        meta,
        start_time: float,
    ):
        self.fid = fid
        self.nbytes = float(nbytes)
        self.resources = resources
        self.res_ids = res_ids  # np.ndarray of network-local resource ids
        self.rate_cap = rate_cap
        self.on_complete = on_complete
        self.meta = meta
        self.start_time = start_time
        self._net: Optional["FlowNetwork"] = None
        self._slot = -1
        self._remaining = float(nbytes)
        self._rate = 0.0

    @property
    def remaining(self) -> float:
        net = self._net
        if net is not None:
            return float(net._rem[self._slot])
        return self._remaining

    @remaining.setter
    def remaining(self, value: float) -> None:
        net = self._net
        if net is not None:
            net._rem[self._slot] = value
        else:
            self._remaining = float(value)

    @property
    def rate(self) -> float:
        net = self._net
        if net is not None:
            return float(net._rate_vec[self._slot])
        return self._rate

    @rate.setter
    def rate(self, value: float) -> None:
        net = self._net
        if net is not None:
            net._rate_vec[self._slot] = value
        else:
            self._rate = float(value)

    def eta(self) -> float:
        """Seconds until completion at the current rate (inf when stalled)."""
        remaining = self.remaining
        if remaining <= _EPSILON_BYTES:
            return 0.0
        rate = self.rate
        if rate <= 0.0:
            return float("inf")
        return remaining / rate

    def __repr__(self) -> str:
        return (
            f"<Flow #{self.fid} {self.remaining:.0f}/{self.nbytes:.0f}B "
            f"@{self.rate:.4g}B/s meta={self.meta!r}>"
        )


class FlowNetwork:
    """Progressive-filling fluid network bound to a simulation engine.

    ``solver`` selects the re-solve strategy (defaults to the
    ``REPRO_SOLVER`` environment variable, then ``"incremental"``):

    * ``"incremental"`` — persistent state, component tracking, re-solve
      only what changed (the production path);
    * ``"reference"`` — stateless from-scratch partition + solve of every
      active flow on each change (the differential-testing baseline).
    """

    def __init__(self, engine: Engine, solver: Optional[str] = None):
        self.engine = engine
        self.solver = solver if solver is not None else solver_mode()
        if self.solver not in SOLVER_MODES:
            raise SimulationError(
                f"unknown solver {self.solver!r}; expected one of {SOLVER_MODES}"
            )
        self._next_fid = 0
        self._last_update = engine.now
        self._completion_event: Optional[EventHandle] = None
        self._resolve_event: Optional[EventHandle] = None
        self.completed_count = 0
        self.total_bytes_transferred = 0.0
        # Resource registry: network-local integer ids + capacity vector.
        self._res_index: dict = {}
        self._capacities: list = []
        self._caps_array = np.empty(0)
        self._caps_dirty = False
        # Path cache: resource tuple -> id array (machines cache plans, so
        # identical paths arrive as identical tuples).
        self._path_ids: dict = {}
        # Slot pool: persistent per-flow vectors updated in place. A slot
        # is claimed on add_flow and recycled on completion/cancel; the
        # fid -> slot map gives O(1) membership tests and removal.
        self._rem = np.empty(0)  # remaining bytes per slot
        self._rate_vec = np.empty(0)  # current rate per slot
        self._cap_vec = np.empty(0)  # rate cap per slot (inf = uncapped)
        self._slot_flow: list = []  # slot -> Flow (None when free)
        self._free_slots: list = []
        self._fid_slot: dict = {}  # fid -> slot, insertion ordered
        self._slots_np = np.empty(0, dtype=np.int64)
        self._slots_stale = True
        # Contention components (incremental mode): disjoint groups of
        # flows connected through shared resources. Components merge
        # eagerly on add_flow and are repartitioned opportunistically
        # after enough removals — the kernel's grouping independence
        # makes both operations timing-neutral.
        self._next_comp = 0
        self._flow_comp: dict = {}  # fid -> comp id
        self._comp_flows: dict = {}  # comp id -> {fid: Flow} (insertion order)
        self._comp_res: dict = {}  # comp id -> set of resource ids
        self._res_comp: dict = {}  # resource id -> comp id
        self._comp_removals: dict = {}  # comp id -> removals since repartition
        self._dirty_comps: set = set()  # components needing a re-solve
        self._split_comps: set = set()  # components due a repartition
        # Telemetry.
        self._stat_solves = 0
        self._stat_rounds = 0
        self._stat_components = 0
        self._stat_flows_solved = 0
        self._stat_max_component = 0
        self._stat_flows_advanced = 0
        self._stat_solve_time = 0.0

    # -- public API ------------------------------------------------------
    def add_flow(
        self,
        nbytes: float,
        resources: Iterable[Resource],
        on_complete: Optional[Callable] = None,
        rate_cap: Optional[float] = None,
        meta=None,
    ) -> Flow:
        """Start a transfer; ``on_complete(flow)`` fires at delivery time.

        Zero-byte transfers complete via a zero-delay event so callers
        always observe completion asynchronously (no re-entrancy).
        """
        if nbytes < 0:
            raise SimulationError(f"flow cannot carry {nbytes} bytes")
        if rate_cap is not None and rate_cap <= 0:
            raise SimulationError(f"flow rate cap must be positive, got {rate_cap}")
        path = tuple(resources)
        flow = Flow(
            self._next_fid,
            nbytes,
            path,
            self._ids_for(path),
            rate_cap,
            on_complete,
            meta,
            self.engine.now,
        )
        self._next_fid += 1
        if nbytes <= _EPSILON_BYTES:
            self.engine.schedule(0.0, self._finish_flow, flow)
            return flow
        if not path and rate_cap is None:
            raise SimulationError("flow has no resources and no rate cap")
        self._advance()
        self._claim_slot(flow)
        for res in path:
            res.attach(flow)
        if self.solver == "incremental":
            self._comp_add(flow)
        self._schedule_resolve()
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        """Abort an in-flight transfer without firing its callback."""
        slot = self._fid_slot.get(flow.fid)
        if slot is None or self._slot_flow[slot] is not flow:
            return
        self._advance()
        self._remove(flow)
        self._schedule_resolve()

    def flush(self) -> None:
        """Force any deferred rate re-solve to run now.

        Flow-set changes within one timestamp are batched into a single
        zero-delay re-solve; call this to observe up-to-date rates
        without stepping the engine (tests and diagnostics).
        """
        if self._resolve_event is not None:
            self._resolve_event.cancel()
            self._resolve_event = None
            self._resolve()

    def stats(self) -> SolverStats:
        """Solver telemetry accumulated since construction."""
        return SolverStats(
            mode=self.solver,
            solves=self._stat_solves,
            rounds=self._stat_rounds,
            components_solved=self._stat_components,
            flows_solved=self._stat_flows_solved,
            max_component=self._stat_max_component,
            flows_advanced=self._stat_flows_advanced,
            solve_time_s=self._stat_solve_time,
        )

    def _schedule_resolve(self) -> None:
        if self._resolve_event is None:
            self._resolve_event = self.engine.schedule(0.0, self._deferred_resolve)

    def _deferred_resolve(self) -> None:
        self._resolve_event = None
        self._resolve()

    @property
    def active_count(self) -> int:
        return len(self._fid_slot)

    @property
    def active(self) -> List[Flow]:
        """Active flows ordered by fid (a snapshot; do not mutate)."""
        slot_flow = self._slot_flow
        fid_slot = self._fid_slot
        return [slot_flow[fid_slot[fid]] for fid in sorted(fid_slot)]

    # -- resource / path indexing -------------------------------------------
    def _ids_for(self, path: tuple):
        ids = self._path_ids.get(path)
        if ids is None:
            out = []
            for res in path:
                idx = self._res_index.get(res)
                if idx is None:
                    idx = len(self._capacities)
                    self._res_index[res] = idx
                    self._capacities.append(res.capacity)
                    self._caps_dirty = True
                out.append(idx)
            ids = np.asarray(out, dtype=np.int64)
            self._path_ids[path] = ids
        return ids

    # -- slot pool ---------------------------------------------------------
    def _claim_slot(self, flow: Flow) -> None:
        if self._free_slots:
            slot = self._free_slots.pop()
        else:
            slot = len(self._slot_flow)
            self._slot_flow.append(None)
            if slot >= len(self._rem):
                grow = max(16, 2 * len(self._rem))
                for name in ("_rem", "_rate_vec", "_cap_vec"):
                    old = getattr(self, name)
                    fresh = np.zeros(grow)
                    fresh[: len(old)] = old
                    setattr(self, name, fresh)
        self._slot_flow[slot] = flow
        self._fid_slot[flow.fid] = slot
        self._rem[slot] = flow._remaining
        self._rate_vec[slot] = 0.0
        self._cap_vec[slot] = flow.rate_cap if flow.rate_cap is not None else np.inf
        flow._net = self
        flow._slot = slot
        self._slots_stale = True

    def _release_slot(self, flow: Flow) -> None:
        slot = self._fid_slot.pop(flow.fid)
        flow._remaining = float(self._rem[slot])
        flow._rate = float(self._rate_vec[slot])
        flow._net = None
        flow._slot = -1
        self._slot_flow[slot] = None
        self._free_slots.append(slot)
        self._slots_stale = True

    def _active_slots(self) -> np.ndarray:
        if self._slots_stale:
            n = len(self._fid_slot)
            self._slots_np = np.fromiter(
                self._fid_slot.values(), dtype=np.int64, count=n
            )
            self._slots_stale = False
        return self._slots_np

    # -- component tracking ------------------------------------------------
    def _comp_add(self, flow: Flow) -> None:
        comp_flows = self._comp_flows
        found: list = []
        for rid in flow.res_ids.tolist():
            c = self._res_comp.get(rid)
            if c is not None and c not in found:
                found.append(c)
        if not found:
            target = self._next_comp
            self._next_comp += 1
            comp_flows[target] = {}
            self._comp_res[target] = set()
        else:
            target = found[0]
            for c in found[1:]:
                if len(comp_flows[c]) > len(comp_flows[target]):
                    target = c
            for c in found:
                if c == target:
                    continue
                moved = comp_flows.pop(c)
                comp_flows[target].update(moved)
                for fid in moved:
                    self._flow_comp[fid] = target
                res = self._comp_res.pop(c)
                self._comp_res[target] |= res
                for rid in res:
                    self._res_comp[rid] = target
                self._dirty_comps.discard(c)
                if c in self._split_comps:
                    self._split_comps.discard(c)
                    self._split_comps.add(target)
                self._comp_removals[target] = self._comp_removals.pop(
                    target, 0
                ) + self._comp_removals.pop(c, 0)
        for rid in flow.res_ids.tolist():
            self._res_comp[rid] = target
            self._comp_res[target].add(rid)
        comp_flows[target][flow.fid] = flow
        self._flow_comp[flow.fid] = target
        self._dirty_comps.add(target)

    def _comp_remove(self, flow: Flow) -> None:
        fid = flow.fid
        c = self._flow_comp.pop(fid)
        flows = self._comp_flows[c]
        del flows[fid]
        if not flows:
            del self._comp_flows[c]
            for rid in self._comp_res.pop(c):
                if self._res_comp.get(rid) == c:
                    del self._res_comp[rid]
            self._dirty_comps.discard(c)
            self._split_comps.discard(c)
            self._comp_removals.pop(c, None)
            return
        self._dirty_comps.add(c)
        removed = self._comp_removals.get(c, 0) + 1
        # Repartition once removals rival the component's size: keeps
        # stale merges from congealing everything into one mega-component
        # while amortising the O(component) rebuild over many removals.
        if removed >= max(4, len(flows)):
            self._split_comps.add(c)
            self._comp_removals.pop(c, None)
        else:
            self._comp_removals[c] = removed

    @staticmethod
    def _partition(flows: List[Flow]) -> List[List[Flow]]:
        """Group fid-ordered *flows* into contention components.

        Union-find over resource ids; groups come back ordered by their
        first flow's fid with members in fid order — fully deterministic.
        """
        parent: dict = {}

        def find(x):
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        keys: list = []
        for flow in flows:
            base = None
            for rid in flow.res_ids.tolist():
                if rid not in parent:
                    parent[rid] = rid
                root = find(rid)
                if base is None:
                    base = root
                elif root != base:
                    parent[root] = base
            keys.append(base)

        groups: dict = {}
        ordered: list = []
        for flow, key in zip(flows, keys):
            gkey = ("f", flow.fid) if key is None else ("r", find(key))
            group = groups.get(gkey)
            if group is None:
                groups[gkey] = group = []
                ordered.append(group)
            group.append(flow)
        return ordered

    def _repartition_comp(self, c: int) -> None:
        """Rebuild one component's grouping from its surviving flows."""
        flows = self._comp_flows.pop(c)
        for rid in self._comp_res.pop(c):
            if self._res_comp.get(rid) == c:
                del self._res_comp[rid]
        self._dirty_comps.discard(c)
        self._comp_removals.pop(c, None)
        ordered = [flows[fid] for fid in sorted(flows)]
        for group in self._partition(ordered):
            nc = self._next_comp
            self._next_comp += 1
            self._comp_flows[nc] = {f.fid: f for f in group}
            res: set = set()
            for f in group:
                res.update(f.res_ids.tolist())
            self._comp_res[nc] = res
            for rid in res:
                self._res_comp[rid] = nc
            for f in group:
                self._flow_comp[f.fid] = nc
            self._dirty_comps.add(nc)

    # -- internals ---------------------------------------------------------
    def _remove(self, flow: Flow) -> None:
        if self.solver == "incremental":
            self._comp_remove(flow)
        self._release_slot(flow)
        for res in flow.resources:
            res.detach(flow)

    def _advance(self) -> None:
        """Accrue progress for every active flow up to the current time."""
        now = self.engine.now
        elapsed = now - self._last_update
        if elapsed > 0.0 and self._fid_slot:
            slots = self._active_slots()
            progressed = self._rem[slots] - self._rate_vec[slots] * elapsed
            np.maximum(progressed, 0.0, out=progressed)
            self._rem[slots] = progressed
            self._stat_flows_advanced += len(slots)
        self._last_update = now

    def _solve_rates(self) -> None:
        """Re-run progressive filling for whatever changed.

        Incremental mode solves only the dirty components; reference
        mode repartitions and solves every active flow from scratch.
        Both call the same grouping-independent kernel, so they assign
        bitwise-identical rates.
        """
        if self.solver == "reference":
            if not self._fid_slot:
                return
            start = perf_counter()  # det: allow — telemetry, not sim state
            for group in self._partition(self.active):
                self._solve_component(group)
            self._stat_solves += 1
            self._stat_solve_time += perf_counter() - start  # det: allow
            return
        if not self._dirty_comps and not self._split_comps:
            return
        start = perf_counter()  # det: allow — telemetry, not sim state
        if self._split_comps:
            for c in sorted(self._split_comps):
                if c in self._comp_flows:
                    self._repartition_comp(c)
            self._split_comps.clear()
        for c in sorted(self._dirty_comps):
            flows = self._comp_flows[c]
            self._solve_component([flows[fid] for fid in sorted(flows)])
        self._dirty_comps.clear()
        self._stat_solves += 1
        self._stat_solve_time += perf_counter() - start  # det: allow

    def _solve_component(self, flows: List[Flow]) -> None:
        """Vectorised progressive filling for one contention component.

        Each round recomputes every pending resource's *absolute*
        saturation level ``(capacity - fixed_rates) / pending`` instead
        of accumulating headroom decrements. All reductions are exact
        (min / integer counts / per-resource sums in fid order), so the
        result is independent of which other components share the call —
        the property the incremental solver's correctness rests on.
        """
        n = len(flows)
        if self._caps_dirty:
            self._caps_array = np.asarray(self._capacities, dtype=float)
            self._caps_dirty = False

        id_arrays = [f.res_ids for f in flows]
        lengths = np.fromiter((len(a) for a in id_arrays), dtype=np.int64, count=n)
        flat = id_arrays[0] if n == 1 else np.concatenate(id_arrays)
        pair_flow = np.repeat(np.arange(n), lengths)
        # Compact the component's resources to local ids 0..m-1.
        uniq, pair_res = np.unique(flat, return_inverse=True)
        m = int(uniq.shape[0])
        caps_local = self._caps_array[uniq]
        fixed_load = np.zeros(m)  # sum of already-fixed rates per resource
        pending = np.bincount(pair_res, minlength=m)
        slots = np.fromiter((f._slot for f in flows), dtype=np.int64, count=n)
        rate_caps = self._cap_vec[slots]
        fixed = np.zeros(n, dtype=bool)
        rates = np.zeros(n, dtype=float)
        pair_live = np.ones(pair_flow.shape[0], dtype=bool)
        rounds = 0

        while not fixed.all():
            rounds += 1
            pending_mask = pending > 0
            if pending_mask.any():
                levels = np.where(
                    pending_mask,
                    (caps_local - fixed_load) / np.maximum(pending, 1),
                    np.inf,
                )
                level_min = float(levels.min())
                if level_min < 0.0:
                    level_min = 0.0  # float dust: resource already over-filled
            else:
                levels = None
                level_min = np.inf
            cap_min = float(rate_caps[~fixed].min())
            level = level_min if level_min < cap_min else cap_min
            if not np.isfinite(level):
                raise SimulationError("flow without binding constraint")

            newly = np.zeros(n, dtype=bool)
            if levels is not None and level_min <= level:
                saturated = pending_mask & (levels <= level)
                if saturated.any():
                    hit = saturated[pair_res] & pair_live
                    if hit.any():
                        newly[pair_flow[hit]] = True
            newly |= rate_caps <= level
            newly &= ~fixed
            if not newly.any():
                # Numerical corner: nothing bound this round. Fix all
                # remaining flows at the current level to terminate.
                newly = ~fixed
            rates[newly] = level
            fixed |= newly
            dead = newly[pair_flow] & pair_live
            if dead.any():
                dead_res = pair_res[dead]
                pending -= np.bincount(dead_res, minlength=m)
                fixed_load += np.bincount(
                    dead_res, weights=np.full(dead_res.shape[0], level), minlength=m
                )
                pair_live &= ~dead

        self._rate_vec[slots] = rates
        self._stat_rounds += rounds
        self._stat_components += 1
        self._stat_flows_solved += n
        if n > self._stat_max_component:
            self._stat_max_component = n

    def _resolve(self) -> None:
        """Re-solve rates and reschedule the next completion event."""
        self._solve_rates()
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self._fid_slot:
            return
        slots = self._active_slots()
        remaining = self._rem[slots]
        rates = self._rate_vec[slots]
        etas = np.full(slots.shape[0], np.inf)
        flowing = rates > 0.0
        if flowing.any():
            etas[flowing] = remaining[flowing] / rates[flowing]
        etas[remaining <= _EPSILON_BYTES] = 0.0
        next_eta = float(etas.min())
        if next_eta == float("inf"):
            raise SimulationError(
                f"{slots.shape[0]} active flow(s) are stalled at zero rate"
            )
        self._completion_event = self.engine.schedule(
            next_eta, self._on_completion_event
        )

    def _on_completion_event(self) -> None:
        self._completion_event = None
        if self._resolve_event is not None:
            # The direct resolve below covers any deferred one.
            self._resolve_event.cancel()
            self._resolve_event = None
        self._advance()
        slots = self._active_slots()
        done = self._rem[slots] <= _EPSILON_BYTES
        if not done.any():
            # Rates changed since the event was scheduled; just re-arm.
            self._resolve()
            return
        finished = sorted(
            (self._slot_flow[s] for s in slots[done]), key=lambda f: f.fid
        )
        for flow in finished:
            self._remove(flow)
        self._resolve()
        for flow in finished:
            self._finish_flow(flow)

    def _finish_flow(self, flow: Flow) -> None:
        flow.remaining = 0.0
        self.completed_count += 1
        self.total_bytes_transferred += flow.nbytes
        if flow.on_complete is not None:
            flow.on_complete(flow)
