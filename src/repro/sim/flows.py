"""Max-min fair fluid-flow network driving all transfer timing.

Each in-flight message is a :class:`Flow` with a byte count and a path of
:class:`~repro.sim.resources.Resource` objects. Whenever the active-flow
set changes the network

1. *advances* every flow's remaining bytes by ``rate x elapsed``,
2. *re-solves* max-min fair rates by progressive filling (water filling),
3. *reschedules* one engine event at the earliest flow completion.

Progressive filling: all unfixed flows grow at the same rate ``t`` until
either a resource saturates (``t = headroom / unfixed_flows``) or a flow
hits its individual rate cap; the binding flows are fixed and the process
repeats. This yields the unique max-min fair allocation.

The solver is the simulator's hot loop (it runs twice per message), so
it is vectorised: flows and resources are mapped to integer ids, the
flow/resource incidence is a pair of flat numpy arrays, and each
water-filling round is a handful of array operations. Per-path id arrays
are cached keyed on the (machine-cached) resource tuple, so steady-state
ring traffic allocates almost nothing.

This sharing behaviour is the load-bearing part of the reproduction: the
paper's tuned ring allgather removes transfers *without shortening the
ring*, so its advantage exists exactly insofar as concurrent transfers
compete for CPU copy engines, memory engines, NICs and core links — which
is what this model expresses.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from ..errors import SimulationError
from .engine import Engine, EventHandle
from .resources import Resource

__all__ = ["Flow", "FlowNetwork"]

# Residual byte counts below this are treated as complete; guards against
# floating-point dust keeping a flow alive forever.
_EPSILON_BYTES = 1e-6


class Flow:
    """One in-flight transfer across a path of resources."""

    __slots__ = (
        "fid",
        "nbytes",
        "remaining",
        "resources",
        "res_ids",
        "rate_cap",
        "rate",
        "on_complete",
        "meta",
        "start_time",
    )

    def __init__(
        self,
        fid: int,
        nbytes: float,
        resources: tuple,
        res_ids,
        rate_cap: Optional[float],
        on_complete: Optional[Callable],
        meta,
        start_time: float,
    ):
        self.fid = fid
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.resources = resources
        self.res_ids = res_ids  # np.ndarray of network-local resource ids
        self.rate_cap = rate_cap
        self.rate = 0.0
        self.on_complete = on_complete
        self.meta = meta
        self.start_time = start_time

    def eta(self) -> float:
        """Seconds until completion at the current rate (inf when stalled)."""
        if self.remaining <= _EPSILON_BYTES:
            return 0.0
        if self.rate <= 0.0:
            return float("inf")
        return self.remaining / self.rate

    def __repr__(self) -> str:
        return (
            f"<Flow #{self.fid} {self.remaining:.0f}/{self.nbytes:.0f}B "
            f"@{self.rate:.4g}B/s meta={self.meta!r}>"
        )


class FlowNetwork:
    """Progressive-filling fluid network bound to a simulation engine."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self.active: list = []  # ordered by fid for determinism
        self._next_fid = 0
        self._last_update = engine.now
        self._completion_event: Optional[EventHandle] = None
        self._resolve_event: Optional[EventHandle] = None
        self.completed_count = 0
        self.total_bytes_transferred = 0.0
        # Resource registry: network-local integer ids + capacity vector.
        self._res_index: dict = {}
        self._capacities: list = []
        self._caps_array = np.empty(0)
        self._caps_dirty = False
        # Path cache: resource tuple -> id array (machines cache plans, so
        # identical paths arrive as identical tuples).
        self._path_ids: dict = {}

    # -- public API ------------------------------------------------------
    def add_flow(
        self,
        nbytes: float,
        resources: Iterable[Resource],
        on_complete: Optional[Callable] = None,
        rate_cap: Optional[float] = None,
        meta=None,
    ) -> Flow:
        """Start a transfer; ``on_complete(flow)`` fires at delivery time.

        Zero-byte transfers complete via a zero-delay event so callers
        always observe completion asynchronously (no re-entrancy).
        """
        if nbytes < 0:
            raise SimulationError(f"flow cannot carry {nbytes} bytes")
        if rate_cap is not None and rate_cap <= 0:
            raise SimulationError(f"flow rate cap must be positive, got {rate_cap}")
        path = tuple(resources)
        flow = Flow(
            self._next_fid,
            nbytes,
            path,
            self._ids_for(path),
            rate_cap,
            on_complete,
            meta,
            self.engine.now,
        )
        self._next_fid += 1
        if nbytes <= _EPSILON_BYTES:
            self.engine.schedule(0.0, self._finish_flow, flow)
            return flow
        self._advance()
        self.active.append(flow)
        for res in path:
            res.attach(flow)
        self._schedule_resolve()
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        """Abort an in-flight transfer without firing its callback."""
        if flow not in self.active:
            return
        self._advance()
        self._remove(flow)
        self._schedule_resolve()

    def flush(self) -> None:
        """Force any deferred rate re-solve to run now.

        Flow-set changes within one timestamp are batched into a single
        zero-delay re-solve; call this to observe up-to-date rates
        without stepping the engine (tests and diagnostics).
        """
        if self._resolve_event is not None:
            self._resolve_event.cancel()
            self._resolve_event = None
            self._resolve()

    def _schedule_resolve(self) -> None:
        if self._resolve_event is None:
            self._resolve_event = self.engine.schedule(0.0, self._deferred_resolve)

    def _deferred_resolve(self) -> None:
        self._resolve_event = None
        self._resolve()

    @property
    def active_count(self) -> int:
        return len(self.active)

    # -- resource / path indexing -------------------------------------------
    def _ids_for(self, path: tuple):
        ids = self._path_ids.get(path)
        if ids is None:
            out = []
            for res in path:
                idx = self._res_index.get(res)
                if idx is None:
                    idx = len(self._capacities)
                    self._res_index[res] = idx
                    self._capacities.append(res.capacity)
                    self._caps_dirty = True
                out.append(idx)
            ids = np.asarray(out, dtype=np.int64)
            self._path_ids[path] = ids
        return ids

    # -- internals ---------------------------------------------------------
    def _remove(self, flow: Flow) -> None:
        self.active.remove(flow)
        for res in flow.resources:
            res.detach(flow)

    def _advance(self) -> None:
        """Accrue progress for every active flow up to the current time."""
        now = self.engine.now
        elapsed = now - self._last_update
        if elapsed > 0.0:
            for flow in self.active:
                flow.remaining -= flow.rate * elapsed
                if flow.remaining < 0.0:
                    flow.remaining = 0.0
        self._last_update = now

    def _solve_rates(self) -> None:
        """Vectorised progressive-filling max-min fair rate assignment."""
        flows = self.active
        n = len(flows)
        if n == 0:
            return
        if self._caps_dirty:
            self._caps_array = np.asarray(self._capacities, dtype=float)
            self._caps_dirty = False

        id_arrays = [f.res_ids for f in flows]
        pair_res = np.concatenate(id_arrays)
        lengths = np.fromiter((len(a) for a in id_arrays), dtype=np.int64, count=n)
        pair_flow = np.repeat(np.arange(n), lengths)
        # Work directly in global resource ids: the registry is small, so
        # full-length vectors beat a per-solve unique/sort.
        m = len(self._caps_array)
        headroom = self._caps_array.copy()
        tol = 1e-9 * headroom  # per-resource saturation tolerance
        pending = np.bincount(pair_res, minlength=m)
        rate_caps = np.fromiter(
            (f.rate_cap if f.rate_cap is not None else np.inf for f in flows),
            dtype=float,
            count=n,
        )
        fixed = np.zeros(n, dtype=bool)
        rates = np.zeros(n, dtype=float)
        pair_live = np.ones(len(pair_flow), dtype=bool)
        base = 0.0

        while not fixed.all():
            active_res = pending > 0
            if active_res.any():
                shares = headroom[active_res] / pending[active_res]
                limit = base + float(shares.min())
            else:
                limit = np.inf
            cap_limit = float(rate_caps[~fixed].min())
            limit = min(limit, cap_limit)
            if not np.isfinite(limit):
                raise SimulationError("flow without binding constraint")

            increment = limit - base
            if increment > 0.0:
                headroom -= increment * pending
            base = limit

            saturated = active_res & (headroom <= tol)
            newly = np.zeros(n, dtype=bool)
            if saturated.any():
                hit = saturated[pair_res] & pair_live
                if hit.any():
                    newly[pair_flow[hit]] = True
            newly |= rate_caps <= base * (1.0 + 1e-12)
            newly &= ~fixed
            if not newly.any():
                # Numerical corner: nothing bound this round. Fix all
                # remaining flows at the current base to terminate.
                newly = ~fixed
            rates[newly] = base
            fixed |= newly
            dead = newly[pair_flow] & pair_live
            if dead.any():
                pending -= np.bincount(pair_res[dead], minlength=m)
                pair_live &= ~dead

        for flow, rate in zip(flows, rates):
            flow.rate = float(rate)

    def _resolve(self) -> None:
        """Re-solve rates and reschedule the next completion event."""
        self._solve_rates()
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self.active:
            return
        next_eta = float("inf")
        for flow in self.active:
            eta = flow.eta()
            if eta < next_eta:
                next_eta = eta
        if next_eta == float("inf"):
            raise SimulationError(
                f"{len(self.active)} active flow(s) are stalled at zero rate"
            )
        self._completion_event = self.engine.schedule(
            next_eta, self._on_completion_event
        )

    def _on_completion_event(self) -> None:
        self._completion_event = None
        if self._resolve_event is not None:
            # The direct resolve below covers any deferred one.
            self._resolve_event.cancel()
            self._resolve_event = None
        self._advance()
        finished = [f for f in self.active if f.remaining <= _EPSILON_BYTES]
        if not finished:
            # Rates changed since the event was scheduled; just re-arm.
            self._resolve()
            return
        for flow in finished:
            self._remove(flow)
        self._resolve()
        for flow in finished:
            self._finish_flow(flow)

    def _finish_flow(self, flow: Flow) -> None:
        flow.remaining = 0.0
        self.completed_count += 1
        self.total_bytes_transferred += flow.nbytes
        if flow.on_complete is not None:
            flow.on_complete(flow)
