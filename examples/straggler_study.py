#!/usr/bin/env python3
"""Straggler study: how fragile is each broadcast to one slow rank?

Real clusters are never uniform — OS noise, thermal throttling, a busy
core. This example injects a single straggler (its copy engine scaled
down 4x) at every position in turn and measures the broadcast slowdown
for the binomial tree, the native ring and the tuned ring: trees only
suffer when the straggler sits on the critical subtree path, while rings
serialise through *every* rank and pay wherever it lands. The tuned ring
never makes things worse.

Run:  python examples/straggler_study.py
"""

from repro.collectives import (
    bcast_binomial,
    bcast_scatter_ring_native,
    bcast_scatter_ring_opt,
)
from repro.machine import Machine, hornet
from repro.mpi import Job
from repro.util import Table, format_size, mean

P, NBYTES, SLOWDOWN = 16, 1 << 20, 0.25
ALGOS = {
    "binomial": bcast_binomial,
    "ring (native)": bcast_scatter_ring_native,
    "ring (tuned)": bcast_scatter_ring_opt,
}


def bcast_time(algo, cpu_scale=None) -> float:
    machine = Machine(hornet(nodes=2), nranks=P, cpu_scale=cpu_scale)

    def factory(ctx):
        def program():
            return (yield from algo(ctx, NBYTES, 0))

        return program()

    return Job(machine, factory, working_set=NBYTES).run().time


def main() -> None:
    print(
        f"broadcast of {format_size(NBYTES)} across {P} ranks; one rank's "
        f"copy engine scaled to {SLOWDOWN}x, tried at every position\n"
    )
    table = Table(
        ["algorithm", "clean (us)", "worst (us)", "mean slowdown", "worst slowdown"],
        formats=[None, ".1f", ".1f", ".2f", ".2f"],
        title="Single-straggler sensitivity",
    )
    for name, algo in ALGOS.items():
        clean = bcast_time(algo)
        times = [
            bcast_time(algo, cpu_scale={straggler: SLOWDOWN})
            for straggler in range(P)
        ]
        table.add_row(
            name,
            clean * 1e6,
            max(times) * 1e6,
            mean(times) / clean,
            max(times) / clean,
        )
    print(table)
    print(
        "\nthe rings pay the straggler everywhere (every chunk passes every "
        "rank); the tree only when it lands on a loaded subtree path."
    )


if __name__ == "__main__":
    main()
