#!/usr/bin/env python3
"""Timeline inspector: watch the two ring designs execute.

Records full event traces for MPI_Bcast_native and MPI_Bcast_opt,
prints the per-phase breakdown and per-rank ASCII timelines side by
side (the tuned ring's endpoints visibly go quiet in the late steps),
characterises the machine with a ping-pong fit like one would a real
cluster, and exports a Chrome/Perfetto trace file for interactive
digging.

Run:  python examples/timeline_inspector.py
"""

import os
import tempfile

from repro.analysis import ascii_timeline, phase_summary, write_chrome_trace
from repro.core import characterize, simulate_bcast
from repro.machine import hornet
from repro.sim import Trace
from repro.util import Table, format_size

P, NBYTES = 16, 512 * 1024


def trace_of(algorithm: str) -> Trace:
    trace = Trace()
    simulate_bcast(
        hornet(nodes=2), P, NBYTES, algorithm=algorithm, trace=trace
    )
    return trace


def main() -> None:
    spec = hornet(nodes=2)
    print(spec.describe())

    # Characterise the machine the way real clusters are characterised.
    intra = characterize(spec, src=0, dst=1)
    print(f"\nping-pong fit, intra-node pair: {intra.describe()}")

    traces = {name: trace_of(name) for name in ("scatter_ring_native", "scatter_ring_opt")}

    table = Table(
        ["design", "phase", "messages", "bytes", "duration (us)"],
        formats=[None, None, None, None, ".1f"],
        title=f"Phase breakdown: bcast of {format_size(NBYTES)} across {P} ranks",
    )
    for name, trace in traces.items():
        for phase, stats in sorted(phase_summary(trace).items()):
            table.add_row(
                name,
                phase,
                stats["messages"],
                format_size(stats["bytes"]),
                stats["duration"] * 1e6,
            )
    print()
    print(table)

    for name, trace in traces.items():
        print(f"\n--- ring-phase timeline: {name} ---")
        print(ascii_timeline(trace, P, width=70, tag=2))

    out = os.path.join(tempfile.gettempdir(), "repro_bcast_trace.json")
    write_chrome_trace(traces["scatter_ring_opt"], out)
    print(f"\nChrome/Perfetto trace written to {out} (open in chrome://tracing)")


if __name__ == "__main__":
    main()
