#!/usr/bin/env python3
"""Traffic analysis: the bandwidth-saving arithmetic of Section IV.

Regenerates the paper's transfer-count argument across process counts —
closed form and measured schedules side by side — then splits the tuned
ring's savings into intra-node memory copies and inter-node fabric
messages under blocked vs round-robin placement, which is where the
saved bandwidth physically lives.

Run:  python examples/traffic_analysis.py
"""

from repro.core import (
    measure_traffic,
    ring_bytes_native,
    ring_bytes_tuned,
    ring_transfers_native,
    ring_transfers_tuned,
    transfers_saved,
)
from repro.machine import blocked, round_robin
from repro.util import MIB, Table, format_size, line_plot


def transfer_table() -> None:
    table = Table(
        ["P", "native", "tuned", "saved", "saved %", "measured tuned"],
        formats=[None, None, None, None, ".1f", None],
        title="Ring-allgather transfers: closed form vs extracted schedule",
    )
    for P in (4, 8, 10, 16, 33, 64, 129):
        measured = measure_traffic("scatter_ring_opt", P, 1024 * P).ring_transfers
        native, tuned = ring_transfers_native(P), ring_transfers_tuned(P)
        table.add_row(
            P, native, tuned, transfers_saved(P), 100 * (native - tuned) / native, measured
        )
        assert measured == tuned
    print(table)
    print()


def savings_plot() -> None:
    ps = list(range(2, 130))
    saved = [transfers_saved(p) for p in ps]
    print(
        line_plot(
            {"transfers saved": (ps, saved)},
            title='"the decrement will increase as the growing of P" (Section IV)',
            xlabel="Number of Processes",
            ylabel="saved",
        )
    )
    print()


def placement_split() -> None:
    P, nbytes = 48, 8 * MIB
    table = Table(
        ["placement", "design", "intra msgs", "inter msgs", "wire bytes"],
        title=f"Where the savings land (P={P}, {format_size(nbytes)}, 2 nodes x 24 cores)",
    )
    for name, placement in (
        ("blocked", blocked(P, nodes=2, cores_per_node=24)),
        ("round_robin", round_robin(P, nodes=2, cores_per_node=24)),
    ):
        for algo in ("scatter_ring_native", "scatter_ring_opt"):
            rep = measure_traffic(algo, P, nbytes, placement=placement)
            table.add_row(name, algo, rep.intra, rep.inter, format_size(rep.wire_bytes))
    print(table)
    print()
    print(
        "blocked placement keeps most ring hops intra-node (memory copies); "
        "round-robin pushes them onto the fabric — the tuned ring saves "
        "messages at both levels."
    )


def byte_savings() -> None:
    P = 64
    for nbytes in (512 * 1024, 8 * MIB):
        n, t = ring_bytes_native(P, nbytes), ring_bytes_tuned(P, nbytes)
        print(
            f"P={P}, {format_size(nbytes)}: ring wire bytes "
            f"{format_size(n)} -> {format_size(t)} "
            f"({100 * (n - t) / n:.1f}% saved)"
        )


def main() -> None:
    transfer_table()
    savings_plot()
    placement_split()
    print()
    byte_savings()


if __name__ == "__main__":
    main()
