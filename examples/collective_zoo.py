#!/usr/bin/env python3
"""Collective zoo: every operation in the library, timed on one machine.

The paper situates broadcast inside MPI's collective taxonomy
(One-to-All, All-to-One, All-to-All); this example runs one
representative workload through all of them — six broadcast algorithms,
three allgathers, two all-to-alls, two allreduces, gather, reduce and
the barrier — and prints a single comparison table. A compact showcase
of the simulated-MPI substrate the reproduction is built on.

Run:  python examples/collective_zoo.py
"""

from repro.collectives import (
    ALGORITHMS,
    ALLGATHER_ALGORITHMS,
    ALLTOALL_ALGORITHMS,
    allreduce_rabenseifner,
    allreduce_reduce_bcast,
    barrier,
    gather,
    get_algorithm,
    reduce,
)
from repro.machine import Machine, hornet
from repro.mpi import Job
from repro.util import Table, format_size

P = 32
NBYTES = 1 << 20  # per-operation payload (per rank where applicable)
SPEC = hornet(nodes=4)


def timed(factory):
    machine = Machine(SPEC, nranks=P)
    result = Job(machine, factory, working_set=NBYTES).run()
    return result.time, result.counters.messages


def bcast_factory(name):
    algo = get_algorithm(name)

    def factory(ctx):
        def program():
            return (yield from algo(ctx, NBYTES, 0))

        return program()

    return factory


def simple_factory(gen_fn):
    def factory(ctx):
        def program():
            return (yield from gen_fn(ctx))

        return program()

    return factory


def main() -> None:
    print(SPEC.describe())
    print(f"{P} ranks, payload {format_size(NBYTES)} (block-wise where applicable)\n")

    table = Table(
        ["class", "operation", "time (us)", "messages"],
        formats=[None, None, ".1f", None],
        title="The collective zoo",
    )

    t, m = timed(simple_factory(lambda ctx: barrier(ctx)))
    table.add_row("sync", "barrier (dissemination)", t * 1e6, m)

    for name in sorted(ALGORITHMS):
        t, m = timed(bcast_factory(name))
        table.add_row("one-to-all", f"bcast/{name}", t * 1e6, m)

    t, m = timed(simple_factory(lambda ctx: gather(ctx, NBYTES // P, 0)))
    table.add_row("all-to-one", "gather (binomial)", t * 1e6, m)
    t, m = timed(simple_factory(lambda ctx: reduce(ctx, NBYTES, 0, reduce_bw=8e9)))
    table.add_row("all-to-one", "reduce (binomial)", t * 1e6, m)

    for name, algo in sorted(ALLGATHER_ALGORITHMS.items()):
        if name == "rdbl" and P & (P - 1):
            continue
        t, m = timed(simple_factory(lambda ctx, a=algo: a(ctx, NBYTES // P)))
        table.add_row("all-to-all", f"allgather/{name}", t * 1e6, m)

    for name, algo in sorted(ALLTOALL_ALGORITHMS.items()):
        t, m = timed(simple_factory(lambda ctx, a=algo: a(ctx, NBYTES // P)))
        table.add_row("all-to-all", f"alltoall/{name}", t * 1e6, m)

    t, m = timed(
        simple_factory(lambda ctx: allreduce_reduce_bcast(ctx, NBYTES, reduce_bw=8e9))
    )
    table.add_row("all-to-all", "allreduce/reduce+tuned-bcast", t * 1e6, m)
    t, m = timed(
        simple_factory(lambda ctx: allreduce_rabenseifner(ctx, NBYTES, reduce_bw=8e9))
    )
    table.add_row("all-to-all", "allreduce/rabenseifner", t * 1e6, m)

    print(table)
    print(
        "\nthe two highlighted rows of the paper: bcast/scatter_ring_native "
        "vs bcast/scatter_ring_opt."
    )


if __name__ == "__main__":
    main()
