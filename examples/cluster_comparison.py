#!/usr/bin/env python3
"""Cluster comparison: the paper's two testbeds, side by side.

The evaluation ran on Hornet (Cray XC40, Aries dragonfly, 24-core
Haswell nodes) and Laki (NEC InfiniBand fat tree, 8-core Nehalem
nodes) and reports that "results from both ... deliver the same
bandwidth performance trend". This example checks that statement in the
model: the tuned broadcast wins on both machines, at every size, even
though their absolute bandwidths differ by a wide margin.

Run:  python examples/cluster_comparison.py
"""

from repro.core import Sweep
from repro.machine import hornet, laki
from repro.util import Table, format_size

SIZES = ["512KiB", "1MiB", "2MiB", "4MiB"]
NRANKS = 32
NATIVE, OPT = "scatter_ring_native", "scatter_ring_opt"


def main() -> None:
    specs = {"hornet": hornet(nodes=4), "laki": laki(nodes=8)}
    for name, spec in specs.items():
        print(spec.describe())
    print()

    table = Table(
        ["msg size"]
        + [f"{name} {which}" for name in specs for which in ("native", "opt", "gain")],
        formats=[None] + [".0f", ".0f", lambda v: f"+{v:.1f}%"] * len(specs),
        title=f"Broadcast bandwidth (MB/s), {NRANKS} ranks",
    )

    sweeps = {
        name: Sweep(spec, sizes=SIZES, ranks=[NRANKS], algorithms=[NATIVE, OPT])
        for name, spec in specs.items()
    }
    trend_holds = True
    for size in SIZES:
        row = [size]
        for name, sweep in sweeps.items():
            cmp = sweep.compare(NRANKS, size, NATIVE, OPT)
            row.extend(
                [
                    cmp.native.bandwidth_mib,
                    cmp.opt.bandwidth_mib,
                    cmp.bandwidth_improvement_pct,
                ]
            )
            trend_holds &= cmp.bandwidth_improvement_pct >= 0
        table.add_row(*row)
    print(table)
    print()
    if trend_holds:
        print(
            'both clusters "deliver the same bandwidth performance trend": '
            "the tuned ring wins everywhere, as the paper reports."
        )
    else:
        print("WARNING: trend differs between the two machines!")


if __name__ == "__main__":
    main()
