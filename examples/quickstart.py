#!/usr/bin/env python3
"""Quickstart: compare the native and tuned MPI broadcasts in one minute.

Builds a Cray-XC40-like machine, broadcasts a 1 MiB message across 64
ranks with MPICH3's native scatter-ring-allgather and with the paper's
bandwidth-saving tuned ring, and prints what changed: simulated time,
bandwidth, and how many message transfers the tuned design eliminated.

Run:  python examples/quickstart.py
"""

from repro import core, machine
from repro.util import Table, format_size


def main() -> None:
    spec = machine.hornet(nodes=16)
    print(spec.describe())
    print()

    nranks, nbytes = 64, "1MiB"
    cmp = core.compare_bcast(spec, nranks=nranks, nbytes=nbytes)

    table = Table(
        ["design", "time (us)", "bandwidth (MB/s)", "transfers", "wire bytes"],
        formats=[None, ".1f", ".1f", None, None],
        title=f"MPI_Bcast of {nbytes} across {nranks} ranks",
    )
    for rec in (cmp.native, cmp.opt):
        table.add_row(
            rec.algorithm,
            rec.time * 1e6,
            rec.bandwidth_mib,
            rec.messages,
            format_size(rec.bytes_on_wire),
        )
    print(table)
    print()
    print(
        f"tuned ring saves {cmp.transfers_saved} transfers "
        f"({format_size(cmp.bytes_saved)} off the wire) -> "
        f"+{cmp.bandwidth_improvement_pct:.1f}% bandwidth"
    )

    # Validate data movement end to end with real buffers (small size so
    # it is quick): every rank must end up with the root's payload.
    rec = core.validate_bcast(spec, nranks=16, nbytes="64KiB", algorithm="auto_tuned")
    print(f"\nvalidated with real buffers: {rec.describe()}")


if __name__ == "__main__":
    main()
